//! Cross-crate integration: dataset → partition → cluster → sampler →
//! prefetcher, verifying that data stays consistent across every layer
//! boundary (the features a trainer assembles must equal ground truth
//! regardless of whether they came from the local KVStore, the prefetch
//! buffer, or a remote fetch).

use massivegnn::init::initialize_prefetcher;
use massivegnn::prefetcher::baseline_prepare;
use massivegnn::PrefetchConfig;
use mgnn_graph::{Dataset, DatasetKind, Scale};
use mgnn_net::{CommMetrics, CostModel, SimCluster};
use mgnn_partition::{build_local_partitions, multilevel_partition};
use mgnn_sampling::NeighborSampler;
use std::sync::Arc;

struct Fixture {
    dataset: Dataset,
    cluster: Arc<SimCluster>,
    parts: Vec<mgnn_partition::LocalPartition>,
}

fn fixture(kind: DatasetKind) -> Fixture {
    let dataset = Dataset::generate(kind, Scale::Unit, 77);
    let partitioning = multilevel_partition(&dataset.graph, 3, 77);
    let cluster = Arc::new(SimCluster::new(
        &dataset.features,
        &partitioning.assignment,
        3,
    ));
    let parts = build_local_partitions(&dataset.graph, &partitioning, &dataset.train_nodes);
    Fixture {
        dataset,
        cluster,
        parts,
    }
}

#[test]
fn prefetched_features_match_ground_truth_across_modes() {
    let fx = fixture(DatasetKind::Products);
    let cost = CostModel::default();
    for part in &fx.parts {
        if part.train_nodes.is_empty() {
            continue;
        }
        let seeds: Vec<u32> = part
            .train_nodes
            .iter()
            .take(32)
            .map(|&g| part.local_id(g).unwrap())
            .collect();
        let sampler = NeighborSampler::new(vec![5, 10], 9);
        let metrics = CommMetrics::new();
        let (mut pf, _) = initialize_prefetcher(
            part,
            PrefetchConfig {
                f_h: 0.3,
                delta: 2,
                gamma: 0.9,
                ..Default::default()
            },
            fx.dataset.num_nodes(),
            &fx.cluster,
            &cost,
            &metrics,
        );
        for step in 0..6u64 {
            let batch = pf.prepare(
                part,
                &sampler,
                &seeds,
                0,
                step,
                &fx.cluster,
                &cost,
                &metrics,
            );
            // Every assembled input row must equal the global feature
            // store's row for that node.
            for (i, &lid) in batch.minibatch.input_nodes.iter().enumerate() {
                let gid = part.global_id(lid);
                let expected = fx.dataset.features.row(gid);
                let got = batch.input.row(i);
                assert_eq!(got, expected, "feature mismatch at node {gid} step {step}");
            }
            // Labels must match too.
            for (i, &lid) in batch.minibatch.seeds.iter().enumerate() {
                let gid = part.global_id(lid);
                assert_eq!(batch.labels[i], fx.dataset.features.label(gid));
            }
        }
        pf.buffer.check_invariants().unwrap();
    }
}

#[test]
fn baseline_and_prefetch_assemble_identical_batches() {
    let fx = fixture(DatasetKind::Arxiv);
    let cost = CostModel::default();
    let part = &fx.parts[0];
    let seeds: Vec<u32> = part
        .train_nodes
        .iter()
        .take(24)
        .map(|&g| part.local_id(g).unwrap())
        .collect();
    let sampler = NeighborSampler::new(vec![4, 8], 3);
    let m1 = CommMetrics::new();
    let m2 = CommMetrics::new();
    let (mut pf, _) = initialize_prefetcher(
        part,
        PrefetchConfig::default(),
        fx.dataset.num_nodes(),
        &fx.cluster,
        &cost,
        &m1,
    );
    for step in 0..4u64 {
        let a = pf.prepare(part, &sampler, &seeds, 0, step, &fx.cluster, &cost, &m1);
        let b = baseline_prepare(part, &sampler, &seeds, 0, step, &fx.cluster, &cost, &m2);
        assert_eq!(
            a.minibatch, b.minibatch,
            "sampling must be mode-independent"
        );
        assert_eq!(a.input.data(), b.input.data(), "features must be identical");
        assert_eq!(a.labels, b.labels);
    }
    // But the prefetch path must have moved strictly fewer remote rows
    // during steady state (excluding its init fetch).
    let hits = m1.snapshot().buffer_hits;
    assert!(hits > 0, "no hits in 4 steps");
}

#[test]
fn eviction_keeps_buffer_capacity_constant_across_many_steps() {
    let fx = fixture(DatasetKind::Products);
    let cost = CostModel::default();
    let part = &fx.parts[1];
    let seeds: Vec<u32> = part
        .train_nodes
        .iter()
        .take(48)
        .map(|&g| part.local_id(g).unwrap())
        .collect();
    let sampler = NeighborSampler::new(vec![5, 10], 13);
    let metrics = CommMetrics::new();
    let (mut pf, _) = initialize_prefetcher(
        part,
        PrefetchConfig {
            f_h: 0.2,
            gamma: 0.8, // aggressive decay forces eviction traffic
            delta: 3,
            ..Default::default()
        },
        fx.dataset.num_nodes(),
        &fx.cluster,
        &cost,
        &metrics,
    );
    let capacity = pf.buffer.len();
    for epoch in 0..3u64 {
        for step in 0..10u64 {
            pf.prepare(
                part,
                &sampler,
                &seeds,
                epoch,
                epoch * 10 + step,
                &fx.cluster,
                &cost,
                &metrics,
            );
            assert_eq!(pf.buffer.len(), capacity, "buffer size drifted");
            pf.buffer.check_invariants().unwrap();
        }
    }
    assert!(
        metrics.snapshot().evictions > 0,
        "aggressive decay must evict"
    );
    // Evicted == replaced (paper: constant buffer size).
    let s = metrics.snapshot();
    assert_eq!(s.evictions, s.replacements_fetched);
}

#[test]
fn buffered_features_stay_fresh_after_replacements() {
    // After many evict/replace rounds, every buffered feature row must
    // still equal the owning KVStore's row (no stale or corrupt slots).
    let fx = fixture(DatasetKind::Reddit);
    let cost = CostModel::default();
    let part = &fx.parts[2];
    let seeds: Vec<u32> = part
        .train_nodes
        .iter()
        .take(32)
        .map(|&g| part.local_id(g).unwrap())
        .collect();
    let sampler = NeighborSampler::new(vec![8], 21);
    let metrics = CommMetrics::new();
    let (mut pf, _) = initialize_prefetcher(
        part,
        PrefetchConfig {
            f_h: 0.15,
            gamma: 0.7,
            delta: 2,
            ..Default::default()
        },
        fx.dataset.num_nodes(),
        &fx.cluster,
        &cost,
        &metrics,
    );
    for step in 0..12u64 {
        pf.prepare(
            part,
            &sampler,
            &seeds,
            0,
            step,
            &fx.cluster,
            &cost,
            &metrics,
        );
    }
    for (slot, h) in pf.buffer.occupied() {
        let gid = part.halo_nodes[h as usize];
        let owner = fx.cluster.owner(gid);
        assert_eq!(
            pf.buffer.row(slot),
            fx.cluster.store(owner).row(gid),
            "stale slot for node {gid}"
        );
    }
}
