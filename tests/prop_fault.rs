//! Chaos determinism properties: a fault schedule is part of the seeded
//! configuration, so the same `FaultProfile` seed must replay bit for
//! bit — same counters, same degradation, same sim-clock charges — no
//! matter how wide the kernel pool runs.
//!
//! Chaos replay is pinned to the *sequential* engine (one issuing
//! thread gives every request a stable per-server index); the pool
//! width still varies the parallelism of every kernel underneath it,
//! which is exactly what the property stresses. Profiles here never
//! drop replies (drops are detected by wall-clock timeout, which a
//! property test cannot afford 64 times over); delays, truncations and
//! crashes are all detected instantly and cover every sim-time-charging
//! path: delay tags, retry round-trips, backoff, respawn.

use massivegnn::{
    Engine, EngineConfig, FaultProfile, Mode, PrefetchConfig, RetryPolicy, RunReport,
};
use proptest::prelude::*;
use serde::Serialize;
use std::time::Duration;

fn chaos_config(seed: u64, profile: FaultProfile, prefetch: bool) -> EngineConfig {
    EngineConfig {
        seed,
        epochs: 1,
        batch_size: 64,
        fanouts: vec![4, 4],
        hidden_dim: 16,
        // Timeouts only genuinely fire on dropped replies, which these
        // profiles never inject; a generous wall timeout means a busy CI
        // host can never turn a slow reply into a spurious (and
        // schedule-dependent) timeout.
        retry: RetryPolicy {
            timeout: Duration::from_secs(120),
            ..Default::default()
        },
        mode: if prefetch {
            Mode::Prefetch(PrefetchConfig {
                f_h: 0.25,
                delta: 4,
                ..Default::default()
            })
        } else {
            Mode::Baseline
        },
        fault: Some(profile),
        ..Default::default()
    }
}

/// Everything the run produced, as one comparable string: counters
/// (including the fault lane), timing breakdowns, makespan, losses.
fn fingerprint(r: &RunReport) -> String {
    serde_json::to_string_pretty(&r.to_value())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn same_fault_seed_replays_identically_at_any_pool_width(
        run_seed in 0u64..1000,
        fault_seed in 0u64..1000,
        delay_prob in 0.0f64..1.0,
        truncate_prob in 0.0f64..0.3,
        crash_sel in 0u32..3, // 0/1: crash that part; 2: no crash
        crash_after in 1u64..16,
        prefetch_sel in 0u32..2,
    ) {
        let profile = FaultProfile {
            seed: fault_seed,
            drop_prob: 0.0,
            delay_prob,
            delay_factor: 3,
            truncate_prob,
            crash_part: (crash_sel < 2).then_some(crash_sel),
            crash_after: if crash_sel < 2 { crash_after } else { 0 },
        };
        let cfg = chaos_config(run_seed, profile, prefetch_sel == 1);
        let narrow = rayon::pool::with_max_threads(1, || Engine::build(cfg.clone()).run());
        let wide = rayon::pool::with_max_threads(4, || Engine::build(cfg.clone()).run());

        // Identical fault counters AND identical sim-clock charges:
        // retries/backoff must cost the same modeled seconds wherever
        // the pool schedules the work.
        prop_assert_eq!(narrow.aggregate_metrics(), wide.aggregate_metrics());
        prop_assert_eq!(narrow.makespan_s.to_bits(), wide.makespan_s.to_bits());
        prop_assert_eq!(fingerprint(&narrow), fingerprint(&wide));

        // And the replay is stable run-to-run, not just width-to-width.
        let again = rayon::pool::with_max_threads(4, || Engine::build(cfg).run());
        prop_assert_eq!(fingerprint(&wide), fingerprint(&again));
    }

    #[test]
    fn faultless_profile_counts_nothing(
        run_seed in 0u64..1000,
        fault_seed in 0u64..1000,
    ) {
        let cfg = chaos_config(run_seed, FaultProfile::off(fault_seed), true);
        let clean = {
            let mut c = cfg.clone();
            c.fault = None;
            Engine::build(c).run()
        };
        let armed = Engine::build(cfg).run();
        prop_assert!(!armed.aggregate_metrics().had_faults());
        prop_assert_eq!(fingerprint(&clean), fingerprint(&armed));
    }
}
