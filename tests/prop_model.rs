//! Property-based tests over the model layer: for arbitrary layer sizes
//! and sampled structures, parameter/gradient flattening must round-trip,
//! forward shapes must follow block shapes, DDP averaging must be
//! permutation-invariant, and the MAC estimate must scale monotonically
//! with the sampled workload.

use mgnn_model::{ring_allreduce_average, GatModel, GcnModel, Model, SageModel};
use mgnn_sampling::Block;
use mgnn_tensor::Tensor;
use proptest::prelude::*;

/// Generate a random valid single block: `num_dst` dsts, extra src nodes,
/// each dst with up to `max_deg` sampled neighbors.
fn arb_block(max_dst: usize, max_extra: usize, max_deg: usize) -> impl Strategy<Value = Block> {
    (1..max_dst, 0..max_extra).prop_flat_map(move |(num_dst, extra)| {
        let num_src = num_dst + extra;
        let degs = prop::collection::vec(0..max_deg, num_dst);
        (Just(num_dst), Just(num_src), degs).prop_flat_map(move |(num_dst, num_src, degs)| {
            let total: usize = degs.iter().sum();
            let indices = prop::collection::vec(0..num_src as u32, total);
            (Just(num_dst), Just(num_src), Just(degs), indices).prop_map(
                |(num_dst, num_src, degs, indices)| {
                    let mut offsets = Vec::with_capacity(num_dst + 1);
                    offsets.push(0u32);
                    for &d in &degs {
                        offsets.push(offsets.last().unwrap() + d as u32);
                    }
                    // Dedup per-dst neighbor lists to satisfy validate()?
                    // Block doesn't require per-dst dedup, only src
                    // uniqueness; construct unique src ids 0..num_src.
                    Block {
                        num_dst,
                        src_nodes: (0..num_src as u32).collect(),
                        offsets,
                        indices,
                    }
                },
            )
        })
    })
}

fn make_models(in_dim: usize, hidden: usize, classes: usize, seed: u64) -> Vec<Box<dyn Model>> {
    vec![
        Box::new(SageModel::new(&[in_dim, hidden, classes], seed)),
        Box::new(GatModel::new(&[in_dim, hidden, classes], 2, seed)),
        Box::new(GcnModel::new(&[in_dim, hidden, classes], seed)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn params_round_trip_all_models(
        in_dim in 2usize..10,
        hidden in 2usize..12,
        classes in 2usize..6,
        seed in 0u64..1000,
    ) {
        for mut m in make_models(in_dim, hidden, classes, seed) {
            let np = m.num_params();
            prop_assert!(np > 0);
            let mut buf = vec![0.0f32; np];
            m.write_params(&mut buf);
            // Perturb, load, re-save: must match exactly.
            for (i, v) in buf.iter_mut().enumerate() {
                *v += (i % 7) as f32 * 0.01;
            }
            m.read_params(&buf);
            let mut buf2 = vec![0.0f32; np];
            m.write_params(&mut buf2);
            prop_assert_eq!(&buf, &buf2);
        }
    }

    #[test]
    fn forward_shapes_follow_blocks(
        block in arb_block(8, 12, 5),
        in_dim in 2usize..8,
    ) {
        prop_assume!(block.validate().is_ok());
        let classes = 3;
        for mut m in make_models(in_dim, 6, classes, 7) {
            let input = Tensor::from_vec(
                block.num_src(),
                in_dim,
                (0..block.num_src() * in_dim).map(|i| (i % 13) as f32 * 0.05 - 0.3).collect(),
            );
            // Single-layer consumption: build 2-layer chain by feeding the
            // same block twice is invalid (src/dst mismatch); instead make
            // a trivial second block whose src == first block's dst prefix.
            let second = Block {
                num_dst: block.num_dst,
                src_nodes: block.src_nodes[..block.num_dst].to_vec(),
                offsets: vec![0; block.num_dst + 1],
                indices: vec![],
            };
            let logits = m.forward(&[block.clone(), second], &input);
            prop_assert_eq!(logits.shape(), (block.num_dst, classes));
            prop_assert!(logits.data().iter().all(|v| v.is_finite()));
            // Backward runs without panicking and grads have param shape.
            let g = Tensor::from_vec(
                block.num_dst,
                classes,
                vec![0.1; block.num_dst * classes],
            );
            m.backward(&g);
            let mut grads = vec![0.0f32; m.num_params()];
            m.write_grads(&mut grads);
            prop_assert!(grads.iter().any(|&x| x != 0.0), "all-zero gradient");
        }
    }

    #[test]
    fn allreduce_permutation_invariant(
        grads_flat in prop::collection::vec(-1.0f32..1.0, 8..64),
        world in 2usize..5,
    ) {
        let len = grads_flat.len() / world;
        prop_assume!(len > 0);
        let grads: Vec<Vec<f32>> = (0..world)
            .map(|r| grads_flat[r * len..(r + 1) * len].to_vec())
            .collect();
        let mut a = grads.clone();
        ring_allreduce_average(&mut a);
        let mut b: Vec<Vec<f32>> = grads.iter().rev().cloned().collect();
        ring_allreduce_average(&mut b);
        for (x, y) in a[0].iter().zip(&b[0]) {
            prop_assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn macs_monotone_in_block_size(
        small_deg in 1usize..4,
        in_dim in 2usize..8,
    ) {
        let make = |deg: usize| -> Block {
            let num_dst = 4usize;
            let num_src = 4 + 8;
            let mut offsets = vec![0u32];
            let mut indices = Vec::new();
            for i in 0..num_dst {
                for j in 0..deg {
                    indices.push(((i + j) % num_src) as u32);
                }
                offsets.push(indices.len() as u32);
            }
            Block { num_dst, src_nodes: (0..num_src as u32).collect(), offsets, indices }
        };
        let small = make(small_deg);
        let large = make(small_deg + 3);
        let trivial = Block {
            num_dst: 4,
            src_nodes: (0..4u32).collect(),
            offsets: vec![0; 5],
            indices: vec![],
        };
        for m in make_models(in_dim, 6, 3, 1) {
            let ms = m.macs(&[small.clone(), trivial.clone()]);
            let ml = m.macs(&[large.clone(), trivial.clone()]);
            prop_assert!(ml > ms, "more edges must cost more MACs");
        }
    }
}
