//! Property-based tests over the runtime substrate: cost-model
//! monotonicity/positivity, metrics accounting, KVStore/cluster pull
//! consistency under arbitrary ownership, and SpMM-vs-fused-aggregation
//! equivalence.

use mgnn_net::{Backend, CommMetrics, CostModel, SimCluster};
use mgnn_sampling::Block;
use mgnn_tensor::sparse::SparseMatrix;
use mgnn_tensor::Tensor;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cost_model_monotone_and_positive(
        nodes in 1usize..100_000,
        dim in 1usize..1024,
        world in 1usize..64,
        macs in 1.0f64..1e12,
    ) {
        let c = CostModel::default();
        prop_assert!(c.t_rpc(nodes, dim) > 0.0);
        prop_assert!(c.t_rpc(nodes + 1, dim) >= c.t_rpc(nodes, dim));
        prop_assert!(c.t_rpc(nodes, dim + 1) >= c.t_rpc(nodes, dim));
        prop_assert!(c.t_copy(nodes, dim) >= 0.0);
        prop_assert!(c.t_rpc(nodes, dim) > c.t_copy(nodes, dim), "remote must cost more than local");
        prop_assert!(c.t_allreduce(1 << 20, world + 1) >= c.t_allreduce(1 << 20, world));
        let cpu = c.t_ddp(macs, nodes * dim * 4, 1 << 20, world, Backend::Cpu);
        let gpu = c.t_ddp(macs, nodes * dim * 4, 1 << 20, world, Backend::Gpu);
        prop_assert!(cpu > 0.0 && gpu > 0.0);
        prop_assert!(gpu <= cpu, "GPU compute must not be slower");
    }

    #[test]
    fn scoring_cost_ordering(
        nodes in 1usize..100_000,
        halo in 2usize..1_000_000,
    ) {
        let c = CostModel::default();
        let dense = c.t_scoring(nodes, false, halo);
        let me = c.t_scoring(nodes, true, halo);
        prop_assert!(me >= dense, "binary-search layout must cost at least as much");
    }

    #[test]
    fn metrics_accounting_exact(
        events in prop::collection::vec((0u64..500, 0u64..500, 1usize..64), 1..50)
    ) {
        let m = CommMetrics::new();
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut nodes = 0u64;
        let mut bytes = 0u64;
        for &(h, mi, dim) in &events {
            m.record_lookup(h, mi);
            m.record_rpc(mi, dim);
            hits += h;
            misses += mi;
            if mi > 0 {
                nodes += mi;
                bytes += mi * dim as u64 * 4;
            }
        }
        let s = m.snapshot();
        prop_assert_eq!(s.buffer_hits, hits);
        prop_assert_eq!(s.buffer_misses, misses);
        prop_assert_eq!(s.remote_nodes_fetched, nodes);
        prop_assert_eq!(s.remote_bytes, bytes);
        if hits + misses > 0 {
            prop_assert!((s.hit_rate() - hits as f64 / (hits + misses) as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn cluster_pull_matches_ground_truth_for_any_assignment(
        assignment in prop::collection::vec(0u32..4, 8..60),
        queries in prop::collection::vec(0usize..60, 1..30),
    ) {
        let n = assignment.len();
        let g = mgnn_graph::generators::erdos_renyi(n.max(2), n * 3, 5);
        let f = mgnn_graph::FeatureStore::synthesize(&g, 4, 2, 9);
        let cluster = SimCluster::new(&f, &assignment, 4);
        let ids: Vec<u32> = queries.into_iter().map(|q| (q % n) as u32).collect();
        let (out, rpcs) = cluster.pull_grouped(&ids);
        prop_assert!(rpcs <= 4);
        for (i, &gid) in ids.iter().enumerate() {
            prop_assert_eq!(&out[i * 4..(i + 1) * 4], f.row(gid));
        }
    }

    #[test]
    fn spmm_equals_fused_sage_aggregation(
        num_dst in 1usize..10,
        extra in 0usize..10,
        deg in 0usize..6,
        seed in 0u64..500,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let num_src = num_dst + extra;
        let mut offsets = vec![0u32];
        let mut indices = Vec::new();
        for _ in 0..num_dst {
            let d = rng.gen_range(0..=deg);
            for _ in 0..d {
                indices.push(rng.gen_range(0..num_src as u32));
            }
            offsets.push(indices.len() as u32);
        }
        let block = Block {
            num_dst,
            src_nodes: (0..num_src as u32).collect(),
            offsets: offsets.clone(),
            indices: indices.clone(),
        };
        let dim = 3;
        let x = Tensor::from_vec(
            num_src,
            dim,
            (0..num_src * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        // Reference: explicit sparse mean aggregator.
        let a = SparseMatrix::mean_aggregator(num_dst, num_src, &offsets, &indices);
        let via_spmm = a.spmm(&x);
        // Fused: replicate SAGE's neighbor-mean loop.
        let mut fused = Tensor::zeros(num_dst, dim);
        for i in 0..num_dst {
            let nbrs = block.neighbors_of(i);
            if nbrs.is_empty() {
                continue;
            }
            let inv = 1.0 / nbrs.len() as f32;
            let row = fused.row_mut(i);
            for &j in nbrs {
                for (r, &v) in row.iter_mut().zip(x.row(j as usize)) {
                    *r += v;
                }
            }
            for r in row.iter_mut() {
                *r *= inv;
            }
        }
        for (p, q) in via_spmm.data().iter().zip(fused.data()) {
            prop_assert!((p - q).abs() < 1e-5, "{p} vs {q}");
        }
    }
}
