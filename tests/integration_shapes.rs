//! Shape tests for the paper's qualitative claims, run through the bench
//! harness itself (the same code path `repro` uses) at quick scale.

use mgnn_bench::figures::{fig11, fig6, fig9};
use mgnn_bench::tables::table3;
use mgnn_bench::Opts;

fn opts() -> Opts {
    let mut o = Opts::quick();
    o.epochs = 2;
    o
}

/// Fig. 6 is the most expensive artifact; share one run across its tests.
fn fig6_once() -> &'static fig6::Fig6 {
    use std::sync::OnceLock;
    static FIG: OnceLock<fig6::Fig6> = OnceLock::new();
    FIG.get_or_init(|| fig6::run(&opts()))
}

#[test]
fn fig6_shape_prefetch_wins_and_eviction_helps_on_cpu() {
    let fig = fig6_once();
    let mut evict_helped = 0usize;
    let mut cpu_groups = 0usize;
    for g in fig.groups.iter().filter(|g| g.backend == "CPU") {
        cpu_groups += 1;
        assert!(
            g.best_improvement_pct() > 0.0,
            "{} {}: prefetch must beat baseline on CPU",
            g.dataset,
            g.num_parts
        );
        let best_evict = g
            .with_evict
            .iter()
            .map(|&(_, _, t, _)| t)
            .fold(f64::INFINITY, f64::min);
        if best_evict <= g.no_evict.1 {
            evict_helped += 1;
        }
    }
    // Eviction helps (or at least ties) in the majority of CPU cells, as
    // in the paper's +5–12 point observation.
    assert!(
        evict_helped * 2 >= cpu_groups,
        "eviction helped in only {evict_helped}/{cpu_groups} CPU groups"
    );
}

#[test]
fn fig6_improvement_band_is_plausible() {
    // The paper reports 15–40% (up to 85% on arxiv). At test scale the
    // band is looser, but improvements must be positive on CPU and not
    // exceed the theoretical bound of 100%.
    let fig = fig6_once();
    for g in &fig.groups {
        let i = g.best_improvement_pct();
        assert!(
            i < 95.0,
            "{} {}: improbable improvement {i:.1}%",
            g.dataset,
            g.backend
        );
    }
}

#[test]
fn fig9_shape_cpu_perfect_gpu_partial() {
    let mut o = opts();
    o.hidden_dim = 128; // paper-like compute weight
    let fig = fig9::run(&o);
    for r in &fig.rows {
        if r.backend == "CPU" {
            assert!(
                r.overlap_efficiency > 0.85,
                "{}: CPU overlap {:.2} should be near-perfect",
                r.dataset,
                r.overlap_efficiency
            );
        }
    }
    // GPU pays H2D + fast compute ⇒ strictly lower overlap than CPU.
    let cpu: f64 = fig
        .rows
        .iter()
        .filter(|r| r.backend == "CPU")
        .map(|r| r.overlap_efficiency)
        .sum();
    let gpu: f64 = fig
        .rows
        .iter()
        .filter(|r| r.backend == "GPU")
        .map(|r| r.overlap_efficiency)
        .sum();
    assert!(cpu >= gpu, "cpu {cpu} vs gpu {gpu}");
}

#[test]
fn fig11_shape_remote_and_comm_reduced() {
    let mut o = opts();
    o.epochs = 3;
    let fig = fig11::run(&o);
    for r in &fig.rows {
        assert!(
            r.remote_reduction_pct() > 5.0,
            "{}: only {:.1}% remote reduction",
            r.dataset,
            r.remote_reduction_pct()
        );
        assert!(
            r.comm_reduction_pct() > 5.0,
            "{}: only {:.1}% comm reduction",
            r.dataset,
            r.comm_reduction_pct()
        );
    }
}

#[test]
fn table3_shape_minibatches_fall_remote_varies() {
    let t = table3::run(&opts());
    for (name, cells) in &t.rows {
        assert!(cells.len() >= 3, "{name}");
        assert!(
            cells.first().unwrap().minibatches > cells.last().unwrap().minibatches,
            "{name}: minibatches must fall with trainer count"
        );
    }
    // papers-like has far more remote nodes than arxiv-like, as in the
    // paper's Table III (14.9M vs 34.6K at 8 trainers).
    let remote_of = |n: &str| t.rows.iter().find(|(name, _)| *name == n).unwrap().1[0].avg_remote;
    assert!(remote_of("papers") > remote_of("arxiv"));
}
