//! End-to-end engine integration across datasets, backends, model kinds
//! and modes — the behaviours the paper's evaluation hinges on, asserted
//! at test scale.

use massivegnn::{Engine, EngineConfig, Mode, PrefetchConfig, ScoreLayout};
use mgnn_graph::{DatasetKind, Scale};
use mgnn_model::ModelKind;
use mgnn_net::Backend;
use mgnn_sampling::SamplingStrategy;

fn cfg(kind: DatasetKind) -> EngineConfig {
    EngineConfig {
        dataset: kind,
        scale: Scale::Unit,
        num_parts: 2,
        trainers_per_part: 2,
        batch_size: 96,
        epochs: 2,
        fanouts: vec![5, 10],
        hidden_dim: 32,
        ..Default::default()
    }
}

fn prefetch(f_h: f64, gamma: f64, delta: usize) -> Mode {
    Mode::Prefetch(PrefetchConfig {
        f_h,
        gamma,
        delta,
        ..Default::default()
    })
}

#[test]
fn every_dataset_preset_trains_in_both_modes() {
    for kind in DatasetKind::ALL {
        let base = cfg(kind);
        let baseline = Engine::build(base.clone()).run();
        let mut p = base;
        p.mode = prefetch(0.25, 0.995, 8);
        let pref = Engine::build(p).run();
        assert!(baseline.makespan_s > 0.0, "{}", kind.name());
        assert!(pref.makespan_s > 0.0, "{}", kind.name());
        assert!(
            pref.hit_rate() > 0.05,
            "{}: hit rate {}",
            kind.name(),
            pref.hit_rate()
        );
    }
}

#[test]
fn oracle_holds_for_gcn_too() {
    let mut base = cfg(DatasetKind::Arxiv);
    base.model = ModelKind::Gcn;
    base.train_math = true;
    let baseline = Engine::build(base.clone()).run();
    base.mode = prefetch(0.35, 0.99, 4);
    let pref = Engine::build(base).run();
    assert_eq!(baseline.final_params, pref.final_params);
    assert!(!baseline.epoch_loss.is_empty());
    assert!(baseline.epoch_loss.iter().all(|l| l.is_finite()));
}

#[test]
fn oracle_holds_for_gat_too() {
    // Prefetching must not change GAT training either.
    let mut base = cfg(DatasetKind::Arxiv);
    base.model = ModelKind::Gat;
    base.train_math = true;
    let baseline = Engine::build(base.clone()).run();
    base.mode = prefetch(0.35, 0.99, 4);
    let pref = Engine::build(base).run();
    assert_eq!(baseline.final_params, pref.final_params);
}

#[test]
fn improvement_shape_cpu_vs_gpu() {
    // The paper's headline shape: prefetch wins on both backends, with
    // baseline GPU faster than baseline CPU in absolute terms.
    let base = cfg(DatasetKind::Products);
    let mut configs = [(Backend::Cpu, 0.0f64, 0.0f64), (Backend::Gpu, 0.0, 0.0)];
    for (backend, base_t, pref_t) in configs.iter_mut() {
        let mut b = base.clone();
        b.backend = *backend;
        b.hidden_dim = 64;
        *base_t = Engine::build(b.clone()).run().makespan_s;
        b.mode = prefetch(0.5, 0.995, 16);
        *pref_t = Engine::build(b).run().makespan_s;
    }
    let (_, cpu_base, cpu_pref) = configs[0];
    let (_, gpu_base, gpu_pref) = configs[1];
    assert!(gpu_base < cpu_base, "GPU baseline must be faster");
    assert!(cpu_pref < cpu_base, "CPU prefetch must improve");
    assert!(
        gpu_pref <= gpu_base * 1.05,
        "GPU prefetch should not regress badly"
    );
}

#[test]
fn larger_buffer_fraction_improves_hit_rate() {
    let base = cfg(DatasetKind::Products);
    let mut rates = Vec::new();
    for f_h in [0.1, 0.3, 0.6] {
        let mut b = base.clone();
        b.mode = prefetch(f_h, 0.995, 16);
        rates.push(Engine::build(b).run().hit_rate());
    }
    assert!(
        rates[2] > rates[0],
        "f_h=0.6 hit {} should beat f_h=0.1 hit {}",
        rates[2],
        rates[0]
    );
}

#[test]
fn hit_rate_declines_with_more_trainers() {
    // Table III / §V-A3: more trainers ⇒ fewer minibatches per trainer ⇒
    // less time for the buffer to adapt ⇒ lower hit rate.
    let mut small = cfg(DatasetKind::Products);
    small.trainers_per_part = 1;
    small.mode = prefetch(0.25, 0.995, 8);
    let few = Engine::build(small).run();

    let mut large = cfg(DatasetKind::Products);
    large.trainers_per_part = 4;
    large.mode = prefetch(0.25, 0.995, 8);
    let many = Engine::build(large).run();

    assert!(few.steps_per_epoch > many.steps_per_epoch);
    assert!(
        few.hit_rate() >= many.hit_rate() - 0.05,
        "few-trainer hit {} vs many-trainer {}",
        few.hit_rate(),
        many.hit_rate()
    );
}

#[test]
fn mem_efficient_layout_supports_full_run_on_papers() {
    let mut base = cfg(DatasetKind::Papers);
    base.mode = Mode::Prefetch(PrefetchConfig {
        f_h: 0.5,
        gamma: 0.995,
        delta: 8,
        layout: ScoreLayout::MemEfficient,
        ..Default::default()
    });
    let r = Engine::build(base).run();
    assert!(r.hit_rate() > 0.1);
    assert!(r.aggregate_metrics().evictions > 0 || r.steps_per_epoch < 8);
}

#[test]
fn longer_training_does_not_degrade_hit_rate() {
    // Fig. 10's long-run behaviour: the eviction scheme maintains or
    // grows the hit rate as minibatches accumulate.
    let mut base = cfg(DatasetKind::Products);
    base.epochs = 1;
    base.mode = prefetch(0.25, 0.995, 8);
    let short = Engine::build(base.clone()).run();
    base.epochs = 6;
    let long = Engine::build(base).run();
    assert!(
        long.hit_rate() >= short.hit_rate() - 0.02,
        "long {} vs short {}",
        long.hit_rate(),
        short.hit_rate()
    );
}

#[test]
fn prefetch_is_sampler_agnostic() {
    // §V-A4: "the performance primarily hinges on how the sampler
    // interacts with the Prefetcher ... versatile across GNN
    // architectures". Prefetch must deliver wins (and the oracle must
    // hold) under a different sampling strategy too.
    for strategy in [SamplingStrategy::Uniform, SamplingStrategy::DegreeWeighted] {
        let mut base = cfg(DatasetKind::Products);
        base.sampling = strategy;
        let baseline = Engine::build(base.clone()).run();
        let mut p = base.clone();
        p.mode = prefetch(0.35, 0.995, 8);
        let pref = Engine::build(p).run();
        assert!(
            pref.makespan_s < baseline.makespan_s,
            "{strategy:?}: prefetch {} vs baseline {}",
            pref.makespan_s,
            baseline.makespan_s
        );
        assert!(
            pref.hit_rate() > 0.1,
            "{strategy:?}: hit {}",
            pref.hit_rate()
        );

        // Oracle under this sampler as well.
        let mut bm = base.clone();
        bm.train_math = true;
        let b = Engine::build(bm.clone()).run();
        bm.mode = prefetch(0.35, 0.995, 8);
        let q = Engine::build(bm).run();
        assert_eq!(b.final_params, q.final_params, "{strategy:?} oracle broken");
    }
}

#[test]
fn degree_weighted_sampler_has_higher_hit_rate() {
    // Degree-weighted walks concentrate on hubs, which the degree-based
    // buffer initialization holds — so hit rates should be at least as
    // high as under uniform sampling.
    let mut uni = cfg(DatasetKind::Products);
    uni.mode = prefetch(0.25, 0.995, 8);
    let hit_uni = Engine::build(uni).run().hit_rate();
    let mut wtd = cfg(DatasetKind::Products);
    wtd.sampling = SamplingStrategy::DegreeWeighted;
    wtd.mode = prefetch(0.25, 0.995, 8);
    let hit_wtd = Engine::build(wtd).run().hit_rate();
    assert!(
        hit_wtd >= hit_uni - 0.02,
        "weighted {hit_wtd} vs uniform {hit_uni}"
    );
}

#[test]
fn reports_internally_consistent() {
    let mut base = cfg(DatasetKind::Reddit);
    base.mode = prefetch(0.25, 0.995, 8);
    let r = Engine::build(base).run();
    let agg = r.aggregate_metrics();
    // Hits + misses == all halo lookups; hit rate consistent.
    let total = agg.buffer_hits + agg.buffer_misses;
    assert!(total > 0);
    assert!((r.hit_rate() - agg.buffer_hits as f64 / total as f64).abs() < 1e-12);
    // Every trainer's sim time ≤ makespan.
    for t in &r.trainers {
        assert!(t.sim_time_s <= r.makespan_s + 1e-12);
        assert!(t.overlap_efficiency >= 0.0 && t.overlap_efficiency <= 1.0);
        assert!(t.minibatches as usize == r.steps_per_epoch * 2);
    }
}
