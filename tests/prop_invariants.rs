//! Property-based tests (proptest) over the core data structures and
//! algorithmic invariants: CSR canonicality, partitioner cover/balance,
//! buffer capacity under arbitrary evict/replace traffic, scoreboard
//! layout equivalence, clock combinators and the performance-model
//! algebra.

use massivegnn::scoreboard::{AccessScores, EvictionScores};
use massivegnn::{perfmodel, PrefetchBuffer, ScoreLayout};
use mgnn_graph::GraphBuilder;
use mgnn_net::SimClock;
use mgnn_partition::{multilevel_partition, Partitioning};
use proptest::prelude::*;

fn arb_edges(max_n: usize, max_m: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..max_n).prop_flat_map(move |n| {
        let edges = prop::collection::vec((0..n as u32, 0..n as u32), 0..max_m);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_builder_always_canonical((n, edges) in arb_edges(200, 600)) {
        let mut b = GraphBuilder::new(n);
        b.extend(edges);
        let g = b.build();
        prop_assert!(g.validate().is_ok());
        prop_assert!(g.is_symmetric());
        // No self loops by default.
        for u in g.nodes() {
            prop_assert!(!g.has_edge(u, u));
        }
    }

    #[test]
    fn csr_roundtrip_binary((n, edges) in arb_edges(100, 300)) {
        let mut b = GraphBuilder::new(n);
        b.extend(edges);
        let g = b.build();
        let mut buf = Vec::new();
        mgnn_graph::io::write_csr(&g, &mut buf).unwrap();
        let g2 = mgnn_graph::io::read_csr(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn multilevel_partition_covers_and_balances(
        (n, edges) in arb_edges(300, 1500),
        parts in 2usize..6,
        seed in 0u64..1000,
    ) {
        let mut b = GraphBuilder::new(n);
        b.extend(edges);
        let g = b.build();
        let p = multilevel_partition(&g, parts, seed);
        prop_assert_eq!(p.assignment.len(), n);
        prop_assert!(p.assignment.iter().all(|&x| (x as usize) < parts));
        // Cover: sizes sum to n.
        prop_assert_eq!(p.sizes().iter().sum::<usize>(), n);
    }

    #[test]
    fn buffer_capacity_invariant_under_arbitrary_replace_traffic(
        ops in prop::collection::vec((0u32..64, 64u32..256), 1..200)
    ) {
        // 256 halo nodes, capacity 64; slots addressed mod capacity,
        // replacements chosen from the non-buffered range.
        let dim = 4;
        let mut buf = PrefetchBuffer::new(256, 64, dim);
        for h in 0..64u32 {
            buf.insert(h, &[h as f32; 4]);
        }
        for (slot, new_h) in ops {
            if !buf.contains(new_h) {
                let old = buf.replace(slot, new_h, &[new_h as f32; 4]);
                prop_assert!(!buf.contains(old));
            }
            prop_assert_eq!(buf.len(), 64);
            prop_assert!(buf.check_invariants().is_ok());
        }
    }

    #[test]
    fn scoreboard_layouts_always_agree(
        halo_raw in prop::collection::btree_set(0u32..5000, 1..200),
        ops in prop::collection::vec((0usize..200, -1.0f32..5.0), 0..300),
    ) {
        let halo: Vec<u32> = halo_raw.into_iter().collect();
        let mut dense = AccessScores::new(ScoreLayout::Dense, 5000, halo.len());
        let mut me = AccessScores::new(ScoreLayout::MemEfficient, 5000, halo.len());
        for (idx, v) in ops {
            let g = halo[idx % halo.len()];
            if v < 0.0 {
                dense.increment(&halo, g);
                me.increment(&halo, g);
            } else {
                dense.set(&halo, g, v);
                me.set(&halo, g, v);
            }
        }
        for &g in &halo {
            prop_assert_eq!(dense.get(&halo, g), me.get(&halo, g));
        }
    }

    #[test]
    fn stamped_dedup_yields_single_increment_per_sampled_node(
        raw in prop::collection::vec(0u32..64, 1..300),
    ) {
        // Regression for the duplicate-miss bug: a halo node sampled
        // through several seeds in one minibatch must bump S_A once, not
        // once per occurrence. Mirrors Prefetcher::prepare's stamp-based
        // dedup and checks it against a set-based reference on both
        // layouts.
        let halo: Vec<u32> = (0..64u32).map(|h| 1000 + h * 3).collect();
        let mut stamp = vec![u64::MAX; 64];
        let mut deduped: Vec<u32> = Vec::new();
        for &h in &raw {
            if stamp[h as usize] != 0 {
                stamp[h as usize] = 0;
                deduped.push(h);
            }
        }
        // First-occurrence order, no duplicates, nothing dropped.
        let mut seen = std::collections::BTreeSet::new();
        for &h in &deduped {
            prop_assert!(seen.insert(h));
        }
        for &h in &raw {
            prop_assert!(seen.contains(&h));
        }
        let globals: Vec<u32> = deduped.iter().map(|&h| halo[h as usize]).collect();
        for layout in [ScoreLayout::Dense, ScoreLayout::MemEfficient] {
            let mut batch = AccessScores::new(layout, 2000, halo.len());
            batch.increment_batch(&halo, &globals);
            let mut reference = AccessScores::new(layout, 2000, halo.len());
            for &h in &seen {
                reference.increment(&halo, halo[h as usize]);
            }
            for &g in &halo {
                prop_assert_eq!(batch.get(&halo, g), reference.get(&halo, g));
            }
        }
    }

    #[test]
    fn top_k_footprint_counts_every_positive_candidate(
        scores in prop::collection::vec(0u32..4, 8..128),
        k in 0usize..16,
    ) {
        // The eviction round's transient accounting relies on the
        // footprint being 12 bytes per positive-S_A candidate *before*
        // the truncate to k — independent of k.
        let halo: Vec<u32> = (0..scores.len() as u32).collect();
        let mut s_a = AccessScores::new(ScoreLayout::MemEfficient, scores.len(), scores.len());
        let mut positive = 0usize;
        for (i, &v) in scores.iter().enumerate() {
            s_a.set(&halo, i as u32, v as f32);
            if v > 0 {
                positive += 1;
            }
        }
        let (top, bytes) =
            s_a.top_k_candidates_with_footprint(&halo, halo.iter().copied(), k, |_| 0);
        prop_assert_eq!(bytes, positive * 12);
        prop_assert_eq!(top.len(), k.min(positive));
    }

    #[test]
    fn eviction_scores_monotone_under_decay(
        gamma in 0.01f64..1.0,
        decays in 1usize..100,
    ) {
        let mut e = EvictionScores::new(1);
        let mut prev = e.get(0);
        for _ in 0..decays {
            e.decay(0, gamma);
            let cur = e.get(0);
            prop_assert!(cur <= prev);
            prop_assert!(cur >= 0.0);
            prev = cur;
        }
        // Exactly gamma^decays.
        prop_assert!((e.get(0) - gamma.powi(decays as i32)).abs() < 1e-9);
    }

    #[test]
    fn clock_overlap_never_exceeds_serial(
        pairs in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..50)
    ) {
        let mut overlapped = SimClock::new();
        let mut serial = 0.0f64;
        for &(a, b) in &pairs {
            overlapped.advance_overlapped(a, b);
            serial += a + b;
        }
        prop_assert!(overlapped.now() <= serial + 1e-9);
        // And at least the max single stream.
        let amax: f64 = pairs.iter().map(|p| p.0).sum();
        let bmax: f64 = pairs.iter().map(|p| p.1).sum();
        prop_assert!(overlapped.now() + 1e-9 >= amax.max(bmax));
        // Efficiency in range.
        let e = overlapped.overlap_efficiency();
        prop_assert!((0.0..=1.0).contains(&e));
    }

    #[test]
    fn perfmodel_prefetch_never_slower_than_baseline_in_model(
        ts in 0.0f64..1.0, trpc in 0.0f64..1.0, tcopy in 0.0f64..1.0,
        tl in 0.0f64..0.1, tsc in 0.0f64..0.1, tddp in 0.001f64..1.0,
    ) {
        let c = perfmodel::Components {
            t_sampling: ts,
            t_rpc: trpc,
            t_copy: tcopy,
            t_lookup: tl,
            t_scoring: tsc,
            t_ddp: tddp,
        };
        // Steady-state prefetch time never exceeds baseline plus the
        // prefetch-only overheads (lookup + scoring).
        prop_assert!(
            perfmodel::t_prefetch_steady(&c)
                <= perfmodel::t_baseline(&c) + tl + tsc + 1e-12
        );
        // With zero prefetch overheads it strictly never exceeds baseline.
        let c0 = perfmodel::Components { t_lookup: 0.0, t_scoring: 0.0, ..c };
        prop_assert!(perfmodel::t_prefetch_steady(&c0) <= perfmodel::t_baseline(&c0) + 1e-12);
        // First-batch cost is at least the steady-state cost.
        prop_assert!(perfmodel::t_prefetch_first(&c) + 1e-12 >= perfmodel::t_prefetch_steady(&c));
    }

    #[test]
    fn partitioning_sizes_consistent(assign in prop::collection::vec(0u32..4, 1..500)) {
        let p = Partitioning::new(assign.clone(), 4);
        let sizes = p.sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), assign.len());
        for part in 0..4u32 {
            prop_assert_eq!(p.nodes_of(part).len(), sizes[part as usize]);
        }
    }
}
