//! Property-based tests over the sampling pipeline: for arbitrary graphs,
//! fanouts, seeds and strategies, sampled blocks must validate, chain
//! correctly across layers, respect fanout budgets, only contain real
//! edges, and terminate at halo frontiers.

use mgnn_graph::GraphBuilder;
use mgnn_partition::{build_local_partitions, multilevel_partition, LocalPartition};
use mgnn_sampling::{NeighborSampler, SamplingStrategy};
use proptest::prelude::*;

fn build_partition(n: usize, edges: Vec<(u32, u32)>, parts: usize, seed: u64) -> LocalPartition {
    let mut b = GraphBuilder::new(n);
    b.extend(edges);
    let g = b.build();
    let p = multilevel_partition(&g, parts, seed);
    let train: Vec<u32> = (0..n as u32).collect();
    build_local_partitions(&g, &p, &train).remove(0)
}

/// `(n, edges, fanouts, seeds, seed, strategy)` for one sampler run.
type SamplerInstance = (
    usize,
    Vec<(u32, u32)>,
    Vec<usize>,
    Vec<u32>,
    u64,
    SamplingStrategy,
);

fn arb_instance() -> impl Strategy<Value = SamplerInstance> {
    (20usize..150).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n as u32, 0..n as u32), n..n * 6);
        let fanouts = prop::collection::vec(1usize..8, 1..3);
        let seeds = prop::collection::vec(0u32..(n as u32 / 3).max(1), 1..12);
        let strategy = prop_oneof![
            Just(SamplingStrategy::Uniform),
            Just(SamplingStrategy::DegreeWeighted),
            Just(SamplingStrategy::Full),
        ];
        (Just(n), edges, fanouts, seeds, 0u64..100, strategy)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sampled_blocks_always_valid(
        (n, edges, fanouts, raw_seeds, seed, strategy) in arb_instance()
    ) {
        let part = build_partition(n, edges, 3, seed);
        // Seeds must be locally-owned ids.
        let seeds: Vec<u32> = raw_seeds
            .into_iter()
            .map(|s| s % part.num_local().max(1) as u32)
            .collect();
        let sampler = NeighborSampler::with_strategy(fanouts.clone(), strategy, seed);
        let mb = sampler.sample(&part, &seeds, 0, seed);

        // One block per layer, all structurally valid.
        prop_assert_eq!(mb.blocks.len(), fanouts.len());
        for b in &mb.blocks {
            prop_assert!(b.validate().is_ok());
        }

        // Chain property: each layer's dst prefix equals the next
        // shallower layer's src set.
        for w in mb.blocks.windows(2) {
            let deeper = &w[0];
            let shallower = &w[1];
            prop_assert_eq!(
                &deeper.src_nodes[..shallower.num_src()],
                &shallower.src_nodes[..]
            );
        }
        // Seed layer dst == unique seeds; input nodes == deepest src.
        let last = mb.blocks.last().unwrap();
        prop_assert_eq!(last.num_dst, mb.seeds.len());
        prop_assert_eq!(&mb.input_nodes, &mb.blocks[0].src_nodes);

        // Fanout budget + real edges + halo leaves.
        for (li, b) in mb.blocks.iter().enumerate() {
            // blocks are input-first; fanouts are input-first too.
            let fanout = fanouts[li];
            for i in 0..b.num_dst {
                let d = b.src_nodes[i];
                if strategy != SamplingStrategy::Full {
                    prop_assert!(b.neighbors_of(i).len() <= fanout.max(part.graph.degree(d)));
                    prop_assert!(
                        b.neighbors_of(i).len() <= fanout
                            || b.neighbors_of(i).len() == part.graph.degree(d)
                    );
                }
                if part.is_halo(d) {
                    prop_assert!(b.neighbors_of(i).is_empty(), "halo expanded");
                }
                for &j in b.neighbors_of(i) {
                    let v = b.src_nodes[j as usize];
                    prop_assert!(part.graph.neighbors(d).contains(&v), "non-edge sampled");
                }
            }
        }
    }

    #[test]
    fn sampling_deterministic_across_calls(
        (n, edges, fanouts, raw_seeds, seed, strategy) in arb_instance()
    ) {
        let part = build_partition(n, edges, 2, seed);
        let seeds: Vec<u32> = raw_seeds
            .into_iter()
            .map(|s| s % part.num_local().max(1) as u32)
            .collect();
        let sampler = NeighborSampler::with_strategy(fanouts, strategy, seed);
        prop_assert_eq!(
            sampler.sample(&part, &seeds, 3, 5),
            sampler.sample(&part, &seeds, 3, 5)
        );
    }

    #[test]
    fn full_strategy_is_exhaustive(
        (n, edges, _fanouts, raw_seeds, seed, _s) in arb_instance()
    ) {
        let part = build_partition(n, edges, 2, seed);
        let seeds: Vec<u32> = raw_seeds
            .into_iter()
            .map(|s| s % part.num_local().max(1) as u32)
            .collect();
        let sampler = NeighborSampler::with_strategy(vec![1], SamplingStrategy::Full, seed);
        let mb = sampler.sample(&part, &seeds, 0, 0);
        let b = &mb.blocks[0];
        for (i, &d) in mb.seeds.iter().enumerate() {
            prop_assert_eq!(b.neighbors_of(i).len(), part.graph.degree(d));
        }
    }
}
