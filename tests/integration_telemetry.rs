//! Live-telemetry plane, end to end: the registry must reconcile exactly
//! with `CommMetrics`, telemetry must never perturb a `RunReport`, and
//! the request-correlated event log must attribute every degraded row.
//!
//! One `#[test]` fn: the registry and the event log are process-global,
//! so concurrent tests in this binary would cross-contaminate them.

use massivegnn::{
    Engine, EngineConfig, FaultProfile, Mode, PrefetchConfig, RetryPolicy, RunReport,
};
use mgnn_obs::{events, prom, registry};
use serde::Serialize;
use std::time::Duration;

fn telemetry_config(seed: u64, fault: Option<FaultProfile>) -> EngineConfig {
    EngineConfig {
        seed,
        epochs: 2,
        batch_size: 64,
        fanouts: vec![4, 4],
        hidden_dim: 16,
        train_math: true,
        retry: RetryPolicy {
            timeout: Duration::from_millis(50),
            ..Default::default()
        },
        mode: Mode::Prefetch(PrefetchConfig {
            f_h: 0.25,
            delta: 4,
            ..Default::default()
        }),
        fault,
        telemetry: true,
        ..Default::default()
    }
}

fn fingerprint(r: &RunReport) -> String {
    serde_json::to_string_pretty(&r.to_value())
}

/// Every registry counter must equal the corresponding field of the
/// report's aggregated `CommMetrics` snapshot — the hooks live inside
/// the `CommMetrics` methods, so this holds by construction, and this
/// assertion pins that construction.
fn assert_registry_reconciles(report: &RunReport) {
    let agg = report.aggregate_metrics();
    let pairs: [(&str, u64, u64); 18] = [
        ("rpc_calls", registry::RPC_CALLS.get(), agg.rpc_calls),
        (
            "remote_nodes",
            registry::REMOTE_NODES.get(),
            agg.remote_nodes_fetched,
        ),
        (
            "remote_bytes",
            registry::REMOTE_BYTES.get(),
            agg.remote_bytes,
        ),
        (
            "local_nodes",
            registry::LOCAL_NODES.get(),
            agg.local_nodes_copied,
        ),
        ("hits", registry::PREFETCH_HITS.get(), agg.buffer_hits),
        ("misses", registry::PREFETCH_MISSES.get(), agg.buffer_misses),
        ("evictions", registry::EVICTIONS.get(), agg.evictions),
        (
            "replacements",
            registry::REPLACEMENTS.get(),
            agg.replacements_fetched,
        ),
        ("retries", registry::RPC_RETRIES.get(), agg.rpc_retries),
        ("timeouts", registry::RPC_TIMEOUTS.get(), agg.rpc_timeouts),
        (
            "truncations",
            registry::RPC_TRUNCATIONS.get(),
            agg.rpc_truncations,
        ),
        (
            "disconnects",
            registry::RPC_DISCONNECTS.get(),
            agg.rpc_disconnects,
        ),
        ("delays", registry::RPC_DELAYS.get(), agg.rpc_delays),
        (
            "respawns",
            registry::SERVER_RESPAWNS.get(),
            agg.server_respawns,
        ),
        ("stale", registry::STALE_SERVED.get(), agg.stale_served),
        ("degraded", registry::DEGRADED_ROWS.get(), agg.degraded_rows),
        (
            "planned_pulls",
            registry::PLANNED_PULLS.get(),
            agg.planned_pulls,
        ),
        (
            "planned_rows",
            registry::PLANNED_ROWS.get(),
            agg.planned_rows,
        ),
    ];
    for (name, got, want) in pairs {
        assert_eq!(got, want, "registry {name} diverged from CommMetrics");
    }
    // Step counter and gauges: run-level, not per-trainer.
    let total_steps: u64 = report.trainers.iter().map(|t| t.minibatches).sum();
    assert_eq!(registry::STEPS.get(), total_steps);
    assert_eq!(registry::HIT_RATE.get(), report.hit_rate());
    assert_eq!(registry::MAKESPAN.get(), report.makespan_s);
    assert_eq!(registry::WORLD.get(), report.world as f64);
    // The step-latency histogram saw one train sample per step.
    let series = registry::STEP_LATENCY.series();
    let train = series
        .iter()
        .find(|(label, _)| *label == "train")
        .expect("train lane recorded");
    assert_eq!(train.1.count(), total_steps);
}

#[test]
fn telemetry_reconciles_and_never_perturbs_reports() {
    // --- 1. Registry ≡ CommMetrics on the threaded engine, pool widths
    // 1 and 4 (the registry is fed from every trainer thread at once).
    for width in [1usize, 4] {
        let report = rayon::pool::with_max_threads(width, || {
            let mut cfg = telemetry_config(11, None);
            cfg.parallel = true;
            Engine::build(cfg).run()
        });
        assert!(registry::enabled(), "run() must arm the registry");
        assert_registry_reconciles(&report);

        // A scrape of the armed registry renders valid exposition whose
        // totals match what the report says (the mid-run scrape path —
        // the registry is live the whole run; here we read it after so
        // the expected totals are exact).
        let text = prom::render();
        assert!(text.contains("# HELP mgnn_prefetch_hits_total "));
        assert!(text.contains("# TYPE mgnn_prefetch_hits_total counter"));
        let agg = report.aggregate_metrics();
        assert!(
            text.contains(&format!("mgnn_prefetch_hits_total {}\n", agg.buffer_hits)),
            "exposition must carry the reconciled hit total"
        );
        assert!(text.contains(&format!("mgnn_rpc_retries_total {}\n", agg.rpc_retries)));
        assert!(text.contains("mgnn_step_latency_bucket{lane=\"train\",le=\"+Inf\"}"));
        registry::disable();
    }

    // --- 2. Telemetry is report-neutral: bitwise-identical RunReports
    // with telemetry on and off, faultless and under light chaos (the
    // chaos schedule replays only on the sequential engine, so the
    // faulted comparison runs there).
    for fault in [None, Some(FaultProfile::light(5))] {
        let faulted = fault.is_some();
        let with_tel = {
            let mut cfg = telemetry_config(23, fault.clone());
            cfg.parallel = !faulted;
            Engine::build(cfg).run()
        };
        registry::disable();
        let without_tel = {
            let mut cfg = telemetry_config(23, fault);
            cfg.parallel = !faulted;
            cfg.telemetry = false;
            Engine::build(cfg).run()
        };
        assert!(
            !registry::enabled(),
            "telemetry-off run must not arm the registry"
        );
        assert_eq!(
            fingerprint(&with_tel),
            fingerprint(&without_tel),
            "telemetry must be invisible to the report (faulted: {faulted})"
        );
    }

    // --- 3. Request-correlated traceability under heavy chaos: every
    // degradation in the report is attributable to tagged events, and
    // the log itself is deterministic across kernel-pool widths.
    let chaos_events = |width: usize| {
        rayon::pool::with_max_threads(width, || {
            events::install();
            let mut cfg = telemetry_config(7, Some(FaultProfile::named("heavy", 3).unwrap()));
            cfg.telemetry = false;
            let report = Engine::build(cfg).run();
            let mut got = events::uninstall();
            events::sort_events(&mut got);
            (report, got)
        })
    };
    let (report, evs) = chaos_events(1);
    let agg = report.aggregate_metrics();
    assert!(
        agg.had_faults(),
        "heavy profile must actually exercise the ladder"
    );
    assert!(!evs.is_empty());
    assert!(
        evs.iter().all(|e| e.request_id != 0),
        "every event must carry a request id"
    );
    // Exact attribution: the event log's degradation totals equal the
    // metrics' — every degraded row traces back to a tagged request.
    let sum_kind = |k: &str| -> u64 { evs.iter().filter(|e| e.kind == k).map(|e| e.value).sum() };
    assert_eq!(sum_kind("degraded_rows"), agg.degraded_rows);
    assert_eq!(sum_kind("stale_rows"), agg.stale_served);
    assert_eq!(
        evs.iter().filter(|e| e.kind == "retry").count() as u64,
        agg.rpc_retries
    );
    // Deterministic across kernel-pool widths (request ids are pure
    // functions of origin/rank/step, never a shared counter).
    let (_, evs4) = chaos_events(4);
    assert_eq!(evs, evs4, "event log must not depend on pool width");
    // And the JSONL rendering is line-per-event with the ids inline.
    let jsonl = events::to_jsonl(&evs);
    assert_eq!(jsonl.lines().count(), evs.len());
    assert!(jsonl.lines().all(|l| l.starts_with("{\"request_id\":")));
}
