//! Buffer-pooling purity properties: recycling `PreparedBatch` carcasses
//! and per-step scratch (PR5's zero-allocation steady state) is a pure
//! allocation optimization, so `pooling: false` — the fresh-allocation
//! behavior every earlier PR shipped — must reproduce the pooled run's
//! `RunReport` bit for bit: same counters, same sim-clock charges, same
//! final parameters. The property holds at any kernel-pool width, under
//! chaos (the `light` fault profile drops, delays and truncates replies,
//! exercising the degraded-fetch paths through the pooled scratch), and
//! on the threaded engine.

use massivegnn::{
    Engine, EngineConfig, FaultProfile, Mode, PrefetchConfig, RetryPolicy, RunReport,
};
use proptest::prelude::*;
use serde::Serialize;
use std::time::Duration;

fn pool_config(seed: u64, prefetch: bool, fault: Option<FaultProfile>) -> EngineConfig {
    EngineConfig {
        seed,
        // Two epochs so recycling crosses an epoch-plan boundary (the
        // steady state the allocator proof measures starts at epoch 1).
        epochs: 2,
        batch_size: 64,
        fanouts: vec![4, 4],
        hidden_dim: 16,
        train_math: true,
        // Dropped replies are detected by wall-clock timeout; keep the
        // retry wait short so `light`'s 2% drops cost milliseconds.
        retry: RetryPolicy {
            timeout: Duration::from_millis(50),
            ..Default::default()
        },
        mode: if prefetch {
            Mode::Prefetch(PrefetchConfig {
                f_h: 0.25,
                delta: 4,
                ..Default::default()
            })
        } else {
            Mode::Baseline
        },
        fault,
        ..Default::default()
    }
}

/// Everything the run produced, as one comparable string.
fn fingerprint(r: &RunReport) -> String {
    serde_json::to_string_pretty(&r.to_value())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn pooled_run_bitwise_identical_to_fresh(
        run_seed in 0u64..1000,
        prefetch_sel in 0u32..2,
        width_sel in 0u32..2,
    ) {
        let width = if width_sel == 1 { 4 } else { 1 };
        let cfg = pool_config(run_seed, prefetch_sel == 1, None);
        let pooled =
            rayon::pool::with_max_threads(width, || Engine::build(cfg.clone()).run());
        let fresh = rayon::pool::with_max_threads(width, || {
            let mut c = cfg.clone();
            c.pooling = false;
            Engine::build(c).run()
        });
        prop_assert_eq!(pooled.aggregate_metrics(), fresh.aggregate_metrics());
        prop_assert_eq!(&pooled.final_params, &fresh.final_params);
        prop_assert_eq!(fingerprint(&pooled), fingerprint(&fresh));

        // The threaded engine recycles through the prepare-thread return
        // channel instead of a local carcass; same contract.
        let fresh_threaded = rayon::pool::with_max_threads(width, || {
            let mut c = cfg.clone();
            c.pooling = false;
            c.parallel = true;
            Engine::build(c).run()
        });
        prop_assert_eq!(fingerprint(&pooled), fingerprint(&fresh_threaded));
    }

    #[test]
    fn pooled_run_identical_under_light_chaos(
        run_seed in 0u64..1000,
        fault_seed in 0u64..1000,
        prefetch_sel in 0u32..2,
    ) {
        // Chaos replay is pinned to the sequential engine (stable
        // per-server request indices); pooling must not perturb the
        // fault schedule or the degraded rows written into recycled
        // feature buffers.
        let cfg = pool_config(
            run_seed,
            prefetch_sel == 1,
            Some(FaultProfile::light(fault_seed)),
        );
        let pooled = Engine::build(cfg.clone()).run();
        let fresh = {
            let mut c = cfg;
            c.pooling = false;
            Engine::build(c).run()
        };
        prop_assert_eq!(pooled.aggregate_metrics(), fresh.aggregate_metrics());
        prop_assert_eq!(fingerprint(&pooled), fingerprint(&fresh));
    }
}
