//! Prefetch-policy neutrality properties: the planner (DESIGN §10)
//! changes *when* halo rows are fetched, never *what* the trainer
//! computes on. Scoreboard and lookahead runs on the same seed must
//! therefore produce identical per-epoch losses, accuracies, and final
//! parameters — at any kernel-pool width, and under the `light` fault
//! profile (whose drops/delays/truncations the retry ladder fully
//! recovers, and whose failed rows the planner refuses to install).

use massivegnn::{Engine, EngineConfig, FaultProfile, Mode, PrefetchConfig, RetryPolicy};
use proptest::prelude::*;
use std::time::Duration;

fn policy_config(seed: u64, fault: Option<FaultProfile>, pcfg: PrefetchConfig) -> EngineConfig {
    EngineConfig {
        seed,
        // Two epochs so the planner crosses an epoch-plan boundary and
        // the second epoch runs against a warm (planned) buffer.
        epochs: 2,
        batch_size: 64,
        fanouts: vec![4, 4],
        hidden_dim: 16,
        train_math: true,
        // Dropped replies are detected by wall-clock timeout; keep the
        // retry wait short so `light`'s 2% drops cost milliseconds.
        retry: RetryPolicy {
            timeout: Duration::from_millis(50),
            ..Default::default()
        },
        mode: Mode::Prefetch(pcfg),
        fault,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn lookahead_losses_match_scoreboard(
        run_seed in 0u64..1000,
        depth_sel in 0u32..3,
        width_sel in 0u32..2,
    ) {
        let width = if width_sel == 1 { 4 } else { 1 };
        let depth = 1usize << depth_sel; // 1, 2 or 4
        let pcfg = PrefetchConfig {
            f_h: 0.25,
            delta: 4,
            ..Default::default()
        };
        let scoreboard = rayon::pool::with_max_threads(width, || {
            Engine::build(policy_config(run_seed, None, pcfg)).run()
        });
        let lookahead = rayon::pool::with_max_threads(width, || {
            Engine::build(policy_config(
                run_seed,
                None,
                pcfg.with_lookahead_policy(depth),
            ))
            .run()
        });
        prop_assert_eq!(&scoreboard.epoch_loss, &lookahead.epoch_loss);
        prop_assert_eq!(&scoreboard.epoch_acc, &lookahead.epoch_acc);
        prop_assert_eq!(&scoreboard.final_params, &lookahead.final_params);
    }

    #[test]
    fn lookahead_losses_match_scoreboard_under_light_chaos(
        run_seed in 0u64..1000,
        fault_seed in 0u64..1000,
        depth_sel in 0u32..3,
    ) {
        // Chaos replay is pinned to the sequential engine (stable
        // per-server request indices). The planner pulls through the
        // same faulted transport but skips installing failed rows, so
        // every feature the trainer reads is still the server's truth
        // and the training trajectory cannot diverge.
        let depth = 1usize << depth_sel;
        let pcfg = PrefetchConfig {
            f_h: 0.25,
            delta: 4,
            ..Default::default()
        };
        let fault = Some(FaultProfile::light(fault_seed));
        let scoreboard =
            Engine::build(policy_config(run_seed, fault.clone(), pcfg)).run();
        let lookahead = Engine::build(policy_config(
            run_seed,
            fault,
            pcfg.with_lookahead_policy(depth),
        ))
        .run();
        prop_assert_eq!(&scoreboard.epoch_loss, &lookahead.epoch_loss);
        prop_assert_eq!(&scoreboard.epoch_acc, &lookahead.epoch_acc);
        prop_assert_eq!(&scoreboard.final_params, &lookahead.final_params);
    }
}
