//! End-to-end observability: a traced engine run must produce spans that
//! reconcile with its own report, export to a parseable Perfetto trace
//! with every phase present on every trainer, and flow through the
//! global sink the repro CLI drains.

use massivegnn::{Engine, Mode, PrefetchConfig};
use mgnn_bench::harness::{assert_trace_consistent, engine_config, Opts};
use mgnn_graph::DatasetKind;
use mgnn_net::Backend;
use mgnn_obs::Phase;
use serde::Serialize;

// One #[test] end to end: the sink is process-global, so concurrent
// tests in this binary would cross-contaminate its captures.
#[test]
fn traced_run_exports_consistent_perfetto_and_json() {
    let mut cfg = engine_config(&Opts::quick(), DatasetKind::Products, Backend::Cpu, 2);
    cfg.trainers_per_part = 2;
    cfg.trace = true;
    cfg.mode = Mode::Prefetch(PrefetchConfig::default());

    mgnn_obs::sink::install();
    let report = Engine::build(cfg).run();
    let captures = mgnn_obs::sink::uninstall();

    // The engine pushed exactly this run into the sink.
    assert_eq!(captures.len(), 1);
    assert_eq!(captures[0].label, report.mode_label);
    assert_eq!(captures[0].traces.len(), report.world);
    assert_eq!(
        captures[0].report.get("world").and_then(|v| v.as_u64()),
        Some(report.world as u64)
    );

    // Spans reconcile with the report's own breakdown (harness check).
    assert_trace_consistent(&report);

    // The Perfetto export parses back and carries >= 1 span of every
    // phase for every trainer.
    let text = mgnn_obs::export::perfetto_trace_string(&report.traces);
    let v = serde_json::from_str(&text).expect("perfetto trace must be valid JSON");
    let events = v.get("traceEvents").unwrap().as_array().unwrap();
    for trace in &report.traces {
        let pid = trace.trainer as u64;
        for phase in Phase::ALL {
            let n = events
                .iter()
                .filter(|e| {
                    e.get("ph").unwrap().as_str() == Some("X")
                        && e.get("pid").unwrap().as_u64() == Some(pid)
                        && e.get("name").unwrap().as_str() == Some(phase.name())
                })
                .count();
            assert!(
                n >= 1,
                "trainer {pid} has no {} spans in the exported trace",
                phase.name()
            );
        }
        assert!(
            events.iter().any(|e| {
                e.get("ph").unwrap().as_str() == Some("M")
                    && e.get("pid").unwrap().as_u64() == Some(pid)
            }),
            "trainer {pid} has no metadata rows"
        );
    }

    // The compact snapshot also round-trips through JSON.
    let snap = serde_json::to_string(&mgnn_obs::export::snapshot(&report.traces));
    let v = serde_json::from_str(&snap).unwrap();
    assert_eq!(
        v.get("trainers").unwrap().as_array().unwrap().len(),
        report.world
    );

    // And the full report serializes with its traces attached.
    let report_json = serde_json::to_string(&report.to_value());
    let v = serde_json::from_str(&report_json).unwrap();
    assert_eq!(
        v.get("traces").unwrap().as_array().unwrap().len(),
        report.world
    );
}
