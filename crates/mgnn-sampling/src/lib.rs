//! # mgnn-sampling — neighbor sampling and minibatch loading
//!
//! DistDGL's trainer `DataLoader` shuffles its shard of train nodes each
//! epoch, chops them into minibatches, and runs a fanout
//! [`NeighborSampler`](sampler::NeighborSampler) over the *local partition*
//! (halo nodes included as frontier leaves) to produce the per-layer
//! bipartite [`Block`](block::Block)s (message-flow graphs) the GNN
//! consumes. This crate reimplements that pipeline over
//! [`mgnn_partition::LocalPartition`].
//!
//! Node ids inside sampled structures are *partition-local* (`0..L` local,
//! `L..L+H` halo), so the prefetcher can split a sampled minibatch into
//! `V_p^{l|s}` and `V_p^{h|s}` (paper Algorithm 2 lines 2–3) with a single
//! comparison against `L`.

pub mod block;
pub mod dataloader;
pub mod sampler;

pub use block::{Block, SampledMinibatch};
pub use dataloader::{DataLoader, EpochPlan};
pub use sampler::{NeighborSampler, SamplerScratch, SamplingStrategy};
