//! Bipartite message-flow-graph blocks, the unit the GNN layers consume.

/// One sampled bipartite layer (a DGL "block"/MFG).
///
/// Conventions (matching DGL):
/// * `src_nodes` are the unique partition-local ids feeding this layer;
///   the **first `num_dst` entries are the destination nodes themselves**
///   (every dst node is also a src node, self-inclusive).
/// * For dst `i` (`0 <= i < num_dst`), its sampled in-neighbors are
///   `indices[offsets[i]..offsets[i+1]]`, values being *positions into
///   `src_nodes`*.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Block {
    /// Number of destination nodes (prefix of `src_nodes`).
    pub num_dst: usize,
    /// Unique partition-local ids of source nodes, dst prefix first.
    pub src_nodes: Vec<u32>,
    /// CSR offsets into `indices`, length `num_dst + 1`.
    pub offsets: Vec<u32>,
    /// Sampled neighbor positions (into `src_nodes`).
    pub indices: Vec<u32>,
}

impl Block {
    /// Number of source nodes.
    #[inline]
    pub fn num_src(&self) -> usize {
        self.src_nodes.len()
    }

    /// Sampled in-neighbor positions of dst `i`.
    #[inline]
    pub fn neighbors_of(&self, i: usize) -> &[u32] {
        &self.indices[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Total sampled edges in this block.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.indices.len()
    }

    /// Check internal invariants (offsets monotone, indices in range,
    /// dst prefix property).
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.len() != self.num_dst + 1 {
            return Err("offsets length mismatch".into());
        }
        if self.num_dst > self.src_nodes.len() {
            return Err("more dst than src".into());
        }
        if self.offsets[0] != 0 || *self.offsets.last().unwrap() as usize != self.indices.len() {
            return Err("offset bounds wrong".into());
        }
        for w in self.offsets.windows(2) {
            if w[0] > w[1] {
                return Err("offsets not monotone".into());
            }
        }
        let n = self.src_nodes.len() as u32;
        if self.indices.iter().any(|&x| x >= n) {
            return Err("index out of range".into());
        }
        // src uniqueness
        let mut seen = std::collections::HashSet::new();
        for &s in &self.src_nodes {
            if !seen.insert(s) {
                return Err(format!("duplicate src node {s}"));
            }
        }
        Ok(())
    }
}

/// A fully sampled minibatch: the layer blocks plus the flat list of input
/// nodes whose features must be gathered before training.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SampledMinibatch {
    /// Seed (output) nodes, partition-local ids.
    pub seeds: Vec<u32>,
    /// Blocks in forward order: `blocks[0]` consumes raw input features.
    pub blocks: Vec<Block>,
    /// Unique partition-local ids needing input features
    /// (= `blocks[0].src_nodes`).
    pub input_nodes: Vec<u32>,
}

impl SampledMinibatch {
    /// Every unique partition-local node id touched by this minibatch.
    pub fn all_nodes(&self) -> &[u32] {
        &self.input_nodes
    }

    /// Total sampled edges across all blocks — the sampling workload, used
    /// by the cost model's `t_sampling`.
    pub fn total_edges(&self) -> usize {
        self.blocks.iter().map(|b| b.num_edges()).sum()
    }

    /// Split `input_nodes` into (local, halo) by the partition's local
    /// count `num_local`: ids `< num_local` are locally owned, the rest are
    /// halo — Algorithm 2 lines 2–3.
    pub fn split_local_halo(&self, num_local: usize) -> (Vec<u32>, Vec<u32>) {
        let mut local = Vec::new();
        let mut halo = Vec::new();
        self.split_local_halo_into(num_local, &mut local, &mut halo);
        (local, halo)
    }

    /// [`split_local_halo`](Self::split_local_halo) into caller-owned
    /// buffers (cleared first) — the allocation-free steady-state path.
    pub fn split_local_halo_into(
        &self,
        num_local: usize,
        local: &mut Vec<u32>,
        halo: &mut Vec<u32>,
    ) {
        local.clear();
        halo.clear();
        for &n in &self.input_nodes {
            if (n as usize) < num_local {
                local.push(n);
            } else {
                halo.push(n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> Block {
        Block {
            num_dst: 2,
            src_nodes: vec![10, 20, 30, 40],
            offsets: vec![0, 2, 3],
            indices: vec![2, 3, 0],
        }
    }

    #[test]
    fn accessors() {
        let b = block();
        assert_eq!(b.num_src(), 4);
        assert_eq!(b.num_edges(), 3);
        assert_eq!(b.neighbors_of(0), &[2, 3]);
        assert_eq!(b.neighbors_of(1), &[0]);
        assert!(b.validate().is_ok());
    }

    #[test]
    fn validate_catches_bad_offsets() {
        let mut b = block();
        b.offsets = vec![0, 3, 2];
        assert!(b.validate().is_err());
    }

    #[test]
    fn validate_catches_oob_index() {
        let mut b = block();
        b.indices[0] = 99;
        assert!(b.validate().is_err());
    }

    #[test]
    fn validate_catches_duplicate_src() {
        let mut b = block();
        b.src_nodes[3] = 10;
        assert!(b.validate().is_err());
    }

    #[test]
    fn split_local_halo() {
        let mb = SampledMinibatch {
            seeds: vec![0],
            blocks: vec![],
            input_nodes: vec![0, 5, 9, 12],
        };
        let (l, h) = mb.split_local_halo(10);
        assert_eq!(l, vec![0, 5, 9]);
        assert_eq!(h, vec![12]);
    }
}
