//! Per-trainer minibatch dataloader: epoch shuffling + fixed batch size,
//! mirroring DistDGL's distributed `DataLoader` (constant batch size of
//! 2000 in the paper; here scaled with the graphs).
//!
//! The shuffled plan of an epoch is computed **once** and memoized behind
//! an `Arc`, so the engine's hot loop shares one immutable schedule
//! instead of re-shuffling the whole epoch every step (which was O(steps²)
//! per epoch). RapidGNN-style precomputed schedules make the per-step cost
//! of the sampling frontier O(1) and allocation-free.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::{Arc, Mutex};

/// One epoch's shuffled minibatch schedule: cheaply clonable, immutable,
/// shared between the prepare thread and the trainer without copying seed
/// vectors per step.
pub type EpochPlan = Arc<[Arc<[u32]>]>;

/// Deterministic epoch-shuffled minibatch iterator over a trainer's seed
/// nodes (partition-local ids).
#[derive(Debug)]
pub struct DataLoader {
    seeds: Vec<u32>,
    batch_size: usize,
    base_seed: u64,
    /// Single-entry memo of the most recent epoch's plan. Training walks
    /// epochs in order, so one slot gives O(1) repeat lookups.
    cache: Mutex<Option<(u64, EpochPlan)>>,
    #[cfg(test)]
    shuffles: std::sync::atomic::AtomicU64,
}

impl Clone for DataLoader {
    fn clone(&self) -> Self {
        DataLoader {
            seeds: self.seeds.clone(),
            batch_size: self.batch_size,
            base_seed: self.base_seed,
            cache: Mutex::new(self.cache.lock().unwrap().clone()),
            #[cfg(test)]
            shuffles: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl DataLoader {
    /// Build a loader over `seeds` (this trainer's shard of train nodes,
    /// partition-local ids).
    pub fn new(seeds: Vec<u32>, batch_size: usize, base_seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        DataLoader {
            seeds,
            batch_size,
            base_seed,
            cache: Mutex::new(None),
            #[cfg(test)]
            shuffles: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of minibatches per epoch (`ceil(len / batch)`; DistDGL keeps
    /// the ragged last batch).
    pub fn batches_per_epoch(&self) -> usize {
        self.seeds.len().div_ceil(self.batch_size)
    }

    /// Number of seed nodes.
    pub fn num_seeds(&self) -> usize {
        self.seeds.len()
    }

    /// Batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// The shuffled minibatches of `epoch`. Memoized: repeated calls for
    /// the same epoch return a clone of the cached `Arc` in O(1) without
    /// recomputing the permutation.
    pub fn epoch(&self, epoch: u64) -> EpochPlan {
        let mut cache = self.cache.lock().unwrap();
        if let Some((e, plan)) = cache.as_ref() {
            if *e == epoch {
                return Arc::clone(plan);
            }
        }
        let plan = self.shuffle_epoch(epoch);
        *cache = Some((epoch, Arc::clone(&plan)));
        plan
    }

    /// Actually shuffle + chunk one epoch (the slow path behind the memo).
    fn shuffle_epoch(&self, epoch: u64) -> EpochPlan {
        #[cfg(test)]
        self.shuffles
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut order = self.seeds.clone();
        order.shuffle(&mut StdRng::seed_from_u64(
            self.base_seed ^ epoch.wrapping_mul(0x2545_f491_4f6c_dd1d),
        ));
        order
            .chunks(self.batch_size)
            .map(Arc::from)
            .collect::<Vec<Arc<[u32]>>>()
            .into()
    }

    /// Convenience: the `step`-th minibatch of `epoch`.
    pub fn batch(&self, epoch: u64, step: usize) -> Option<Arc<[u32]>> {
        let start = step * self.batch_size;
        if start >= self.seeds.len() {
            return None;
        }
        Some(Arc::clone(&self.epoch(epoch)[step]))
    }

    /// How many times the epoch permutation has actually been computed on
    /// this loader (memo misses). Test-only.
    #[cfg(test)]
    pub fn shuffle_count(&self) -> u64 {
        self.shuffles.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_cover_all_seeds() {
        let dl = DataLoader::new((0..103).collect(), 10, 1);
        assert_eq!(dl.batches_per_epoch(), 11);
        let batches = dl.epoch(0);
        let mut all: Vec<u32> = batches.iter().flat_map(|b| b.iter().copied()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<u32>>());
    }

    #[test]
    fn last_batch_ragged() {
        let dl = DataLoader::new((0..103).collect(), 10, 1);
        let batches = dl.epoch(3);
        assert_eq!(batches.last().unwrap().len(), 3);
        assert!(batches[..10].iter().all(|b| b.len() == 10));
    }

    #[test]
    fn epochs_shuffle_differently() {
        let dl = DataLoader::new((0..50).collect(), 50, 9);
        assert_ne!(dl.epoch(0), dl.epoch(1));
        assert_eq!(dl.epoch(0), dl.epoch(0));
    }

    #[test]
    fn batch_accessor_matches_epoch() {
        let dl = DataLoader::new((0..25).collect(), 10, 2);
        assert_eq!(dl.batch(0, 1).unwrap(), dl.epoch(0)[1]);
        assert!(dl.batch(0, 3).is_none());
    }

    #[test]
    fn empty_loader() {
        let dl = DataLoader::new(vec![], 10, 0);
        assert_eq!(dl.batches_per_epoch(), 0);
        assert!(dl.epoch(0).is_empty());
    }

    #[test]
    fn epoch_plan_shuffled_once_per_epoch() {
        let dl = DataLoader::new((0..64).collect(), 8, 7);
        assert_eq!(dl.shuffle_count(), 0);
        let first = dl.epoch(0);
        assert_eq!(dl.shuffle_count(), 1);
        // Repeated calls (the old per-step pattern) hit the memo: still 1.
        for step in 0..dl.batches_per_epoch() {
            let plan = dl.epoch(0);
            assert_eq!(plan[step], first[step]);
            let _ = dl.batch(0, step);
        }
        assert_eq!(dl.shuffle_count(), 1, "epoch 0 reshuffled on repeat call");
        // A new epoch recomputes exactly once…
        let _ = dl.epoch(1);
        let _ = dl.epoch(1);
        assert_eq!(dl.shuffle_count(), 2);
        // …and going back to an evicted epoch recomputes the same plan.
        let again = dl.epoch(0);
        assert_eq!(dl.shuffle_count(), 3);
        assert_eq!(again, first);
    }

    #[test]
    fn memoized_plan_identical_to_fresh_loader() {
        let a = DataLoader::new((0..40).collect(), 7, 3);
        let _ = a.epoch(0); // warm the memo
        let b = DataLoader::new((0..40).collect(), 7, 3);
        assert_eq!(a.epoch(0), b.epoch(0));
        assert_eq!(a.epoch(5), b.epoch(5));
    }
}
