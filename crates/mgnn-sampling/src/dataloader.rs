//! Per-trainer minibatch dataloader: epoch shuffling + fixed batch size,
//! mirroring DistDGL's distributed `DataLoader` (constant batch size of
//! 2000 in the paper; here scaled with the graphs).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Deterministic epoch-shuffled minibatch iterator over a trainer's seed
/// nodes (partition-local ids).
#[derive(Debug, Clone)]
pub struct DataLoader {
    seeds: Vec<u32>,
    batch_size: usize,
    base_seed: u64,
}

impl DataLoader {
    /// Build a loader over `seeds` (this trainer's shard of train nodes,
    /// partition-local ids).
    pub fn new(seeds: Vec<u32>, batch_size: usize, base_seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        DataLoader {
            seeds,
            batch_size,
            base_seed,
        }
    }

    /// Number of minibatches per epoch (`ceil(len / batch)`; DistDGL keeps
    /// the ragged last batch).
    pub fn batches_per_epoch(&self) -> usize {
        self.seeds.len().div_ceil(self.batch_size)
    }

    /// Number of seed nodes.
    pub fn num_seeds(&self) -> usize {
        self.seeds.len()
    }

    /// Batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// The shuffled minibatches of `epoch`.
    pub fn epoch(&self, epoch: u64) -> Vec<Vec<u32>> {
        let mut order = self.seeds.clone();
        order.shuffle(&mut StdRng::seed_from_u64(
            self.base_seed ^ epoch.wrapping_mul(0x2545_f491_4f6c_dd1d),
        ));
        order.chunks(self.batch_size).map(|c| c.to_vec()).collect()
    }

    /// Convenience: the `step`-th minibatch of `epoch`.
    pub fn batch(&self, epoch: u64, step: usize) -> Option<Vec<u32>> {
        let start = step * self.batch_size;
        if start >= self.seeds.len() {
            return None;
        }
        // Recompute only the needed slice of the epoch permutation.
        Some(self.epoch(epoch)[step].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_cover_all_seeds() {
        let dl = DataLoader::new((0..103).collect(), 10, 1);
        assert_eq!(dl.batches_per_epoch(), 11);
        let batches = dl.epoch(0);
        let mut all: Vec<u32> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<u32>>());
    }

    #[test]
    fn last_batch_ragged() {
        let dl = DataLoader::new((0..103).collect(), 10, 1);
        let batches = dl.epoch(3);
        assert_eq!(batches.last().unwrap().len(), 3);
        assert!(batches[..10].iter().all(|b| b.len() == 10));
    }

    #[test]
    fn epochs_shuffle_differently() {
        let dl = DataLoader::new((0..50).collect(), 50, 9);
        assert_ne!(dl.epoch(0), dl.epoch(1));
        assert_eq!(dl.epoch(0), dl.epoch(0));
    }

    #[test]
    fn batch_accessor_matches_epoch() {
        let dl = DataLoader::new((0..25).collect(), 10, 2);
        assert_eq!(dl.batch(0, 1).unwrap(), dl.epoch(0)[1]);
        assert!(dl.batch(0, 3).is_none());
    }

    #[test]
    fn empty_loader() {
        let dl = DataLoader::new(vec![], 10, 0);
        assert_eq!(dl.batches_per_epoch(), 0);
        assert!(dl.epoch(0).is_empty());
    }
}
