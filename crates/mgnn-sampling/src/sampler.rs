//! Fanout neighbor sampler over a [`LocalPartition`].
//!
//! The classic GraphSAGE/DGL `NeighborSampler`: starting from the seed
//! nodes, each GNN layer samples up to `fanout` in-neighbors per node
//! uniformly **without replacement**; the frontier of one layer becomes the
//! destination set of the next. Halo nodes have empty adjacency in the
//! local partition graph, so a walk terminates there — matching DistDGL's
//! local sampling, after which halo *features* are fetched remotely.
//!
//! Sampling is stochastic but fully reproducible: the RNG stream is
//! `(seed, epoch, step)`-keyed.

use crate::block::{Block, SampledMinibatch};
use mgnn_partition::LocalPartition;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How neighbors are chosen within a fanout budget. The paper's prefetch
/// scheme claims to be sampler-agnostic (§V-A4: "the performance primarily
/// hinges on how the sampler interacts with the Prefetcher"); these
/// strategies make that claim testable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SamplingStrategy {
    /// Uniform without replacement — DGL's `NeighborSampler`, the paper's
    /// default.
    #[default]
    Uniform,
    /// Weighted without replacement, probability ∝ neighbor's global
    /// degree (importance-style sampling; biases walks toward hubs, which
    /// interacts favorably with the degree-initialized prefetch buffer).
    DegreeWeighted,
    /// Take every neighbor (fanout ignored) — full neighborhood
    /// aggregation, used for exact inference.
    Full,
}

/// Reusable working memory for [`NeighborSampler::sample_into`]. One
/// instance per prepare loop: every vector is cleared (never shrunk)
/// between minibatches, so the steady state samples without touching the
/// allocator. The node→position map is a stamped array pair instead of a
/// hash map — `pos_stamp[n] == stamp` means `n` is in this layer's
/// `src_nodes` at position `pos_val[n]` — which is both O(1) and
/// allocation-free once grown to the partition's id space.
#[derive(Debug, Clone, Default)]
pub struct SamplerScratch {
    /// Current frontier (dst set of the layer being built).
    dst: Vec<u32>,
    /// Stamp marking which ids are present in the current layer.
    pos_stamp: Vec<u64>,
    /// Position in `src_nodes` for ids whose stamp is current.
    pos_val: Vec<u32>,
    /// Monotone stamp, bumped once per layer.
    stamp: u64,
    /// Floyd's-algorithm chosen indices (replaces the per-dst `HashSet`;
    /// fanouts are small, so linear membership tests win).
    chosen: Vec<usize>,
    /// Efraimidis–Spirakis keyed reservoir.
    keyed: Vec<(f64, u32)>,
    /// Per-dst selected-neighbor scratch.
    nbr: Vec<u32>,
    /// Block carcasses recycled when a minibatch shrinks its layer count.
    spare_blocks: Vec<Block>,
}

/// Fanout sampler bound to one partition.
#[derive(Debug, Clone)]
pub struct NeighborSampler {
    /// Per-layer fanouts in *forward* order: `fanouts[0]` is the input
    /// layer's fanout (the paper's GraphSAGE uses `{10, 25}` for 2 layers
    /// — 25 neighbors at the hop nearest the seeds).
    pub fanouts: Vec<usize>,
    /// Neighbor-selection strategy.
    pub strategy: SamplingStrategy,
    base_seed: u64,
}

impl NeighborSampler {
    /// Create a uniform sampler with the given fanouts and RNG seed.
    pub fn new(fanouts: Vec<usize>, base_seed: u64) -> Self {
        Self::with_strategy(fanouts, SamplingStrategy::Uniform, base_seed)
    }

    /// Create a sampler with an explicit [`SamplingStrategy`].
    pub fn with_strategy(fanouts: Vec<usize>, strategy: SamplingStrategy, base_seed: u64) -> Self {
        assert!(!fanouts.is_empty(), "need at least one layer");
        assert!(fanouts.iter().all(|&f| f > 0), "fanouts must be positive");
        NeighborSampler {
            fanouts,
            strategy,
            base_seed,
        }
    }

    /// Number of GNN layers this sampler serves.
    pub fn num_layers(&self) -> usize {
        self.fanouts.len()
    }

    /// Sample the blocks for `seeds` (partition-local ids of locally-owned
    /// train nodes) at `(epoch, step)`.
    pub fn sample(
        &self,
        part: &LocalPartition,
        seeds: &[u32],
        epoch: u64,
        step: u64,
    ) -> SampledMinibatch {
        let mut out = SampledMinibatch::default();
        let mut scratch = SamplerScratch::default();
        self.sample_into(part, seeds, epoch, step, &mut out, &mut scratch);
        out
    }

    /// [`sample`](Self::sample) into a recycled minibatch carcass and
    /// reusable scratch. Produces bitwise-identical output to `sample`
    /// (same RNG stream, same first-occurrence position assignment, same
    /// sorted neighbor sets) while leaving the allocator untouched once
    /// `out`/`scratch` have grown to the working-set size.
    pub fn sample_into(
        &self,
        part: &LocalPartition,
        seeds: &[u32],
        epoch: u64,
        step: u64,
        out: &mut SampledMinibatch,
        scratch: &mut SamplerScratch,
    ) {
        let mut rng = StdRng::seed_from_u64(
            self.base_seed
                ^ epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ step.wrapping_mul(0xc2b2_ae3d_27d4_eb4f),
        );
        let id_space = part.num_local() + part.num_halo();
        if scratch.pos_stamp.len() < id_space {
            scratch.pos_stamp.resize(id_space, 0);
            scratch.pos_val.resize(id_space, 0);
        }

        scratch.dst.clear();
        scratch.dst.extend_from_slice(seeds);
        scratch.dst.sort_unstable();
        scratch.dst.dedup();
        out.seeds.clear();
        out.seeds.extend_from_slice(&scratch.dst);

        // Keep exactly `num_layers` block carcasses, parking extras.
        let num_layers = self.fanouts.len();
        while out.blocks.len() > num_layers {
            scratch.spare_blocks.push(out.blocks.pop().unwrap());
        }
        while out.blocks.len() < num_layers {
            out.blocks
                .push(scratch.spare_blocks.pop().unwrap_or_default());
        }

        // Build blocks from the seed layer outward: rev-iteration `k`
        // fills final slot `num_layers - 1 - k`, so no reverse pass.
        for (k, &fanout) in self.fanouts.iter().rev().enumerate() {
            let bi = num_layers - 1 - k;
            scratch.stamp += 1;
            sample_one_layer_into(
                part,
                &scratch.dst,
                fanout,
                self.strategy,
                &mut rng,
                &mut out.blocks[bi],
                &mut scratch.pos_stamp,
                &mut scratch.pos_val,
                scratch.stamp,
                &mut scratch.chosen,
                &mut scratch.keyed,
                &mut scratch.nbr,
            );
            scratch.dst.clear();
            scratch.dst.extend_from_slice(&out.blocks[bi].src_nodes);
        }
        out.input_nodes.clear();
        out.input_nodes.extend_from_slice(&out.blocks[0].src_nodes);
    }
}

/// Sample one bipartite layer into a recycled [`Block`]: for each dst node
/// take up to `fanout` distinct neighbors according to `strategy`.
#[allow(clippy::too_many_arguments)]
fn sample_one_layer_into(
    part: &LocalPartition,
    dst: &[u32],
    fanout: usize,
    strategy: SamplingStrategy,
    rng: &mut StdRng,
    block: &mut Block,
    pos_stamp: &mut [u64],
    pos_val: &mut [u32],
    stamp: u64,
    chosen: &mut Vec<usize>,
    keyed: &mut Vec<(f64, u32)>,
    nbr: &mut Vec<u32>,
) {
    let num_dst = dst.len();
    block.num_dst = num_dst;
    block.src_nodes.clear();
    block.src_nodes.extend_from_slice(dst);
    // Position map seeded with the dst prefix (self-inclusive src set).
    for (i, &n) in dst.iter().enumerate() {
        pos_stamp[n as usize] = stamp;
        pos_val[n as usize] = i as u32;
    }
    block.offsets.clear();
    block.offsets.push(0);
    block.indices.clear();

    for &d in dst {
        let nbrs = part.graph.neighbors(d);
        nbr.clear();
        if nbrs.len() <= fanout || strategy == SamplingStrategy::Full {
            nbr.extend_from_slice(nbrs);
        } else {
            match strategy {
                SamplingStrategy::Uniform => {
                    // Floyd's algorithm: `fanout` distinct indices in
                    // [0, len). The chosen set is tiny (≤ fanout), so a
                    // linear `contains` replaces the old `HashSet` with
                    // identical membership decisions.
                    let len = nbrs.len();
                    chosen.clear();
                    for j in (len - fanout)..len {
                        let t = rng.gen_range(0..=j);
                        if chosen.contains(&t) {
                            chosen.push(j);
                        } else {
                            chosen.push(t);
                        }
                    }
                    nbr.extend(chosen.iter().map(|&i| nbrs[i]));
                    nbr.sort_unstable(); // determinism: fixed output order
                }
                SamplingStrategy::DegreeWeighted => {
                    // Efraimidis–Spirakis A-Res: key = u^(1/w), keep top-k.
                    keyed.clear();
                    keyed.extend(nbrs.iter().map(|&v| {
                        let w = part.global_degree(v).max(1) as f64;
                        let u: f64 = rng.gen::<f64>().max(1e-300);
                        (u.powf(1.0 / w), v)
                    }));
                    keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
                    keyed.truncate(fanout);
                    nbr.extend(keyed.iter().map(|&(_, v)| v));
                    nbr.sort_unstable();
                }
                SamplingStrategy::Full => unreachable!(),
            }
        }
        for &v in nbr.iter() {
            let p = if pos_stamp[v as usize] == stamp {
                pos_val[v as usize]
            } else {
                let p = block.src_nodes.len() as u32;
                block.src_nodes.push(v);
                pos_stamp[v as usize] = stamp;
                pos_val[v as usize] = p;
                p
            };
            block.indices.push(p);
        }
        block.offsets.push(block.indices.len() as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgnn_graph::generators::erdos_renyi;
    use mgnn_partition::{build_local_partitions, multilevel_partition};

    fn partition() -> LocalPartition {
        let g = erdos_renyi(400, 4000, 3);
        let p = multilevel_partition(&g, 4, 3);
        let train: Vec<u32> = (0..400).collect();
        build_local_partitions(&g, &p, &train).remove(0)
    }

    #[test]
    fn blocks_validate_and_chain() {
        let part = partition();
        let seeds: Vec<u32> = (0..16.min(part.num_local() as u32)).collect();
        let s = NeighborSampler::new(vec![10, 25], 7);
        let mb = s.sample(&part, &seeds, 0, 0);
        assert_eq!(mb.blocks.len(), 2);
        for b in &mb.blocks {
            b.validate().unwrap();
        }
        // Chain property: src of the seed-layer block == input of next...
        // blocks[1].src_nodes == blocks[0] dst prefix.
        let last = &mb.blocks[1];
        let first = &mb.blocks[0];
        assert_eq!(&first.src_nodes[..last.num_src()], &last.src_nodes[..]);
        // Seed layer dst == seeds.
        assert_eq!(last.num_dst, mb.seeds.len());
        assert_eq!(mb.input_nodes, first.src_nodes);
    }

    #[test]
    fn fanout_respected() {
        let part = partition();
        let seeds: Vec<u32> = (0..8).collect();
        let s = NeighborSampler::new(vec![5], 1);
        let mb = s.sample(&part, &seeds, 0, 0);
        let b = &mb.blocks[0];
        for i in 0..b.num_dst {
            assert!(b.neighbors_of(i).len() <= 5);
        }
    }

    #[test]
    fn sampled_neighbors_are_real_edges() {
        let part = partition();
        let seeds: Vec<u32> = (0..8).collect();
        let s = NeighborSampler::new(vec![10, 10], 2);
        let mb = s.sample(&part, &seeds, 1, 2);
        for b in &mb.blocks {
            for i in 0..b.num_dst {
                let d = b.src_nodes[i];
                for &j in b.neighbors_of(i) {
                    let v = b.src_nodes[j as usize];
                    assert!(
                        part.graph.neighbors(d).contains(&v),
                        "sampled non-edge {d}->{v}"
                    );
                }
            }
        }
    }

    #[test]
    fn no_duplicate_neighbors_per_dst() {
        let part = partition();
        let seeds: Vec<u32> = (0..12).collect();
        let s = NeighborSampler::new(vec![25], 5);
        let mb = s.sample(&part, &seeds, 0, 3);
        let b = &mb.blocks[0];
        for i in 0..b.num_dst {
            let mut nb: Vec<u32> = b.neighbors_of(i).to_vec();
            let before = nb.len();
            nb.sort_unstable();
            nb.dedup();
            assert_eq!(nb.len(), before, "dst {i} has duplicate neighbors");
        }
    }

    #[test]
    fn halo_nodes_are_leaves() {
        let part = partition();
        let seeds: Vec<u32> = (0..16).collect();
        let s = NeighborSampler::new(vec![10, 10], 9);
        let mb = s.sample(&part, &seeds, 0, 0);
        let num_local = part.num_local();
        // Any halo node appearing as dst in the deeper block must have no
        // sampled neighbors.
        let b0 = &mb.blocks[0];
        for i in 0..b0.num_dst {
            if (b0.src_nodes[i] as usize) >= num_local {
                assert!(b0.neighbors_of(i).is_empty(), "halo node expanded");
            }
        }
    }

    #[test]
    fn deterministic_per_step_varies_across_steps() {
        let part = partition();
        let seeds: Vec<u32> = (0..16).collect();
        let s = NeighborSampler::new(vec![5, 5], 11);
        let a = s.sample(&part, &seeds, 0, 0);
        let b = s.sample(&part, &seeds, 0, 0);
        assert_eq!(a, b);
        let c = s.sample(&part, &seeds, 0, 1);
        assert_ne!(a, c, "different steps should sample differently");
        let d = s.sample(&part, &seeds, 1, 0);
        assert_ne!(a, d, "different epochs should sample differently");
    }

    #[test]
    fn duplicate_seeds_deduped() {
        let part = partition();
        let s = NeighborSampler::new(vec![5], 0);
        let mb = s.sample(&part, &[3, 3, 1], 0, 0);
        assert_eq!(mb.seeds, vec![1, 3]);
    }

    #[test]
    #[should_panic]
    fn empty_fanouts_rejected() {
        NeighborSampler::new(vec![], 0);
    }

    #[test]
    fn full_strategy_takes_every_neighbor() {
        let part = partition();
        let seeds: Vec<u32> = (0..8).collect();
        let s = NeighborSampler::with_strategy(vec![2], SamplingStrategy::Full, 1);
        let mb = s.sample(&part, &seeds, 0, 0);
        let b = &mb.blocks[0];
        for (i, &d) in mb.seeds.iter().enumerate() {
            assert_eq!(
                b.neighbors_of(i).len(),
                part.graph.neighbors(d).len(),
                "dst {d} truncated"
            );
        }
    }

    #[test]
    fn degree_weighted_respects_fanout_and_edges() {
        let part = partition();
        let seeds: Vec<u32> = (0..16).collect();
        let s = NeighborSampler::with_strategy(vec![5], SamplingStrategy::DegreeWeighted, 2);
        let mb = s.sample(&part, &seeds, 0, 0);
        let b = &mb.blocks[0];
        b.validate().unwrap();
        for i in 0..b.num_dst {
            assert!(b.neighbors_of(i).len() <= 5);
            let d = b.src_nodes[i];
            for &j in b.neighbors_of(i) {
                assert!(part.graph.neighbors(d).contains(&b.src_nodes[j as usize]));
            }
        }
    }

    #[test]
    fn degree_weighted_prefers_hubs() {
        // Build a star-heavy partition: one hub adjacent to everything.
        let mut builder = mgnn_graph::GraphBuilder::new(200);
        for v in 1..200u32 {
            builder.add_edge(0, v);
        }
        // plus a sparse ring so non-hub nodes have alternatives
        for v in 1..199u32 {
            builder.add_edge(v, v + 1);
        }
        let g = builder.build();
        let p = mgnn_partition::Partitioning::new(vec![0; 200], 1);
        let part = build_local_partitions(&g, &p, &[]).remove(0);
        let seeds: Vec<u32> = (1..40).collect();
        let uni = NeighborSampler::with_strategy(vec![1], SamplingStrategy::Uniform, 3);
        let wtd = NeighborSampler::with_strategy(vec![1], SamplingStrategy::DegreeWeighted, 3);
        let count_hub = |mb: &SampledMinibatch| {
            let b = &mb.blocks[0];
            (0..b.num_dst)
                .flat_map(|i| b.neighbors_of(i))
                .filter(|&&j| b.src_nodes[j as usize] == 0)
                .count()
        };
        let mut hub_uni = 0;
        let mut hub_wtd = 0;
        for step in 0..30 {
            hub_uni += count_hub(&uni.sample(&part, &seeds, 0, step));
            hub_wtd += count_hub(&wtd.sample(&part, &seeds, 0, step));
        }
        assert!(
            hub_wtd > hub_uni,
            "weighted should pick the hub more often ({hub_wtd} vs {hub_uni})"
        );
    }

    #[test]
    fn sample_into_matches_sample_with_dirty_reuse() {
        // A recycled minibatch + scratch (dirty from arbitrary previous
        // batches) must yield bitwise-identical output to a fresh
        // `sample` at every (epoch, step) and for every strategy.
        let part = partition();
        for strategy in [
            SamplingStrategy::Uniform,
            SamplingStrategy::DegreeWeighted,
            SamplingStrategy::Full,
        ] {
            let s = NeighborSampler::with_strategy(vec![4, 7], strategy, 13);
            let mut out = SampledMinibatch::default();
            let mut scratch = SamplerScratch::default();
            for step in 0..8u64 {
                let seeds: Vec<u32> = (step as u32..step as u32 + 11).collect();
                let fresh = s.sample(&part, &seeds, step / 3, step);
                s.sample_into(&part, &seeds, step / 3, step, &mut out, &mut scratch);
                assert_eq!(out, fresh, "{strategy:?} step {step}");
            }
        }
    }

    #[test]
    fn sample_into_recycles_across_layer_counts() {
        // Reusing a carcass from a deeper sampler must not leak blocks.
        let part = partition();
        let deep = NeighborSampler::new(vec![3, 3, 3], 5);
        let shallow = NeighborSampler::new(vec![6], 5);
        let seeds: Vec<u32> = (0..9).collect();
        let mut out = SampledMinibatch::default();
        let mut scratch = SamplerScratch::default();
        deep.sample_into(&part, &seeds, 0, 0, &mut out, &mut scratch);
        assert_eq!(out.blocks.len(), 3);
        shallow.sample_into(&part, &seeds, 0, 1, &mut out, &mut scratch);
        assert_eq!(out, shallow.sample(&part, &seeds, 0, 1));
        deep.sample_into(&part, &seeds, 1, 2, &mut out, &mut scratch);
        assert_eq!(out, deep.sample(&part, &seeds, 1, 2));
    }

    #[test]
    fn strategies_deterministic() {
        let part = partition();
        let seeds: Vec<u32> = (0..8).collect();
        for strategy in [
            SamplingStrategy::Uniform,
            SamplingStrategy::DegreeWeighted,
            SamplingStrategy::Full,
        ] {
            let s = NeighborSampler::with_strategy(vec![4, 4], strategy, 7);
            assert_eq!(
                s.sample(&part, &seeds, 1, 2),
                s.sample(&part, &seeds, 1, 2),
                "{strategy:?}"
            );
        }
    }
}
