//! Observability for the MassiveGNN training pipeline.
//!
//! Three layers, cheapest first:
//!
//! 1. **Span recording** ([`SpanRecorder`]) — each trainer gets one
//!    recorder shared between its worker thread and its prepare thread.
//!    Every pipeline phase (`sampling`, `lookup`, `scoring`, `evict`,
//!    `rpc`, `copy`, `train`, `allreduce`) records a step-keyed span;
//!    per-step [`StepAnchor`]s map lane-relative offsets onto the
//!    simulated timeline.
//! 2. **Aggregation** ([`LatencyHistogram`], [`StepPoint`]) — log₂
//!    buckets give p50/p95/p99/max per phase without storing every
//!    sample; a per-step series tracks stall time, hit rate, and overlap
//!    efficiency.
//! 3. **Export** ([`export`], [`sink`]) — Chrome/Perfetto `trace.json`
//!    (one process per trainer, one thread per lane) and a compact serde
//!    JSON snapshot; a process-global sink lets the repro binary collect
//!    reports from experiment modules without rewiring them.
//! 4. **Live telemetry** ([`registry`], [`prom`], [`events`]) — a
//!    process-global metric registry (lock-free counters/gauges plus
//!    labeled log₂ histograms) rendered as Prometheus text exposition
//!    over a one-thread scrape server, and a request-correlated event
//!    log that ties every degraded row to the fault verdict that caused
//!    it. Like the sink, each layer costs one atomic load when disabled.
//!
//! Recording is strictly opt-in: when tracing is off, no recorder exists
//! and every integration point short-circuits on `Option::None`, so the
//! engine's simulated timings and reports are bitwise identical to a
//! build without this crate.

pub mod events;
pub mod export;
pub mod hist;
pub mod prom;
pub mod registry;
pub mod sink;
pub mod span;

pub use events::TraceEvent;
pub use hist::LatencyHistogram;
pub use prom::ScrapeServer;
pub use sink::RunCapture;
pub use span::{
    Lane, Phase, PhaseStats, SpanEvent, SpanRecorder, StepAnchor, StepPoint, TrainerTrace,
};
