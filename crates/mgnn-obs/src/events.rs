//! Request-correlated trace events.
//!
//! Every remote pull carries a deterministic request id ([`request_id`]):
//! a pure function of *where* the pull originates (prepare loop, baseline
//! prepare, lookahead planner, or prefetcher init), *which* trainer
//! issues it, and the training step — never a shared counter, so ids are
//! identical across the sequential and threaded engines and across pool
//! widths. The cluster and prefetcher emit [`TraceEvent`]s keyed by that
//! id as a pull walks the fault ladder (delay → timeout/truncation/
//! disconnect → retry → respawn → stale/zero-fill), which makes every
//! degraded input row attributable to the exact fault verdict that
//! caused it.
//!
//! The log is a process-global buffer with the same lifecycle as
//! [`crate::sink`]: install before a run, drain after, one atomic load
//! per emission site when disabled. [`to_jsonl`] renders a drained batch
//! as sorted JSON-lines; the sort is deterministic even though threaded
//! trainers interleave their pushes arbitrarily.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Request originated in the prefetcher's steady-state prepare loop.
pub const ORIGIN_PREPARE: u8 = 0;
/// Request originated in a baseline (no-prefetch) inline prepare.
pub const ORIGIN_BASELINE: u8 = 1;
/// Request originated in the lookahead planner (off the critical path).
pub const ORIGIN_PLANNED: u8 = 2;
/// Request originated in prefetcher buffer initialization.
pub const ORIGIN_INIT: u8 = 3;

/// Deterministic request id for a pull: `origin` (+1, so ids are never
/// 0 — 0 means "untagged"), trainer rank, and step packed into one u64.
/// 16 bits of rank and 40 bits of step leave both far beyond any
/// realistic run before wrapping.
pub fn request_id(origin: u8, rank: u64, step: u64) -> u64 {
    ((origin as u64 + 1) << 56) | ((rank & 0xFFFF) << 40) | (step & 0xFF_FFFF_FFFF)
}

/// One event in a request's fault/degradation history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The pull this event belongs to ([`request_id`]; never 0).
    pub request_id: u64,
    /// What happened: `"delay"`, `"timeout"`, `"truncated"`,
    /// `"disconnect"`, `"retry"`, `"respawn"`, `"zero_fill"` (cluster),
    /// `"stale_rows"`, `"degraded_rows"` (prefetcher).
    pub kind: &'static str,
    /// Partition/server the event concerns.
    pub part: u32,
    /// Retry attempt (0 for first-round events).
    pub attempt: u32,
    /// Kind-specific magnitude (delay steps, rows zero-filled, ...).
    pub value: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());

/// Install the global event log; subsequent emissions land here.
pub fn install() {
    EVENTS.lock().unwrap().clear();
    ENABLED.store(true, Ordering::Release);
}

/// Disable the log and return anything still buffered.
pub fn uninstall() -> Vec<TraceEvent> {
    ENABLED.store(false, Ordering::Release);
    std::mem::take(&mut *EVENTS.lock().unwrap())
}

/// Whether the log is installed (one atomic load).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Record an event if the log is installed; a no-op otherwise.
pub fn push(event: TraceEvent) {
    if enabled() {
        EVENTS.lock().unwrap().push(event);
    }
}

/// Take all buffered events, leaving the log installed.
pub fn drain() -> Vec<TraceEvent> {
    std::mem::take(&mut *EVENTS.lock().unwrap())
}

/// Canonical order: by request id, then ladder position approximated by
/// (attempt, kind, part, value). Threaded trainers push in arbitrary
/// interleavings; sorting makes the exported log reproducible.
pub fn sort_events(events: &mut [TraceEvent]) {
    events.sort_by(|a, b| {
        (a.request_id, a.attempt, a.kind, a.part, a.value).cmp(&(
            b.request_id,
            b.attempt,
            b.kind,
            b.part,
            b.value,
        ))
    });
}

/// Render events as JSON-lines in canonical order. Fields are plain
/// integers and fixed strings, so no escaping is needed.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut sorted = events.to_vec();
    sort_events(&mut sorted);
    let mut out = String::with_capacity(sorted.len() * 96);
    for e in &sorted {
        out.push_str(&format!(
            "{{\"request_id\":{},\"kind\":\"{}\",\"part\":{},\"attempt\":{},\"value\":{}}}\n",
            e.request_id, e.kind, e.part, e.attempt, e.value
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Single lifecycle test: the log is process-global (see sink.rs for
    // the same pattern and rationale).
    #[test]
    fn lifecycle_and_jsonl() {
        assert!(!enabled());
        push(TraceEvent {
            request_id: 1,
            kind: "timeout",
            part: 0,
            attempt: 0,
            value: 0,
        });
        install();
        assert!(enabled());
        assert!(drain().is_empty(), "push before install must not land");
        push(TraceEvent {
            request_id: request_id(ORIGIN_PREPARE, 1, 7),
            kind: "retry",
            part: 2,
            attempt: 1,
            value: 0,
        });
        push(TraceEvent {
            request_id: request_id(ORIGIN_PREPARE, 0, 7),
            kind: "timeout",
            part: 2,
            attempt: 0,
            value: 0,
        });
        let got = uninstall();
        assert!(!enabled());
        assert_eq!(got.len(), 2);

        let jsonl = to_jsonl(&got);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        // Sorted by request id: rank 0 before rank 1.
        assert!(lines[0].contains("\"kind\":\"timeout\""));
        assert!(lines[1].contains("\"kind\":\"retry\""));
        for line in lines {
            assert!(line.starts_with("{\"request_id\":"));
            assert!(line.ends_with('}'));
        }
    }

    #[test]
    fn request_ids_are_deterministic_nonzero_and_distinct() {
        let a = request_id(ORIGIN_PREPARE, 0, 0);
        assert_ne!(a, 0, "id 0 is reserved for untagged pulls");
        assert_eq!(a, request_id(ORIGIN_PREPARE, 0, 0), "pure function");
        // Distinct along each axis.
        assert_ne!(a, request_id(ORIGIN_BASELINE, 0, 0));
        assert_ne!(a, request_id(ORIGIN_PLANNED, 0, 0));
        assert_ne!(a, request_id(ORIGIN_INIT, 0, 0));
        assert_ne!(a, request_id(ORIGIN_PREPARE, 1, 0));
        assert_ne!(a, request_id(ORIGIN_PREPARE, 0, 1));
        // Rank and step land in disjoint bit ranges.
        let b = request_id(ORIGIN_PREPARE, 3, 12345);
        assert_eq!((b >> 56) & 0xFF, ORIGIN_PREPARE as u64 + 1);
        assert_eq!((b >> 40) & 0xFFFF, 3);
        assert_eq!(b & 0xFF_FFFF_FFFF, 12345);
    }
}
