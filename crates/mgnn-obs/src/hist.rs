//! Log-bucketed latency histograms.
//!
//! Durations land in power-of-two buckets anchored at 1 ns, so 64 buckets
//! cover everything from sub-nanosecond (bucket 0) to ~584 years. Recording
//! is O(1) with no allocation after construction; quantiles (p50/p95/p99)
//! are answered from the bucket counts, clamped to the exact observed
//! min/max so degenerate distributions report exact values.

/// Lower bound of bucket 0, in seconds.
const BASE_S: f64 = 1.0e-9;
/// Number of buckets.
const NUM_BUCKETS: usize = 64;

/// A fixed-size log₂-bucketed histogram of durations in seconds.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: [u64; NUM_BUCKETS],
    count: u64,
    sum_s: f64,
    min_s: f64,
    max_s: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; NUM_BUCKETS],
            count: 0,
            sum_s: 0.0,
            min_s: f64::INFINITY,
            max_s: 0.0,
        }
    }
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(dur_s: f64) -> usize {
        if dur_s <= BASE_S {
            return 0;
        }
        let idx = (dur_s / BASE_S).log2() as usize;
        idx.min(NUM_BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `i` in seconds.
    fn bucket_upper(i: usize) -> f64 {
        BASE_S * (1u64 << (i + 1).min(63)) as f64
    }

    /// Record one duration (negative durations are clamped to 0).
    pub fn record(&mut self, dur_s: f64) {
        let d = dur_s.max(0.0);
        self.counts[Self::bucket_of(d)] += 1;
        self.count += 1;
        self.sum_s += d;
        self.min_s = self.min_s.min(d);
        self.max_s = self.max_s.max(d);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded durations (seconds).
    pub fn sum_s(&self) -> f64 {
        self.sum_s
    }

    /// Smallest recorded duration; 0.0 when empty.
    pub fn min_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min_s
        }
    }

    /// Largest recorded duration; 0.0 when empty.
    pub fn max_s(&self) -> f64 {
        self.max_s
    }

    /// Mean duration; 0.0 when empty.
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_s / self.count as f64
        }
    }

    /// Approximate quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// holding the q-th recorded value, clamped to `[min, max]`. 0.0 when
    /// empty; `q ≤ 0` (and NaN) return the observed min, `q ≥ 1` the
    /// observed max.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        // Boundary quantiles bypass the bucket walk: a NaN `q` would
        // otherwise silently truncate to the first bucket, and `q = 1`
        // could under-report the max when a recorded duration exceeds
        // the last bucket's nominal upper bound.
        if q.is_nan() || q <= 0.0 {
            return self.min_s();
        }
        if q >= 1.0 {
            return self.max_s();
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Self::bucket_upper(i).clamp(self.min_s, self.max_s);
            }
        }
        self.max_s
    }

    /// Median.
    pub fn p50_s(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95_s(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99_s(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Non-empty buckets as `(lower_bound_s, upper_bound_s, count)` rows.
    pub fn buckets(&self) -> Vec<(f64, f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let lo = if i == 0 {
                    0.0
                } else {
                    BASE_S * (1u64 << i) as f64
                };
                (lo, Self::bucket_upper(i), c)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroed() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50_s(), 0.0);
        assert_eq!(h.min_s(), 0.0);
        assert_eq!(h.max_s(), 0.0);
    }

    #[test]
    fn single_value_exact() {
        let mut h = LatencyHistogram::new();
        h.record(3.2e-3);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min_s(), 3.2e-3);
        assert_eq!(h.max_s(), 3.2e-3);
        // Clamped to [min, max] ⇒ exact for a single sample.
        assert_eq!(h.p50_s(), 3.2e-3);
        assert_eq!(h.p99_s(), 3.2e-3);
    }

    #[test]
    fn quantiles_ordered_and_bounded() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 1.0e-6);
        }
        assert!(h.p50_s() <= h.p95_s());
        assert!(h.p95_s() <= h.p99_s());
        assert!(h.p99_s() <= h.max_s());
        assert!(h.min_s() <= h.p50_s());
        // p50 of a uniform 1µs..1ms spread lands within a 2× bucket of
        // the true median.
        let true_median = 500.0e-6;
        assert!(h.p50_s() >= true_median / 2.0 && h.p50_s() <= true_median * 2.0);
    }

    #[test]
    fn zero_and_negative_durations() {
        let mut h = LatencyHistogram::new();
        h.record(0.0);
        h.record(-1.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max_s(), 0.0);
        assert_eq!(h.sum_s(), 0.0);
    }

    #[test]
    fn huge_duration_clamps_to_last_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(1.0e30);
        assert_eq!(h.count(), 1);
        assert_eq!(h.p99_s(), 1.0e30); // clamped to observed max
    }

    #[test]
    fn quantile_boundaries_pin_min_and_max() {
        let mut h = LatencyHistogram::new();
        h.record(1.0e-6);
        h.record(1.0e-3);
        h.record(1.0);
        // q ≤ 0 (including far out of range) is the observed min, q ≥ 1
        // the observed max — never a bucket bound.
        assert_eq!(h.quantile(0.0), 1.0e-6);
        assert_eq!(h.quantile(-3.0), 1.0e-6);
        assert_eq!(h.quantile(1.0), 1.0);
        assert_eq!(h.quantile(2.0), 1.0);
        // NaN asks for nothing meaningful; pin it to the min rather than
        // whatever bucket a silent NaN→0 cast used to land in.
        assert_eq!(h.quantile(f64::NAN), 1.0e-6);
        // Empty histograms answer 0.0 for every q, NaN included.
        let empty = LatencyHistogram::new();
        for q in [f64::NAN, -1.0, 0.0, 0.5, 1.0, 2.0] {
            assert_eq!(empty.quantile(q), 0.0);
        }
    }

    #[test]
    fn quantile_of_sub_bucket_zero_durations() {
        // Durations at or below the 1 ns anchor all land in bucket 0;
        // the [min, max] clamp must keep quantiles at the observed
        // values instead of bucket 0's 2 ns upper bound.
        let mut h = LatencyHistogram::new();
        for _ in 0..10 {
            h.record(0.0);
        }
        assert_eq!(h.p50_s(), 0.0);
        assert_eq!(h.p99_s(), 0.0);
        let mut tiny = LatencyHistogram::new();
        tiny.record(1.0e-10);
        tiny.record(5.0e-10);
        assert_eq!(tiny.quantile(0.0), 1.0e-10);
        assert_eq!(tiny.quantile(1.0), 5.0e-10);
        assert!(tiny.p50_s() <= 5.0e-10, "p50 left the observed range");
    }

    #[test]
    fn q_one_reports_max_beyond_last_bucket_bound() {
        // A duration past the last bucket's nominal upper bound used to
        // make q=1 report that bound (~2^63 ns) instead of the max.
        let mut h = LatencyHistogram::new();
        h.record(1.0);
        h.record(1.0e30);
        assert_eq!(h.quantile(1.0), 1.0e30);
        assert!(h.p50_s() >= 1.0);
    }

    #[test]
    fn buckets_report_nonempty_rows() {
        let mut h = LatencyHistogram::new();
        h.record(1.0e-6);
        h.record(1.1e-6);
        h.record(1.0e-3);
        let rows = h.buckets();
        assert_eq!(rows.iter().map(|r| r.2).sum::<u64>(), 3);
        for (lo, hi, _) in rows {
            assert!(lo < hi);
        }
    }
}
