//! Exporters: Chrome/Perfetto `trace.json` and a serde JSON snapshot.
//!
//! The Perfetto export emits the Chrome trace-event format (the
//! `{"traceEvents": [...]}` envelope of complete `"X"` events plus `"M"`
//! metadata naming processes and threads), which both
//! <https://ui.perfetto.dev> and `chrome://tracing` open directly. Each
//! trainer becomes one *process* with up to three *threads*: its train
//! lane, its prepare lane, and (when the traced RPC server is used) a
//! server lane. Timestamps are the simulated timeline in microseconds,
//! resolved through each trace's per-step anchors; spans whose step has
//! no anchor (a batch prepared ahead but never consumed) are dropped.
//!
//! The snapshot export keeps no per-event data — just per-phase latency
//! summaries and the per-step telemetry series — so it stays small even
//! for long runs.

use crate::span::{SpanEvent, TrainerTrace};
use serde::{Serialize, Value};

/// Microseconds per second (trace-event timestamps are µs).
const US: f64 = 1.0e6;

fn event_row(trace: &TrainerTrace, ev: &SpanEvent, start_s: f64) -> Value {
    Value::obj([
        ("name", Value::Str(ev.phase.name().into())),
        ("ph", Value::Str("X".into())),
        ("pid", Value::U64(trace.trainer as u64)),
        ("tid", Value::U64(ev.lane.tid() as u64)),
        ("ts", Value::F64(start_s * US)),
        ("dur", Value::F64(ev.dur_s * US)),
        ("cat", Value::Str(ev.lane.name().into())),
        ("args", Value::obj([("step", Value::U64(ev.step))])),
    ])
}

fn metadata_row(name: &str, pid: u64, tid: Option<u64>, label: &str) -> Value {
    let mut fields = vec![
        ("name".to_string(), Value::Str(name.into())),
        ("ph".to_string(), Value::Str("M".into())),
        ("pid".to_string(), Value::U64(pid)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid".to_string(), Value::U64(tid)));
    }
    fields.push((
        "args".to_string(),
        Value::obj([("name", Value::Str(label.into()))]),
    ));
    Value::Obj(fields)
}

/// Lower a set of trainer traces to a Chrome/Perfetto trace-event tree.
pub fn perfetto_trace(traces: &[TrainerTrace]) -> Value {
    let mut rows: Vec<Value> = Vec::new();
    for trace in traces {
        let pid = trace.trainer as u64;
        rows.push(metadata_row(
            "process_name",
            pid,
            None,
            &format!("trainer {} (part {})", trace.trainer, trace.part_id),
        ));
        // Name only the lanes that actually carry events.
        let mut lanes: Vec<_> = trace.events.iter().map(|e| e.lane).collect();
        lanes.sort_by_key(|l| l.tid());
        lanes.dedup();
        for lane in lanes {
            rows.push(metadata_row(
                "thread_name",
                pid,
                Some(lane.tid() as u64),
                lane.name(),
            ));
        }
        // Resolve each span onto the absolute timeline, then sort for a
        // deterministic file (ring order interleaves the two writers).
        let mut resolved: Vec<(u64, u32, f64, u64, SpanEvent)> = trace
            .events
            .iter()
            .filter_map(|ev| {
                trace
                    .absolute_start_s(ev)
                    .map(|s| (pid, ev.lane.tid(), s, ev.step, *ev))
            })
            .collect();
        resolved.sort_by(|a, b| {
            (a.0, a.1, a.3, a.4.phase.index())
                .cmp(&(b.0, b.1, b.3, b.4.phase.index()))
                .then(a.2.total_cmp(&b.2))
        });
        for (_, _, start_s, _, ev) in &resolved {
            rows.push(event_row(trace, ev, *start_s));
        }
    }
    Value::obj([
        ("traceEvents", Value::Arr(rows)),
        ("displayTimeUnit", Value::Str("ms".into())),
    ])
}

/// Perfetto trace as a JSON string, ready to write to `trace.json`.
pub fn perfetto_trace_string(traces: &[TrainerTrace]) -> String {
    serde_json::to_string(&perfetto_trace(traces))
}

/// Compact snapshot of a run's telemetry: per-trainer phase summaries and
/// step series, without individual span events.
pub fn snapshot(traces: &[TrainerTrace]) -> Value {
    Value::obj([(
        "trainers",
        Value::Arr(traces.iter().map(Serialize::to_value).collect()),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Lane, Phase, SpanRecorder, StepAnchor};

    fn sample_trace() -> TrainerTrace {
        let r = SpanRecorder::for_trainer(2, 5);
        r.record(Lane::Prepare, 0, Phase::Sampling, 0.0, 1.0e-3);
        r.record(Lane::Prepare, 0, Phase::Rpc, 1.0e-3, 3.0e-3);
        r.record(Lane::Train, 0, Phase::Train, 0.0, 2.0e-3);
        r.record_anchor(StepAnchor {
            step: 0,
            prep_start_s: 0.0,
            train_start_s: 4.0e-3,
        });
        // Anchorless span: prepared ahead, never trained on.
        r.record(Lane::Prepare, 1, Phase::Sampling, 0.0, 1.0e-3);
        r.snapshot()
    }

    #[test]
    fn perfetto_has_metadata_and_complete_events() {
        let v = perfetto_trace(&[sample_trace()]);
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .collect();
        let spans: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        // process_name + two thread_names (prepare, train).
        assert_eq!(metas.len(), 3);
        // The anchorless span is dropped.
        assert_eq!(spans.len(), 3);
        let train = spans
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("train"))
            .unwrap();
        assert_eq!(train.get("ts").unwrap().as_f64(), Some(4.0e3));
        assert_eq!(train.get("dur").unwrap().as_f64(), Some(2.0e3));
        assert_eq!(train.get("pid").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn perfetto_string_parses_back() {
        let s = perfetto_trace_string(&[sample_trace()]);
        let v = serde_json::from_str(&s).unwrap();
        assert!(v.get("traceEvents").unwrap().as_array().is_some());
    }

    #[test]
    fn snapshot_carries_phases_and_series() {
        let v = snapshot(&[sample_trace()]);
        let t0 = v.get("trainers").unwrap().get_index(0).unwrap();
        assert_eq!(t0.get("trainer").unwrap().as_u64(), Some(2));
        assert_eq!(t0.get("part_id").unwrap().as_u64(), Some(5));
        let phases = t0.get("phases").unwrap().as_array().unwrap();
        assert!(phases
            .iter()
            .any(|p| p.get("phase").unwrap().as_str() == Some("rpc")));
    }
}
