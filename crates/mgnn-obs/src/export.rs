//! Exporters: Chrome/Perfetto `trace.json` and a serde JSON snapshot.
//!
//! The Perfetto export emits the Chrome trace-event format (the
//! `{"traceEvents": [...]}` envelope of complete `"X"` events plus `"M"`
//! metadata naming processes and threads), which both
//! <https://ui.perfetto.dev> and `chrome://tracing` open directly. Each
//! trainer becomes one *process* with up to three *threads*: its train
//! lane, its prepare lane, and (when the traced RPC server is used) a
//! server lane. Timestamps are the simulated timeline in microseconds,
//! resolved through each trace's per-step anchors; spans whose step has
//! no anchor (a batch prepared ahead but never consumed) are dropped.
//!
//! The snapshot export keeps no per-event data — just per-phase latency
//! summaries and the per-step telemetry series — so it stays small even
//! for long runs.

use crate::span::{Lane, SpanEvent, TrainerTrace};
use serde::{Serialize, Value};

/// Microseconds per second (trace-event timestamps are µs).
const US: f64 = 1.0e6;

/// Display label of a lane's Perfetto track. The out-of-band lanes
/// (fault injection, lookahead planning) carry spans only on the steps
/// where something fired, so they are labeled explicitly — an unlabeled
/// sparse track reads as mysterious gaps in the main timeline.
pub fn track_label(lane: Lane) -> &'static str {
    match lane {
        Lane::Fault => "fault injection (out-of-band)",
        Lane::Lookahead => "lookahead planner (out-of-band)",
        _ => lane.name(),
    }
}

fn event_row(trace: &TrainerTrace, ev: &SpanEvent, start_s: f64) -> Value {
    let args = if ev.corr != 0 {
        Value::obj([
            ("step", Value::U64(ev.step)),
            ("request_id", Value::U64(ev.corr)),
        ])
    } else {
        Value::obj([("step", Value::U64(ev.step))])
    };
    Value::obj([
        ("name", Value::Str(ev.phase.name().into())),
        ("ph", Value::Str("X".into())),
        ("pid", Value::U64(trace.trainer as u64)),
        ("tid", Value::U64(ev.lane.tid() as u64)),
        ("ts", Value::F64(start_s * US)),
        ("dur", Value::F64(ev.dur_s * US)),
        ("cat", Value::Str(ev.lane.name().into())),
        ("args", args),
    ])
}

/// One flow-event row (`ph` ∈ {"s", "t", "f"}) at `start_s`, tying the
/// spans that share a request id into a visible arrow chain.
fn flow_row(ph: &str, corr: u64, trace: &TrainerTrace, ev: &SpanEvent, start_s: f64) -> Value {
    let mut fields = vec![
        ("name".to_string(), Value::Str("request".into())),
        ("cat".to_string(), Value::Str("request".into())),
        ("ph".to_string(), Value::Str(ph.into())),
        ("id".to_string(), Value::U64(corr)),
        ("pid".to_string(), Value::U64(trace.trainer as u64)),
        ("tid".to_string(), Value::U64(ev.lane.tid() as u64)),
        ("ts".to_string(), Value::F64(start_s * US)),
    ];
    if ph == "f" {
        // Bind the finish to the enclosing slice's end.
        fields.push(("bp".to_string(), Value::Str("e".into())));
    }
    Value::Obj(fields)
}

fn metadata_row(name: &str, pid: u64, tid: Option<u64>, label: &str) -> Value {
    let mut fields = vec![
        ("name".to_string(), Value::Str(name.into())),
        ("ph".to_string(), Value::Str("M".into())),
        ("pid".to_string(), Value::U64(pid)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid".to_string(), Value::U64(tid)));
    }
    fields.push((
        "args".to_string(),
        Value::obj([("name", Value::Str(label.into()))]),
    ));
    Value::Obj(fields)
}

/// Lower a set of trainer traces to a Chrome/Perfetto trace-event tree.
pub fn perfetto_trace(traces: &[TrainerTrace]) -> Value {
    let mut rows: Vec<Value> = Vec::new();
    for trace in traces {
        let pid = trace.trainer as u64;
        rows.push(metadata_row(
            "process_name",
            pid,
            None,
            &format!("trainer {} (part {})", trace.trainer, trace.part_id),
        ));
        // Name only the lanes that actually carry events.
        let mut lanes: Vec<_> = trace.events.iter().map(|e| e.lane).collect();
        lanes.sort_by_key(|l| l.tid());
        lanes.dedup();
        for lane in lanes {
            rows.push(metadata_row(
                "thread_name",
                pid,
                Some(lane.tid() as u64),
                track_label(lane),
            ));
        }
        // Resolve each span onto the absolute timeline, then sort for a
        // deterministic file (ring order interleaves the two writers).
        let mut resolved: Vec<(u64, u32, f64, u64, SpanEvent)> = trace
            .events
            .iter()
            .filter_map(|ev| {
                trace
                    .absolute_start_s(ev)
                    .map(|s| (pid, ev.lane.tid(), s, ev.step, *ev))
            })
            .collect();
        resolved.sort_by(|a, b| {
            (a.0, a.1, a.3, a.4.phase.index())
                .cmp(&(b.0, b.1, b.3, b.4.phase.index()))
                .then(a.2.total_cmp(&b.2))
        });
        for (_, _, start_s, _, ev) in &resolved {
            rows.push(event_row(trace, ev, *start_s));
        }
        // Flow events: chain every group of ≥2 spans sharing a request
        // id ("s" at the first, "t" through the middle, "f" at the
        // last), so the rpc → fault hand-off of one tagged pull renders
        // as arrows in Perfetto. Groups sort by id for a stable file.
        let mut corrs: Vec<u64> = resolved
            .iter()
            .map(|(_, _, _, _, ev)| ev.corr)
            .filter(|&c| c != 0)
            .collect();
        corrs.sort_unstable();
        corrs.dedup();
        for corr in corrs {
            let mut group: Vec<(f64, &SpanEvent)> = resolved
                .iter()
                .filter(|(_, _, _, _, ev)| ev.corr == corr)
                .map(|(_, _, start_s, _, ev)| (*start_s, ev))
                .collect();
            if group.len() < 2 {
                continue;
            }
            group.sort_by(|a, b| {
                a.0.total_cmp(&b.0)
                    .then(a.1.lane.tid().cmp(&b.1.lane.tid()))
            });
            let last = group.len() - 1;
            for (i, (start_s, ev)) in group.iter().enumerate() {
                let ph = if i == 0 {
                    "s"
                } else if i == last {
                    "f"
                } else {
                    "t"
                };
                rows.push(flow_row(ph, corr, trace, ev, *start_s));
            }
        }
    }
    Value::obj([
        ("traceEvents", Value::Arr(rows)),
        ("displayTimeUnit", Value::Str("ms".into())),
    ])
}

/// Perfetto trace as a JSON string, ready to write to `trace.json`.
pub fn perfetto_trace_string(traces: &[TrainerTrace]) -> String {
    serde_json::to_string(&perfetto_trace(traces))
}

/// Compact snapshot of a run's telemetry: per-trainer phase summaries and
/// step series, without individual span events.
pub fn snapshot(traces: &[TrainerTrace]) -> Value {
    Value::obj([(
        "trainers",
        Value::Arr(traces.iter().map(Serialize::to_value).collect()),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Lane, Phase, SpanRecorder, StepAnchor};

    fn sample_trace() -> TrainerTrace {
        let r = SpanRecorder::for_trainer(2, 5);
        r.record(Lane::Prepare, 0, Phase::Sampling, 0.0, 1.0e-3);
        r.record(Lane::Prepare, 0, Phase::Rpc, 1.0e-3, 3.0e-3);
        r.record(Lane::Train, 0, Phase::Train, 0.0, 2.0e-3);
        r.record_anchor(StepAnchor {
            step: 0,
            prep_start_s: 0.0,
            train_start_s: 4.0e-3,
        });
        // Anchorless span: prepared ahead, never trained on.
        r.record(Lane::Prepare, 1, Phase::Sampling, 0.0, 1.0e-3);
        r.snapshot()
    }

    #[test]
    fn perfetto_has_metadata_and_complete_events() {
        let v = perfetto_trace(&[sample_trace()]);
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .collect();
        let spans: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        // process_name + two thread_names (prepare, train).
        assert_eq!(metas.len(), 3);
        // The anchorless span is dropped.
        assert_eq!(spans.len(), 3);
        let train = spans
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("train"))
            .unwrap();
        assert_eq!(train.get("ts").unwrap().as_f64(), Some(4.0e3));
        assert_eq!(train.get("dur").unwrap().as_f64(), Some(2.0e3));
        assert_eq!(train.get("pid").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn perfetto_string_parses_back() {
        let s = perfetto_trace_string(&[sample_trace()]);
        let v = serde_json::from_str(&s).unwrap();
        assert!(v.get("traceEvents").unwrap().as_array().is_some());
    }

    #[test]
    fn out_of_band_lanes_get_distinct_track_names() {
        // The label contract, pinned directly…
        assert_eq!(track_label(Lane::Fault), "fault injection (out-of-band)");
        assert_eq!(
            track_label(Lane::Lookahead),
            "lookahead planner (out-of-band)"
        );
        assert_eq!(track_label(Lane::Prepare), "prepare");
        assert_eq!(track_label(Lane::Train), "train");
        assert_eq!(track_label(Lane::Server), "server");

        // …and through the rendered metadata rows.
        let r = SpanRecorder::for_trainer(0, 0);
        r.record(Lane::Prepare, 0, Phase::Rpc, 0.0, 1.0e-3);
        r.record(Lane::Fault, 0, Phase::Fault, 1.0e-3, 2.0e-3);
        r.record(Lane::Lookahead, 0, Phase::Planned, 0.0, 5.0e-4);
        r.record_anchor(StepAnchor {
            step: 0,
            prep_start_s: 0.0,
            train_start_s: 4.0e-3,
        });
        let v = perfetto_trace(&[r.snapshot()]);
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let thread_label = |tid: u64| -> Option<&str> {
            events.iter().find_map(|e| {
                let is_thread_meta = e.get("ph").and_then(Value::as_str) == Some("M")
                    && e.get("name").and_then(Value::as_str) == Some("thread_name")
                    && e.get("tid").and_then(Value::as_u64) == Some(tid);
                if !is_thread_meta {
                    return None;
                }
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
            })
        };
        assert_eq!(
            thread_label(Lane::Fault.tid() as u64),
            Some("fault injection (out-of-band)")
        );
        assert_eq!(
            thread_label(Lane::Lookahead.tid() as u64),
            Some("lookahead planner (out-of-band)")
        );
        assert_eq!(thread_label(Lane::Prepare.tid() as u64), Some("prepare"));
    }

    #[test]
    fn correlated_spans_emit_flow_events() {
        let r = SpanRecorder::for_trainer(1, 0);
        // One tagged pull: its rpc span and its fault span share an id.
        r.record_corr(Lane::Prepare, 0, Phase::Rpc, 1.0e-3, 3.0e-3, 77);
        r.record_corr(Lane::Fault, 0, Phase::Fault, 4.0e-3, 2.0e-3, 77);
        // A lone correlated span must NOT produce a dangling flow.
        r.record_corr(Lane::Prepare, 0, Phase::Copy, 6.0e-3, 1.0e-3, 99);
        r.record(Lane::Prepare, 0, Phase::Sampling, 0.0, 1.0e-3);
        r.record_anchor(StepAnchor {
            step: 0,
            prep_start_s: 0.0,
            train_start_s: 8.0e-3,
        });
        let v = perfetto_trace(&[r.snapshot()]);
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let flows: Vec<_> = events
            .iter()
            .filter(|e| {
                matches!(
                    e.get("ph").unwrap().as_str(),
                    Some("s") | Some("t") | Some("f")
                )
            })
            .collect();
        assert_eq!(flows.len(), 2, "one start + one finish for the pair");
        assert!(flows
            .iter()
            .all(|f| f.get("id").unwrap().as_u64() == Some(77)));
        assert_eq!(flows[0].get("ph").unwrap().as_str(), Some("s"));
        assert_eq!(flows[1].get("ph").unwrap().as_str(), Some("f"));
        assert_eq!(flows[1].get("bp").unwrap().as_str(), Some("e"));
        // The correlated X rows carry the id in args for inspection.
        let rpc = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("rpc"))
            .unwrap();
        assert_eq!(
            rpc.get("args").unwrap().get("request_id").unwrap().as_u64(),
            Some(77)
        );
        // Uncorrelated rows don't.
        let sampling = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("sampling"))
            .unwrap();
        assert!(sampling.get("args").unwrap().get("request_id").is_none());
    }

    #[test]
    fn snapshot_carries_phases_and_series() {
        let v = snapshot(&[sample_trace()]);
        let t0 = v.get("trainers").unwrap().get_index(0).unwrap();
        assert_eq!(t0.get("trainer").unwrap().as_u64(), Some(2));
        assert_eq!(t0.get("part_id").unwrap().as_u64(), Some(5));
        let phases = t0.get("phases").unwrap().as_array().unwrap();
        assert!(phases
            .iter()
            .any(|p| p.get("phase").unwrap().as_str() == Some("rpc")));
    }
}
