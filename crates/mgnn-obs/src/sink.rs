//! Global run-capture sink.
//!
//! The repro binary drives seventeen experiment modules that each build
//! and run engines internally; threading an output channel through every
//! one of them would touch far more code than it is worth. Instead the
//! sink follows the tracing-subscriber idiom: the binary installs a
//! process-global collector before running an experiment, the engine
//! pushes a [`RunCapture`] on finalize *if* a sink is installed, and the
//! binary drains captures afterwards. With no sink installed every hook
//! is a cheap atomic load — the library never pays for observability it
//! did not ask for.

use crate::span::TrainerTrace;
use serde::Value;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// One finished run, as captured by the engine.
#[derive(Debug, Clone)]
pub struct RunCapture {
    /// Label of the run (the engine config's experiment label).
    pub label: String,
    /// The run report, already lowered to a serde value tree.
    pub report: Value,
    /// Per-trainer traces (empty when tracing was disabled).
    pub traces: Vec<TrainerTrace>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static CAPTURES: Mutex<Vec<RunCapture>> = Mutex::new(Vec::new());

/// Install the global sink; subsequent runs push their captures here.
pub fn install() {
    CAPTURES.lock().unwrap().clear();
    ENABLED.store(true, Ordering::Release);
}

/// Disable the sink and return anything still buffered.
pub fn uninstall() -> Vec<RunCapture> {
    ENABLED.store(false, Ordering::Release);
    std::mem::take(&mut *CAPTURES.lock().unwrap())
}

/// Whether a sink is currently installed (one atomic load).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Push a capture if a sink is installed; a no-op otherwise.
pub fn push(capture: RunCapture) {
    if enabled() {
        CAPTURES.lock().unwrap().push(capture);
    }
}

/// Take all buffered captures, leaving the sink installed.
pub fn drain() -> Vec<RunCapture> {
    std::mem::take(&mut *CAPTURES.lock().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test exercises the whole lifecycle: the sink is process-global,
    // so splitting these assertions across #[test] fns would race under
    // the parallel test runner.
    #[test]
    fn lifecycle() {
        assert!(!enabled());
        push(RunCapture {
            label: "ignored".into(),
            report: Value::Null,
            traces: Vec::new(),
        });
        install();
        assert!(enabled());
        assert!(drain().is_empty(), "push before install must not land");
        push(RunCapture {
            label: "a".into(),
            report: Value::Null,
            traces: Vec::new(),
        });
        push(RunCapture {
            label: "b".into(),
            report: Value::Null,
            traces: Vec::new(),
        });
        let got = drain();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].label, "a");
        assert!(drain().is_empty(), "drain empties the buffer");
        assert!(enabled(), "drain leaves the sink installed");
        push(RunCapture {
            label: "c".into(),
            report: Value::Null,
            traces: Vec::new(),
        });
        let rest = uninstall();
        assert_eq!(rest.len(), 1);
        assert!(!enabled());
    }
}
