//! Live metric registry: process-global counters, gauges, and labeled
//! log₂ histograms.
//!
//! The span layer ([`crate::span`]) answers *post-hoc* questions — it
//! buffers everything and exports after the run. The registry answers
//! *live* ones: every metric is a static with interior mutability, so a
//! scrape thread ([`crate::prom`]) can render a consistent snapshot at
//! any instant while trainer threads keep recording. Recording is
//! lock-free for counters and gauges (one relaxed atomic op) and a
//! short uncontended mutex for histograms.
//!
//! Lifecycle mirrors [`crate::sink`]: the registry is disabled by
//! default and every producer gates on [`enabled`] (one atomic load),
//! so a build that never calls [`enable`] pays nothing. [`enable`]
//! resets all metrics first, making the registry's totals attributable
//! to the run that enabled it — the reconciliation tests compare them
//! against the engine's own `CommMetrics` totals for exactness.
//!
//! Determinism contract: nothing in this module is read by the engine.
//! Metrics flow one way (engine → registry), so enabling telemetry can
//! never perturb the simulated clock or a `RunReport`.

use crate::hist::LatencyHistogram;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// A monotonically increasing counter (Prometheus `counter`).
pub struct Counter {
    name: &'static str,
    help: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A new zeroed counter. `const` so counters can be statics.
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Counter {
            name,
            help,
            value: AtomicU64::new(0),
        }
    }

    /// Add `n` (no-op for 0 — keeps fault-free runs free of even the
    /// relaxed RMW).
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Metric name as exposed to Prometheus.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line help string.
    pub fn help(&self) -> &'static str {
        self.help
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins f64 gauge (stored as bits in an `AtomicU64`).
pub struct Gauge {
    name: &'static str,
    help: &'static str,
    bits: AtomicU64,
}

impl Gauge {
    /// A new gauge at 0.0 (`f64` zero is all-zero bits).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Gauge {
            name,
            help,
            bits: AtomicU64::new(0),
        }
    }

    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Metric name as exposed to Prometheus.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line help string.
    pub fn help(&self) -> &'static str {
        self.help
    }

    fn reset(&self) {
        self.bits.store(0, Ordering::Relaxed);
    }
}

/// A log₂-bucketed duration histogram ([`LatencyHistogram`]) per label
/// value, under one static label key. Label values are `&'static str`
/// so recording never allocates once a series exists; series are kept
/// sorted by label so scrapes render deterministically.
pub struct LabeledHistogram {
    name: &'static str,
    help: &'static str,
    label_key: &'static str,
    series: Mutex<Vec<(&'static str, LatencyHistogram)>>,
}

impl LabeledHistogram {
    /// A new empty histogram family.
    pub const fn new(name: &'static str, help: &'static str, label_key: &'static str) -> Self {
        LabeledHistogram {
            name,
            help,
            label_key,
            series: Mutex::new(Vec::new()),
        }
    }

    /// Record one duration (seconds) under `label`.
    pub fn record(&self, label: &'static str, dur_s: f64) {
        let mut series = self.series.lock().unwrap();
        match series.iter_mut().find(|(l, _)| *l == label) {
            Some((_, h)) => h.record(dur_s),
            None => {
                let mut h = LatencyHistogram::new();
                h.record(dur_s);
                series.push((label, h));
                series.sort_by_key(|(l, _)| *l);
            }
        }
    }

    /// Snapshot of every `(label, histogram)` series.
    pub fn series(&self) -> Vec<(&'static str, LatencyHistogram)> {
        self.series.lock().unwrap().clone()
    }

    /// Metric name as exposed to Prometheus.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line help string.
    pub fn help(&self) -> &'static str {
        self.help
    }

    /// The label key every series is keyed under.
    pub fn label_key(&self) -> &'static str {
        self.label_key
    }

    fn reset(&self) {
        self.series.lock().unwrap().clear();
    }
}

// ---------------------------------------------------------------------
// The metric set. The first 18 counters mirror `CommMetrics` field for
// field — the hooks live inside the corresponding `CommMetrics` methods,
// so registry totals reconcile exactly with the summed per-trainer
// snapshots (asserted by the integration tests).
// ---------------------------------------------------------------------

/// RPC pulls issued (`CommMetrics::rpc_calls`).
pub static RPC_CALLS: Counter = Counter::new("mgnn_rpc_calls_total", "RPC pull calls issued");
/// Remote feature rows fetched (`CommMetrics::remote_nodes_fetched`).
pub static REMOTE_NODES: Counter = Counter::new(
    "mgnn_remote_nodes_fetched_total",
    "Remote feature rows fetched over RPC",
);
/// Remote bytes moved (`CommMetrics::remote_bytes`).
pub static REMOTE_BYTES: Counter =
    Counter::new("mgnn_remote_bytes_total", "Remote feature bytes fetched");
/// Local feature rows copied (`CommMetrics::local_nodes_copied`).
pub static LOCAL_NODES: Counter = Counter::new(
    "mgnn_local_nodes_copied_total",
    "Feature rows copied from the local partition",
);
/// Prefetch-buffer hits (`CommMetrics::buffer_hits`).
pub static PREFETCH_HITS: Counter =
    Counter::new("mgnn_prefetch_hits_total", "Prefetch buffer lookup hits");
/// Prefetch-buffer misses (`CommMetrics::buffer_misses`).
pub static PREFETCH_MISSES: Counter = Counter::new(
    "mgnn_prefetch_misses_total",
    "Prefetch buffer lookup misses",
);
/// Buffer evictions (`CommMetrics::evictions`).
pub static EVICTIONS: Counter =
    Counter::new("mgnn_evictions_total", "Prefetch buffer rows evicted");
/// Replacement rows fetched (`CommMetrics::replacements_fetched`).
pub static REPLACEMENTS: Counter = Counter::new(
    "mgnn_replacements_fetched_total",
    "Replacement rows fetched after eviction",
);
/// RPC retries (`CommMetrics::rpc_retries`).
pub static RPC_RETRIES: Counter =
    Counter::new("mgnn_rpc_retries_total", "RPC pulls retried after a fault");
/// RPC timeouts (`CommMetrics::rpc_timeouts`).
pub static RPC_TIMEOUTS: Counter =
    Counter::new("mgnn_rpc_timeouts_total", "RPC pulls that timed out");
/// Truncated replies (`CommMetrics::rpc_truncations`).
pub static RPC_TRUNCATIONS: Counter = Counter::new(
    "mgnn_rpc_truncations_total",
    "RPC replies truncated by fault injection",
);
/// Server disconnects (`CommMetrics::rpc_disconnects`).
pub static RPC_DISCONNECTS: Counter = Counter::new(
    "mgnn_rpc_disconnects_total",
    "RPC failures from crashed or dropped servers",
);
/// Injected delay events (`CommMetrics::rpc_delays`).
pub static RPC_DELAYS: Counter = Counter::new("mgnn_rpc_delays_total", "Injected RPC delay events");
/// Server respawns (`CommMetrics::server_respawns`).
pub static SERVER_RESPAWNS: Counter = Counter::new(
    "mgnn_server_respawns_total",
    "Crashed feature servers respawned",
);
/// Stale rows served (`CommMetrics::stale_served`).
pub static STALE_SERVED: Counter = Counter::new(
    "mgnn_stale_served_total",
    "Stale buffer rows served when a replacement pull failed",
);
/// Zero-filled degraded rows (`CommMetrics::degraded_rows`).
pub static DEGRADED_ROWS: Counter = Counter::new(
    "mgnn_degraded_rows_total",
    "Input rows zero-filled after the degradation ladder was exhausted",
);
/// Lookahead planned pulls (`CommMetrics::planned_pulls`).
pub static PLANNED_PULLS: Counter = Counter::new(
    "mgnn_planned_pulls_total",
    "Lookahead-planned pulls issued off the critical path",
);
/// Lookahead planned rows (`CommMetrics::planned_rows`).
pub static PLANNED_ROWS: Counter = Counter::new(
    "mgnn_planned_rows_total",
    "Feature rows fetched by lookahead-planned pulls",
);
/// Training steps completed (engine-side; not a `CommMetrics` field).
pub static STEPS: Counter = Counter::new("mgnn_steps_total", "Training steps completed");

/// Cumulative prefetch-buffer hit rate of the latest finished run.
pub static HIT_RATE: Gauge = Gauge::new(
    "mgnn_buffer_hit_rate",
    "Cumulative prefetch buffer hit rate of the last finished run",
);
/// Simulated makespan of the latest finished run.
pub static MAKESPAN: Gauge = Gauge::new(
    "mgnn_sim_makespan_seconds",
    "Simulated makespan of the last finished run (slowest trainer)",
);
/// World size of the latest run.
pub static WORLD: Gauge = Gauge::new(
    "mgnn_world_trainers",
    "Total trainers in the last started run",
);

/// Per-step latency, labeled by pipeline lane (`prepare`/`train`).
/// Durations are *simulated* seconds — the registry observes the cost
/// model, it never feeds back into it.
pub static STEP_LATENCY: LabeledHistogram = LabeledHistogram::new(
    "mgnn_step_latency",
    "Simulated per-step latency by pipeline lane",
    "lane",
);

/// Every counter, in render order.
pub static COUNTERS: [&Counter; 19] = [
    &RPC_CALLS,
    &REMOTE_NODES,
    &REMOTE_BYTES,
    &LOCAL_NODES,
    &PREFETCH_HITS,
    &PREFETCH_MISSES,
    &EVICTIONS,
    &REPLACEMENTS,
    &RPC_RETRIES,
    &RPC_TIMEOUTS,
    &RPC_TRUNCATIONS,
    &RPC_DISCONNECTS,
    &RPC_DELAYS,
    &SERVER_RESPAWNS,
    &STALE_SERVED,
    &DEGRADED_ROWS,
    &PLANNED_PULLS,
    &PLANNED_ROWS,
    &STEPS,
];

/// Every gauge, in render order.
pub static GAUGES: [&Gauge; 3] = [&HIT_RATE, &MAKESPAN, &WORLD];

/// Every histogram family, in render order.
pub static HISTOGRAMS: [&LabeledHistogram; 1] = [&STEP_LATENCY];

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Enable the registry, resetting every metric first so totals are
/// attributable to the run that enabled it. Producers start recording
/// on their next [`enabled`] check.
pub fn enable() {
    reset();
    ENABLED.store(true, Ordering::Release);
}

/// Disable the registry. Metric values are left in place so a final
/// snapshot can still be rendered after the run.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether the registry is live (one atomic load — every producer's
/// entire cost when telemetry is off).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Zero every counter and gauge and clear every histogram series.
pub fn reset() {
    for c in COUNTERS {
        c.reset();
    }
    for g in GAUGES {
        g.reset();
    }
    for h in HISTOGRAMS {
        h.reset();
    }
}

#[cfg(test)]
pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    // One test exercises the whole lifecycle: the registry is
    // process-global, so splitting these assertions across #[test] fns
    // would race under the parallel test runner. Sibling modules that
    // touch the registry (prom) serialize on TEST_LOCK too.
    #[test]
    fn lifecycle() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        assert!(!enabled());
        assert_eq!(RPC_CALLS.get(), 0);

        RPC_CALLS.inc();
        RPC_CALLS.add(2);
        RPC_CALLS.add(0); // no-op by contract
        assert_eq!(RPC_CALLS.get(), 3);

        HIT_RATE.set(0.75);
        assert_eq!(HIT_RATE.get(), 0.75);

        STEP_LATENCY.record("train", 1.0e-3);
        STEP_LATENCY.record("prepare", 2.0e-3);
        STEP_LATENCY.record("train", 3.0e-3);
        let series = STEP_LATENCY.series();
        assert_eq!(series.len(), 2);
        // Sorted by label for deterministic rendering.
        assert_eq!(series[0].0, "prepare");
        assert_eq!(series[1].0, "train");
        assert_eq!(series[1].1.count(), 2);

        enable();
        assert!(enabled(), "enable flips the flag");
        assert_eq!(RPC_CALLS.get(), 0, "enable resets counters");
        assert_eq!(HIT_RATE.get(), 0.0, "enable resets gauges");
        assert!(STEP_LATENCY.series().is_empty(), "enable resets histograms");

        RPC_CALLS.add(7);
        disable();
        assert!(!enabled());
        assert_eq!(
            RPC_CALLS.get(),
            7,
            "disable keeps values for a final snapshot"
        );
        reset();
        assert_eq!(RPC_CALLS.get(), 0);
    }

    #[test]
    fn metric_names_are_prometheus_style() {
        for c in COUNTERS {
            assert!(c.name().starts_with("mgnn_"), "{}", c.name());
            assert!(c.name().ends_with("_total"), "{}", c.name());
            assert!(!c.help().is_empty());
        }
        for g in GAUGES {
            assert!(g.name().starts_with("mgnn_"), "{}", g.name());
            assert!(!g.name().ends_with("_total"), "{}", g.name());
        }
        for h in HISTOGRAMS {
            assert!(h.name().starts_with("mgnn_"), "{}", h.name());
            assert!(!h.label_key().is_empty());
        }
        // Names must be unique across the whole registry.
        let mut names: Vec<&str> = COUNTERS
            .iter()
            .map(|c| c.name())
            .chain(GAUGES.iter().map(|g| g.name()))
            .chain(HISTOGRAMS.iter().map(|h| h.name()))
            .collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate metric name");
    }
}
