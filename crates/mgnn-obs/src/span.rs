//! Step-scoped span recording for the training pipeline.
//!
//! A [`SpanRecorder`] belongs to one trainer and is shared (behind an
//! `Arc`) between that trainer's worker thread and its prepare thread —
//! exactly the two writers the threaded engine has. Every span is keyed by
//! the *global step* and a [`Lane`] (prepare vs. train vs. server), and
//! carries a start offset **relative to its lane's per-step anchor**: the
//! engine, which owns the simulated clocks, records one [`StepAnchor`] per
//! step mapping those offsets onto the absolute simulated timeline. This
//! split lets the prepare thread record spans for steps the trainer has
//! not reached yet without sharing clock state across threads.
//!
//! Recording is a short mutex-protected ring-buffer push plus an O(1)
//! histogram update; the disabled path is `Option::None` at every call
//! site, so a run without tracing does no synchronization at all.

use crate::hist::LatencyHistogram;
use serde::{Serialize, Value};
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// Pipeline phase a span measures. The first seven mirror the fields of
/// the engine's `Breakdown`; `Allreduce` is the gradient-synchronization
/// tail nested inside `Train`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Neighbor sampling.
    Sampling,
    /// Prefetch-buffer membership probes.
    Lookup,
    /// Scoreboard maintenance (decay + S_A increments).
    Scoring,
    /// Δ-periodic eviction round.
    Evict,
    /// Remote feature fetch over RPC.
    Rpc,
    /// Local feature gather.
    Copy,
    /// DDP training (compute + allreduce).
    Train,
    /// Ring-allreduce portion of the training step.
    Allreduce,
    /// Simulated time lost to faults (injected delays, retries,
    /// backoff). Out of band: unlike the per-step pipeline phases it
    /// only appears on steps where a fault fired, so it is excluded
    /// from [`Phase::ALL`] (whose consumers assert one span per step).
    Fault,
    /// Planned lookahead pull: the lookahead prefetch policy fetching
    /// halo rows for *future* minibatches ahead of their due step. Out
    /// of band like [`Phase::Fault`]: it only appears on steps where
    /// the planner actually pulled something, and its time is charged
    /// to the prepare window, not to the critical-path `rpc` phase.
    Planned,
}

impl Phase {
    /// The per-step pipeline phases, in stable display/index order.
    /// Does **not** include [`Phase::Fault`], which occurs at most once
    /// per step and only under chaos; use [`Phase::REPORTED`] to cover
    /// everything a recorder can hold.
    pub const ALL: [Phase; 8] = [
        Phase::Sampling,
        Phase::Lookup,
        Phase::Scoring,
        Phase::Evict,
        Phase::Rpc,
        Phase::Copy,
        Phase::Train,
        Phase::Allreduce,
    ];

    /// Every phase a recorder can report: [`Phase::ALL`] plus the
    /// out-of-band fault and planned-pull phases.
    pub const REPORTED: [Phase; 10] = [
        Phase::Sampling,
        Phase::Lookup,
        Phase::Scoring,
        Phase::Evict,
        Phase::Rpc,
        Phase::Copy,
        Phase::Train,
        Phase::Allreduce,
        Phase::Fault,
        Phase::Planned,
    ];

    /// Number of distinct phases (size of per-phase dense arrays).
    pub const COUNT: usize = 10;

    /// Dense index into per-phase arrays.
    pub fn index(self) -> usize {
        match self {
            Phase::Sampling => 0,
            Phase::Lookup => 1,
            Phase::Scoring => 2,
            Phase::Evict => 3,
            Phase::Rpc => 4,
            Phase::Copy => 5,
            Phase::Train => 6,
            Phase::Allreduce => 7,
            Phase::Fault => 8,
            Phase::Planned => 9,
        }
    }

    /// Metric name (stable; used in exports and docs).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Sampling => "sampling",
            Phase::Lookup => "lookup",
            Phase::Scoring => "scoring",
            Phase::Evict => "evict",
            Phase::Rpc => "rpc",
            Phase::Copy => "copy",
            Phase::Train => "train",
            Phase::Allreduce => "allreduce",
            Phase::Fault => "fault",
            Phase::Planned => "planned",
        }
    }
}

/// Which track of a trainer's timeline a span lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// The prepare thread (or the interleaved preparation of the
    /// sequential engine): sampling → lookup → scoring → evict →
    /// rpc ∥ copy. Offsets are relative to the step's `prep_start_s`.
    Prepare,
    /// The trainer thread: train (with allreduce nested at its tail).
    /// Offsets are relative to the step's `train_start_s`.
    Train,
    /// A KVStore server thread recording real wall-clock service spans;
    /// offsets are absolute wall seconds since the recorder was created.
    Server,
    /// Fault activity (retries, backoff, injected delays) charged to the
    /// simulated clock; offsets are relative to the step's
    /// `prep_start_s`, like [`Lane::Prepare`] — faults strike during
    /// preparation.
    Fault,
    /// Planned lookahead pulls issued by the lookahead prefetch policy;
    /// offsets are relative to the step's `prep_start_s` (the planner
    /// runs at the head of the prepare window). Keeping these on their
    /// own lane separates planned-pull time from critical-path `rpc`.
    Lookahead,
}

impl Lane {
    /// Track name for exports.
    pub fn name(self) -> &'static str {
        match self {
            Lane::Prepare => "prepare",
            Lane::Train => "train",
            Lane::Server => "server",
            Lane::Fault => "fault",
            Lane::Lookahead => "lookahead",
        }
    }

    /// Perfetto thread id for this lane (1-based; tid 0 renders oddly).
    pub fn tid(self) -> u32 {
        match self {
            Lane::Train => 1,
            Lane::Prepare => 2,
            Lane::Server => 3,
            Lane::Fault => 4,
            Lane::Lookahead => 5,
        }
    }
}

/// One recorded span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanEvent {
    /// Global step (continuous across epochs).
    pub step: u64,
    /// Phase measured.
    pub phase: Phase,
    /// Timeline track.
    pub lane: Lane,
    /// Start offset in seconds, relative to the lane's step anchor.
    pub rel_start_s: f64,
    /// Duration in seconds.
    pub dur_s: f64,
    /// Correlation id tying this span to a tagged remote pull
    /// ([`crate::events::request_id`]); 0 = uncorrelated. Deterministic
    /// (a pure function of origin/trainer/step), so traced reports stay
    /// bitwise identical across engines and pool widths. Exports render
    /// correlated spans as Perfetto flow events.
    pub corr: u64,
}

/// Absolute simulated-time anchors of one step's two lanes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepAnchor {
    /// Global step.
    pub step: u64,
    /// When this step's preparation started on the simulated timeline.
    pub prep_start_s: f64,
    /// When this step's training started on the simulated timeline.
    pub train_start_s: f64,
}

/// One step's telemetry sample: stall, hit rate, overlap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepPoint {
    /// Global step.
    pub step: u64,
    /// Stall seconds attributed to this step (trainer waiting on
    /// preparation; for the serial baseline, the §V-B5 communication
    /// stall `max(t_RPC − t_copy, 0)`).
    pub stall_s: f64,
    /// Buffer hits this step.
    pub hits: u64,
    /// Buffer misses this step.
    pub misses: u64,
    /// Fraction of this step's preparation hidden under training
    /// (1.0 = perfectly overlapped; 0.0 for the serial baseline).
    pub overlap_efficiency: f64,
}

impl StepPoint {
    /// Hit rate of this step; 0.0 with no lookups.
    pub fn hit_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }
}

/// Per-phase latency summary extracted from a recorder.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Phase summarized.
    pub phase: Phase,
    /// Number of spans recorded for this phase.
    pub count: u64,
    /// Exact sum of span durations (seconds) — compare against the
    /// engine's `Breakdown` fields.
    pub sum_s: f64,
    /// Smallest span.
    pub min_s: f64,
    /// Largest span.
    pub max_s: f64,
    /// Median (log-bucket approximation clamped to [min, max]).
    pub p50_s: f64,
    /// 95th percentile.
    pub p95_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
}

/// Everything one trainer's recorder captured, as plain clonable data.
#[derive(Debug, Clone, Default)]
pub struct TrainerTrace {
    /// Trainer index within the run.
    pub trainer: u32,
    /// Partition the trainer lives on.
    pub part_id: u32,
    /// Ring-buffer contents, oldest first (bounded; see `dropped`).
    pub events: Vec<SpanEvent>,
    /// Events overwritten after the ring filled.
    pub dropped: u64,
    /// Per-step timeline anchors, in step order.
    pub anchors: Vec<StepAnchor>,
    /// Per-phase latency summaries (histograms are complete even when the
    /// ring dropped events).
    pub phases: Vec<PhaseStats>,
    /// Per-step stall / hit-rate / overlap series, in step order.
    pub series: Vec<StepPoint>,
}

impl TrainerTrace {
    /// Summary for `phase`, if any span of it was recorded.
    pub fn phase(&self, phase: Phase) -> Option<&PhaseStats> {
        self.phases.iter().find(|p| p.phase == phase)
    }

    /// Absolute simulated start of `ev`, resolved through this trace's
    /// anchors (`None` if the step has no anchor yet — e.g. a prepared-
    /// ahead batch that was never trained on).
    pub fn absolute_start_s(&self, ev: &SpanEvent) -> Option<f64> {
        match ev.lane {
            Lane::Server => Some(ev.rel_start_s),
            Lane::Prepare | Lane::Train | Lane::Fault | Lane::Lookahead => {
                let a = self.anchors.iter().find(|a| a.step == ev.step)?;
                Some(match ev.lane {
                    Lane::Prepare | Lane::Fault | Lane::Lookahead => {
                        a.prep_start_s + ev.rel_start_s
                    }
                    _ => a.train_start_s + ev.rel_start_s,
                })
            }
        }
    }
}

#[derive(Debug)]
struct Inner {
    ring: VecDeque<SpanEvent>,
    capacity: usize,
    dropped: u64,
    hist: [LatencyHistogram; Phase::COUNT],
    sum_s: [f64; Phase::COUNT],
    anchors: Vec<StepAnchor>,
    series: Vec<StepPoint>,
}

/// Thread-safe per-trainer span recorder.
///
/// The engine holds one per trainer when tracing is enabled; when
/// disabled, no recorder exists and every call site short-circuits on
/// `Option::None` (the no-op fast path).
#[derive(Debug)]
pub struct SpanRecorder {
    trainer: u32,
    part_id: u32,
    epoch: Instant,
    inner: Mutex<Inner>,
}

/// Default ring capacity (events per trainer, ≈ 1.5 MiB).
pub const DEFAULT_CAPACITY: usize = 65_536;

impl SpanRecorder {
    /// Recorder for `(trainer, part_id)` with the default ring capacity.
    pub fn for_trainer(trainer: u32, part_id: u32) -> Self {
        Self::with_capacity(trainer, part_id, DEFAULT_CAPACITY)
    }

    /// Recorder with an explicit ring capacity (≥ 1).
    pub fn with_capacity(trainer: u32, part_id: u32, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpanRecorder {
            trainer,
            part_id,
            epoch: Instant::now(),
            inner: Mutex::new(Inner {
                ring: VecDeque::with_capacity(capacity.min(4096)),
                capacity,
                dropped: 0,
                hist: Default::default(),
                sum_s: [0.0; Phase::COUNT],
                anchors: Vec::new(),
                series: Vec::new(),
            }),
        }
    }

    /// Trainer index this recorder belongs to.
    pub fn trainer(&self) -> u32 {
        self.trainer
    }

    /// Record one span. Histogram and sum are always updated; the ring
    /// drops its oldest event once full (counted in `dropped`).
    pub fn record(&self, lane: Lane, step: u64, phase: Phase, rel_start_s: f64, dur_s: f64) {
        self.record_corr(lane, step, phase, rel_start_s, dur_s, 0);
    }

    /// [`record`](Self::record) with a request-correlation id (0 = none).
    pub fn record_corr(
        &self,
        lane: Lane,
        step: u64,
        phase: Phase,
        rel_start_s: f64,
        dur_s: f64,
        corr: u64,
    ) {
        let mut g = self.inner.lock().unwrap();
        let i = phase.index();
        g.hist[i].record(dur_s);
        g.sum_s[i] += dur_s.max(0.0);
        if g.ring.len() == g.capacity {
            g.ring.pop_front();
            g.dropped += 1;
        }
        g.ring.push_back(SpanEvent {
            step,
            phase,
            lane,
            rel_start_s,
            dur_s,
            corr,
        });
    }

    /// Record the simulated-time anchors of one step.
    pub fn record_anchor(&self, anchor: StepAnchor) {
        self.inner.lock().unwrap().anchors.push(anchor);
    }

    /// Record one step's telemetry sample.
    pub fn record_step(&self, point: StepPoint) {
        self.inner.lock().unwrap().series.push(point);
    }

    /// Start a wall-clock span on `lane`; the span is recorded when the
    /// guard drops, with its start expressed as seconds since this
    /// recorder was created. Used by server threads, where no simulated
    /// clock exists.
    pub fn start_wall(&self, lane: Lane, step: u64, phase: Phase) -> WallSpan<'_> {
        WallSpan {
            recorder: self,
            lane,
            step,
            phase,
            t0: Instant::now(),
        }
    }

    /// Snapshot everything recorded so far into plain data.
    pub fn snapshot(&self) -> TrainerTrace {
        let g = self.inner.lock().unwrap();
        let phases = Phase::REPORTED
            .iter()
            .filter(|p| g.hist[p.index()].count() > 0)
            .map(|&p| {
                let h = &g.hist[p.index()];
                PhaseStats {
                    phase: p,
                    count: h.count(),
                    sum_s: g.sum_s[p.index()],
                    min_s: h.min_s(),
                    max_s: h.max_s(),
                    p50_s: h.p50_s(),
                    p95_s: h.p95_s(),
                    p99_s: h.p99_s(),
                }
            })
            .collect();
        TrainerTrace {
            trainer: self.trainer,
            part_id: self.part_id,
            events: g.ring.iter().copied().collect(),
            dropped: g.dropped,
            anchors: g.anchors.clone(),
            phases,
            series: g.series.clone(),
        }
    }
}

/// RAII wall-clock span (see [`SpanRecorder::start_wall`]).
pub struct WallSpan<'a> {
    recorder: &'a SpanRecorder,
    lane: Lane,
    step: u64,
    phase: Phase,
    t0: Instant,
}

impl Drop for WallSpan<'_> {
    fn drop(&mut self) {
        let rel = self.t0.duration_since(self.recorder.epoch).as_secs_f64();
        let dur = self.t0.elapsed().as_secs_f64();
        self.recorder
            .record(self.lane, self.step, self.phase, rel, dur);
    }
}

impl Serialize for Phase {
    fn to_value(&self) -> Value {
        Value::Str(self.name().into())
    }
}

impl Serialize for Lane {
    fn to_value(&self) -> Value {
        Value::Str(self.name().into())
    }
}

impl Serialize for SpanEvent {
    fn to_value(&self) -> Value {
        Value::obj([
            ("step", self.step.to_value()),
            ("phase", self.phase.to_value()),
            ("lane", self.lane.to_value()),
            ("rel_start_s", self.rel_start_s.to_value()),
            ("dur_s", self.dur_s.to_value()),
            ("corr", self.corr.to_value()),
        ])
    }
}

impl Serialize for StepAnchor {
    fn to_value(&self) -> Value {
        Value::obj([
            ("step", self.step.to_value()),
            ("prep_start_s", self.prep_start_s.to_value()),
            ("train_start_s", self.train_start_s.to_value()),
        ])
    }
}

impl Serialize for StepPoint {
    fn to_value(&self) -> Value {
        Value::obj([
            ("step", self.step.to_value()),
            ("stall_s", self.stall_s.to_value()),
            ("hits", self.hits.to_value()),
            ("misses", self.misses.to_value()),
            ("hit_rate", self.hit_rate().to_value()),
            ("overlap_efficiency", self.overlap_efficiency.to_value()),
        ])
    }
}

impl Serialize for PhaseStats {
    fn to_value(&self) -> Value {
        Value::obj([
            ("phase", self.phase.to_value()),
            ("count", self.count.to_value()),
            ("sum_s", self.sum_s.to_value()),
            ("min_s", self.min_s.to_value()),
            ("max_s", self.max_s.to_value()),
            ("p50_s", self.p50_s.to_value()),
            ("p95_s", self.p95_s.to_value()),
            ("p99_s", self.p99_s.to_value()),
        ])
    }
}

impl Serialize for TrainerTrace {
    fn to_value(&self) -> Value {
        Value::obj([
            ("trainer", self.trainer.to_value()),
            ("part_id", self.part_id.to_value()),
            ("dropped", self.dropped.to_value()),
            ("phases", self.phases.to_value()),
            ("series", self.series.to_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn record_and_snapshot() {
        let r = SpanRecorder::for_trainer(3, 1);
        r.record(Lane::Prepare, 0, Phase::Sampling, 0.0, 1.0e-3);
        r.record(Lane::Prepare, 0, Phase::Rpc, 1.0e-3, 4.0e-3);
        r.record(Lane::Train, 0, Phase::Train, 0.0, 2.0e-3);
        r.record_anchor(StepAnchor {
            step: 0,
            prep_start_s: 0.0,
            train_start_s: 5.0e-3,
        });
        let t = r.snapshot();
        assert_eq!(t.trainer, 3);
        assert_eq!(t.events.len(), 3);
        assert_eq!(t.dropped, 0);
        let rpc = t.phase(Phase::Rpc).unwrap();
        assert_eq!(rpc.count, 1);
        assert!((rpc.sum_s - 4.0e-3).abs() < 1e-15);
        assert!(t.phase(Phase::Evict).is_none());
        // Absolute placement through the anchor.
        let train_ev = t.events.iter().find(|e| e.phase == Phase::Train).unwrap();
        assert_eq!(t.absolute_start_s(train_ev), Some(5.0e-3));
        let rpc_ev = t.events.iter().find(|e| e.phase == Phase::Rpc).unwrap();
        assert_eq!(t.absolute_start_s(rpc_ev), Some(1.0e-3));
    }

    #[test]
    fn ring_drops_oldest_but_histograms_stay_complete() {
        let r = SpanRecorder::with_capacity(0, 0, 4);
        for step in 0..10u64 {
            r.record(Lane::Train, step, Phase::Train, 0.0, 1.0e-3);
        }
        let t = r.snapshot();
        assert_eq!(t.events.len(), 4);
        assert_eq!(t.dropped, 6);
        assert_eq!(t.events[0].step, 6, "oldest events evicted first");
        let train = t.phase(Phase::Train).unwrap();
        assert_eq!(train.count, 10, "histogram counts every record");
        assert!((train.sum_s - 10.0e-3).abs() < 1e-12);
    }

    #[test]
    fn concurrent_writers_sum_exactly() {
        let r = Arc::new(SpanRecorder::for_trainer(0, 0));
        let threads: Vec<_> = [Lane::Prepare, Lane::Train]
            .into_iter()
            .map(|lane| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for step in 0..2000u64 {
                        r.record(lane, step, Phase::Rpc, 0.0, 1.0e-6);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let t = r.snapshot();
        let rpc = t.phase(Phase::Rpc).unwrap();
        assert_eq!(rpc.count, 4000);
        assert!((rpc.sum_s - 4000.0e-6).abs() < 1e-9);
    }

    #[test]
    fn wall_span_guard_records_on_drop() {
        let r = SpanRecorder::for_trainer(0, 0);
        {
            let _g = r.start_wall(Lane::Server, 7, Phase::Rpc);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let t = r.snapshot();
        let ev = t.events[0];
        assert_eq!(ev.lane, Lane::Server);
        assert_eq!(ev.step, 7);
        assert!(ev.dur_s >= 2.0e-3);
        assert_eq!(t.absolute_start_s(&ev), Some(ev.rel_start_s));
    }

    #[test]
    fn step_series_in_order() {
        let r = SpanRecorder::for_trainer(0, 0);
        for step in 0..5u64 {
            r.record_step(StepPoint {
                step,
                stall_s: 0.0,
                hits: step,
                misses: 1,
                overlap_efficiency: 1.0,
            });
        }
        let t = r.snapshot();
        assert_eq!(t.series.len(), 5);
        assert_eq!(t.series[4].hits, 4);
        assert!((t.series[4].hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn fault_phase_is_out_of_band_but_reported() {
        assert!(!Phase::ALL.contains(&Phase::Fault));
        assert!(Phase::REPORTED.contains(&Phase::Fault));
        assert_eq!(Phase::REPORTED[..8], Phase::ALL);
        assert_eq!(Phase::Fault.index(), 8);
        assert_eq!(Phase::Fault.name(), "fault");
        assert_eq!(Lane::Fault.tid(), 4);

        let r = SpanRecorder::for_trainer(0, 0);
        r.record(Lane::Fault, 2, Phase::Fault, 0.001, 0.05);
        r.record_anchor(StepAnchor {
            step: 2,
            prep_start_s: 1.0,
            train_start_s: 2.0,
        });
        let t = r.snapshot();
        let f = t.phase(Phase::Fault).unwrap();
        assert_eq!(f.count, 1);
        assert!((f.sum_s - 0.05).abs() < 1e-15);
        // Fault spans anchor to the prepare window, like prepare spans.
        let ev = t.events.iter().find(|e| e.lane == Lane::Fault).unwrap();
        assert_eq!(t.absolute_start_s(ev), Some(1.001));
    }

    #[test]
    fn planned_phase_is_out_of_band_but_reported() {
        assert!(!Phase::ALL.contains(&Phase::Planned));
        assert!(Phase::REPORTED.contains(&Phase::Planned));
        assert_eq!(Phase::REPORTED[..8], Phase::ALL);
        assert_eq!(Phase::Planned.index(), 9);
        assert_eq!(Phase::Planned.name(), "planned");
        assert_eq!(Lane::Lookahead.tid(), 5);
        assert_eq!(Lane::Lookahead.name(), "lookahead");
        assert_eq!(Phase::REPORTED.len(), Phase::COUNT);

        let r = SpanRecorder::for_trainer(0, 0);
        r.record(Lane::Lookahead, 4, Phase::Planned, 0.0, 0.02);
        r.record_anchor(StepAnchor {
            step: 4,
            prep_start_s: 3.0,
            train_start_s: 4.0,
        });
        let t = r.snapshot();
        let p = t.phase(Phase::Planned).unwrap();
        assert_eq!(p.count, 1);
        assert!((p.sum_s - 0.02).abs() < 1e-15);
        // Planned spans anchor to the prepare window, like prepare spans.
        let ev = t.events.iter().find(|e| e.lane == Lane::Lookahead).unwrap();
        assert_eq!(t.absolute_start_s(ev), Some(3.0));
    }

    #[test]
    fn corr_defaults_to_zero_and_round_trips() {
        let r = SpanRecorder::for_trainer(0, 0);
        r.record(Lane::Prepare, 0, Phase::Rpc, 0.0, 1.0e-3);
        r.record_corr(Lane::Fault, 0, Phase::Fault, 0.0, 2.0e-3, 42);
        let t = r.snapshot();
        assert_eq!(t.events[0].corr, 0, "plain record is uncorrelated");
        assert_eq!(t.events[1].corr, 42);
    }

    #[test]
    fn missing_anchor_yields_none() {
        let r = SpanRecorder::for_trainer(0, 0);
        r.record(Lane::Prepare, 9, Phase::Sampling, 0.0, 1.0);
        let t = r.snapshot();
        assert_eq!(t.absolute_start_s(&t.events[0]), None);
    }
}
