//! Prometheus text exposition and a dependency-free scrape server.
//!
//! [`render`] lowers the whole [`crate::registry`] to the Prometheus
//! text format (version 0.0.4): `# HELP`/`# TYPE` pairs, `_total`
//! counters, gauges, and histograms as cumulative `_bucket{le=...}`
//! rows closed by `+Inf`, `_sum`, and `_count`. The log₂ buckets of
//! [`crate::hist::LatencyHistogram`] map directly onto `le` bounds.
//!
//! [`ScrapeServer`] serves that rendering over HTTP from a single
//! `std::net::TcpListener` thread — no framework, no dependency — so a
//! running training or chaos job can be curled:
//!
//! ```bash
//! curl http://127.0.0.1:9184/metrics
//! ```
//!
//! The server only ever *reads* the registry; it cannot perturb the
//! simulated clock or any report.

use crate::hist::LatencyHistogram;
use crate::registry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Content-Type of the text exposition format.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Format an `f64` for the exposition format. Rust's `Display` never
/// produces scientific notation, which Prometheus parsers accept as-is;
/// non-finite values use the spec's spellings.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

fn render_histogram(
    out: &mut String,
    name: &str,
    help: &str,
    label_key: &str,
    series: &[(&str, LatencyHistogram)],
) {
    out.push_str(&format!("# HELP {name} {help}\n"));
    out.push_str(&format!("# TYPE {name} histogram\n"));
    for (label, hist) in series {
        let mut cumulative = 0u64;
        for (_, hi, count) in hist.buckets() {
            cumulative += count;
            out.push_str(&format!(
                "{name}_bucket{{{label_key}=\"{label}\",le=\"{}\"}} {cumulative}\n",
                fmt_f64(hi)
            ));
        }
        out.push_str(&format!(
            "{name}_bucket{{{label_key}=\"{label}\",le=\"+Inf\"}} {}\n",
            hist.count()
        ));
        out.push_str(&format!(
            "{name}_sum{{{label_key}=\"{label}\"}} {}\n",
            fmt_f64(hist.sum_s())
        ));
        out.push_str(&format!(
            "{name}_count{{{label_key}=\"{label}\"}} {}\n",
            hist.count()
        ));
    }
}

/// Render the entire registry as Prometheus text exposition. The output
/// is deterministic for fixed metric values: metrics render in their
/// static declaration order and histogram series sort by label.
pub fn render() -> String {
    let mut out = String::with_capacity(4096);
    for c in registry::COUNTERS {
        out.push_str(&format!("# HELP {} {}\n", c.name(), c.help()));
        out.push_str(&format!("# TYPE {} counter\n", c.name()));
        out.push_str(&format!("{} {}\n", c.name(), c.get()));
    }
    for g in registry::GAUGES {
        out.push_str(&format!("# HELP {} {}\n", g.name(), g.help()));
        out.push_str(&format!("# TYPE {} gauge\n", g.name()));
        out.push_str(&format!("{} {}\n", g.name(), fmt_f64(g.get())));
    }
    for h in registry::HISTOGRAMS {
        render_histogram(&mut out, h.name(), h.help(), h.label_key(), &h.series());
    }
    out
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    // A peer hanging up mid-response is its problem, not ours.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

fn handle_connection(mut stream: TcpStream) {
    // Bound the read so a silent client cannot wedge the serve loop.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 1024];
    let n = match stream.read(&mut buf) {
        Ok(n) if n > 0 => n,
        _ => return,
    };
    let request = String::from_utf8_lossy(&buf[..n]);
    let mut parts = request.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "GET only\n",
        );
        return;
    }
    match path {
        "/metrics" | "/" => respond(&mut stream, "200 OK", CONTENT_TYPE, &render()),
        _ => respond(&mut stream, "404 Not Found", "text/plain", "try /metrics\n"),
    }
}

/// A one-thread HTTP scrape endpoint over the global registry.
///
/// Binds `127.0.0.1:port` (`port` 0 asks the OS for an ephemeral port —
/// tests use this; read it back with [`local_addr`]). Dropping the
/// server stops the serve loop and joins the thread.
///
/// [`local_addr`]: ScrapeServer::local_addr
pub struct ScrapeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ScrapeServer {
    /// Bind and start serving. Fails if the port is taken.
    pub fn start(port: u16) -> std::io::Result<ScrapeServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("mgnn-scrape".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        handle_connection(stream);
                    }
                }
            })?;
        Ok(ScrapeServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the serve loop and join its thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // accept() blocks; a self-connection wakes it so it observes the
        // stop flag.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::TEST_LOCK;

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn exposition_format_and_scrape_server() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        registry::reset();
        registry::RPC_CALLS.add(5);
        registry::PREFETCH_HITS.add(120);
        registry::HIT_RATE.set(0.8);
        for i in 1..=100u64 {
            registry::STEP_LATENCY.record("train", i as f64 * 1.0e-6);
        }
        registry::STEP_LATENCY.record("prepare", 3.0e-3);

        let text = render();
        // HELP precedes TYPE precedes the sample for every metric.
        for c in registry::COUNTERS {
            let name = c.name();
            let help_at = text.find(&format!("# HELP {name} ")).unwrap();
            let type_at = text.find(&format!("# TYPE {name} counter")).unwrap();
            assert!(help_at < type_at, "{name}: HELP after TYPE");
        }
        assert!(text.contains("mgnn_rpc_calls_total 5\n"));
        assert!(text.contains("mgnn_prefetch_hits_total 120\n"));
        assert!(text.contains("# TYPE mgnn_buffer_hit_rate gauge"));
        assert!(text.contains("mgnn_buffer_hit_rate 0.8\n"));
        assert!(text.contains("# TYPE mgnn_step_latency histogram"));
        assert!(text.contains("mgnn_step_latency_bucket{lane=\"train\",le=\"+Inf\"} 100\n"));
        assert!(text.contains("mgnn_step_latency_count{lane=\"train\"} 100\n"));
        assert!(text.contains("mgnn_step_latency_count{lane=\"prepare\"} 1\n"));

        // Bucket counts are cumulative, hence monotone per series.
        let mut last = 0u64;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("mgnn_step_latency_bucket{lane=\"train\"") {
                let count: u64 = rest.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(count >= last, "bucket counts must be monotone: {line}");
                last = count;
            }
        }
        assert_eq!(last, 100);

        // Scrape it over real HTTP on an ephemeral port.
        let server = ScrapeServer::start(0).unwrap();
        let addr = server.local_addr();
        let ok = http_get(addr, "/metrics");
        assert!(ok.starts_with("HTTP/1.1 200 OK"));
        assert!(ok.contains(CONTENT_TYPE));
        assert!(ok.contains("mgnn_rpc_calls_total 5"));
        let missing = http_get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));
        server.shutdown();
        assert!(
            TcpStream::connect(addr).is_err() || http_get_safe(addr).is_none(),
            "server must stop serving after shutdown"
        );
        registry::reset();
    }

    fn http_get_safe(addr: SocketAddr) -> Option<String> {
        let mut stream = TcpStream::connect(addr).ok()?;
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .ok()?;
        stream.write_all(b"GET /metrics HTTP/1.1\r\n\r\n").ok()?;
        let mut out = String::new();
        stream.read_to_string(&mut out).ok()?;
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }

    #[test]
    fn f64_formatting_for_exposition() {
        assert_eq!(fmt_f64(0.5), "0.5");
        assert_eq!(fmt_f64(f64::INFINITY), "+Inf");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "-Inf");
        assert_eq!(fmt_f64(f64::NAN), "NaN");
        // No scientific notation: le bounds must parse as plain decimals.
        assert_eq!(fmt_f64(2.0e-9), "0.000000002");
    }
}
