//! Communication and prefetch counters.
//!
//! All counters are atomics so the prepare thread and the trainer thread
//! can update them concurrently (the paper's Fig. 11 "remote nodes fetched"
//! and §V-B5 communication-time analysis come straight from these).

use std::sync::atomic::{AtomicU64, Ordering};

/// Exact event counters for one trainer.
#[derive(Debug, Default)]
pub struct CommMetrics {
    /// Bulk RPC requests issued.
    pub rpc_calls: AtomicU64,
    /// Remote node feature rows fetched over RPC (the paper's Fig. 11 Y).
    pub remote_nodes_fetched: AtomicU64,
    /// Bytes moved over the network.
    pub remote_bytes: AtomicU64,
    /// Local feature rows copied from the partition's own KVStore.
    pub local_nodes_copied: AtomicU64,
    /// Prefetch-buffer hits (sampled halo node found in buffer).
    pub buffer_hits: AtomicU64,
    /// Prefetch-buffer misses.
    pub buffer_misses: AtomicU64,
    /// Nodes evicted from the buffer.
    pub evictions: AtomicU64,
    /// Replacement nodes fetched on eviction rounds.
    pub replacements_fetched: AtomicU64,
}

impl CommMetrics {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one bulk RPC fetching `nodes` rows of `dim` f32 features.
    pub fn record_rpc(&self, nodes: u64, dim: usize) {
        if nodes == 0 {
            return;
        }
        self.rpc_calls.fetch_add(1, Ordering::Relaxed);
        self.remote_nodes_fetched
            .fetch_add(nodes, Ordering::Relaxed);
        self.remote_bytes
            .fetch_add(nodes * dim as u64 * 4, Ordering::Relaxed);
    }

    /// Record gathering `nodes` local rows.
    pub fn record_local_copy(&self, nodes: u64) {
        self.local_nodes_copied.fetch_add(nodes, Ordering::Relaxed);
    }

    /// Record buffer lookup results for one minibatch.
    pub fn record_lookup(&self, hits: u64, misses: u64) {
        self.buffer_hits.fetch_add(hits, Ordering::Relaxed);
        self.buffer_misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Record an eviction round.
    pub fn record_eviction(&self, evicted: u64, replaced: u64) {
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        self.replacements_fetched
            .fetch_add(replaced, Ordering::Relaxed);
    }

    /// Cumulative hit rate (Eq. 8 of the paper): `h / (h + m)`;
    /// 0.0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let h = self.buffer_hits.load(Ordering::Relaxed) as f64;
        let m = self.buffer_misses.load(Ordering::Relaxed) as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Snapshot all counters into a plain struct.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            rpc_calls: self.rpc_calls.load(Ordering::Relaxed),
            remote_nodes_fetched: self.remote_nodes_fetched.load(Ordering::Relaxed),
            remote_bytes: self.remote_bytes.load(Ordering::Relaxed),
            local_nodes_copied: self.local_nodes_copied.load(Ordering::Relaxed),
            buffer_hits: self.buffer_hits.load(Ordering::Relaxed),
            buffer_misses: self.buffer_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            replacements_fetched: self.replacements_fetched.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data snapshot of [`CommMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Bulk RPC requests issued.
    pub rpc_calls: u64,
    /// Remote node feature rows fetched over RPC.
    pub remote_nodes_fetched: u64,
    /// Bytes moved over the network.
    pub remote_bytes: u64,
    /// Local feature rows copied.
    pub local_nodes_copied: u64,
    /// Prefetch-buffer hits.
    pub buffer_hits: u64,
    /// Prefetch-buffer misses.
    pub buffer_misses: u64,
    /// Nodes evicted.
    pub evictions: u64,
    /// Replacement rows fetched.
    pub replacements_fetched: u64,
}

impl MetricsSnapshot {
    /// Hit rate of this snapshot.
    pub fn hit_rate(&self) -> f64 {
        let t = self.buffer_hits + self.buffer_misses;
        if t == 0 {
            0.0
        } else {
            self.buffer_hits as f64 / t as f64
        }
    }

    /// Sum two snapshots (aggregate across trainers).
    pub fn merge(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            rpc_calls: self.rpc_calls + other.rpc_calls,
            remote_nodes_fetched: self.remote_nodes_fetched + other.remote_nodes_fetched,
            remote_bytes: self.remote_bytes + other.remote_bytes,
            local_nodes_copied: self.local_nodes_copied + other.local_nodes_copied,
            buffer_hits: self.buffer_hits + other.buffer_hits,
            buffer_misses: self.buffer_misses + other.buffer_misses,
            evictions: self.evictions + other.evictions,
            replacements_fetched: self.replacements_fetched + other.replacements_fetched,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_rpc_not_counted() {
        let m = CommMetrics::new();
        m.record_rpc(0, 128);
        assert_eq!(m.snapshot().rpc_calls, 0);
    }

    #[test]
    fn byte_accounting() {
        let m = CommMetrics::new();
        m.record_rpc(10, 128);
        let s = m.snapshot();
        assert_eq!(s.rpc_calls, 1);
        assert_eq!(s.remote_nodes_fetched, 10);
        assert_eq!(s.remote_bytes, 10 * 128 * 4);
    }

    #[test]
    fn hit_rate_math() {
        let m = CommMetrics::new();
        assert_eq!(m.hit_rate(), 0.0);
        m.record_lookup(3, 1);
        assert!((m.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_sums() {
        let a = MetricsSnapshot {
            buffer_hits: 2,
            buffer_misses: 2,
            ..Default::default()
        };
        let b = MetricsSnapshot {
            buffer_hits: 6,
            buffer_misses: 0,
            ..Default::default()
        };
        let c = a.merge(&b);
        assert_eq!(c.buffer_hits, 8);
        assert!((c.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn concurrent_updates() {
        use std::sync::Arc;
        let m = Arc::new(CommMetrics::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.record_lookup(1, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = m.snapshot();
        assert_eq!(s.buffer_hits, 4000);
        assert_eq!(s.buffer_misses, 4000);
    }
}
