//! Communication and prefetch counters.
//!
//! All counters are atomics so the prepare thread and the trainer thread
//! can update them concurrently (the paper's Fig. 11 "remote nodes fetched"
//! and §V-B5 communication-time analysis come straight from these).
//!
//! When the live telemetry registry ([`mgnn_obs::registry`]) is enabled,
//! every `record_*` method mirrors its increments into the corresponding
//! global counter — the hook lives *inside* the method that updates the
//! per-trainer atomic, so registry totals reconcile exactly with the
//! summed [`MetricsSnapshot`]s by construction. Disabled, each hook is
//! one relaxed atomic load.

use mgnn_obs::registry;
use mgnn_obs::{Lane, Phase, SpanRecorder};
use serde::{Serialize, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Exact event counters for one trainer.
///
/// Optionally carries that trainer's [`SpanRecorder`]: `CommMetrics` is
/// the one handle already shared by the trainer thread, its prepare
/// thread, and the prefetcher, so piggybacking the recorder here wires
/// span recording through the whole pipeline without changing any
/// signatures. With no recorder attached (the default), the `*_spanned`
/// methods degrade to their plain counterparts.
#[derive(Debug, Default)]
pub struct CommMetrics {
    /// Span recorder for this trainer, when tracing is enabled.
    recorder: Option<Arc<SpanRecorder>>,
    /// Trainer rank used to derive deterministic request ids
    /// ([`mgnn_obs::events::request_id`]). Plain data set once at build
    /// time, before the metrics are shared.
    trace_rank: u64,
    /// Bulk RPC requests issued.
    pub rpc_calls: AtomicU64,
    /// Remote node feature rows fetched over RPC (the paper's Fig. 11 Y).
    pub remote_nodes_fetched: AtomicU64,
    /// Bytes moved over the network.
    pub remote_bytes: AtomicU64,
    /// Local feature rows copied from the partition's own KVStore.
    pub local_nodes_copied: AtomicU64,
    /// Prefetch-buffer hits (sampled halo node found in buffer).
    pub buffer_hits: AtomicU64,
    /// Prefetch-buffer misses.
    pub buffer_misses: AtomicU64,
    /// Nodes evicted from the buffer.
    pub evictions: AtomicU64,
    /// Replacement nodes fetched on eviction rounds.
    pub replacements_fetched: AtomicU64,
    /// RPC retry attempts issued after a failed pull.
    pub rpc_retries: AtomicU64,
    /// Pull attempts that timed out (dropped replies).
    pub rpc_timeouts: AtomicU64,
    /// Replies rejected for a truncated payload.
    pub rpc_truncations: AtomicU64,
    /// Pull attempts that found a dead server.
    pub rpc_disconnects: AtomicU64,
    /// Injected delay tags observed on replies.
    pub rpc_delays: AtomicU64,
    /// Servers respawned from their resident KvStore.
    pub server_respawns: AtomicU64,
    /// Eviction replacements cancelled because the fetch failed — the
    /// stale resident row kept serving instead (degradation rung 2).
    pub stale_served: AtomicU64,
    /// Input rows zero-filled after retries were exhausted
    /// (degradation rung 3).
    pub degraded_rows: AtomicU64,
    /// Planned lookahead pulls issued (one per planning round that
    /// actually fetched rows). Zero under the scoreboard policy.
    pub planned_pulls: AtomicU64,
    /// Halo rows fetched ahead of their due step by the lookahead
    /// planner. Also counted in `remote_nodes_fetched` (they are real
    /// network traffic); this counter separates planned from
    /// critical-path volume.
    pub planned_rows: AtomicU64,
}

impl CommMetrics {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh counters that also record spans into `recorder`.
    pub fn with_recorder(recorder: Arc<SpanRecorder>) -> Self {
        CommMetrics {
            recorder: Some(recorder),
            ..Self::default()
        }
    }

    /// The attached span recorder, if tracing is enabled.
    pub fn recorder(&self) -> Option<&Arc<SpanRecorder>> {
        self.recorder.as_ref()
    }

    /// Set the trainer rank request ids derive from. Called once at
    /// engine build, before the metrics are wrapped in an `Arc`.
    pub fn set_trace_rank(&mut self, rank: u64) {
        self.trace_rank = rank;
    }

    /// Trainer rank for request-id derivation (0 if never set).
    pub fn trace_rank(&self) -> u64 {
        self.trace_rank
    }

    /// Record a span for `phase` of `step` on the prepare lane, if a
    /// recorder is attached. `rel_start_s` is relative to the step's
    /// prepare-window start.
    pub fn span(&self, step: u64, phase: Phase, rel_start_s: f64, dur_s: f64) {
        if let Some(r) = &self.recorder {
            r.record(Lane::Prepare, step, phase, rel_start_s, dur_s);
        }
    }

    /// Record one bulk RPC fetching `nodes` rows of `dim` f32 features.
    pub fn record_rpc(&self, nodes: u64, dim: usize) {
        if nodes == 0 {
            return;
        }
        self.rpc_calls.fetch_add(1, Ordering::Relaxed);
        self.remote_nodes_fetched
            .fetch_add(nodes, Ordering::Relaxed);
        self.remote_bytes
            .fetch_add(nodes * dim as u64 * 4, Ordering::Relaxed);
        if registry::enabled() {
            registry::RPC_CALLS.inc();
            registry::REMOTE_NODES.add(nodes);
            registry::REMOTE_BYTES.add(nodes * dim as u64 * 4);
        }
    }

    /// Record gathering `nodes` local rows.
    pub fn record_local_copy(&self, nodes: u64) {
        self.local_nodes_copied.fetch_add(nodes, Ordering::Relaxed);
        if registry::enabled() {
            registry::LOCAL_NODES.add(nodes);
        }
    }

    /// [`record_rpc`](Self::record_rpc) plus an `rpc` span for `step`.
    /// The span is recorded even for `nodes == 0` (a zero-duration fetch
    /// is still one pipeline stage), keeping histogram counts equal to
    /// the step count.
    pub fn record_rpc_spanned(
        &self,
        nodes: u64,
        dim: usize,
        step: u64,
        rel_start_s: f64,
        dur_s: f64,
    ) {
        self.record_rpc_spanned_corr(nodes, dim, step, rel_start_s, dur_s, 0);
    }

    /// [`record_rpc_spanned`](Self::record_rpc_spanned) with a
    /// request-correlation id on the span (0 = none), tying the `rpc`
    /// slice to its tagged pull in Perfetto flow renderings.
    pub fn record_rpc_spanned_corr(
        &self,
        nodes: u64,
        dim: usize,
        step: u64,
        rel_start_s: f64,
        dur_s: f64,
        corr: u64,
    ) {
        if let Some(r) = &self.recorder {
            r.record_corr(Lane::Prepare, step, Phase::Rpc, rel_start_s, dur_s, corr);
        }
        self.record_rpc(nodes, dim);
    }

    /// [`record_local_copy`](Self::record_local_copy) plus a `copy` span
    /// for `step` (recorded even for `nodes == 0`; see
    /// [`record_rpc_spanned`](Self::record_rpc_spanned)).
    pub fn record_local_copy_spanned(&self, nodes: u64, step: u64, rel_start_s: f64, dur_s: f64) {
        self.span(step, Phase::Copy, rel_start_s, dur_s);
        self.record_local_copy(nodes);
    }

    /// Record buffer lookup results for one minibatch.
    pub fn record_lookup(&self, hits: u64, misses: u64) {
        self.buffer_hits.fetch_add(hits, Ordering::Relaxed);
        self.buffer_misses.fetch_add(misses, Ordering::Relaxed);
        if registry::enabled() {
            registry::PREFETCH_HITS.add(hits);
            registry::PREFETCH_MISSES.add(misses);
        }
    }

    /// Record an eviction round.
    pub fn record_eviction(&self, evicted: u64, replaced: u64) {
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        self.replacements_fetched
            .fetch_add(replaced, Ordering::Relaxed);
        if registry::enabled() {
            registry::EVICTIONS.add(evicted);
            registry::REPLACEMENTS.add(replaced);
        }
    }

    /// Fold one grouped pull's fault accounting into the counters.
    /// A no-op for a clean outcome, so the fault-free path's snapshot is
    /// untouched.
    pub fn record_pull_outcome(&self, o: &crate::cluster::PullOutcome) {
        if !o.had_faults() {
            return;
        }
        self.rpc_retries.fetch_add(o.retries, Ordering::Relaxed);
        self.rpc_timeouts.fetch_add(o.timeouts, Ordering::Relaxed);
        self.rpc_truncations
            .fetch_add(o.truncations, Ordering::Relaxed);
        self.rpc_disconnects
            .fetch_add(o.disconnects, Ordering::Relaxed);
        self.rpc_delays
            .fetch_add(o.delay_events.len() as u64, Ordering::Relaxed);
        self.server_respawns
            .fetch_add(o.respawns, Ordering::Relaxed);
        if registry::enabled() {
            registry::RPC_RETRIES.add(o.retries);
            registry::RPC_TIMEOUTS.add(o.timeouts);
            registry::RPC_TRUNCATIONS.add(o.truncations);
            registry::RPC_DISCONNECTS.add(o.disconnects);
            registry::RPC_DELAYS.add(o.delay_events.len() as u64);
            registry::SERVER_RESPAWNS.add(o.respawns);
        }
    }

    /// Record graceful-degradation events: `stale` cancelled eviction
    /// replacements (the old resident kept serving) and `zero_filled`
    /// input rows served as zeros.
    pub fn record_degradation(&self, stale: u64, zero_filled: u64) {
        self.stale_served.fetch_add(stale, Ordering::Relaxed);
        self.degraded_rows.fetch_add(zero_filled, Ordering::Relaxed);
        if registry::enabled() {
            registry::STALE_SERVED.add(stale);
            registry::DEGRADED_ROWS.add(zero_filled);
        }
    }

    /// Record a fault-lane span covering the simulated time `step` lost
    /// to faults (injected delays + retry/backoff charges).
    pub fn fault_span(&self, step: u64, rel_start_s: f64, dur_s: f64) {
        self.fault_span_corr(step, rel_start_s, dur_s, 0);
    }

    /// [`fault_span`](Self::fault_span) tagged with a request correlation
    /// id, so the Perfetto export can draw a flow arrow from the pull's
    /// RPC span to the fault time it induced.
    pub fn fault_span_corr(&self, step: u64, rel_start_s: f64, dur_s: f64, corr: u64) {
        if let Some(r) = &self.recorder {
            r.record_corr(Lane::Fault, step, Phase::Fault, rel_start_s, dur_s, corr);
        }
    }

    /// Record one planned lookahead pull fetching `nodes` rows of `dim`
    /// f32 features ahead of their due step. Counts into the planned
    /// counters *and* the remote-traffic totals ([`record_rpc`]
    /// (Self::record_rpc)) — planned pulls move real bytes; the split
    /// lets reports separate planned volume from critical-path fetches.
    pub fn record_planned(&self, nodes: u64, dim: usize) {
        if nodes == 0 {
            return;
        }
        self.planned_pulls.fetch_add(1, Ordering::Relaxed);
        self.planned_rows.fetch_add(nodes, Ordering::Relaxed);
        if registry::enabled() {
            registry::PLANNED_PULLS.inc();
            registry::PLANNED_ROWS.add(nodes);
        }
        self.record_rpc(nodes, dim);
    }

    /// Record a lookahead-lane span covering a planning round's pull
    /// time within `step`'s prepare window.
    pub fn planned_span(&self, step: u64, rel_start_s: f64, dur_s: f64) {
        if let Some(r) = &self.recorder {
            r.record(Lane::Lookahead, step, Phase::Planned, rel_start_s, dur_s);
        }
    }

    /// Cumulative hit rate (Eq. 8 of the paper): `h / (h + m)`;
    /// 0.0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let h = self.buffer_hits.load(Ordering::Relaxed) as f64;
        let m = self.buffer_misses.load(Ordering::Relaxed) as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Snapshot all counters into a plain struct.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            rpc_calls: self.rpc_calls.load(Ordering::Relaxed),
            remote_nodes_fetched: self.remote_nodes_fetched.load(Ordering::Relaxed),
            remote_bytes: self.remote_bytes.load(Ordering::Relaxed),
            local_nodes_copied: self.local_nodes_copied.load(Ordering::Relaxed),
            buffer_hits: self.buffer_hits.load(Ordering::Relaxed),
            buffer_misses: self.buffer_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            replacements_fetched: self.replacements_fetched.load(Ordering::Relaxed),
            rpc_retries: self.rpc_retries.load(Ordering::Relaxed),
            rpc_timeouts: self.rpc_timeouts.load(Ordering::Relaxed),
            rpc_truncations: self.rpc_truncations.load(Ordering::Relaxed),
            rpc_disconnects: self.rpc_disconnects.load(Ordering::Relaxed),
            rpc_delays: self.rpc_delays.load(Ordering::Relaxed),
            server_respawns: self.server_respawns.load(Ordering::Relaxed),
            stale_served: self.stale_served.load(Ordering::Relaxed),
            degraded_rows: self.degraded_rows.load(Ordering::Relaxed),
            planned_pulls: self.planned_pulls.load(Ordering::Relaxed),
            planned_rows: self.planned_rows.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data snapshot of [`CommMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Bulk RPC requests issued.
    pub rpc_calls: u64,
    /// Remote node feature rows fetched over RPC.
    pub remote_nodes_fetched: u64,
    /// Bytes moved over the network.
    pub remote_bytes: u64,
    /// Local feature rows copied.
    pub local_nodes_copied: u64,
    /// Prefetch-buffer hits.
    pub buffer_hits: u64,
    /// Prefetch-buffer misses.
    pub buffer_misses: u64,
    /// Nodes evicted.
    pub evictions: u64,
    /// Replacement rows fetched.
    pub replacements_fetched: u64,
    /// RPC retry attempts.
    pub rpc_retries: u64,
    /// Pull attempts that timed out.
    pub rpc_timeouts: u64,
    /// Truncated replies rejected.
    pub rpc_truncations: u64,
    /// Pull attempts that found a dead server.
    pub rpc_disconnects: u64,
    /// Injected delay tags observed.
    pub rpc_delays: u64,
    /// Servers respawned.
    pub server_respawns: u64,
    /// Stale buffer rows served after a cancelled replacement.
    pub stale_served: u64,
    /// Zero-filled input rows.
    pub degraded_rows: u64,
    /// Planned lookahead pulls issued.
    pub planned_pulls: u64,
    /// Halo rows fetched ahead of need by the lookahead planner.
    pub planned_rows: u64,
}

impl MetricsSnapshot {
    /// Hit rate of this snapshot.
    pub fn hit_rate(&self) -> f64 {
        let t = self.buffer_hits + self.buffer_misses;
        if t == 0 {
            0.0
        } else {
            self.buffer_hits as f64 / t as f64
        }
    }

    /// Sum two snapshots (aggregate across trainers).
    pub fn merge(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            rpc_calls: self.rpc_calls + other.rpc_calls,
            remote_nodes_fetched: self.remote_nodes_fetched + other.remote_nodes_fetched,
            remote_bytes: self.remote_bytes + other.remote_bytes,
            local_nodes_copied: self.local_nodes_copied + other.local_nodes_copied,
            buffer_hits: self.buffer_hits + other.buffer_hits,
            buffer_misses: self.buffer_misses + other.buffer_misses,
            evictions: self.evictions + other.evictions,
            replacements_fetched: self.replacements_fetched + other.replacements_fetched,
            rpc_retries: self.rpc_retries + other.rpc_retries,
            rpc_timeouts: self.rpc_timeouts + other.rpc_timeouts,
            rpc_truncations: self.rpc_truncations + other.rpc_truncations,
            rpc_disconnects: self.rpc_disconnects + other.rpc_disconnects,
            rpc_delays: self.rpc_delays + other.rpc_delays,
            server_respawns: self.server_respawns + other.server_respawns,
            stale_served: self.stale_served + other.stale_served,
            degraded_rows: self.degraded_rows + other.degraded_rows,
            planned_pulls: self.planned_pulls + other.planned_pulls,
            planned_rows: self.planned_rows + other.planned_rows,
        }
    }

    /// Whether any fault, retry, or degradation event was recorded.
    pub fn had_faults(&self) -> bool {
        self.rpc_retries
            + self.rpc_timeouts
            + self.rpc_truncations
            + self.rpc_disconnects
            + self.rpc_delays
            + self.server_respawns
            + self.stale_served
            + self.degraded_rows
            > 0
    }
}

impl Serialize for MetricsSnapshot {
    fn to_value(&self) -> Value {
        Value::obj([
            ("rpc_calls", self.rpc_calls.to_value()),
            ("remote_nodes_fetched", self.remote_nodes_fetched.to_value()),
            ("remote_bytes", self.remote_bytes.to_value()),
            ("local_nodes_copied", self.local_nodes_copied.to_value()),
            ("buffer_hits", self.buffer_hits.to_value()),
            ("buffer_misses", self.buffer_misses.to_value()),
            ("evictions", self.evictions.to_value()),
            ("replacements_fetched", self.replacements_fetched.to_value()),
            ("rpc_retries", self.rpc_retries.to_value()),
            ("rpc_timeouts", self.rpc_timeouts.to_value()),
            ("rpc_truncations", self.rpc_truncations.to_value()),
            ("rpc_disconnects", self.rpc_disconnects.to_value()),
            ("rpc_delays", self.rpc_delays.to_value()),
            ("server_respawns", self.server_respawns.to_value()),
            ("stale_served", self.stale_served.to_value()),
            ("degraded_rows", self.degraded_rows.to_value()),
            ("planned_pulls", self.planned_pulls.to_value()),
            ("planned_rows", self.planned_rows.to_value()),
            ("hit_rate", self.hit_rate().to_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_rpc_not_counted() {
        let m = CommMetrics::new();
        m.record_rpc(0, 128);
        assert_eq!(m.snapshot().rpc_calls, 0);
    }

    #[test]
    fn byte_accounting() {
        let m = CommMetrics::new();
        m.record_rpc(10, 128);
        let s = m.snapshot();
        assert_eq!(s.rpc_calls, 1);
        assert_eq!(s.remote_nodes_fetched, 10);
        assert_eq!(s.remote_bytes, 10 * 128 * 4);
    }

    #[test]
    fn hit_rate_math() {
        let m = CommMetrics::new();
        assert_eq!(m.hit_rate(), 0.0);
        m.record_lookup(3, 1);
        assert!((m.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_sums() {
        let a = MetricsSnapshot {
            buffer_hits: 2,
            buffer_misses: 2,
            ..Default::default()
        };
        let b = MetricsSnapshot {
            buffer_hits: 6,
            buffer_misses: 0,
            ..Default::default()
        };
        let c = a.merge(&b);
        assert_eq!(c.buffer_hits, 8);
        assert!((c.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn concurrent_updates() {
        use std::sync::Arc;
        let m = Arc::new(CommMetrics::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.record_lookup(1, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = m.snapshot();
        assert_eq!(s.buffer_hits, 4000);
        assert_eq!(s.buffer_misses, 4000);
    }

    #[test]
    fn two_threads_every_counter_sums_exactly() {
        use std::sync::Arc;
        // The real concurrency pattern: the trainer thread and the
        // prepare thread both hammer the same CommMetrics. Every
        // record_* method must sum exactly — no lost updates.
        let m = Arc::new(CommMetrics::new());
        const N: u64 = 2000;
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..N {
                        m.record_rpc(3, 8);
                        m.record_local_copy(5);
                        m.record_lookup(2, 1);
                        m.record_eviction(4, 6);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = m.snapshot();
        assert_eq!(s.rpc_calls, 2 * N);
        assert_eq!(s.remote_nodes_fetched, 2 * N * 3);
        assert_eq!(s.remote_bytes, 2 * N * 3 * 8 * 4);
        assert_eq!(s.local_nodes_copied, 2 * N * 5);
        assert_eq!(s.buffer_hits, 2 * N * 2);
        assert_eq!(s.buffer_misses, 2 * N);
        assert_eq!(s.evictions, 2 * N * 4);
        assert_eq!(s.replacements_fetched, 2 * N * 6);
    }

    #[test]
    fn spanned_variants_feed_recorder_and_counters() {
        use mgnn_obs::Phase;
        use std::sync::Arc;
        let rec = Arc::new(SpanRecorder::for_trainer(0, 0));
        let m = CommMetrics::with_recorder(Arc::clone(&rec));
        m.record_rpc_spanned(10, 4, 0, 0.001, 0.002);
        m.record_rpc_spanned(0, 4, 1, 0.001, 0.0); // empty fetch: span only
        m.record_local_copy_spanned(7, 0, 0.001, 0.0005);
        let s = m.snapshot();
        assert_eq!(s.rpc_calls, 1, "empty RPC still skipped in counters");
        assert_eq!(s.remote_nodes_fetched, 10);
        assert_eq!(s.local_nodes_copied, 7);
        let t = rec.snapshot();
        assert_eq!(t.phase(Phase::Rpc).unwrap().count, 2, "span per step");
        assert_eq!(t.phase(Phase::Copy).unwrap().count, 1);
    }

    #[test]
    fn spanned_variants_without_recorder_match_plain() {
        let a = CommMetrics::new();
        let b = CommMetrics::new();
        a.record_rpc_spanned(10, 4, 0, 0.0, 0.1);
        a.record_local_copy_spanned(3, 0, 0.0, 0.1);
        b.record_rpc(10, 4);
        b.record_local_copy(3);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn pull_outcome_folds_into_counters() {
        use crate::cluster::PullOutcome;
        let m = CommMetrics::new();
        let clean = PullOutcome {
            rpcs: 3,
            ..Default::default()
        };
        m.record_pull_outcome(&clean);
        assert_eq!(
            m.snapshot(),
            MetricsSnapshot::default(),
            "clean outcome is a no-op"
        );
        assert!(!m.snapshot().had_faults());
        let chaotic = PullOutcome {
            request_id: 0,
            rpcs: 2,
            retries: 3,
            timeouts: 2,
            truncations: 1,
            disconnects: 1,
            respawns: 1,
            delay_events: vec![(4, 2), (1, 5)],
            retry_events: vec![(4, 1), (4, 2), (1, 1)],
            failed_rows: vec![0],
        };
        m.record_pull_outcome(&chaotic);
        m.record_degradation(2, 1);
        let s = m.snapshot();
        assert!(s.had_faults());
        assert_eq!(s.rpc_retries, 3);
        assert_eq!(s.rpc_timeouts, 2);
        assert_eq!(s.rpc_truncations, 1);
        assert_eq!(s.rpc_disconnects, 1);
        assert_eq!(s.rpc_delays, 2);
        assert_eq!(s.server_respawns, 1);
        assert_eq!(s.stale_served, 2);
        assert_eq!(s.degraded_rows, 1);
        let merged = s.merge(&s);
        assert_eq!(merged.rpc_retries, 6);
        assert_eq!(merged.degraded_rows, 2);
        let v = s.to_value();
        assert_eq!(v.get("rpc_retries").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("server_respawns").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn fault_span_lands_on_fault_lane() {
        use mgnn_obs::{Lane, Phase};
        use std::sync::Arc;
        let rec = Arc::new(SpanRecorder::for_trainer(0, 0));
        let m = CommMetrics::with_recorder(Arc::clone(&rec));
        m.fault_span(3, 0.001, 0.01);
        let t = rec.snapshot();
        let f = t.phase(Phase::Fault).unwrap();
        assert_eq!(f.count, 1);
        assert!((f.sum_s - 0.01).abs() < 1e-12);
        assert!(t
            .events
            .iter()
            .any(|e| e.lane == Lane::Fault && e.phase == Phase::Fault && e.step == 3));
    }

    #[test]
    fn planned_pulls_count_into_remote_totals_and_own_counters() {
        use mgnn_obs::{Lane, Phase};
        use std::sync::Arc;
        let rec = Arc::new(SpanRecorder::for_trainer(0, 0));
        let m = CommMetrics::with_recorder(Arc::clone(&rec));
        m.record_planned(0, 8); // empty planning round: no-op
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
        m.record_planned(5, 8);
        m.planned_span(3, 0.0, 0.004);
        let s = m.snapshot();
        assert_eq!(s.planned_pulls, 1);
        assert_eq!(s.planned_rows, 5);
        assert_eq!(s.rpc_calls, 1, "planned pulls are real RPC traffic");
        assert_eq!(s.remote_nodes_fetched, 5);
        assert_eq!(s.remote_bytes, 5 * 8 * 4);
        let t = rec.snapshot();
        let p = t.phase(Phase::Planned).unwrap();
        assert_eq!(p.count, 1);
        assert!((p.sum_s - 0.004).abs() < 1e-15);
        assert!(t
            .events
            .iter()
            .any(|e| e.lane == Lane::Lookahead && e.phase == Phase::Planned && e.step == 3));
        let merged = s.merge(&s);
        assert_eq!(merged.planned_rows, 10);
        let v = s.to_value();
        assert_eq!(v.get("planned_pulls").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("planned_rows").unwrap().as_u64(), Some(5));
    }

    #[test]
    fn snapshot_serializes() {
        let m = CommMetrics::new();
        m.record_rpc(2, 4);
        m.record_lookup(1, 1);
        let v = m.snapshot().to_value();
        assert_eq!(v.get("rpc_calls").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("remote_bytes").unwrap().as_u64(), Some(2 * 4 * 4));
        assert_eq!(v.get("hit_rate").unwrap().as_f64(), Some(0.5));
    }
}
