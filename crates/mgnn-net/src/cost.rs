//! The analytical cost model that turns exact event counts into simulated
//! seconds.
//!
//! Default constants are calibrated to the paper's platform (§V): AMD EPYC
//! 7763 nodes, 4×A100 GPUs, Slingshot-11 interconnect, DistDGL RPC. The
//! absolute values matter less than the *ratios* they produce — in
//! particular `t_RPC / t_DDP` (Eq. 6 of the paper), which decides whether
//! prefetch overlap yields end-to-end wins (CPU training: ratio ≳ 1; GPU
//! training: ratio often < 1, hence 60–70 % overlap efficiency in Fig. 9).

/// Which device executes DDP training (§V compares both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// CPU training (PyTorch Gloo in the paper): slow compute, easy overlap.
    Cpu,
    /// GPU training (NCCL in the paper): fast compute plus host-to-device
    /// copies; harder to hide preparation behind.
    Gpu,
}

impl Backend {
    /// Display name matching the paper's figure labels.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Cpu => "CPU",
            Backend::Gpu => "GPU",
        }
    }
}

/// Latency/bandwidth/compute-rate model. All times in seconds.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Fixed per-RPC round-trip latency (request + response headers,
    /// serialization, queueing). DistDGL bulk RPC over Slingshot: ~1 ms.
    pub rpc_latency_s: f64,
    /// Per-node overhead inside a bulk RPC: remote KVStore lookup,
    /// serialization, RPC-stack bookkeeping. In DistDGL this dominates the
    /// wire time for feature pulls.
    pub rpc_per_node_s: f64,
    /// Network bandwidth available to one trainer's feature pulls (B/s).
    pub network_bw: f64,
    /// Local memory copy bandwidth for gathering local features (B/s).
    pub copy_bw: f64,
    /// CPU training throughput per trainer (MAC/s). 16 PyTorch cores at
    /// a few GFLOP/s effective.
    pub cpu_macs: f64,
    /// GPU training throughput per trainer (MAC/s). A100 tensor cores,
    /// derated for small GNN kernels.
    pub gpu_macs: f64,
    /// Host-to-device copy bandwidth (B/s), charged only on [`Backend::Gpu`].
    pub h2d_bw: f64,
    /// Per-sampled-edge cost of neighbor sampling (s). Random-walk style
    /// pointer chasing on CPU.
    pub sample_edge_s: f64,
    /// Per-node cost of a prefetch-buffer lookup (s) — hash probe,
    /// rayon-parallelized in the paper via NUMBA.
    pub lookup_node_s: f64,
    /// Per-node cost of scoreboard maintenance (s) — decay multiply or
    /// S_A increment.
    pub score_node_s: f64,
    /// Extra per-node factor for the memory-efficient S_A layout's binary
    /// search (multiplied by log2 of the halo count at call sites).
    pub score_search_s: f64,
    /// Per-hop latency of the gradient allreduce ring (s).
    pub allreduce_latency_s: f64,
    /// Allreduce bandwidth (B/s).
    pub allreduce_bw: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            rpc_latency_s: 1.0e-3,
            rpc_per_node_s: 2.0e-6,
            network_bw: 2.5e9,
            copy_bw: 20.0e9,
            cpu_macs: 25.0e9,
            // Effective A100 rate for small, irregular GNN kernels plus
            // launch overheads — ~8× the CPU trainer, matching the paper's
            // regime where GPU t_DDP no longer hides preparation (Fig. 9's
            // 60–70 % overlap efficiency).
            gpu_macs: 200.0e9,
            h2d_bw: 20.0e9,
            sample_edge_s: 60.0e-9,
            lookup_node_s: 12.0e-9,
            score_node_s: 6.0e-9,
            score_search_s: 10.0e-9,
            allreduce_latency_s: 30.0e-6,
            allreduce_bw: 10.0e9,
        }
    }
}

impl CostModel {
    /// Time to pull `nodes` remote feature rows of `feat_dim` f32s in one
    /// bulk RPC: `latency + bytes / bw`. Zero nodes costs zero (DistDGL
    /// skips empty pulls).
    pub fn t_rpc(&self, nodes: usize, feat_dim: usize) -> f64 {
        if nodes == 0 {
            return 0.0;
        }
        let bytes = (nodes * feat_dim * 4) as f64;
        self.rpc_latency_s + nodes as f64 * self.rpc_per_node_s + bytes / self.network_bw
    }

    /// Time to gather `nodes` local feature rows from the partition's
    /// KVStore (memory copy).
    pub fn t_copy(&self, nodes: usize, feat_dim: usize) -> f64 {
        let bytes = (nodes * feat_dim * 4) as f64;
        bytes / self.copy_bw
    }

    /// Neighbor sampling time for `edges` sampled edges.
    pub fn t_sampling(&self, edges: usize) -> f64 {
        edges as f64 * self.sample_edge_s
    }

    /// Prefetch-buffer lookup time for `nodes` probes.
    pub fn t_lookup(&self, nodes: usize) -> f64 {
        nodes as f64 * self.lookup_node_s
    }

    /// Scoreboard maintenance time for `nodes` score updates; when
    /// `mem_efficient`, adds the binary-search factor over `halo` entries
    /// (§IV-B: O(log |V_p^h|) per update).
    pub fn t_scoring(&self, nodes: usize, mem_efficient: bool, halo: usize) -> f64 {
        let base = nodes as f64 * self.score_node_s;
        if mem_efficient && halo > 1 {
            base + nodes as f64 * self.score_search_s * (halo as f64).log2()
        } else {
            base
        }
    }

    /// DDP training time for one minibatch: compute (`macs` multiply-
    /// accumulates on `backend`) + H2D input copy on GPU + ring allreduce of
    /// `param_bytes` across `world` trainers.
    pub fn t_ddp(
        &self,
        macs: f64,
        input_bytes: usize,
        param_bytes: usize,
        world: usize,
        backend: Backend,
    ) -> f64 {
        let compute = match backend {
            Backend::Cpu => macs / self.cpu_macs,
            Backend::Gpu => macs / self.gpu_macs + input_bytes as f64 / self.h2d_bw,
        };
        compute + self.t_allreduce(param_bytes, world)
    }

    /// Ring-allreduce time: `2(p-1)` hops of latency plus `2(p-1)/p` of the
    /// payload over the allreduce bandwidth.
    pub fn t_allreduce(&self, bytes: usize, world: usize) -> f64 {
        if world <= 1 {
            return 0.0;
        }
        let p = world as f64;
        2.0 * (p - 1.0) * self.allreduce_latency_s
            + 2.0 * (p - 1.0) / p * bytes as f64 / self.allreduce_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpc_zero_nodes_is_free() {
        let c = CostModel::default();
        assert_eq!(c.t_rpc(0, 128), 0.0);
        assert!(c.t_rpc(1, 128) >= c.rpc_latency_s);
    }

    #[test]
    fn rpc_scales_with_bytes() {
        let c = CostModel::default();
        let small = c.t_rpc(100, 128);
        let large = c.t_rpc(10_000, 128);
        assert!(large > small);
        // Asymptotically linear: double the nodes ≈ double the per-node terms.
        let t1 = c.t_rpc(1_000_000, 128) - c.rpc_latency_s;
        let t2 = c.t_rpc(2_000_000, 128) - c.rpc_latency_s;
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn remote_fetch_slower_than_local_copy() {
        let c = CostModel::default();
        assert!(c.t_rpc(1000, 128) > c.t_copy(1000, 128));
    }

    #[test]
    fn gpu_compute_faster_than_cpu() {
        let c = CostModel::default();
        let macs = 1e9;
        let cpu = c.t_ddp(macs, 1 << 20, 1 << 20, 8, Backend::Cpu);
        let gpu = c.t_ddp(macs, 1 << 20, 1 << 20, 8, Backend::Gpu);
        assert!(gpu < cpu);
    }

    #[test]
    fn allreduce_zero_for_single_trainer() {
        let c = CostModel::default();
        assert_eq!(c.t_allreduce(1 << 20, 1), 0.0);
        assert!(c.t_allreduce(1 << 20, 2) > 0.0);
        // More trainers, more latency hops.
        assert!(c.t_allreduce(1 << 20, 16) > c.t_allreduce(1 << 20, 2));
    }

    #[test]
    fn mem_efficient_scoring_costs_more() {
        let c = CostModel::default();
        let dense = c.t_scoring(1000, false, 1 << 20);
        let eff = c.t_scoring(1000, true, 1 << 20);
        assert!(eff > dense);
        // Degenerate halo: no search term.
        assert_eq!(c.t_scoring(10, true, 1), c.t_scoring(10, false, 1));
    }

    #[test]
    fn cpu_regime_has_rpc_over_ddp_above_one() {
        // The paper's CPU setting: feature movement dominates training.
        // A products-like minibatch: ~50k sampled nodes, 100-dim features,
        // ~40k remote; model ~ 2 layers of (50k×100×256) MACs.
        let c = CostModel::default();
        let t_rpc = c.t_rpc(40_000, 100);
        let macs = 2.0 * 50_000.0 * 100.0 * 256.0 * 3.0; // fwd+bwd approx
        let t_ddp_cpu = c.t_ddp(macs, 50_000 * 400, 4 << 20, 8, Backend::Cpu);
        let t_ddp_gpu = c.t_ddp(macs, 50_000 * 400, 4 << 20, 8, Backend::Gpu);
        let ratio_cpu = t_rpc / t_ddp_cpu;
        let ratio_gpu = t_rpc / t_ddp_gpu;
        // GPU ratio must exceed CPU ratio (fast compute no longer hides
        // comms), CPU compute must be long enough to hide the RPC (perfect
        // overlap, Fig. 9), and on GPU feature movement lands on the
        // critical path (Eq. 6's t_RPC/t_DDP ≥ 1 regime).
        assert!(ratio_gpu > ratio_cpu);
        assert!(ratio_cpu < 1.0, "CPU t_rpc/t_ddp {ratio_cpu}");
        assert!(ratio_gpu > 1.0, "GPU t_rpc/t_ddp {ratio_gpu}");
    }
}
