//! Per-partition feature KVStore, mirroring DistDGL's.
//!
//! Each partition's server holds the features (and labels) of the nodes it
//! *owns*, keyed by global id. Trainers pull local rows directly and remote
//! rows via [`crate::rpc`] or [`crate::cluster::SimCluster::pull`].

use mgnn_graph::NodeId;

/// A pull touched a global id this shard does not own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvError {
    /// The offending global node id.
    pub node: NodeId,
    /// The partition that rejected it.
    pub part: u32,
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node {} not owned by partition {}", self.node, self.part)
    }
}

impl std::error::Error for KvError {}

/// Feature shard of one partition.
#[derive(Debug, Clone)]
pub struct KvStore {
    part_id: u32,
    /// Sorted global ids of owned nodes.
    owned: Vec<NodeId>,
    /// Row-major features, one row per owned node (aligned with `owned`).
    features: Vec<f32>,
    /// Labels aligned with `owned`.
    labels: Vec<u32>,
    dim: usize,
}

impl KvStore {
    /// Build a shard for `part_id` owning `owned` (sorted global ids), with
    /// rows gathered from a global feature source.
    pub fn new(
        part_id: u32,
        owned: Vec<NodeId>,
        features: Vec<f32>,
        labels: Vec<u32>,
        dim: usize,
    ) -> Self {
        assert_eq!(features.len(), owned.len() * dim);
        assert_eq!(labels.len(), owned.len());
        debug_assert!(
            owned.windows(2).all(|w| w[0] < w[1]),
            "owned must be sorted"
        );
        KvStore {
            part_id,
            owned,
            features,
            labels,
            dim,
        }
    }

    /// Partition id this shard belongs to.
    #[inline]
    pub fn part_id(&self) -> u32 {
        self.part_id
    }

    /// Feature dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of owned nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.owned.len()
    }

    /// Whether the shard is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.owned.is_empty()
    }

    /// Whether this shard owns global node `g`.
    pub fn owns(&self, g: NodeId) -> bool {
        self.owned.binary_search(&g).is_ok()
    }

    /// Feature row of owned global node `g`. Panics if not owned.
    pub fn row(&self, g: NodeId) -> &[f32] {
        self.try_row(g).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Feature row of global node `g`, or a typed error if this shard
    /// does not own it.
    pub fn try_row(&self, g: NodeId) -> Result<&[f32], KvError> {
        match self.owned.binary_search(&g) {
            Ok(i) => Ok(&self.features[i * self.dim..(i + 1) * self.dim]),
            Err(_) => Err(KvError {
                node: g,
                part: self.part_id,
            }),
        }
    }

    /// Label of owned global node `g`.
    pub fn label(&self, g: NodeId) -> u32 {
        let i = self
            .owned
            .binary_search(&g)
            .unwrap_or_else(|_| panic!("node {g} not owned by partition {}", self.part_id));
        self.labels[i]
    }

    /// Bulk pull: gather rows for `ids` into a dense row-major buffer —
    /// the payload of one bulk RPC response. Fails on the first id this
    /// shard does not own, so a routing bug surfaces as a typed error
    /// at the server instead of a panic that kills the server thread.
    pub fn pull(&self, ids: &[NodeId]) -> Result<Vec<f32>, KvError> {
        let mut out = Vec::with_capacity(ids.len() * self.dim);
        for &g in ids {
            out.extend_from_slice(self.try_row(g)?);
        }
        Ok(out)
    }

    /// Approximate heap bytes (the paper's Fig. 14 memory accounting).
    pub fn heap_bytes(&self) -> usize {
        self.features.len() * 4 + self.owned.len() * 4 + self.labels.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> KvStore {
        // owns nodes 2, 5, 9 with dim 2
        KvStore::new(
            0,
            vec![2, 5, 9],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            vec![0, 1, 0],
            2,
        )
    }

    #[test]
    fn ownership_and_rows() {
        let s = store();
        assert!(s.owns(5));
        assert!(!s.owns(3));
        assert_eq!(s.row(5), &[3.0, 4.0]);
        assert_eq!(s.label(9), 0);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn bulk_pull_order_preserved() {
        let s = store();
        let out = s.pull(&[9, 2]).unwrap();
        assert_eq!(out, vec![5.0, 6.0, 1.0, 2.0]);
    }

    #[test]
    fn pull_unowned_is_typed_error() {
        let err = store().pull(&[3]).unwrap_err();
        assert_eq!(err, KvError { node: 3, part: 0 });
        assert_eq!(err.to_string(), "node 3 not owned by partition 0");
    }

    #[test]
    fn mixed_owned_unowned_bulk_pull_reports_first_offender() {
        // Owned ids before the bad one must not mask the error, and the
        // *first* unowned id is the one reported.
        let err = store().pull(&[2, 9, 7, 3]).unwrap_err();
        assert_eq!(err, KvError { node: 7, part: 0 });
        assert!(store().try_row(7).is_err());
        assert_eq!(store().try_row(9).unwrap(), &[5.0, 6.0]);
    }

    #[test]
    fn empty_store() {
        let s = KvStore::new(1, vec![], vec![], vec![], 4);
        assert!(s.is_empty());
        assert_eq!(s.pull(&[]).unwrap(), Vec::<f32>::new());
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_rejected() {
        KvStore::new(0, vec![1, 2], vec![0.0; 3], vec![0, 0], 2);
    }
}
