//! Per-partition feature KVStore, mirroring DistDGL's.
//!
//! Each partition's server holds the features (and labels) of the nodes it
//! *owns*, keyed by global id. Trainers pull local rows directly and remote
//! rows via [`crate::rpc`] or [`crate::cluster::SimCluster::pull`].

use mgnn_graph::NodeId;

/// Feature shard of one partition.
#[derive(Debug, Clone)]
pub struct KvStore {
    part_id: u32,
    /// Sorted global ids of owned nodes.
    owned: Vec<NodeId>,
    /// Row-major features, one row per owned node (aligned with `owned`).
    features: Vec<f32>,
    /// Labels aligned with `owned`.
    labels: Vec<u32>,
    dim: usize,
}

impl KvStore {
    /// Build a shard for `part_id` owning `owned` (sorted global ids), with
    /// rows gathered from a global feature source.
    pub fn new(
        part_id: u32,
        owned: Vec<NodeId>,
        features: Vec<f32>,
        labels: Vec<u32>,
        dim: usize,
    ) -> Self {
        assert_eq!(features.len(), owned.len() * dim);
        assert_eq!(labels.len(), owned.len());
        debug_assert!(
            owned.windows(2).all(|w| w[0] < w[1]),
            "owned must be sorted"
        );
        KvStore {
            part_id,
            owned,
            features,
            labels,
            dim,
        }
    }

    /// Partition id this shard belongs to.
    #[inline]
    pub fn part_id(&self) -> u32 {
        self.part_id
    }

    /// Feature dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of owned nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.owned.len()
    }

    /// Whether the shard is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.owned.is_empty()
    }

    /// Whether this shard owns global node `g`.
    pub fn owns(&self, g: NodeId) -> bool {
        self.owned.binary_search(&g).is_ok()
    }

    /// Feature row of owned global node `g`. Panics if not owned.
    pub fn row(&self, g: NodeId) -> &[f32] {
        let i = self
            .owned
            .binary_search(&g)
            .unwrap_or_else(|_| panic!("node {g} not owned by partition {}", self.part_id));
        &self.features[i * self.dim..(i + 1) * self.dim]
    }

    /// Label of owned global node `g`.
    pub fn label(&self, g: NodeId) -> u32 {
        let i = self
            .owned
            .binary_search(&g)
            .unwrap_or_else(|_| panic!("node {g} not owned by partition {}", self.part_id));
        self.labels[i]
    }

    /// Bulk pull: gather rows for `ids` (all must be owned) into a dense
    /// row-major buffer — the payload of one bulk RPC response.
    pub fn pull(&self, ids: &[NodeId]) -> Vec<f32> {
        let mut out = Vec::with_capacity(ids.len() * self.dim);
        for &g in ids {
            out.extend_from_slice(self.row(g));
        }
        out
    }

    /// Approximate heap bytes (the paper's Fig. 14 memory accounting).
    pub fn heap_bytes(&self) -> usize {
        self.features.len() * 4 + self.owned.len() * 4 + self.labels.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> KvStore {
        // owns nodes 2, 5, 9 with dim 2
        KvStore::new(
            0,
            vec![2, 5, 9],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            vec![0, 1, 0],
            2,
        )
    }

    #[test]
    fn ownership_and_rows() {
        let s = store();
        assert!(s.owns(5));
        assert!(!s.owns(3));
        assert_eq!(s.row(5), &[3.0, 4.0]);
        assert_eq!(s.label(9), 0);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn bulk_pull_order_preserved() {
        let s = store();
        let out = s.pull(&[9, 2]);
        assert_eq!(out, vec![5.0, 6.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn pull_unowned_panics() {
        store().pull(&[3]);
    }

    #[test]
    fn empty_store() {
        let s = KvStore::new(1, vec![], vec![], vec![], 4);
        assert!(s.is_empty());
        assert_eq!(s.pull(&[]), Vec::<f32>::new());
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_rejected() {
        KvStore::new(0, vec![1, 2], vec![0.0; 3], vec![0, 0], 2);
    }
}
