//! Per-trainer simulated clock.
//!
//! A [`SimClock`] accumulates modeled seconds. The combinator that matters
//! for the paper is [`SimClock::advance_overlapped`]: Eq. 5's
//! `max(t_prepare, t_DDP)` — two activities running concurrently advance
//! the clock by the longer one, and the shorter activity's *slack* is
//! recorded so overlap efficiency (Fig. 9) can be reported.

/// Simulated wall clock for one trainer.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: f64,
    /// Total time the trainer stalled waiting for data preparation
    /// (preparation exceeding training during overlap).
    stall: f64,
    /// Total slack: training exceeding preparation (preparation fully
    /// hidden).
    slack: f64,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advance by a serial activity of duration `dt`.
    pub fn advance(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0, "negative duration");
        self.now += dt;
    }

    /// Advance by two concurrent activities (Eq. 4/5 of the paper):
    /// the clock moves by `max(a, b)`; if `a` (preparation) exceeds `b`
    /// (training) the difference is a stall, otherwise it is slack.
    pub fn advance_overlapped(&mut self, prepare: f64, train: f64) {
        debug_assert!(prepare >= 0.0 && train >= 0.0);
        self.now += prepare.max(train);
        if prepare > train {
            self.stall += prepare - train;
        } else {
            self.slack += train - prepare;
        }
    }

    /// Cumulative stall time (trainer waiting on preparation).
    #[inline]
    pub fn stall(&self) -> f64 {
        self.stall
    }

    /// Cumulative slack time (preparation fully hidden under training).
    #[inline]
    pub fn slack(&self) -> f64 {
        self.slack
    }

    /// Overlap efficiency in `[0, 1]`: the fraction of overlapped rounds'
    /// preparation time hidden under training. 1.0 = the paper's "perfect
    /// overlap". Returns 1.0 when nothing was overlapped.
    pub fn overlap_efficiency(&self) -> f64 {
        let denom = self.stall + self.slack;
        if denom == 0.0 {
            1.0
        } else {
            self.slack / denom
        }
    }

    /// Merge per-trainer clocks into the *makespan* view: distributed
    /// training finishes when the slowest trainer does (synchronous SGD
    /// barriers every minibatch make the max the honest aggregate).
    pub fn makespan(clocks: &[SimClock]) -> f64 {
        clocks.iter().map(|c| c.now).fold(0.0, f64::max)
    }
}

/// Simulated clock for a two-stage pipeline with a bounded look-ahead
/// queue of depth `k` — the generalization of Eq. 5 beyond the paper's
/// `k = 1` (its future-work direction: "options to prefetch future
/// minibatches can pave the way towards a sustainable perfect overlap").
///
/// Stage 1 (preparation) produces batches into the queue; stage 2
/// (training) consumes them. Preparation of batch `i` may start once the
/// prepare server is free **and** batch `i−k` has been popped for
/// training (queue slot freed):
///
/// ```text
/// prep_start(i)  = max(prep_done(i−1), train_start(i−k))
/// prep_done(i)   = prep_start(i) + t_prep(i)
/// train_start(i) = max(train_done(i−1), prep_done(i))
/// train_done(i)  = train_start(i) + t_train(i)
/// ```
///
/// With `k = 1` this reduces exactly to the paper's Eq. 4/5. Deeper
/// queues do not raise steady-state throughput (the slower server still
/// bounds it) but absorb *bursts* — e.g. the Δ-periodic eviction rounds
/// that spike `t_prep`.
#[derive(Debug, Clone)]
pub struct PipelineClock {
    lookahead: usize,
    prep_done: f64,
    train_done: f64,
    /// train_start times of the last `lookahead` batches.
    recent_train_starts: std::collections::VecDeque<f64>,
    stall: f64,
    slack: f64,
    steps: u64,
}

impl PipelineClock {
    /// A pipeline clock with queue depth `lookahead ≥ 1`, starting at
    /// time `start` (e.g. after initialization costs).
    pub fn new(lookahead: usize, start: f64) -> Self {
        assert!(lookahead >= 1);
        PipelineClock {
            lookahead,
            prep_done: start,
            train_done: start,
            recent_train_starts: std::collections::VecDeque::with_capacity(lookahead),
            stall: 0.0,
            slack: 0.0,
            steps: 0,
        }
    }

    /// Process one batch: it is prepared (respecting server and queue
    /// constraints) and then trained.
    pub fn step(&mut self, t_prep: f64, t_train: f64) {
        self.step_timed(t_prep, t_train);
    }

    /// [`step`](Self::step), returning where on the simulated timeline
    /// the batch's preparation and training landed — the anchors the
    /// tracing layer needs to place spans absolutely.
    pub fn step_timed(&mut self, t_prep: f64, t_train: f64) -> PipelineStepTimes {
        debug_assert!(t_prep >= 0.0 && t_train >= 0.0);
        let queue_room = if self.recent_train_starts.len() < self.lookahead {
            f64::NEG_INFINITY // queue not yet full; prep may start immediately
        } else {
            // Batch i−k's train_start frees the slot.
            *self.recent_train_starts.front().unwrap()
        };
        let prep_start = self.prep_done.max(queue_room);
        let prep_done = prep_start + t_prep;
        let train_start = self.train_done.max(prep_done);
        // Stall: trainer idle waiting for the batch; slack: batch waited
        // ready in the queue. The pipeline-fill warmup (first `lookahead`
        // batches, Eq. 4's unavoidable serial preparation) is excluded
        // from the efficiency metric, as in the paper's Fig. 9 which
        // measures steady-state waiting.
        let mut step_stall = 0.0;
        let mut step_slack = 0.0;
        if self.steps >= self.lookahead as u64 {
            if prep_done > self.train_done {
                step_stall = prep_done - self.train_done;
                self.stall += step_stall;
            } else {
                step_slack = self.train_done - prep_done;
                self.slack += step_slack;
            }
        }
        let train_done = train_start + t_train;
        self.prep_done = prep_done;
        self.train_done = train_done;
        if self.recent_train_starts.len() == self.lookahead {
            self.recent_train_starts.pop_front();
        }
        self.recent_train_starts.push_back(train_start);
        self.steps += 1;
        PipelineStepTimes {
            prep_start,
            prep_done,
            train_start,
            train_done,
            stall_s: step_stall,
            slack_s: step_slack,
        }
    }

    /// Simulated completion time of everything processed so far.
    pub fn now(&self) -> f64 {
        self.train_done
    }

    /// Cumulative trainer stall time.
    pub fn stall(&self) -> f64 {
        self.stall
    }

    /// Cumulative slack time (batches waiting ready in the queue).
    pub fn slack(&self) -> f64 {
        self.slack
    }

    /// Overlap efficiency in `[0, 1]` (1 = every batch was ready when the
    /// trainer wanted it).
    pub fn overlap_efficiency(&self) -> f64 {
        let denom = self.stall + self.slack;
        if denom == 0.0 {
            1.0
        } else {
            self.slack / denom
        }
    }
}

/// Where one [`PipelineClock::step_timed`] batch landed on the simulated
/// timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineStepTimes {
    /// When the batch's preparation started.
    pub prep_start: f64,
    /// When its preparation finished.
    pub prep_done: f64,
    /// When its training started.
    pub train_start: f64,
    /// When its training finished.
    pub train_done: f64,
    /// Trainer stall attributed to this batch (0 during pipeline warmup).
    pub stall_s: f64,
    /// Slack attributed to this batch (0 during warmup).
    pub slack_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_advance_accumulates() {
        let mut c = SimClock::new();
        c.advance(1.5);
        c.advance(0.5);
        assert!((c.now() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_takes_max() {
        let mut c = SimClock::new();
        c.advance_overlapped(1.0, 3.0);
        assert!((c.now() - 3.0).abs() < 1e-12);
        assert_eq!(c.stall(), 0.0);
        assert!((c.slack() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stall_recorded_when_prepare_dominates() {
        let mut c = SimClock::new();
        c.advance_overlapped(5.0, 2.0);
        assert!((c.now() - 5.0).abs() < 1e-12);
        assert!((c.stall() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_efficiency_bounds() {
        let mut perfect = SimClock::new();
        perfect.advance_overlapped(1.0, 2.0);
        assert!((perfect.overlap_efficiency() - 1.0).abs() < 1e-12);

        let mut poor = SimClock::new();
        poor.advance_overlapped(2.0, 1.0);
        poor.advance_overlapped(2.0, 1.0);
        assert_eq!(poor.overlap_efficiency(), 0.0);

        let mut mixed = SimClock::new();
        mixed.advance_overlapped(1.0, 2.0); // slack 1
        mixed.advance_overlapped(3.0, 2.0); // stall 1
        assert!((mixed.overlap_efficiency() - 0.5).abs() < 1e-12);

        let untouched = SimClock::new();
        assert_eq!(untouched.overlap_efficiency(), 1.0);
    }

    #[test]
    fn pipeline_depth1_matches_eq5() {
        // Constant times: steady state should advance by max(prep, train)
        // per step, matching SimClock::advance_overlapped.
        let mut p = PipelineClock::new(1, 0.0);
        for _ in 0..100 {
            p.step(2.0, 3.0);
        }
        // First batch: prep 2 then train 3 = 5; afterwards each step adds
        // max(2,3)=3. The warmup batch is excluded from efficiency.
        assert!((p.now() - (5.0 + 99.0 * 3.0)).abs() < 1e-9);
        assert!((p.overlap_efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pipeline_throughput_bound_by_slower_server() {
        // prep slower than train: deeper queues cannot beat the prep rate.
        let mut d1 = PipelineClock::new(1, 0.0);
        let mut d8 = PipelineClock::new(8, 0.0);
        for _ in 0..200 {
            d1.step(3.0, 1.0);
            d8.step(3.0, 1.0);
        }
        assert!((d1.now() - d8.now()).abs() < 3.0 + 1e-9);
        assert!(d1.now() >= 200.0 * 3.0);
    }

    #[test]
    fn deeper_queue_absorbs_prep_bursts() {
        // Bursty prep (every 8th batch is 9× slower — an eviction round),
        // train in between is long enough to amortize the burst if the
        // queue can run ahead.
        let run = |k: usize| {
            let mut p = PipelineClock::new(k, 0.0);
            for i in 0..160 {
                let t_prep = if i % 8 == 0 { 9.0 } else { 1.0 };
                p.step(t_prep, 2.5);
            }
            p.now()
        };
        let shallow = run(1);
        let deep = run(4);
        assert!(
            deep < shallow * 0.95,
            "depth 4 ({deep:.1}) should absorb bursts vs depth 1 ({shallow:.1})"
        );
    }

    #[test]
    fn pipeline_never_faster_than_either_stage_sum() {
        let mut p = PipelineClock::new(4, 0.0);
        let mut prep_sum = 0.0;
        let mut train_sum = 0.0;
        for i in 0..50 {
            let a = 1.0 + (i % 3) as f64;
            let b = 2.0 - (i % 2) as f64 * 0.5;
            prep_sum += a;
            train_sum += b;
            p.step(a, b);
        }
        assert!(p.now() + 1e-9 >= prep_sum.max(train_sum));
        assert!(p.now() <= prep_sum + train_sum + 1e-9);
    }

    #[test]
    fn step_timed_reports_timeline_and_per_step_stall() {
        let mut p = PipelineClock::new(1, 10.0);
        let t0 = p.step_timed(2.0, 3.0);
        assert_eq!(t0.prep_start, 10.0);
        assert_eq!(t0.prep_done, 12.0);
        assert_eq!(t0.train_start, 12.0);
        assert_eq!(t0.train_done, 15.0);
        assert_eq!((t0.stall_s, t0.slack_s), (0.0, 0.0), "warmup excluded");
        // Steady state with prep 2 / train 3: prep hidden, slack 1 per step.
        let t1 = p.step_timed(2.0, 3.0);
        assert!((t1.slack_s - 1.0).abs() < 1e-12);
        assert_eq!(t1.stall_s, 0.0);
        assert_eq!(t1.train_start, t0.train_done);
        // A burst stalls the trainer by prep_done − prev train_done.
        let t2 = p.step_timed(10.0, 3.0);
        assert!((t2.stall_s - (t2.prep_done - t1.train_done)).abs() < 1e-12);
        assert!((p.stall() - t2.stall_s).abs() < 1e-12);
        assert!((p.slack() - t1.slack_s).abs() < 1e-12);
    }

    #[test]
    fn step_and_step_timed_agree() {
        let mut a = PipelineClock::new(2, 0.0);
        let mut b = PipelineClock::new(2, 0.0);
        for i in 0..50 {
            let prep = 1.0 + (i % 5) as f64;
            let train = 2.0 + (i % 3) as f64;
            a.step(prep, train);
            b.step_timed(prep, train);
        }
        assert_eq!(a.now(), b.now());
        assert_eq!(a.stall(), b.stall());
        assert_eq!(a.overlap_efficiency(), b.overlap_efficiency());
    }

    #[test]
    fn makespan_is_max() {
        let mut a = SimClock::new();
        a.advance(1.0);
        let mut b = SimClock::new();
        b.advance(4.0);
        assert_eq!(SimClock::makespan(&[a, b]), 4.0);
        assert_eq!(SimClock::makespan(&[]), 0.0);
    }
}
