//! Channel-based RPC between trainer clients and partition servers.
//!
//! DistDGL's trainers pull halo features from remote KVStore servers via
//! bulk RPC. Here each server is a real thread draining a crossbeam
//! channel; a pull sends a request carrying a one-shot reply channel and
//! blocks on the response, so real bytes cross a real thread boundary —
//! the asynchrony/ordering behaviour the prefetch pipeline relies on is
//! exercised for real, while the *time* such a pull would cost on a
//! cluster is charged separately by the cost model.
//!
//! Every client-facing call returns `Result<_, RpcError>` instead of
//! panicking: a dead server surfaces as [`RpcError::ServerGone`], a
//! swallowed reply as [`RpcError::Timeout`] (via
//! [`PullHandle::wait_timeout`]), a short payload as
//! [`RpcError::Truncated`], and a routing bug as [`RpcError::Kv`].
//! Servers optionally run under a deterministic [`FaultPlan`] that
//! decides per request whether to drop, delay-tag, or truncate the
//! reply, or crash the server thread outright.

use crate::fault::{FaultPlan, FaultVerdict};
use crate::kvstore::{KvError, KvStore};
use crossbeam_channel::{bounded, unbounded, RecvTimeoutError, Sender};
use mgnn_graph::NodeId;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Why a pull failed at the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// The server thread is gone: the request could not be sent, or the
    /// reply channel disconnected before a reply arrived.
    ServerGone,
    /// No reply arrived within the wait bound.
    Timeout,
    /// The reply arrived with fewer bytes than `rows × dim`.
    Truncated {
        /// Expected payload length in floats.
        expected: usize,
        /// Received payload length in floats.
        got: usize,
    },
    /// The server rejected the request (e.g. an id it does not own).
    Kv(KvError),
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::ServerGone => f.write_str("server gone"),
            RpcError::Timeout => f.write_str("pull timed out"),
            RpcError::Truncated { expected, got } => {
                write!(
                    f,
                    "truncated payload: expected {expected} floats, got {got}"
                )
            }
            RpcError::Kv(e) => write!(f, "server rejected pull: {e}"),
        }
    }
}

impl std::error::Error for RpcError {}

/// One reply from a partition server.
#[derive(Debug)]
pub struct PullReply {
    /// The gathered rows, or the server-side rejection.
    pub payload: Result<Vec<f32>, KvError>,
    /// Injected sim-time delay factor (0 when no delay fault fired).
    pub delay_k: u32,
}

/// A request to a partition server.
pub enum Request {
    /// Pull feature rows for `ids` (all owned by the server's partition);
    /// the dense row-major response goes to `reply`.
    Pull {
        /// Global node ids to fetch.
        ids: Vec<NodeId>,
        /// One-shot response channel.
        reply: Sender<PullReply>,
    },
    /// Stop the server loop.
    Shutdown,
}

/// A running partition feature server.
pub struct RpcServer {
    tx: Sender<Request>,
    handle: Option<JoinHandle<u64>>,
    dim: usize,
}

impl RpcServer {
    /// Spawn a server thread for `kv`.
    pub fn spawn(kv: Arc<KvStore>) -> Self {
        Self::spawn_with_delay(kv, std::time::Duration::ZERO)
    }

    /// Spawn a server that sleeps `delay` before answering each pull —
    /// emulating real network/service latency with real wall-clock time,
    /// so the threaded overlap pipeline has something genuine to hide
    /// (in-process RPC is otherwise effectively free).
    pub fn spawn_with_delay(kv: Arc<KvStore>, delay: std::time::Duration) -> Self {
        Self::spawn_inner(kv, delay, None, None)
    }

    /// Spawn a server running under a deterministic fault plan: each
    /// request's verdict (serve / drop / delay-tag / truncate) is a pure
    /// function of the plan seed and the request index, and the server
    /// thread exits — without replying — once the plan's crash budget is
    /// reached. Injected delays are *sim-time tags* on the reply, not
    /// wall-clock sleeps, so chaos runs stay fast and reproducible.
    pub fn spawn_planned(
        kv: Arc<KvStore>,
        delay: std::time::Duration,
        plan: Option<FaultPlan>,
    ) -> Self {
        Self::spawn_inner(kv, delay, None, plan)
    }

    /// [`spawn_with_delay`](Self::spawn_with_delay), recording one
    /// wall-clock `rpc` span on the recorder's server lane per pull
    /// served. Unlike the simulated-time spans the engine records, these
    /// measure real service time on a real thread — the "step" key is the
    /// server's running request index, since a server does not know which
    /// training step a pull belongs to.
    pub fn spawn_traced(
        kv: Arc<KvStore>,
        delay: std::time::Duration,
        recorder: Arc<mgnn_obs::SpanRecorder>,
    ) -> Self {
        Self::spawn_inner(kv, delay, Some(recorder), None)
    }

    fn spawn_inner(
        kv: Arc<KvStore>,
        delay: std::time::Duration,
        recorder: Option<Arc<mgnn_obs::SpanRecorder>>,
        plan: Option<FaultPlan>,
    ) -> Self {
        let dim = kv.dim();
        let (tx, rx) = unbounded::<Request>();
        let handle = std::thread::Builder::new()
            .name(format!("kvserver-{}", kv.part_id()))
            .spawn(move || {
                let mut served = 0u64;
                let mut requests = 0u64;
                // Reply senders for swallowed (dropped) replies are parked
                // here instead of being dropped: dropping one would signal
                // "disconnected" to the waiting client, but a swallowed
                // reply must look like *silence* (a timeout), exactly as
                // on a real network.
                let mut parked: Vec<Sender<PullReply>> = Vec::new();
                while let Ok(req) = rx.recv() {
                    match req {
                        Request::Pull { ids, reply } => {
                            if let Some(p) = &plan {
                                if p.crash_before(requests) {
                                    // Simulated crash: exit without
                                    // replying. Dropping `reply` (and the
                                    // request channel) is what in-flight
                                    // and queued clients observe.
                                    break;
                                }
                            }
                            let verdict = plan
                                .as_ref()
                                .map(|p| p.verdict(requests))
                                .unwrap_or(FaultVerdict::None);
                            let _span = recorder.as_ref().map(|r| {
                                r.start_wall(mgnn_obs::Lane::Server, requests, mgnn_obs::Phase::Rpc)
                            });
                            requests += 1;
                            if !delay.is_zero() && !ids.is_empty() {
                                std::thread::sleep(delay);
                            }
                            if matches!(verdict, FaultVerdict::Drop) {
                                // Swallow the reply; the client times out.
                                parked.push(reply);
                                continue;
                            }
                            let mut payload = kv.pull(&ids);
                            let delay_k = match verdict {
                                FaultVerdict::Delay(k) => k,
                                _ => 0,
                            };
                            if matches!(verdict, FaultVerdict::Truncate) {
                                if let Ok(p) = &mut payload {
                                    p.truncate(p.len().saturating_sub(dim));
                                }
                            }
                            if let Ok(p) = &payload {
                                served += (p.len() / dim.max(1)) as u64;
                            }
                            // A dropped client is not a server error.
                            let _ = reply.send(PullReply { payload, delay_k });
                        }
                        Request::Shutdown => break,
                    }
                }
                served
            })
            .expect("failed to spawn kvserver thread");
        RpcServer {
            tx,
            handle: Some(handle),
            dim,
        }
    }

    /// A client handle to this server (cheaply cloneable).
    pub fn client(&self) -> RpcClient {
        RpcClient {
            tx: self.tx.clone(),
            dim: self.dim,
        }
    }

    /// Shut the server down, returning the total rows it served. Safe to
    /// call on a server that already crashed: the join still succeeds.
    pub fn shutdown(mut self) -> u64 {
        let _ = self.tx.send(Request::Shutdown);
        self.handle
            .take()
            .map(|h| h.join().expect("kvserver panicked"))
            .unwrap_or(0)
    }
}

impl Drop for RpcServer {
    fn drop(&mut self) {
        let _ = self.tx.send(Request::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Client handle for issuing pulls to one partition server.
#[derive(Clone)]
pub struct RpcClient {
    tx: Sender<Request>,
    dim: usize,
}

impl RpcClient {
    /// Blocking bulk pull of `ids` from the server.
    pub fn pull(&self, ids: Vec<NodeId>) -> Result<Vec<f32>, RpcError> {
        self.pull_async(ids)?.wait().map(|r| r.payload)
    }

    /// Fire a pull and return a waiter, letting the caller overlap other
    /// work before blocking — the RPC/score-update overlap of Algorithm 2
    /// line 20–22. Fails immediately if the server is already gone.
    pub fn pull_async(&self, ids: Vec<NodeId>) -> Result<PullHandle, RpcError> {
        let (rtx, rrx) = bounded(1);
        let expect_rows = ids.len();
        self.tx
            .send(Request::Pull { ids, reply: rtx })
            .map_err(|_| RpcError::ServerGone)?;
        Ok(PullHandle {
            rx: rrx,
            expect_rows,
            dim: self.dim,
        })
    }
}

/// A validated, completed pull.
#[derive(Debug)]
pub struct PullResponse {
    /// Dense row-major rows in request order.
    pub payload: Vec<f32>,
    /// Injected sim-time delay factor carried back by the server.
    pub delay_k: u32,
}

/// In-flight pull.
pub struct PullHandle {
    rx: crossbeam_channel::Receiver<PullReply>,
    expect_rows: usize,
    dim: usize,
}

impl PullHandle {
    /// Block until the response arrives. If the server thread dies
    /// mid-request this returns [`RpcError::ServerGone`] instead of
    /// hanging or panicking.
    pub fn wait(self) -> Result<PullResponse, RpcError> {
        let reply = self.rx.recv().map_err(|_| RpcError::ServerGone)?;
        Self::validate(reply, self.expect_rows, self.dim)
    }

    /// Block at most `timeout` for the response. A swallowed reply
    /// surfaces as [`RpcError::Timeout`]; a dead server as
    /// [`RpcError::ServerGone`].
    pub fn wait_timeout(self, timeout: std::time::Duration) -> Result<PullResponse, RpcError> {
        let reply = self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => RpcError::Timeout,
            RecvTimeoutError::Disconnected => RpcError::ServerGone,
        })?;
        Self::validate(reply, self.expect_rows, self.dim)
    }

    fn validate(
        reply: PullReply,
        expect_rows: usize,
        dim: usize,
    ) -> Result<PullResponse, RpcError> {
        let payload = reply.payload.map_err(RpcError::Kv)?;
        let expected = expect_rows * dim;
        if payload.len() != expected {
            return Err(RpcError::Truncated {
                expected,
                got: payload.len(),
            });
        }
        Ok(PullResponse {
            payload,
            delay_k: reply.delay_k,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultProfile;

    fn kv() -> Arc<KvStore> {
        Arc::new(KvStore::new(
            0,
            vec![1, 3, 5],
            vec![1.0, 1.5, 3.0, 3.5, 5.0, 5.5],
            vec![0, 1, 2],
            2,
        ))
    }

    fn plan_with(f: impl FnOnce(&mut FaultProfile)) -> FaultPlan {
        let mut p = FaultProfile::off(11);
        f(&mut p);
        p.plan_for(0)
    }

    #[test]
    fn pull_round_trip() {
        let server = RpcServer::spawn(kv());
        let client = server.client();
        let out = client.pull(vec![5, 1]).unwrap();
        assert_eq!(out, vec![5.0, 5.5, 1.0, 1.5]);
        assert_eq!(server.shutdown(), 2);
    }

    #[test]
    fn async_pull_overlaps() {
        let server = RpcServer::spawn(kv());
        let client = server.client();
        let handle = client.pull_async(vec![3]).unwrap();
        // Do "other work" before waiting.
        let x: u64 = (0..100).sum();
        assert_eq!(x, 4950);
        let resp = handle.wait().unwrap();
        assert_eq!(resp.payload, vec![3.0, 3.5]);
        assert_eq!(resp.delay_k, 0);
    }

    #[test]
    fn many_clients_one_server() {
        let server = RpcServer::spawn(kv());
        let clients: Vec<RpcClient> = (0..4).map(|_| server.client()).collect();
        let handles: Vec<_> = clients
            .into_iter()
            .map(|c| {
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        assert_eq!(c.pull(vec![1]).unwrap(), vec![1.0, 1.5]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.shutdown(), 200);
    }

    #[test]
    fn delayed_server_still_correct() {
        let server = RpcServer::spawn_with_delay(kv(), std::time::Duration::from_millis(2));
        let client = server.client();
        let t0 = std::time::Instant::now();
        assert_eq!(client.pull(vec![1]).unwrap(), vec![1.0, 1.5]);
        assert!(t0.elapsed() >= std::time::Duration::from_millis(2));
        // Empty pulls skip the delay.
        let t1 = std::time::Instant::now();
        assert_eq!(client.pull(vec![]).unwrap(), Vec::<f32>::new());
        assert!(t1.elapsed() < std::time::Duration::from_millis(2));
    }

    #[test]
    fn traced_server_records_service_spans() {
        use mgnn_obs::{Lane, Phase, SpanRecorder};
        let rec = Arc::new(SpanRecorder::for_trainer(0, 0));
        let server =
            RpcServer::spawn_traced(kv(), std::time::Duration::from_millis(1), Arc::clone(&rec));
        let client = server.client();
        assert_eq!(client.pull(vec![1]).unwrap(), vec![1.0, 1.5]);
        assert_eq!(client.pull(vec![3]).unwrap(), vec![3.0, 3.5]);
        server.shutdown();
        let t = rec.snapshot();
        let rpc = t.phase(Phase::Rpc).unwrap();
        assert_eq!(rpc.count, 2);
        assert!(rpc.min_s >= 1.0e-3, "span covers the service delay");
        assert!(t.events.iter().all(|e| e.lane == Lane::Server));
        assert_eq!(t.events[0].step, 0);
        assert_eq!(t.events[1].step, 1);
        assert!(
            t.events[1].rel_start_s >= t.events[0].rel_start_s,
            "server-lane spans are wall-ordered"
        );
    }

    #[test]
    fn empty_pull() {
        let server = RpcServer::spawn(kv());
        assert_eq!(server.client().pull(vec![]).unwrap(), Vec::<f32>::new());
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let server = RpcServer::spawn(kv());
        let client = server.client();
        drop(server); // must not hang
        assert_eq!(client.pull(vec![1]), Err(RpcError::ServerGone));
        assert!(client.pull_async(vec![1]).is_err());
    }

    #[test]
    fn wait_after_server_crash_errors_instead_of_hanging() {
        // Crash budget 0: the server dies on its first request without
        // replying — exactly the mid-request death that used to panic
        // `wait` via `expect("server dropped reply")`.
        let plan = plan_with(|p| {
            p.crash_part = Some(0);
            p.crash_after = 0;
        });
        let server = RpcServer::spawn_planned(kv(), std::time::Duration::ZERO, Some(plan));
        let client = server.client();
        let handle = client.pull_async(vec![1]).unwrap();
        assert_eq!(handle.wait().unwrap_err(), RpcError::ServerGone);
        // The server is dead for good: later sends fail fast too.
        assert_eq!(client.pull(vec![3]), Err(RpcError::ServerGone));
        assert_eq!(server.shutdown(), 0);
    }

    #[test]
    fn crash_after_n_serves_n_then_dies() {
        let plan = plan_with(|p| {
            p.crash_part = Some(0);
            p.crash_after = 2;
        });
        let server = RpcServer::spawn_planned(kv(), std::time::Duration::ZERO, Some(plan));
        let client = server.client();
        assert_eq!(client.pull(vec![1]).unwrap(), vec![1.0, 1.5]);
        assert_eq!(client.pull(vec![3, 5]).unwrap(), vec![3.0, 3.5, 5.0, 5.5]);
        let handle = client.pull_async(vec![5]).unwrap();
        assert_eq!(handle.wait().unwrap_err(), RpcError::ServerGone);
        assert_eq!(server.shutdown(), 3);
    }

    #[test]
    fn dropped_reply_times_out() {
        let plan = plan_with(|p| p.drop_prob = 1.0);
        let server = RpcServer::spawn_planned(kv(), std::time::Duration::ZERO, Some(plan));
        let handle = server.client().pull_async(vec![1]).unwrap();
        let t0 = std::time::Instant::now();
        let err = handle
            .wait_timeout(std::time::Duration::from_millis(10))
            .unwrap_err();
        assert_eq!(err, RpcError::Timeout);
        assert!(t0.elapsed() >= std::time::Duration::from_millis(10));
        // The server is still alive — it swallowed the reply, it did not
        // die — so shutdown drains normally.
        assert_eq!(server.shutdown(), 0);
    }

    #[test]
    fn truncated_payload_detected() {
        let plan = plan_with(|p| p.truncate_prob = 1.0);
        let server = RpcServer::spawn_planned(kv(), std::time::Duration::ZERO, Some(plan));
        let err = server.client().pull(vec![1, 3]).unwrap_err();
        assert_eq!(
            err,
            RpcError::Truncated {
                expected: 4,
                got: 2
            }
        );
        // Truncating an empty pull is a no-op, not an error.
        assert_eq!(server.client().pull(vec![]).unwrap(), Vec::<f32>::new());
    }

    #[test]
    fn delay_verdict_tags_reply_without_wall_sleep() {
        let plan = plan_with(|p| {
            p.delay_prob = 1.0;
            p.delay_factor = 7;
        });
        let server = RpcServer::spawn_planned(kv(), std::time::Duration::ZERO, Some(plan));
        let resp = server.client().pull_async(vec![5]).unwrap().wait().unwrap();
        assert_eq!(resp.payload, vec![5.0, 5.5]);
        assert_eq!(resp.delay_k, 7, "delay rides the reply as a sim-time tag");
    }

    #[test]
    fn unowned_id_is_typed_error_and_server_survives() {
        let server = RpcServer::spawn(kv());
        let client = server.client();
        let err = client.pull(vec![1, 2]).unwrap_err();
        assert_eq!(err, RpcError::Kv(KvError { node: 2, part: 0 }));
        // The server did not die serving the bad request.
        assert_eq!(client.pull(vec![1]).unwrap(), vec![1.0, 1.5]);
    }
}
