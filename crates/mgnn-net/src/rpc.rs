//! Channel-based RPC between trainer clients and partition servers.
//!
//! DistDGL's trainers pull halo features from remote KVStore servers via
//! bulk RPC. Here each server is a real thread draining a crossbeam
//! channel; a pull sends a request carrying a one-shot reply channel and
//! blocks on the response, so real bytes cross a real thread boundary —
//! the asynchrony/ordering behaviour the prefetch pipeline relies on is
//! exercised for real, while the *time* such a pull would cost on a
//! cluster is charged separately by the cost model.

use crate::kvstore::KvStore;
use crossbeam_channel::{bounded, unbounded, Sender};
use mgnn_graph::NodeId;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A request to a partition server.
pub enum Request {
    /// Pull feature rows for `ids` (all owned by the server's partition);
    /// the dense row-major response goes to `reply`.
    Pull {
        /// Global node ids to fetch.
        ids: Vec<NodeId>,
        /// One-shot response channel.
        reply: Sender<Vec<f32>>,
    },
    /// Stop the server loop.
    Shutdown,
}

/// A running partition feature server.
pub struct RpcServer {
    tx: Sender<Request>,
    handle: Option<JoinHandle<u64>>,
}

impl RpcServer {
    /// Spawn a server thread for `kv`.
    pub fn spawn(kv: Arc<KvStore>) -> Self {
        Self::spawn_with_delay(kv, std::time::Duration::ZERO)
    }

    /// Spawn a server that sleeps `delay` before answering each pull —
    /// emulating real network/service latency with real wall-clock time,
    /// so the threaded overlap pipeline has something genuine to hide
    /// (in-process RPC is otherwise effectively free).
    pub fn spawn_with_delay(kv: Arc<KvStore>, delay: std::time::Duration) -> Self {
        Self::spawn_inner(kv, delay, None)
    }

    /// [`spawn_with_delay`](Self::spawn_with_delay), recording one
    /// wall-clock `rpc` span on the recorder's server lane per pull
    /// served. Unlike the simulated-time spans the engine records, these
    /// measure real service time on a real thread — the "step" key is the
    /// server's running request index, since a server does not know which
    /// training step a pull belongs to.
    pub fn spawn_traced(
        kv: Arc<KvStore>,
        delay: std::time::Duration,
        recorder: Arc<mgnn_obs::SpanRecorder>,
    ) -> Self {
        Self::spawn_inner(kv, delay, Some(recorder))
    }

    fn spawn_inner(
        kv: Arc<KvStore>,
        delay: std::time::Duration,
        recorder: Option<Arc<mgnn_obs::SpanRecorder>>,
    ) -> Self {
        let (tx, rx) = unbounded::<Request>();
        let handle = std::thread::Builder::new()
            .name(format!("kvserver-{}", kv.part_id()))
            .spawn(move || {
                let mut served = 0u64;
                let mut requests = 0u64;
                while let Ok(req) = rx.recv() {
                    match req {
                        Request::Pull { ids, reply } => {
                            let _span = recorder.as_ref().map(|r| {
                                r.start_wall(mgnn_obs::Lane::Server, requests, mgnn_obs::Phase::Rpc)
                            });
                            requests += 1;
                            served += ids.len() as u64;
                            if !delay.is_zero() && !ids.is_empty() {
                                std::thread::sleep(delay);
                            }
                            // A dropped client is not a server error.
                            let _ = reply.send(kv.pull(&ids));
                        }
                        Request::Shutdown => break,
                    }
                }
                served
            })
            .expect("failed to spawn kvserver thread");
        RpcServer {
            tx,
            handle: Some(handle),
        }
    }

    /// A client handle to this server (cheaply cloneable).
    pub fn client(&self) -> RpcClient {
        RpcClient {
            tx: self.tx.clone(),
        }
    }

    /// Shut the server down, returning the total rows it served.
    pub fn shutdown(mut self) -> u64 {
        let _ = self.tx.send(Request::Shutdown);
        self.handle
            .take()
            .map(|h| h.join().expect("kvserver panicked"))
            .unwrap_or(0)
    }
}

impl Drop for RpcServer {
    fn drop(&mut self) {
        let _ = self.tx.send(Request::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Client handle for issuing pulls to one partition server.
#[derive(Clone)]
pub struct RpcClient {
    tx: Sender<Request>,
}

impl RpcClient {
    /// Blocking bulk pull of `ids` from the server.
    pub fn pull(&self, ids: Vec<NodeId>) -> Vec<f32> {
        let (rtx, rrx) = bounded(1);
        self.tx
            .send(Request::Pull { ids, reply: rtx })
            .expect("server gone");
        rrx.recv().expect("server dropped reply")
    }

    /// Fire a pull and return a waiter, letting the caller overlap other
    /// work before blocking — the RPC/score-update overlap of Algorithm 2
    /// line 20–22.
    pub fn pull_async(&self, ids: Vec<NodeId>) -> PullHandle {
        let (rtx, rrx) = bounded(1);
        self.tx
            .send(Request::Pull { ids, reply: rtx })
            .expect("server gone");
        PullHandle { rx: rrx }
    }
}

/// In-flight pull.
pub struct PullHandle {
    rx: crossbeam_channel::Receiver<Vec<f32>>,
}

impl PullHandle {
    /// Block until the response arrives.
    pub fn wait(self) -> Vec<f32> {
        self.rx.recv().expect("server dropped reply")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv() -> Arc<KvStore> {
        Arc::new(KvStore::new(
            0,
            vec![1, 3, 5],
            vec![1.0, 1.5, 3.0, 3.5, 5.0, 5.5],
            vec![0, 1, 2],
            2,
        ))
    }

    #[test]
    fn pull_round_trip() {
        let server = RpcServer::spawn(kv());
        let client = server.client();
        let out = client.pull(vec![5, 1]);
        assert_eq!(out, vec![5.0, 5.5, 1.0, 1.5]);
        assert_eq!(server.shutdown(), 2);
    }

    #[test]
    fn async_pull_overlaps() {
        let server = RpcServer::spawn(kv());
        let client = server.client();
        let handle = client.pull_async(vec![3]);
        // Do "other work" before waiting.
        let x: u64 = (0..100).sum();
        assert_eq!(x, 4950);
        assert_eq!(handle.wait(), vec![3.0, 3.5]);
    }

    #[test]
    fn many_clients_one_server() {
        let server = RpcServer::spawn(kv());
        let clients: Vec<RpcClient> = (0..4).map(|_| server.client()).collect();
        let handles: Vec<_> = clients
            .into_iter()
            .map(|c| {
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        assert_eq!(c.pull(vec![1]), vec![1.0, 1.5]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.shutdown(), 200);
    }

    #[test]
    fn delayed_server_still_correct() {
        let server = RpcServer::spawn_with_delay(kv(), std::time::Duration::from_millis(2));
        let client = server.client();
        let t0 = std::time::Instant::now();
        assert_eq!(client.pull(vec![1]), vec![1.0, 1.5]);
        assert!(t0.elapsed() >= std::time::Duration::from_millis(2));
        // Empty pulls skip the delay.
        let t1 = std::time::Instant::now();
        assert_eq!(client.pull(vec![]), Vec::<f32>::new());
        assert!(t1.elapsed() < std::time::Duration::from_millis(2));
    }

    #[test]
    fn traced_server_records_service_spans() {
        use mgnn_obs::{Lane, Phase, SpanRecorder};
        let rec = Arc::new(SpanRecorder::for_trainer(0, 0));
        let server =
            RpcServer::spawn_traced(kv(), std::time::Duration::from_millis(1), Arc::clone(&rec));
        let client = server.client();
        assert_eq!(client.pull(vec![1]), vec![1.0, 1.5]);
        assert_eq!(client.pull(vec![3]), vec![3.0, 3.5]);
        server.shutdown();
        let t = rec.snapshot();
        let rpc = t.phase(Phase::Rpc).unwrap();
        assert_eq!(rpc.count, 2);
        assert!(rpc.min_s >= 1.0e-3, "span covers the service delay");
        assert!(t.events.iter().all(|e| e.lane == Lane::Server));
        assert_eq!(t.events[0].step, 0);
        assert_eq!(t.events[1].step, 1);
        assert!(
            t.events[1].rel_start_s >= t.events[0].rel_start_s,
            "server-lane spans are wall-ordered"
        );
    }

    #[test]
    fn empty_pull() {
        let server = RpcServer::spawn(kv());
        assert_eq!(server.client().pull(vec![]), Vec::<f32>::new());
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let server = RpcServer::spawn(kv());
        let client = server.client();
        drop(server); // must not hang
                      // Client sends now fail; that's expected after shutdown.
        let (rtx, _rrx) = bounded(1);
        // The send may fail (disconnected) or be silently dropped; either
        // way it must return rather than hang on a dead server.
        let _ = client.tx.send(Request::Pull {
            ids: vec![],
            reply: rtx,
        });
    }
}
