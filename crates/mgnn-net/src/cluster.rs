//! Simulated cluster wiring: one KVStore per partition, optional real RPC
//! server threads, and bulk pull helpers that group requested nodes by
//! owner partition (DistDGL batches one RPC per remote server per
//! minibatch).
//!
//! The cluster is also where the fault-tolerance ladder lives. A pull
//! against a faulty server can time out, come back truncated, or find
//! the server dead; [`SimCluster::pull_grouped_checked`] retries with
//! the configured [`RetryPolicy`], respawns a crashed server from its
//! (still-resident) [`KvStore`], and — once retries are exhausted —
//! zero-fills the affected rows rather than failing the whole pull,
//! reporting exactly what happened in a [`PullOutcome`] so callers can
//! charge simulated time and degrade gracefully.

use crate::fault::{FaultProfile, RetryPolicy};
use crate::kvstore::KvStore;
use crate::rpc::{PullHandle, PullResponse, RpcClient, RpcError, RpcServer};
use mgnn_graph::{FeatureStore, NodeId};
use std::sync::{Arc, Mutex};

/// One partition's live server endpoint. Guarded by a mutex so a
/// crashed server can be respawned (and its client handle swapped)
/// without tearing down the cluster; `generation` detects respawns that
/// already happened between a failed attempt and the recovery path.
struct Remote {
    server: Option<RpcServer>,
    client: RpcClient,
    generation: u64,
}

/// Chaos configuration attached to a cluster.
struct ClusterFaults {
    profile: FaultProfile,
}

/// Everything that deviated from the happy path during one grouped pull.
/// All counts are exact and — with a seeded [`FaultProfile`] and a
/// single issuing thread — fully deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PullOutcome {
    /// Correlation id this pull was tagged with
    /// ([`mgnn_obs::events::request_id`]); 0 means untagged. Tagged
    /// pulls additionally emit [`mgnn_obs::events::TraceEvent`]s as they
    /// walk the fault ladder, so every degraded row is attributable to
    /// the verdict that caused it.
    pub request_id: u64,
    /// Bulk RPCs issued in the first round (one per touched partition);
    /// retries are counted separately so the fault-free accounting is
    /// unchanged.
    pub rpcs: usize,
    /// Retry attempts issued after a failed attempt.
    pub retries: u64,
    /// Attempts that timed out waiting for a reply.
    pub timeouts: u64,
    /// Replies rejected for a short payload.
    pub truncations: u64,
    /// Attempts that found the server dead (send failed or the reply
    /// channel disconnected).
    pub disconnects: u64,
    /// Servers respawned from their resident KvStore.
    pub respawns: u64,
    /// Injected delay tags observed: `(nodes_in_request, k)` per event.
    pub delay_events: Vec<(usize, u32)>,
    /// Retry attempts charged to the sim clock:
    /// `(nodes_in_request, attempt_number)` per event (1-based).
    pub retry_events: Vec<(usize, u32)>,
    /// Row indices (into the request's `ids`) that exhausted retries and
    /// were zero-filled, in ascending order.
    pub failed_rows: Vec<usize>,
}

impl PullOutcome {
    /// Whether any fault was observed at all.
    pub fn had_faults(&self) -> bool {
        self.retries > 0
            || self.timeouts > 0
            || self.truncations > 0
            || self.disconnects > 0
            || self.respawns > 0
            || !self.delay_events.is_empty()
            || !self.failed_rows.is_empty()
    }

    /// Whether some rows came back zero-filled.
    pub fn degraded(&self) -> bool {
        !self.failed_rows.is_empty()
    }

    /// Simulated seconds this pull lost to faults: each injected delay
    /// charges `k ×` the request's RPC time, and each retry re-charges
    /// the request's RPC time plus the policy's deterministic backoff.
    /// Zero on the fault-free path, so charging `t_rpc + charge_s` is
    /// bitwise-identical to the pre-fault timing when nothing fired.
    pub fn charge_s(&self, cost: &crate::cost::CostModel, dim: usize, retry: &RetryPolicy) -> f64 {
        let mut t = 0.0;
        for &(nodes, k) in &self.delay_events {
            t += f64::from(k) * cost.t_rpc(nodes, dim);
        }
        for &(nodes, attempt) in &self.retry_events {
            t += cost.t_rpc(nodes, dim) + retry.backoff_s(attempt);
        }
        t
    }
}

/// The in-process stand-in for a multi-node cluster.
pub struct SimCluster {
    stores: Vec<Arc<KvStore>>,
    remotes: Vec<Mutex<Remote>>,
    dim: usize,
    /// Owner partition of every global node.
    assignment: Vec<u32>,
    delay: std::time::Duration,
    faults: Option<ClusterFaults>,
    retry: RetryPolicy,
}

impl SimCluster {
    /// Build a cluster from a global feature store and a partition
    /// `assignment` (`assignment[u]` = owner partition of node `u`).
    /// Spawns one real server thread per partition.
    pub fn new(features: &FeatureStore, assignment: &[u32], num_parts: usize) -> Self {
        Self::with_options(
            features,
            assignment,
            num_parts,
            std::time::Duration::ZERO,
            None,
            RetryPolicy::default(),
        )
    }

    /// Like [`SimCluster::new`], but every server sleeps `delay` before
    /// answering a non-empty pull — real wall-clock network emulation for
    /// the threaded overlap demos.
    pub fn with_rpc_delay(
        features: &FeatureStore,
        assignment: &[u32],
        num_parts: usize,
        delay: std::time::Duration,
    ) -> Self {
        Self::with_options(
            features,
            assignment,
            num_parts,
            delay,
            None,
            RetryPolicy::default(),
        )
    }

    /// Like [`SimCluster::new`], but servers run under a deterministic
    /// fault profile (when `Some`) and failed pulls follow `retry`.
    pub fn with_faults(
        features: &FeatureStore,
        assignment: &[u32],
        num_parts: usize,
        profile: Option<FaultProfile>,
        retry: RetryPolicy,
    ) -> Self {
        Self::with_options(
            features,
            assignment,
            num_parts,
            std::time::Duration::ZERO,
            profile,
            retry,
        )
    }

    fn with_options(
        features: &FeatureStore,
        assignment: &[u32],
        num_parts: usize,
        delay: std::time::Duration,
        profile: Option<FaultProfile>,
        retry: RetryPolicy,
    ) -> Self {
        assert_eq!(features.num_nodes(), assignment.len());
        let dim = features.dim();
        let mut owned: Vec<Vec<NodeId>> = vec![Vec::new(); num_parts];
        for (u, &p) in assignment.iter().enumerate() {
            owned[p as usize].push(u as NodeId);
        }
        let stores: Vec<Arc<KvStore>> = owned
            .into_iter()
            .enumerate()
            .map(|(p, ids)| {
                let feats = features.gather(&ids);
                let labels: Vec<u32> = ids.iter().map(|&u| features.label(u)).collect();
                Arc::new(KvStore::new(p as u32, ids, feats, labels, dim))
            })
            .collect();
        let remotes: Vec<Mutex<Remote>> = stores
            .iter()
            .enumerate()
            .map(|(p, s)| {
                let plan = profile.as_ref().map(|f| f.plan_for(p as u32));
                let server = RpcServer::spawn_planned(Arc::clone(s), delay, plan);
                let client = server.client();
                Mutex::new(Remote {
                    server: Some(server),
                    client,
                    generation: 0,
                })
            })
            .collect();
        SimCluster {
            stores,
            remotes,
            dim,
            assignment: assignment.to_vec(),
            delay,
            faults: profile.map(|profile| ClusterFaults { profile }),
            retry,
        }
    }

    /// Number of partitions.
    pub fn num_parts(&self) -> usize {
        self.stores.len()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The retry/backoff policy failed pulls follow.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Owner partition of global node `g`.
    pub fn owner(&self, g: NodeId) -> u32 {
        self.assignment[g as usize]
    }

    /// Direct (same-address-space) access to a partition's store — the
    /// *local* KVStore path, no RPC.
    pub fn store(&self, part: u32) -> &Arc<KvStore> {
        &self.stores[part as usize]
    }

    /// RPC client to partition `part`'s server (the current incarnation,
    /// if it has been respawned).
    pub fn client(&self, part: u32) -> RpcClient {
        self.remotes[part as usize].lock().unwrap().client.clone()
    }

    /// Pull features for arbitrary global `ids` through the RPC servers,
    /// grouping by owner (one bulk request per touched partition, like
    /// DistDGL). Returns rows in the order of `ids` plus the number of
    /// first-round RPCs issued. Faults are absorbed by the ladder in
    /// [`pull_grouped_checked`](Self::pull_grouped_checked); rows that
    /// exhausted retries come back zero-filled.
    pub fn pull_grouped(&self, ids: &[NodeId]) -> (Vec<f32>, usize) {
        let (out, outcome) = self.pull_grouped_checked(ids);
        (out, outcome.rpcs)
    }

    /// [`pull_grouped`](Self::pull_grouped) with full fault accounting.
    ///
    /// Ladder per partition: issue → (on failure) respawn a dead server
    /// and retry up to `RetryPolicy::max_retries` times → zero-fill the
    /// partition's rows and report them in `PullOutcome::failed_rows`.
    pub fn pull_grouped_checked(&self, ids: &[NodeId]) -> (Vec<f32>, PullOutcome) {
        self.pull_grouped_tagged(ids, 0)
    }

    /// [`pull_grouped_checked`](Self::pull_grouped_checked) tagged with a
    /// request correlation id. When `request_id` is nonzero and the
    /// global event log ([`mgnn_obs::events`]) is installed, every fault
    /// verdict this pull hits is recorded against that id.
    pub fn pull_grouped_tagged(&self, ids: &[NodeId], request_id: u64) -> (Vec<f32>, PullOutcome) {
        let p = self.num_parts();
        let mut outcome = PullOutcome {
            request_id,
            ..PullOutcome::default()
        };
        let mut by_part: Vec<Vec<NodeId>> = vec![Vec::new(); p];
        let mut position: Vec<(usize, usize)> = Vec::with_capacity(ids.len()); // (part, idx within part list)
        for &g in ids {
            let part = self.owner(g) as usize;
            position.push((part, by_part[part].len()));
            by_part[part].push(g);
        }
        // Issue all first-round pulls before waiting on any, so healthy
        // servers overlap even while one partition misbehaves.
        let mut handles: Vec<Option<(Result<PullHandle, RpcError>, u64)>> = Vec::with_capacity(p);
        for (part, list) in by_part.iter().enumerate() {
            if list.is_empty() {
                handles.push(None);
                continue;
            }
            outcome.rpcs += 1;
            let (client, generation) = {
                let g = self.remotes[part].lock().unwrap();
                (g.client.clone(), g.generation)
            };
            handles.push(Some((client.pull_async(list.clone()), generation)));
        }
        let mut responses: Vec<Option<Vec<f32>>> = vec![None; p];
        for (part, slot) in handles.into_iter().enumerate() {
            let Some((issued, generation)) = slot else {
                continue;
            };
            let first = match issued {
                Ok(h) => self.wait_on(h),
                Err(e) => Err(e),
            };
            responses[part] = match first {
                Ok(resp) => {
                    self.note_delay(&resp, &by_part[part], part, 0, &mut outcome);
                    Some(resp.payload)
                }
                Err(e) => self.recover_part(part, &by_part[part], e, generation, &mut outcome),
            };
        }
        // Assemble in request order; rows of partitions that exhausted
        // every retry stay zero and are reported as failed.
        let mut out = vec![0.0f32; ids.len() * self.dim];
        for (row, &(part, idx)) in position.iter().enumerate() {
            match &responses[part] {
                Some(resp) => out[row * self.dim..(row + 1) * self.dim]
                    .copy_from_slice(&resp[idx * self.dim..(idx + 1) * self.dim]),
                None => outcome.failed_rows.push(row),
            }
        }
        if outcome.degraded() {
            for (part, list) in by_part.iter().enumerate() {
                if !list.is_empty() && responses[part].is_none() {
                    Self::emit(&outcome, "zero_fill", part, 0, list.len() as u64);
                }
            }
        }
        (out, outcome)
    }

    /// Emit one fault-ladder event against a tagged pull. Free for
    /// untagged pulls and one atomic load when the event log is off.
    fn emit(outcome: &PullOutcome, kind: &'static str, part: usize, attempt: u32, value: u64) {
        if outcome.request_id != 0 && mgnn_obs::events::enabled() {
            mgnn_obs::events::push(mgnn_obs::events::TraceEvent {
                request_id: outcome.request_id,
                kind,
                part: part as u32,
                attempt,
                value,
            });
        }
    }

    /// Wait for one reply, bounded by the retry policy's timeout when a
    /// fault profile is active. The fault-free path blocks indefinitely
    /// — exactly the pre-fault behaviour, with no wall-clock sensitivity.
    fn wait_on(&self, handle: PullHandle) -> Result<PullResponse, RpcError> {
        match &self.faults {
            Some(_) => handle.wait_timeout(self.retry.timeout),
            None => handle.wait(),
        }
    }

    fn note_delay(
        &self,
        resp: &PullResponse,
        list: &[NodeId],
        part: usize,
        attempt: u32,
        outcome: &mut PullOutcome,
    ) {
        if resp.delay_k > 0 {
            outcome.delay_events.push((list.len(), resp.delay_k));
            Self::emit(outcome, "delay", part, attempt, u64::from(resp.delay_k));
        }
    }

    fn note_failure(&self, err: &RpcError, part: usize, attempt: u32, outcome: &mut PullOutcome) {
        let kind = match err {
            RpcError::Timeout => {
                outcome.timeouts += 1;
                "timeout"
            }
            RpcError::Truncated { .. } => {
                outcome.truncations += 1;
                "truncated"
            }
            RpcError::ServerGone | RpcError::Kv(_) => {
                outcome.disconnects += 1;
                "disconnect"
            }
        };
        Self::emit(outcome, kind, part, attempt, 0);
    }

    /// Retry ladder for one partition after a failed first attempt.
    /// Returns the payload, or `None` once every retry is exhausted (the
    /// caller zero-fills). The server is respawned on disconnect even
    /// when retries are spent, so later pulls find a healthy endpoint.
    fn recover_part(
        &self,
        part: usize,
        list: &[NodeId],
        first_err: RpcError,
        seen_generation: u64,
        outcome: &mut PullOutcome,
    ) -> Option<Vec<f32>> {
        let mut err = first_err;
        let mut generation = seen_generation;
        for attempt in 1..=self.retry.max_retries {
            self.note_failure(&err, part, attempt - 1, outcome);
            if matches!(err, RpcError::ServerGone) {
                self.respawn(part, generation, attempt - 1, outcome);
            }
            outcome.retries += 1;
            outcome.retry_events.push((list.len(), attempt));
            Self::emit(outcome, "retry", part, attempt, list.len() as u64);
            let (client, gen_now) = {
                let g = self.remotes[part].lock().unwrap();
                (g.client.clone(), g.generation)
            };
            generation = gen_now;
            let result = client
                .pull_async(list.to_vec())
                .and_then(|h| self.wait_on(h));
            match result {
                Ok(resp) => {
                    self.note_delay(&resp, list, part, attempt, outcome);
                    return Some(resp.payload);
                }
                Err(e) => err = e,
            }
        }
        self.note_failure(&err, part, self.retry.max_retries, outcome);
        if matches!(err, RpcError::ServerGone) {
            self.respawn(part, generation, self.retry.max_retries, outcome);
        }
        None
    }

    /// Respawn a dead server from its resident KvStore, unless another
    /// caller already did (the generation moved past what the failed
    /// attempt used). A respawned server's plan has its crash budget
    /// spent — a partition crashes at most once per incarnation chain.
    fn respawn(&self, part: usize, seen_generation: u64, attempt: u32, outcome: &mut PullOutcome) {
        let mut g = self.remotes[part].lock().unwrap();
        if g.generation != seen_generation {
            return;
        }
        Self::emit(outcome, "respawn", part, attempt, 0);
        let plan = self
            .faults
            .as_ref()
            .map(|f| f.profile.plan_for(part as u32).without_crash());
        let server = RpcServer::spawn_planned(Arc::clone(&self.stores[part]), self.delay, plan);
        g.client = server.client();
        // Dropping the old handle joins the already-dead thread.
        g.server = Some(server);
        g.generation += 1;
        outcome.respawns += 1;
    }

    /// Shut all servers down, returning total rows served per partition
    /// (for a respawned partition: rows served by its current
    /// incarnation).
    pub fn shutdown(self) -> Vec<u64> {
        self.remotes
            .into_iter()
            .map(|m| {
                let mut g = m.into_inner().unwrap();
                g.server.take().map(|s| s.shutdown()).unwrap_or(0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgnn_graph::generators::erdos_renyi;
    use mgnn_graph::FeatureStore;

    fn fixture() -> (FeatureStore, Vec<u32>) {
        let g = erdos_renyi(60, 240, 3);
        let f = FeatureStore::synthesize(&g, 8, 3, 1);
        let assignment: Vec<u32> = (0..60).map(|u| (u % 4) as u32).collect();
        (f, assignment)
    }

    fn retry_with_timeout(ms: u64) -> RetryPolicy {
        RetryPolicy {
            max_retries: 2,
            timeout: std::time::Duration::from_millis(ms),
            ..RetryPolicy::default()
        }
    }

    /// Generous timeout for tests where a timeout firing would be a
    /// spurious failure (loaded CI), short enough to not matter.
    fn fast_retry() -> RetryPolicy {
        retry_with_timeout(2_000)
    }

    #[test]
    fn stores_partition_ownership() {
        let (f, a) = fixture();
        let c = SimCluster::new(&f, &a, 4);
        assert_eq!(c.num_parts(), 4);
        for u in 0..60u32 {
            assert!(c.store(c.owner(u)).owns(u));
        }
        let served = c.shutdown();
        assert_eq!(served.len(), 4);
    }

    #[test]
    fn pull_grouped_matches_ground_truth() {
        let (f, a) = fixture();
        let c = SimCluster::new(&f, &a, 4);
        let ids = vec![7u32, 3, 42, 7, 11];
        let (out, rpcs) = c.pull_grouped(&ids);
        assert!((1..=4).contains(&rpcs));
        for (i, &g) in ids.iter().enumerate() {
            assert_eq!(&out[i * 8..(i + 1) * 8], f.row(g), "row {g}");
        }
    }

    #[test]
    fn pull_empty() {
        let (f, a) = fixture();
        let c = SimCluster::new(&f, &a, 4);
        let (out, rpcs) = c.pull_grouped(&[]);
        assert!(out.is_empty());
        assert_eq!(rpcs, 0);
    }

    #[test]
    fn labels_preserved() {
        let (f, a) = fixture();
        let c = SimCluster::new(&f, &a, 4);
        for u in 0..60u32 {
            assert_eq!(c.store(c.owner(u)).label(u), f.label(u));
        }
    }

    #[test]
    fn faultless_profile_outcome_is_clean() {
        let (f, a) = fixture();
        let c = SimCluster::with_faults(&f, &a, 4, Some(FaultProfile::off(3)), fast_retry());
        let ids = vec![7u32, 3, 42, 7, 11];
        let (out, outcome) = c.pull_grouped_checked(&ids);
        assert!(!outcome.had_faults());
        assert!(outcome.charge_s(&crate::cost::CostModel::default(), 8, c.retry_policy()) == 0.0);
        for (i, &g) in ids.iter().enumerate() {
            assert_eq!(&out[i * 8..(i + 1) * 8], f.row(g), "row {g}");
        }
    }

    #[test]
    fn crash_is_recovered_by_respawn_with_correct_data() {
        let (f, a) = fixture();
        let profile = FaultProfile {
            crash_part: Some(2),
            crash_after: 0,
            ..FaultProfile::off(5)
        };
        let c = SimCluster::with_faults(&f, &a, 4, Some(profile), fast_retry());
        let ids: Vec<u32> = (0..60).collect();
        let (out, outcome) = c.pull_grouped_checked(&ids);
        assert_eq!(outcome.respawns, 1);
        assert!(outcome.disconnects >= 1);
        assert!(outcome.retries >= 1);
        assert!(
            outcome.failed_rows.is_empty(),
            "respawn + retry must deliver every row: {:?}",
            outcome.failed_rows
        );
        for (i, &g) in ids.iter().enumerate() {
            assert_eq!(&out[i * 8..(i + 1) * 8], f.row(g), "row {g}");
        }
        // The respawned server is healthy: a second pull is clean.
        let (_, second) = c.pull_grouped_checked(&ids);
        assert!(!second.had_faults());
    }

    #[test]
    fn exhausted_retries_zero_fill_and_report_rows() {
        let (f, a) = fixture();
        // Partition 1 drops every reply; retries can never succeed.
        let profile = FaultProfile {
            drop_prob: 1.0,
            ..FaultProfile::off(9)
        };
        let c = SimCluster::with_faults(&f, &a, 4, Some(profile), retry_with_timeout(10));
        let ids = vec![4u32, 5, 6, 7]; // parts 0..=3, one row each
        let (out, outcome) = c.pull_grouped_checked(&ids);
        assert_eq!(outcome.failed_rows, vec![0, 1, 2, 3]);
        assert_eq!(
            outcome.timeouts as usize,
            4 * (1 + 2),
            "first try + 2 retries per part"
        );
        assert_eq!(outcome.retries, 8);
        assert!(out.iter().all(|&v| v == 0.0), "failed rows are zero-filled");
        assert!(outcome.degraded());
    }

    #[test]
    fn delays_are_tagged_not_slept() {
        let (f, a) = fixture();
        let profile = FaultProfile {
            delay_prob: 1.0,
            delay_factor: 6,
            ..FaultProfile::off(2)
        };
        let c = SimCluster::with_faults(&f, &a, 4, Some(profile), fast_retry());
        let ids = vec![0u32, 1, 2, 3];
        let (out, outcome) = c.pull_grouped_checked(&ids);
        assert_eq!(outcome.delay_events.len(), 4);
        assert!(outcome.delay_events.iter().all(|&(n, k)| n == 1 && k == 6));
        assert!(outcome.failed_rows.is_empty());
        for (i, &g) in ids.iter().enumerate() {
            assert_eq!(&out[i * 8..(i + 1) * 8], f.row(g), "row {g}");
        }
        // Sim-time charge: 4 delayed single-node requests at k=6.
        let cost = crate::cost::CostModel::default();
        let want = 4.0 * 6.0 * cost.t_rpc(1, 8);
        let got = outcome.charge_s(&cost, 8, c.retry_policy());
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
    }

    // The event log is process-global, so this must stay the only test
    // in this binary that installs it (see mgnn_obs::sink for the
    // pattern).
    #[test]
    fn tagged_pulls_emit_correlated_events_untagged_pulls_do_not() {
        use mgnn_obs::events;
        let (f, a) = fixture();
        let profile = FaultProfile {
            drop_prob: 1.0,
            ..FaultProfile::off(9)
        };
        let c = SimCluster::with_faults(&f, &a, 4, Some(profile), retry_with_timeout(10));
        let req = events::request_id(events::ORIGIN_PREPARE, 1, 42);
        events::install();
        // Untagged: full fault ladder, zero events.
        let (_, untagged) = c.pull_grouped_checked(&[4u32, 5, 6, 7]);
        assert!(untagged.degraded());
        assert_eq!(untagged.request_id, 0);
        assert!(events::drain().is_empty(), "untagged pulls must be silent");
        // Tagged: every ladder rung lands in the log under one id.
        let (_, tagged) = c.pull_grouped_tagged(&[4u32, 5, 6, 7], req);
        let got = events::uninstall();
        assert_eq!(tagged.request_id, req);
        assert!(got.iter().all(|e| e.request_id == req));
        let count_kind = |k: &str| got.iter().filter(|e| e.kind == k).count();
        assert_eq!(count_kind("timeout") as u64, tagged.timeouts);
        assert_eq!(count_kind("retry") as u64, tagged.retries);
        assert_eq!(count_kind("zero_fill"), 4, "one per starved partition");
        let zero_rows: u64 = got
            .iter()
            .filter(|e| e.kind == "zero_fill")
            .map(|e| e.value)
            .sum();
        assert_eq!(zero_rows as usize, tagged.failed_rows.len());
        // With the log uninstalled, tagged pulls cost one atomic load.
        let (_, after) = c.pull_grouped_tagged(&[4u32], req);
        assert_eq!(after.request_id, req);
    }

    #[test]
    fn same_seed_same_outcome() {
        let (f, a) = fixture();
        let profile = FaultProfile {
            drop_prob: 0.3,
            delay_prob: 0.3,
            delay_factor: 2,
            truncate_prob: 0.2,
            ..FaultProfile::off(77)
        };
        let run = || {
            let c =
                SimCluster::with_faults(&f, &a, 4, Some(profile.clone()), retry_with_timeout(500));
            let mut outs = Vec::new();
            for _ in 0..3 {
                outs.push(c.pull_grouped_checked(&[1, 2, 3, 4, 5, 6, 7, 8]));
            }
            outs
        };
        assert_eq!(run(), run(), "seeded chaos must replay bit-for-bit");
    }
}
