//! Simulated cluster wiring: one KVStore per partition, optional real RPC
//! server threads, and bulk pull helpers that group requested nodes by
//! owner partition (DistDGL batches one RPC per remote server per
//! minibatch).

use crate::kvstore::KvStore;
use crate::rpc::{RpcClient, RpcServer};
use mgnn_graph::{FeatureStore, NodeId};
use std::sync::Arc;

/// The in-process stand-in for a multi-node cluster.
pub struct SimCluster {
    stores: Vec<Arc<KvStore>>,
    servers: Vec<RpcServer>,
    clients: Vec<RpcClient>,
    dim: usize,
    /// Owner partition of every global node.
    assignment: Vec<u32>,
}

impl SimCluster {
    /// Build a cluster from a global feature store and a partition
    /// `assignment` (`assignment[u]` = owner partition of node `u`).
    /// Spawns one real server thread per partition.
    pub fn new(features: &FeatureStore, assignment: &[u32], num_parts: usize) -> Self {
        Self::with_rpc_delay(features, assignment, num_parts, std::time::Duration::ZERO)
    }

    /// Like [`SimCluster::new`], but every server sleeps `delay` before
    /// answering a non-empty pull — real wall-clock network emulation for
    /// the threaded overlap demos.
    pub fn with_rpc_delay(
        features: &FeatureStore,
        assignment: &[u32],
        num_parts: usize,
        delay: std::time::Duration,
    ) -> Self {
        assert_eq!(features.num_nodes(), assignment.len());
        let dim = features.dim();
        let mut owned: Vec<Vec<NodeId>> = vec![Vec::new(); num_parts];
        for (u, &p) in assignment.iter().enumerate() {
            owned[p as usize].push(u as NodeId);
        }
        let stores: Vec<Arc<KvStore>> = owned
            .into_iter()
            .enumerate()
            .map(|(p, ids)| {
                let feats = features.gather(&ids);
                let labels: Vec<u32> = ids.iter().map(|&u| features.label(u)).collect();
                Arc::new(KvStore::new(p as u32, ids, feats, labels, dim))
            })
            .collect();
        let servers: Vec<RpcServer> = stores
            .iter()
            .map(|s| RpcServer::spawn_with_delay(Arc::clone(s), delay))
            .collect();
        let clients: Vec<RpcClient> = servers.iter().map(|s| s.client()).collect();
        SimCluster {
            stores,
            servers,
            clients,
            dim,
            assignment: assignment.to_vec(),
        }
    }

    /// Number of partitions.
    pub fn num_parts(&self) -> usize {
        self.stores.len()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Owner partition of global node `g`.
    pub fn owner(&self, g: NodeId) -> u32 {
        self.assignment[g as usize]
    }

    /// Direct (same-address-space) access to a partition's store — the
    /// *local* KVStore path, no RPC.
    pub fn store(&self, part: u32) -> &Arc<KvStore> {
        &self.stores[part as usize]
    }

    /// RPC client to partition `part`'s server.
    pub fn client(&self, part: u32) -> RpcClient {
        self.clients[part as usize].clone()
    }

    /// Pull features for arbitrary global `ids` through the RPC servers,
    /// grouping by owner (one bulk request per touched partition, like
    /// DistDGL). Returns rows in the order of `ids`.
    ///
    /// Returns the gathered features plus the number of RPCs issued.
    pub fn pull_grouped(&self, ids: &[NodeId]) -> (Vec<f32>, usize) {
        let p = self.num_parts();
        let mut by_part: Vec<Vec<NodeId>> = vec![Vec::new(); p];
        let mut position: Vec<(usize, usize)> = Vec::with_capacity(ids.len()); // (part, idx within part list)
        for &g in ids {
            let part = self.owner(g) as usize;
            position.push((part, by_part[part].len()));
            by_part[part].push(g);
        }
        // Issue all pulls first (async), then assemble.
        let mut handles: Vec<Option<crate::rpc::PullHandle>> = Vec::with_capacity(p);
        let mut rpcs = 0usize;
        for (part, list) in by_part.iter().enumerate() {
            if list.is_empty() {
                handles.push(None);
            } else {
                rpcs += 1;
                handles.push(Some(self.clients[part].pull_async(list.clone())));
            }
        }
        let responses: Vec<Option<Vec<f32>>> =
            handles.into_iter().map(|h| h.map(|h| h.wait())).collect();
        let mut out = Vec::with_capacity(ids.len() * self.dim);
        for &(part, idx) in &position {
            let resp = responses[part].as_ref().expect("response missing");
            out.extend_from_slice(&resp[idx * self.dim..(idx + 1) * self.dim]);
        }
        (out, rpcs)
    }

    /// Shut all servers down, returning total rows served per partition.
    pub fn shutdown(self) -> Vec<u64> {
        drop(self.clients);
        self.servers.into_iter().map(|s| s.shutdown()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgnn_graph::generators::erdos_renyi;
    use mgnn_graph::FeatureStore;

    fn fixture() -> (FeatureStore, Vec<u32>) {
        let g = erdos_renyi(60, 240, 3);
        let f = FeatureStore::synthesize(&g, 8, 3, 1);
        let assignment: Vec<u32> = (0..60).map(|u| (u % 4) as u32).collect();
        (f, assignment)
    }

    #[test]
    fn stores_partition_ownership() {
        let (f, a) = fixture();
        let c = SimCluster::new(&f, &a, 4);
        assert_eq!(c.num_parts(), 4);
        for u in 0..60u32 {
            assert!(c.store(c.owner(u)).owns(u));
        }
        let served = c.shutdown();
        assert_eq!(served.len(), 4);
    }

    #[test]
    fn pull_grouped_matches_ground_truth() {
        let (f, a) = fixture();
        let c = SimCluster::new(&f, &a, 4);
        let ids = vec![7u32, 3, 42, 7, 11];
        let (out, rpcs) = c.pull_grouped(&ids);
        assert!((1..=4).contains(&rpcs));
        for (i, &g) in ids.iter().enumerate() {
            assert_eq!(&out[i * 8..(i + 1) * 8], f.row(g), "row {g}");
        }
    }

    #[test]
    fn pull_empty() {
        let (f, a) = fixture();
        let c = SimCluster::new(&f, &a, 4);
        let (out, rpcs) = c.pull_grouped(&[]);
        assert!(out.is_empty());
        assert_eq!(rpcs, 0);
    }

    #[test]
    fn labels_preserved() {
        let (f, a) = fixture();
        let c = SimCluster::new(&f, &a, 4);
        for u in 0..60u32 {
            assert_eq!(c.store(c.owner(u)).label(u), f.label(u));
        }
    }
}
