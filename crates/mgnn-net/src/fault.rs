//! Deterministic fault injection for the simulated cluster.
//!
//! A [`FaultProfile`] is the user-facing chaos configuration: a seed
//! plus per-request probabilities for dropping a reply, delaying it by
//! a sim-time factor, or truncating the payload, and an optional
//! crash-after-N-requests budget for one partition. From it each
//! server derives a [`FaultPlan`] whose per-request verdict is a pure
//! function of `(seed, part, request_index)` — no RNG state, no wall
//! clock — so a chaos run replays bit-for-bit from its seed alone, and
//! the verdict for request *i* is independent of how many other
//! requests interleaved before it.
//!
//! [`RetryPolicy`] is the client-side counterpart: bounded retries
//! with a wall-clock wait per attempt and a deterministic exponential
//! backoff schedule that is charged to the *simulated* clock (see
//! `Prefetcher::prepare`), so retries surface in `t_prepare` and the
//! Eq. 6 overlap model rather than silently vanishing.

use std::time::Duration;

/// What the server does with one incoming pull request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultVerdict {
    /// Serve normally.
    None,
    /// Swallow the request: never send a reply. The client observes a
    /// timeout.
    Drop,
    /// Serve correctly, but tag the reply as having taken `k` extra
    /// RPC-times on the modeled timeline.
    Delay(u32),
    /// Serve a payload with the last row missing; the client detects
    /// the short byte count.
    Truncate,
}

/// Seeded chaos configuration for a whole cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Root seed; every per-server [`FaultPlan`] derives from it.
    pub seed: u64,
    /// Probability a request's reply is dropped (client times out).
    pub drop_prob: f64,
    /// Probability a reply is delayed on the modeled timeline.
    pub delay_prob: f64,
    /// Sim-time delay factor `k` applied when a delay fires.
    pub delay_factor: u32,
    /// Probability a reply is served truncated.
    pub truncate_prob: f64,
    /// Partition whose server crashes (thread exits) once.
    pub crash_part: Option<u32>,
    /// Requests the crashing server completes before dying.
    pub crash_after: u64,
}

impl FaultProfile {
    /// A profile that injects nothing. Running with `off` must be
    /// bitwise-identical to running with no profile at all — the
    /// identity tests pin this.
    pub fn off(seed: u64) -> Self {
        FaultProfile {
            seed,
            drop_prob: 0.0,
            delay_prob: 0.0,
            delay_factor: 0,
            truncate_prob: 0.0,
            crash_part: None,
            crash_after: 0,
        }
    }

    /// Mild chaos: occasional delays and rare drops, no crash.
    pub fn light(seed: u64) -> Self {
        FaultProfile {
            seed,
            drop_prob: 0.02,
            delay_prob: 0.10,
            delay_factor: 3,
            truncate_prob: 0.01,
            crash_part: None,
            crash_after: 0,
        }
    }

    /// Heavy chaos: frequent drops/delays/truncations plus one server
    /// crash early in the run.
    pub fn heavy(seed: u64) -> Self {
        FaultProfile {
            seed,
            drop_prob: 0.10,
            delay_prob: 0.20,
            delay_factor: 5,
            truncate_prob: 0.05,
            crash_part: Some(0),
            crash_after: 8,
        }
    }

    /// Look up a named profile for CLI use (`--fault-profile`).
    pub fn named(name: &str, seed: u64) -> Option<Self> {
        match name {
            "off" => Some(Self::off(seed)),
            "light" => Some(Self::light(seed)),
            "heavy" => Some(Self::heavy(seed)),
            _ => None,
        }
    }

    /// The CLI-recognized profile names.
    pub const NAMES: [&'static str; 3] = ["off", "light", "heavy"];

    /// True when no verdict can ever fire: probabilities are all zero
    /// and no crash is scheduled.
    pub fn is_faultless(&self) -> bool {
        self.drop_prob <= 0.0
            && self.delay_prob <= 0.0
            && self.truncate_prob <= 0.0
            && self.crash_part.is_none()
    }

    /// Derive the plan for one partition's server.
    pub fn plan_for(&self, part: u32) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            part,
            drop_prob: self.drop_prob,
            delay_prob: self.delay_prob,
            delay_factor: self.delay_factor,
            truncate_prob: self.truncate_prob,
            crash_after: match self.crash_part {
                Some(p) if p == part => Some(self.crash_after),
                _ => None,
            },
        }
    }
}

/// Per-server fault schedule. Verdicts are a pure function of the
/// request index, so they are stable under any client interleaving.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    part: u32,
    drop_prob: f64,
    delay_prob: f64,
    delay_factor: u32,
    truncate_prob: f64,
    crash_after: Option<u64>,
}

impl FaultPlan {
    /// The same plan with the crash budget spent — what a respawned
    /// server runs with, so a partition crashes at most once.
    pub fn without_crash(mut self) -> Self {
        self.crash_after = None;
        self
    }

    /// Whether the server should exit instead of serving request
    /// `request_index`.
    pub fn crash_before(&self, request_index: u64) -> bool {
        matches!(self.crash_after, Some(n) if request_index >= n)
    }

    /// The verdict for request `request_index`.
    pub fn verdict(&self, request_index: u64) -> FaultVerdict {
        let total = self.drop_prob + self.delay_prob + self.truncate_prob;
        if total <= 0.0 {
            return FaultVerdict::None;
        }
        let u = unit_hash(self.seed, self.part, request_index);
        if u < self.drop_prob {
            FaultVerdict::Drop
        } else if u < self.drop_prob + self.delay_prob {
            FaultVerdict::Delay(self.delay_factor)
        } else if u < total {
            FaultVerdict::Truncate
        } else {
            FaultVerdict::None
        }
    }
}

/// Hash `(seed, part, index)` to a uniform value in `[0, 1)` via two
/// rounds of splitmix64 finalization.
fn unit_hash(seed: u64, part: u32, index: u64) -> f64 {
    let mut x = seed
        ^ (u64::from(part)).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ index.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    // Top 53 bits → exactly representable fraction in [0, 1).
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Client-side retry/backoff policy for failed pulls.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt; 0 disables retrying.
    pub max_retries: u32,
    /// Wall-clock wait per attempt before declaring a timeout. Only
    /// applied when a fault profile is active — the fault-free path
    /// blocks indefinitely exactly as before.
    pub timeout: Duration,
    /// Simulated seconds charged for the first backoff.
    pub base_backoff_s: f64,
    /// Multiplier applied per further attempt.
    pub backoff_mult: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            timeout: Duration::from_millis(250),
            base_backoff_s: 1e-3,
            backoff_mult: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Simulated backoff charged before retry attempt `attempt`
    /// (1-based): `base × mult^(attempt−1)`. Deterministic — no
    /// jitter — so chaos runs replay exactly.
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        self.base_backoff_s * self.backoff_mult.powi(attempt.saturating_sub(1) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic() -> FaultProfile {
        FaultProfile {
            seed: 42,
            drop_prob: 0.2,
            delay_prob: 0.3,
            delay_factor: 4,
            truncate_prob: 0.1,
            crash_part: Some(1),
            crash_after: 5,
        }
    }

    #[test]
    fn verdicts_are_reproducible() {
        let a = chaotic().plan_for(0);
        let b = chaotic().plan_for(0);
        for i in 0..1000 {
            assert_eq!(a.verdict(i), b.verdict(i));
        }
    }

    #[test]
    fn verdicts_differ_across_parts_and_seeds() {
        let p0 = chaotic().plan_for(0);
        let p1 = chaotic().plan_for(3);
        let other = FaultProfile {
            seed: 43,
            ..chaotic()
        }
        .plan_for(0);
        let differs = |x: &FaultPlan, y: &FaultPlan| (0..200).any(|i| x.verdict(i) != y.verdict(i));
        assert!(differs(&p0, &p1), "per-part plans must decorrelate");
        assert!(differs(&p0, &other), "seed must matter");
    }

    #[test]
    fn verdict_mix_tracks_probabilities() {
        let plan = chaotic().plan_for(2);
        let n = 20_000u64;
        let mut drops = 0;
        let mut delays = 0;
        let mut truncs = 0;
        for i in 0..n {
            match plan.verdict(i) {
                FaultVerdict::Drop => drops += 1,
                FaultVerdict::Delay(k) => {
                    assert_eq!(k, 4);
                    delays += 1;
                }
                FaultVerdict::Truncate => truncs += 1,
                FaultVerdict::None => {}
            }
        }
        let frac = |c: u64| c as f64 / n as f64;
        assert!(
            (frac(drops) - 0.2).abs() < 0.02,
            "drop rate {}",
            frac(drops)
        );
        assert!(
            (frac(delays) - 0.3).abs() < 0.02,
            "delay rate {}",
            frac(delays)
        );
        assert!(
            (frac(truncs) - 0.1).abs() < 0.02,
            "truncate rate {}",
            frac(truncs)
        );
    }

    #[test]
    fn off_profile_is_faultless_and_silent() {
        let p = FaultProfile::off(7);
        assert!(p.is_faultless());
        let plan = p.plan_for(0);
        assert!(!plan.crash_before(u64::MAX - 1));
        for i in 0..500 {
            assert_eq!(plan.verdict(i), FaultVerdict::None);
        }
    }

    #[test]
    fn crash_budget_applies_to_one_part_and_is_spent_by_respawn() {
        let profile = chaotic();
        let crashing = profile.plan_for(1);
        let healthy = profile.plan_for(0);
        assert!(!crashing.crash_before(4));
        assert!(crashing.crash_before(5));
        assert!(crashing.crash_before(6));
        assert!(!healthy.crash_before(u64::MAX - 1));
        let respawned = crashing.clone().without_crash();
        assert!(!respawned.crash_before(u64::MAX - 1));
        // Verdicts are unchanged by the respawn.
        for i in 0..200 {
            assert_eq!(crashing.verdict(i), respawned.verdict(i));
        }
    }

    #[test]
    fn backoff_grows_geometrically() {
        let r = RetryPolicy {
            base_backoff_s: 0.5,
            backoff_mult: 3.0,
            ..RetryPolicy::default()
        };
        assert!((r.backoff_s(1) - 0.5).abs() < 1e-12);
        assert!((r.backoff_s(2) - 1.5).abs() < 1e-12);
        assert!((r.backoff_s(3) - 4.5).abs() < 1e-12);
    }

    #[test]
    fn named_profiles_resolve() {
        for name in FaultProfile::NAMES {
            assert!(FaultProfile::named(name, 1).is_some(), "{name}");
        }
        assert!(FaultProfile::named("bogus", 1).is_none());
        assert!(FaultProfile::named("off", 1).unwrap().is_faultless());
        assert!(!FaultProfile::named("heavy", 1).unwrap().is_faultless());
    }
}
