//! # mgnn-net — simulated distributed runtime
//!
//! The paper runs on NERSC Perlmutter: one DistDGL server per compute node,
//! trainer clients pulling halo-node features from remote KVStores over RPC
//! across a Slingshot fabric. None of that hardware is available here, so
//! this crate simulates it *in process* with two carefully separated layers:
//!
//! * **Real data movement** — [`kvstore::KvStore`] holds each partition's
//!   feature shard; [`rpc`] moves real feature bytes between threads over
//!   crossbeam channels. Hit/miss counts, node counts and byte counts in
//!   [`metrics::CommMetrics`] are therefore *exact*, not modeled.
//! * **Modeled time** — [`cost::CostModel`] converts those exact counts
//!   into seconds using latency/bandwidth/compute-rate parameters
//!   calibrated to the paper's platform (§V), accumulated in a
//!   [`clock::SimClock`]. The paper's CPU-vs-GPU distinction is a compute
//!   rate; the `t_RPC / t_DDP` ratio that decides whether prefetch overlap
//!   wins (Eq. 6) is explicit and testable.
//!
//! This split is what makes the figure reproductions meaningful: the
//! *shape* of every result follows from real sampled-node/buffer behaviour,
//! while absolute seconds are transparently a model.

//! A third layer rides on top of both: **deterministic chaos**. A
//! seeded [`fault::FaultProfile`] makes servers drop, delay-tag,
//! truncate, or crash per a pure hash of the request index; clients
//! retry with [`fault::RetryPolicy`] backoff charged to the *modeled*
//! clock; and [`cluster::SimCluster`] degrades (respawn → retry →
//! zero-fill) instead of panicking, reporting every deviation exactly.

pub mod clock;
pub mod cluster;
pub mod cost;
pub mod fault;
pub mod kvstore;
pub mod metrics;
pub mod rpc;

pub use clock::{PipelineClock, PipelineStepTimes, SimClock};
pub use cluster::{PullOutcome, SimCluster};
pub use cost::{Backend, CostModel};
pub use fault::{FaultPlan, FaultProfile, FaultVerdict, RetryPolicy};
pub use kvstore::{KvError, KvStore};
pub use metrics::{CommMetrics, MetricsSnapshot};
pub use rpc::RpcError;
