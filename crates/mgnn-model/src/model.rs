//! The [`Model`] abstraction: forward/backward over sampled blocks plus
//! flat parameter/gradient views for DDP and the optimizers.

use crate::gat::GatModel;
use crate::gcn::GcnModel;
use crate::sage::SageModel;
use mgnn_sampling::Block;
use mgnn_tensor::Tensor;

/// Which architecture an experiment trains (the paper evaluates both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Mean-aggregator GraphSAGE (primary workload, Fig. 6).
    Sage,
    /// 2-head GAT (§V-A4, Fig. 7).
    Gat,
    /// GCN (extension beyond the paper's pair).
    Gcn,
}

impl ModelKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Sage => "GraphSAGE",
            ModelKind::Gat => "GAT",
            ModelKind::Gcn => "GCN",
        }
    }
}

/// A trainable GNN over sampled blocks.
pub trait Model: Send {
    /// Forward through all layers; `blocks.len()` must equal the layer
    /// count; `input` holds features of `blocks[0]`'s src nodes. Returns
    /// logits on the seed nodes.
    fn forward(&mut self, blocks: &[Block], input: &Tensor) -> Tensor;

    /// Backward from logits gradient; accumulates parameter gradients.
    fn backward(&mut self, grad_logits: &Tensor);

    /// Zero all parameter gradients.
    fn zero_grad(&mut self);

    /// Total scalar parameter count.
    fn num_params(&self) -> usize;

    /// Copy parameters into a flat buffer (length `num_params`).
    fn write_params(&self, out: &mut [f32]);

    /// Load parameters from a flat buffer.
    fn read_params(&mut self, src: &[f32]);

    /// Copy gradients into a flat buffer.
    fn write_grads(&self, out: &mut [f32]);

    /// Load gradients from a flat buffer (post-allreduce).
    fn read_grads(&mut self, src: &[f32]);

    /// Estimated multiply-accumulates of one forward+backward over
    /// `blocks` — feeds the cost model's `t_ddp`.
    fn macs(&self, blocks: &[Block]) -> f64;
}

impl Model for SageModel {
    fn forward(&mut self, blocks: &[Block], input: &Tensor) -> Tensor {
        assert_eq!(blocks.len(), self.layers.len(), "blocks/layers mismatch");
        let n = self.layers.len();
        let mut h = input.clone();
        for (i, (layer, block)) in self.layers.iter_mut().zip(blocks).enumerate() {
            let activate = i + 1 < n;
            h = layer.forward(block, &h, activate);
        }
        h
    }

    fn backward(&mut self, grad_logits: &Tensor) {
        let mut g = grad_logits.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
    }

    fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.num_params()).sum()
    }

    fn write_params(&self, out: &mut [f32]) {
        let mut at = 0;
        for l in &self.layers {
            at += l.w_self.write_params(&mut out[at..]);
            at += l.w_neigh.write_params(&mut out[at..]);
        }
        debug_assert_eq!(at, self.num_params());
    }

    fn read_params(&mut self, src: &[f32]) {
        let mut at = 0;
        for l in &mut self.layers {
            at += l.w_self.read_params(&src[at..]);
            at += l.w_neigh.read_params(&src[at..]);
        }
    }

    fn write_grads(&self, out: &mut [f32]) {
        let mut at = 0;
        for l in &self.layers {
            at += l.w_self.write_grads(&mut out[at..]);
            at += l.w_neigh.write_grads(&mut out[at..]);
        }
    }

    fn read_grads(&mut self, src: &[f32]) {
        let mut at = 0;
        for l in &mut self.layers {
            at += l.w_self.read_grads(&src[at..]);
            at += l.w_neigh.read_grads(&src[at..]);
        }
    }

    fn macs(&self, blocks: &[Block]) -> f64 {
        // Forward: per layer, (src rows × in × out) for the self+neigh
        // linears, plus aggregation edge work; backward ≈ 2× forward.
        let mut total = 0.0;
        for (layer, block) in self.layers.iter().zip(blocks) {
            let in_d = layer.w_self.in_dim() as f64;
            let out_d = layer.w_self.out_dim() as f64;
            let rows = block.num_dst as f64;
            total += 2.0 * rows * in_d * out_d; // two linears
            total += block.num_edges() as f64 * in_d; // aggregation
        }
        total * 3.0 // fwd + bwd(×2)
    }
}

impl Model for GatModel {
    fn forward(&mut self, blocks: &[Block], input: &Tensor) -> Tensor {
        assert_eq!(blocks.len(), self.layers.len(), "blocks/layers mismatch");
        let n = self.layers.len();
        self.relu_inputs.clear();
        let mut h = input.clone();
        for (i, (layer, block)) in self.layers.iter_mut().zip(blocks).enumerate() {
            h = layer.forward(block, &h);
            if i + 1 < n {
                // Inter-layer ReLU (the usual GAT uses ELU; ReLU keeps the
                // backward a pure mask). The post-ReLU activation doubles
                // as the mask: relu'(x) = 1 ⇔ relu(x) > 0.
                h = mgnn_tensor::ops::relu(&h);
                self.relu_inputs.push(h.clone());
            }
        }
        h
    }

    fn backward(&mut self, grad_logits: &Tensor) {
        let n = self.layers.len();
        let mut g = grad_logits.clone();
        for i in (0..n).rev() {
            g = self.layers[i].backward(&g);
            if i > 0 {
                // `g` now aligns with layer i's input = relu(layer i-1 out);
                // apply the ReLU mask before descending further.
                g = mask_by_forward_positive(&g, &self.relu_inputs[i - 1]);
            }
        }
        self.relu_inputs.clear();
    }

    fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.num_params()).sum()
    }

    fn write_params(&self, out: &mut [f32]) {
        let mut at = 0;
        for l in &self.layers {
            at += l.w.write_params(&mut out[at..]);
            out[at..at + l.a_l.len()].copy_from_slice(&l.a_l);
            at += l.a_l.len();
            out[at..at + l.a_r.len()].copy_from_slice(&l.a_r);
            at += l.a_r.len();
        }
        debug_assert_eq!(at, self.num_params());
    }

    fn read_params(&mut self, src: &[f32]) {
        let mut at = 0;
        for l in &mut self.layers {
            at += l.w.read_params(&src[at..]);
            let n = l.a_l.len();
            l.a_l.copy_from_slice(&src[at..at + n]);
            at += n;
            let n = l.a_r.len();
            l.a_r.copy_from_slice(&src[at..at + n]);
            at += n;
        }
    }

    fn write_grads(&self, out: &mut [f32]) {
        let mut at = 0;
        for l in &self.layers {
            at += l.w.write_grads(&mut out[at..]);
            out[at..at + l.grad_a_l.len()].copy_from_slice(&l.grad_a_l);
            at += l.grad_a_l.len();
            out[at..at + l.grad_a_r.len()].copy_from_slice(&l.grad_a_r);
            at += l.grad_a_r.len();
        }
    }

    fn read_grads(&mut self, src: &[f32]) {
        let mut at = 0;
        for l in &mut self.layers {
            at += l.w.read_grads(&src[at..]);
            let n = l.grad_a_l.len();
            l.grad_a_l.copy_from_slice(&src[at..at + n]);
            at += n;
            let n = l.grad_a_r.len();
            l.grad_a_r.copy_from_slice(&src[at..at + n]);
            at += n;
        }
    }

    fn macs(&self, blocks: &[Block]) -> f64 {
        let mut total = 0.0;
        for (layer, block) in self.layers.iter().zip(blocks) {
            let in_d = layer.w.in_dim() as f64;
            let out_d = layer.w.out_dim() as f64;
            let rows = block.num_src() as f64;
            total += rows * in_d * out_d; // projection
                                          // Attention: per edge (incl. self) per head, dot products.
            let edges = (block.num_edges() + block.num_dst) as f64;
            total += edges * layer.heads as f64 * layer.head_dim as f64 * 3.0;
        }
        total * 3.0
    }
}

impl Model for GcnModel {
    fn forward(&mut self, blocks: &[Block], input: &Tensor) -> Tensor {
        assert_eq!(blocks.len(), self.layers.len(), "blocks/layers mismatch");
        let n = self.layers.len();
        let mut h = input.clone();
        for (i, (layer, block)) in self.layers.iter_mut().zip(blocks).enumerate() {
            let activate = i + 1 < n;
            h = layer.forward(block, &h, activate);
        }
        h
    }

    fn backward(&mut self, grad_logits: &Tensor) {
        let mut g = grad_logits.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
    }

    fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.num_params()).sum()
    }

    fn write_params(&self, out: &mut [f32]) {
        let mut at = 0;
        for l in &self.layers {
            at += l.w.write_params(&mut out[at..]);
        }
        debug_assert_eq!(at, self.num_params());
    }

    fn read_params(&mut self, src: &[f32]) {
        let mut at = 0;
        for l in &mut self.layers {
            at += l.w.read_params(&src[at..]);
        }
    }

    fn write_grads(&self, out: &mut [f32]) {
        let mut at = 0;
        for l in &self.layers {
            at += l.w.write_grads(&mut out[at..]);
        }
    }

    fn read_grads(&mut self, src: &[f32]) {
        let mut at = 0;
        for l in &mut self.layers {
            at += l.w.read_grads(&src[at..]);
        }
    }

    fn macs(&self, blocks: &[Block]) -> f64 {
        let mut total = 0.0;
        for (layer, block) in self.layers.iter().zip(blocks) {
            let in_d = layer.w.in_dim() as f64;
            let out_d = layer.w.out_dim() as f64;
            total += block.num_dst as f64 * in_d * out_d; // projection
            total += (block.num_edges() + block.num_dst) as f64 * in_d; // aggregation
        }
        total * 3.0
    }
}

/// Serialize a model's parameters to little-endian bytes (a checkpoint).
///
/// ```
/// use mgnn_model::{Model, SageModel, save_params, load_params};
/// let model = SageModel::new(&[4, 8, 3], 7);
/// let bytes = save_params(&model);
/// let mut restored = SageModel::new(&[4, 8, 3], 99);
/// load_params(&mut restored, &bytes).unwrap();
/// let mut a = vec![0.0; Model::num_params(&model)];
/// let mut b = vec![0.0; Model::num_params(&restored)];
/// model.write_params(&mut a);
/// restored.write_params(&mut b);
/// assert_eq!(a, b);
/// ```
pub fn save_params(model: &dyn Model) -> Vec<u8> {
    let mut params = vec![0.0f32; model.num_params()];
    model.write_params(&mut params);
    let mut out = Vec::with_capacity(8 + params.len() * 4);
    out.extend_from_slice(&(params.len() as u64).to_le_bytes());
    for v in params {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Restore parameters saved by [`save_params`]. Fails if the byte length
/// or parameter count does not match the model.
pub fn load_params(model: &mut dyn Model, bytes: &[u8]) -> Result<(), String> {
    if bytes.len() < 8 {
        return Err("checkpoint truncated".into());
    }
    let n = u64::from_le_bytes(bytes[..8].try_into().unwrap()) as usize;
    if n != model.num_params() {
        return Err(format!(
            "checkpoint has {n} params, model expects {}",
            model.num_params()
        ));
    }
    if bytes.len() != 8 + n * 4 {
        return Err("checkpoint length mismatch".into());
    }
    let mut params = Vec::with_capacity(n);
    for c in bytes[8..].chunks_exact(4) {
        params.push(f32::from_le_bytes(c.try_into().unwrap()));
    }
    model.read_params(&params);
    Ok(())
}

fn mask_by_forward_positive(grad: &Tensor, forward_out: &Tensor) -> Tensor {
    assert_eq!(grad.shape(), forward_out.shape());
    let data = grad
        .data()
        .iter()
        .zip(forward_out.data())
        .map(|(&g, &x)| if x > 0.0 { g } else { 0.0 })
        .collect();
    Tensor::from_vec(grad.rows(), grad.cols(), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgnn_graph::generators::erdos_renyi;
    use mgnn_partition::{build_local_partitions, multilevel_partition};
    use mgnn_sampling::NeighborSampler;
    use mgnn_tensor::loss::cross_entropy;

    fn training_fixture() -> (Vec<Block>, Tensor, Vec<u32>) {
        let g = erdos_renyi(300, 3000, 5);
        let p = multilevel_partition(&g, 2, 5);
        let train: Vec<u32> = (0..300).collect();
        let part = build_local_partitions(&g, &p, &train).remove(0);
        let seeds: Vec<u32> = (0..16.min(part.num_local() as u32)).collect();
        let sampler = NeighborSampler::new(vec![5, 5], 3);
        let mb = sampler.sample(&part, &seeds, 0, 0);
        let feats = mgnn_graph::FeatureStore::synthesize(&g, 8, 3, 1);
        let input = Tensor::from_vec(
            mb.input_nodes.len(),
            8,
            mb.input_nodes
                .iter()
                .flat_map(|&l| feats.row(part.global_id(l)).to_vec())
                .collect(),
        );
        let labels: Vec<u32> = mb
            .seeds
            .iter()
            .map(|&l| feats.label(part.global_id(l)))
            .collect();
        (mb.blocks, input, labels)
    }

    #[test]
    fn sage_end_to_end_loss_decreases() {
        let (blocks, input, labels) = training_fixture();
        let mut model = SageModel::new(&[8, 16, 3], 7);
        let lr = 0.1f32;
        let mut first = f32::NAN;
        let mut last = f32::NAN;
        let np = Model::num_params(&model);
        for it in 0..30 {
            model.zero_grad();
            let logits = Model::forward(&mut model, &blocks, &input);
            let (loss, grad) = cross_entropy(&logits, &labels);
            if it == 0 {
                first = loss;
            }
            last = loss;
            Model::backward(&mut model, &grad);
            let mut params = vec![0.0f32; np];
            let mut grads = vec![0.0f32; np];
            model.write_params(&mut params);
            model.write_grads(&mut grads);
            for (p, g) in params.iter_mut().zip(&grads) {
                *p -= lr * g;
            }
            model.read_params(&params);
        }
        assert!(
            last < first * 0.9,
            "loss did not decrease: {first} -> {last}"
        );
    }

    #[test]
    fn gat_end_to_end_loss_decreases() {
        let (blocks, input, labels) = training_fixture();
        let mut model = GatModel::new(&[8, 8, 3], 2, 11);
        let lr = 0.05f32;
        let np = Model::num_params(&model);
        let mut first = f32::NAN;
        let mut last = f32::NAN;
        for it in 0..30 {
            model.zero_grad();
            let logits = Model::forward(&mut model, &blocks, &input);
            let (loss, grad) = cross_entropy(&logits, &labels);
            if it == 0 {
                first = loss;
            }
            last = loss;
            Model::backward(&mut model, &grad);
            let mut params = vec![0.0f32; np];
            let mut grads = vec![0.0f32; np];
            model.write_params(&mut params);
            model.write_grads(&mut grads);
            for (p, g) in params.iter_mut().zip(&grads) {
                *p -= lr * g;
            }
            model.read_params(&params);
        }
        assert!(last < first, "GAT loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn gcn_end_to_end_loss_decreases() {
        let (blocks, input, labels) = training_fixture();
        let mut model = GcnModel::new(&[8, 16, 3], 13);
        let lr = 0.1f32;
        let np = Model::num_params(&model);
        let mut first = f32::NAN;
        let mut last = f32::NAN;
        // GCN's mean-aggregation landscape is flatter than SAGE/GAT's on
        // this fixture; give SGD enough steps that the 5% bar tests the
        // optimizer, not the initialization draw.
        for it in 0..100 {
            model.zero_grad();
            let logits = Model::forward(&mut model, &blocks, &input);
            let (loss, grad) = cross_entropy(&logits, &labels);
            if it == 0 {
                first = loss;
            }
            last = loss;
            Model::backward(&mut model, &grad);
            let mut params = vec![0.0f32; np];
            let mut grads = vec![0.0f32; np];
            model.write_params(&mut params);
            model.write_grads(&mut grads);
            for (p, g) in params.iter_mut().zip(&grads) {
                *p -= lr * g;
            }
            model.read_params(&params);
        }
        assert!(
            last < first * 0.95,
            "GCN loss did not decrease: {first} -> {last}"
        );
    }

    #[test]
    fn param_round_trip_both_models() {
        let sage = SageModel::new(&[8, 16, 3], 1);
        let mut buf = vec![0.0f32; Model::num_params(&sage)];
        sage.write_params(&mut buf);
        let mut sage2 = SageModel::new(&[8, 16, 3], 99);
        sage2.read_params(&buf);
        let mut buf2 = vec![0.0f32; buf.len()];
        sage2.write_params(&mut buf2);
        assert_eq!(buf, buf2);

        let gat = GatModel::new(&[8, 8, 3], 2, 1);
        let mut gbuf = vec![0.0f32; Model::num_params(&gat)];
        gat.write_params(&mut gbuf);
        let mut gat2 = GatModel::new(&[8, 8, 3], 2, 77);
        gat2.read_params(&gbuf);
        let mut gbuf2 = vec![0.0f32; gbuf.len()];
        gat2.write_params(&mut gbuf2);
        assert_eq!(gbuf, gbuf2);
    }

    #[test]
    fn checkpoint_round_trip_and_rejects_mismatch() {
        let model = SageModel::new(&[6, 8, 3], 5);
        let bytes = crate::model::save_params(&model);
        let mut other = SageModel::new(&[6, 8, 3], 77);
        crate::model::load_params(&mut other, &bytes).unwrap();
        let mut a = vec![0.0; Model::num_params(&model)];
        let mut b = vec![0.0; Model::num_params(&other)];
        model.write_params(&mut a);
        other.write_params(&mut b);
        assert_eq!(a, b);
        // Wrong shape rejected.
        let mut wrong = SageModel::new(&[6, 9, 3], 1);
        assert!(crate::model::load_params(&mut wrong, &bytes).is_err());
        // Truncation rejected.
        assert!(crate::model::load_params(&mut other, &bytes[..bytes.len() - 1]).is_err());
        assert!(crate::model::load_params(&mut other, &bytes[..4]).is_err());
    }

    #[test]
    fn macs_positive_and_scale_with_blocks() {
        let (blocks, _, _) = training_fixture();
        let sage = SageModel::new(&[8, 16, 3], 1);
        let m = sage.macs(&blocks);
        assert!(m > 0.0);
        let gat = GatModel::new(&[8, 8, 3], 2, 1);
        assert!(gat.macs(&blocks) > 0.0);
    }
}
