//! One DDP training step over a sampled minibatch (Algorithm 1 lines
//! 11–15: forward, loss, backward, synchronize, update).

use crate::ddp::ring_allreduce_average;
use crate::model::Model;
use crate::optim::Optimizer;
use mgnn_sampling::Block;
use mgnn_tensor::loss::{accuracy, cross_entropy};
use mgnn_tensor::Tensor;

/// Result of one training step on one trainer.
#[derive(Debug, Clone, Copy)]
pub struct StepStats {
    /// Mean cross-entropy loss of the minibatch.
    pub loss: f32,
    /// Minibatch training accuracy.
    pub accuracy: f64,
    /// Estimated multiply-accumulates of the step.
    pub macs: f64,
}

/// Local forward+backward: computes the loss gradient and accumulates
/// parameter gradients, *without* the optimizer update (which happens after
/// the cross-trainer allreduce).
pub fn forward_backward(
    model: &mut dyn Model,
    blocks: &[Block],
    input: &Tensor,
    labels: &[u32],
) -> StepStats {
    model.zero_grad();
    let logits = model.forward(blocks, input);
    let (loss, grad) = cross_entropy(&logits, labels);
    let acc = accuracy(&logits, labels);
    model.backward(&grad);
    StepStats {
        loss,
        accuracy: acc,
        macs: model.macs(blocks),
    }
}

/// Synchronize gradients across trainers (DDP) and apply one optimizer
/// step on each. Models must be replicas (same parameter count).
pub fn synchronize_and_step(models: &mut [&mut dyn Model], optimizers: &mut [Box<dyn Optimizer>]) {
    assert_eq!(models.len(), optimizers.len());
    if models.is_empty() {
        return;
    }
    let np = models[0].num_params();
    let mut grads: Vec<Vec<f32>> = models
        .iter()
        .map(|m| {
            assert_eq!(m.num_params(), np, "replica mismatch");
            let mut g = vec![0.0f32; np];
            m.write_grads(&mut g);
            g
        })
        .collect();
    ring_allreduce_average(&mut grads);
    for ((model, opt), grad) in models.iter_mut().zip(optimizers).zip(&grads) {
        let mut params = vec![0.0f32; np];
        model.write_params(&mut params);
        opt.step(&mut params, grad);
        model.read_params(&params);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;
    use crate::sage::SageModel;
    use mgnn_graph::generators::erdos_renyi;
    use mgnn_graph::FeatureStore;
    use mgnn_partition::{build_local_partitions, multilevel_partition};
    use mgnn_sampling::NeighborSampler;

    fn fixture() -> (Vec<Block>, Tensor, Vec<u32>) {
        let g = erdos_renyi(200, 2000, 9);
        let p = multilevel_partition(&g, 2, 9);
        let train: Vec<u32> = (0..200).collect();
        let part = build_local_partitions(&g, &p, &train).remove(0);
        let seeds: Vec<u32> = (0..10).collect();
        let mb = NeighborSampler::new(vec![4, 4], 1).sample(&part, &seeds, 0, 0);
        let feats = FeatureStore::synthesize(&g, 6, 3, 2);
        let input = Tensor::from_vec(
            mb.input_nodes.len(),
            6,
            mb.input_nodes
                .iter()
                .flat_map(|&l| feats.row(part.global_id(l)).to_vec())
                .collect(),
        );
        let labels: Vec<u32> = mb
            .seeds
            .iter()
            .map(|&l| feats.label(part.global_id(l)))
            .collect();
        (mb.blocks, input, labels)
    }

    #[test]
    fn two_replicas_stay_in_sync() {
        let (blocks, input, labels) = fixture();
        let mut m1 = SageModel::new(&[6, 8, 3], 5);
        let mut m2 = SageModel::new(&[6, 8, 3], 5); // same seed ⇒ same init
        for _ in 0..5 {
            forward_backward(&mut m1, &blocks, &input, &labels);
            forward_backward(&mut m2, &blocks, &input, &labels);
            let mut models: Vec<&mut dyn Model> = vec![&mut m1, &mut m2];
            let mut opts: Vec<Box<dyn Optimizer>> =
                vec![Box::new(Sgd::new(0.05)), Box::new(Sgd::new(0.05))];
            synchronize_and_step(&mut models, &mut opts);
        }
        let np = Model::num_params(&m1);
        let mut p1 = vec![0.0f32; np];
        let mut p2 = vec![0.0f32; np];
        m1.write_params(&mut p1);
        m2.write_params(&mut p2);
        assert_eq!(p1, p2, "DDP replicas diverged");
    }

    #[test]
    fn ddp_average_equals_single_on_identical_grads() {
        // Two replicas with identical data: averaging is a no-op, so DDP
        // must match single-trainer training exactly.
        let (blocks, input, labels) = fixture();
        let mut ddp_model = SageModel::new(&[6, 8, 3], 5);
        let mut ddp_model2 = SageModel::new(&[6, 8, 3], 5);
        let mut solo = SageModel::new(&[6, 8, 3], 5);
        for _ in 0..3 {
            forward_backward(&mut ddp_model, &blocks, &input, &labels);
            forward_backward(&mut ddp_model2, &blocks, &input, &labels);
            let mut models: Vec<&mut dyn Model> = vec![&mut ddp_model, &mut ddp_model2];
            let mut opts: Vec<Box<dyn Optimizer>> =
                vec![Box::new(Sgd::new(0.05)), Box::new(Sgd::new(0.05))];
            synchronize_and_step(&mut models, &mut opts);

            forward_backward(&mut solo, &blocks, &input, &labels);
            let mut models: Vec<&mut dyn Model> = vec![&mut solo];
            let mut opts: Vec<Box<dyn Optimizer>> = vec![Box::new(Sgd::new(0.05))];
            synchronize_and_step(&mut models, &mut opts);
        }
        let np = Model::num_params(&solo);
        let mut a = vec![0.0f32; np];
        let mut b = vec![0.0f32; np];
        ddp_model.write_params(&mut a);
        solo.write_params(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn step_stats_populated() {
        let (blocks, input, labels) = fixture();
        let mut m = SageModel::new(&[6, 8, 3], 5);
        let stats = forward_backward(&mut m, &blocks, &input, &labels);
        assert!(stats.loss.is_finite() && stats.loss > 0.0);
        assert!((0.0..=1.0).contains(&stats.accuracy));
        assert!(stats.macs > 0.0);
    }
}
