//! Optimizers over flat parameter/gradient buffers.

/// A first-order optimizer stepping flat parameter vectors.
pub trait Optimizer: Send {
    /// Apply one update: `params -= f(grads)`.
    fn step(&mut self, params: &mut [f32], grads: &[f32]);
}

/// SGD with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        if self.momentum == 0.0 {
            for (p, &g) in params.iter_mut().zip(grads) {
                *p -= self.lr * g;
            }
            return;
        }
        if self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        for ((p, &g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            *v = self.momentum * *v + g;
            *p -= self.lr * *v;
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Adam with the standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        if self.m.len() != params.len() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x-3)² from x=0.
    fn run<O: Optimizer>(mut opt: O, iters: usize) -> f32 {
        let mut x = vec![0.0f32];
        for _ in 0..iters {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = run(Sgd::new(0.1), 100);
        assert!((x - 3.0).abs() < 1e-3, "x={x}");
    }

    #[test]
    fn momentum_converges() {
        let x = run(Sgd::with_momentum(0.05, 0.9), 200);
        assert!((x - 3.0).abs() < 1e-2, "x={x}");
    }

    #[test]
    fn adam_converges() {
        let x = run(Adam::new(0.3), 300);
        assert!((x - 3.0).abs() < 1e-2, "x={x}");
    }

    #[test]
    fn adam_bias_correction_first_step() {
        // First Adam step should move by ≈ lr regardless of grad scale.
        let mut opt = Adam::new(0.1);
        let mut x = vec![0.0f32];
        opt.step(&mut x, &[1e-4]);
        assert!((x[0] + 0.1).abs() < 1e-3, "x={}", x[0]);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        Sgd::new(0.1).step(&mut [0.0], &[0.0, 1.0]);
    }
}
