//! # mgnn-model — GraphSAGE, GAT, DDP training
//!
//! The paper's workloads: a 2-layer mean-aggregator [GraphSAGE](sage) with
//! fanout `{10, 25}` (§V) and a 2-head [GAT](gat) (§V-A4), trained with
//! synchronous data-parallel SGD — gradients ring-allreduced across all
//! trainer PEs every minibatch ([`ddp`]).
//!
//! Every layer implements an explicit `forward`/`backward` pair over
//! [`mgnn_sampling::Block`]s, with gradient correctness pinned by
//! finite-difference tests. [`Model`] abstracts parameter/gradient
//! flattening so DDP and the optimizers work on plain `f32` slices.

pub mod ddp;
pub mod gat;
pub mod gcn;
pub mod model;
pub mod optim;
pub mod sage;
pub mod train;

pub use ddp::{
    reduce_ring_chunk_average, reduce_ring_chunk_average_with, ring_allreduce_average,
    ring_chunk_bounds,
};
pub use gat::GatModel;
pub use gcn::GcnModel;
pub use model::{load_params, save_params, Model, ModelKind};
pub use optim::{Adam, Optimizer, Sgd};
pub use sage::SageModel;
