//! Graph Convolutional Network layer (Kipf & Welling, block-sampled form)
//! — an extension beyond the paper's GraphSAGE/GAT pair, reinforcing the
//! claim that the prefetch scheme is architecture-agnostic.
//!
//! Per layer, with self-loop and mean normalization over the sampled
//! neighborhood: `out_i = act( mean_{j ∈ N(i) ∪ {i}} h_j · W + b )`.

use mgnn_sampling::Block;
use mgnn_tensor::ops::{relu, relu_backward};
use mgnn_tensor::{Linear, Tensor};

/// One GCN convolution layer.
#[derive(Debug, Clone)]
pub struct GcnLayer {
    /// The shared projection.
    pub w: Linear,
    cached: Option<GcnCache>,
}

#[derive(Debug, Clone)]
struct GcnCache {
    block: Block,
    src_rows: usize,
    pre: Tensor,
    activated: bool,
}

impl GcnLayer {
    /// New layer `in_dim → out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        GcnLayer {
            w: Linear::new(in_dim, out_dim, seed),
            cached: None,
        }
    }

    /// Mean over `N(i) ∪ {i}` of the src rows.
    fn aggregate(block: &Block, src: &Tensor) -> Tensor {
        let dim = src.cols();
        let mut agg = Tensor::zeros(block.num_dst, dim);
        for i in 0..block.num_dst {
            let nbrs = block.neighbors_of(i);
            let inv = 1.0 / (nbrs.len() + 1) as f32;
            let row = agg.row_mut(i);
            // self
            for (r, &v) in row.iter_mut().zip(src.row(i)) {
                *r += v;
            }
            for &j in nbrs {
                for (r, &v) in row.iter_mut().zip(src.row(j as usize)) {
                    *r += v;
                }
            }
            for r in row.iter_mut() {
                *r *= inv;
            }
        }
        agg
    }

    fn aggregate_backward(block: &Block, grad_agg: &Tensor, grad_src: &mut Tensor) {
        for i in 0..block.num_dst {
            let nbrs = block.neighbors_of(i);
            let inv = 1.0 / (nbrs.len() + 1) as f32;
            let g = grad_agg.row(i);
            {
                let dst = grad_src.row_mut(i);
                for (d, &v) in dst.iter_mut().zip(g) {
                    *d += v * inv;
                }
            }
            for &j in nbrs {
                let dst = grad_src.row_mut(j as usize);
                for (d, &v) in dst.iter_mut().zip(g) {
                    *d += v * inv;
                }
            }
        }
    }

    /// Forward over one block (`activate` applies ReLU for hidden layers).
    pub fn forward(&mut self, block: &Block, src: &Tensor, activate: bool) -> Tensor {
        assert_eq!(src.rows(), block.num_src());
        let agg = Self::aggregate(block, src);
        let pre = self.w.forward(&agg);
        let out = if activate { relu(&pre) } else { pre.clone() };
        self.cached = Some(GcnCache {
            block: block.clone(),
            src_rows: src.rows(),
            pre,
            activated: activate,
        });
        out
    }

    /// Backward: returns grad w.r.t. `src`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cached.take().expect("backward before forward");
        let grad_pre = if cache.activated {
            relu_backward(grad_out, &cache.pre)
        } else {
            grad_out.clone()
        };
        let grad_agg = self.w.backward(&grad_pre);
        let mut grad_src = Tensor::zeros(cache.src_rows, self.w.in_dim());
        Self::aggregate_backward(&cache.block, &grad_agg, &mut grad_src);
        grad_src
    }

    /// Zero accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.w.zero_grad();
    }

    /// Scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.w.num_params()
    }
}

/// A stacked GCN.
#[derive(Debug, Clone)]
pub struct GcnModel {
    /// The layers, input to output.
    pub layers: Vec<GcnLayer>,
}

impl GcnModel {
    /// `dims = [in, hidden, ..., out]`.
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2);
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| GcnLayer::new(w[0], w[1], seed.wrapping_add(i as u64 * 6151)))
            .collect();
        GcnModel { layers }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_block() -> Block {
        Block {
            num_dst: 2,
            src_nodes: vec![100, 101, 102, 103],
            offsets: vec![0, 2, 3],
            indices: vec![2, 3, 0],
        }
    }

    #[test]
    fn aggregate_includes_self() {
        let src = Tensor::from_vec(4, 1, vec![1.0, 2.0, 3.0, 5.0]);
        let agg = GcnLayer::aggregate(&toy_block(), &src);
        // dst0: mean(self=1, 3, 5) = 3; dst1: mean(self=2, 1) = 1.5
        assert!((agg.get(0, 0) - 3.0).abs() < 1e-6);
        assert!((agg.get(1, 0) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let block = toy_block();
        let mut layer = GcnLayer::new(2, 2, 11);
        let src = Tensor::from_vec(4, 2, vec![0.3, -0.1, 0.2, 0.4, -0.5, 0.6, 0.1, -0.2]);
        let loss_of = |layer: &GcnLayer, src: &Tensor| -> f32 {
            let mut l = layer.clone();
            l.forward(&block, src, true).data().iter().sum()
        };
        let out = layer.forward(&block, &src, true);
        let ones = Tensor::from_vec(out.rows(), out.cols(), vec![1.0; out.rows() * out.cols()]);
        layer.zero_grad();
        let grad_src = layer.backward(&ones);
        let eps = 1e-3f32;
        for idx in 0..8 {
            let mut xp = src.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = src.clone();
            xm.data_mut()[idx] -= eps;
            let num = (loss_of(&layer, &xp) - loss_of(&layer, &xm)) / (2.0 * eps);
            assert!(
                (num - grad_src.data()[idx]).abs() < 1e-2,
                "dX[{idx}] {num} vs {}",
                grad_src.data()[idx]
            );
        }
        for idx in 0..4 {
            let mut lp = layer.clone();
            lp.w.weight.data_mut()[idx] += eps;
            let mut lm = layer.clone();
            lm.w.weight.data_mut()[idx] -= eps;
            let num = (loss_of(&lp, &src) - loss_of(&lm, &src)) / (2.0 * eps);
            let ana = layer.w.grad_weight.data()[idx];
            assert!((num - ana).abs() < 1e-2, "dW[{idx}] {num} vs {ana}");
        }
    }

    #[test]
    fn model_shapes() {
        let m = GcnModel::new(&[8, 16, 3], 3);
        assert_eq!(m.num_layers(), 2);
        assert_eq!(m.layers[0].w.in_dim(), 8);
        assert_eq!(m.layers[1].w.out_dim(), 3);
    }
}
