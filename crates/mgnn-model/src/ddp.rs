//! Synchronous data-parallel gradient averaging.
//!
//! PyTorch DDP allreduces gradients during the backward pass; the paper's
//! trainers synchronize every minibatch (Algorithm 1 line 15). Here the
//! trainers live in one process, so the ring allreduce is implemented
//! directly over their flat gradient buffers — numerically identical to
//! the distributed version (chunked reduce-scatter + allgather), with the
//! communication *cost* charged by `mgnn_net::CostModel::t_allreduce`.

/// Average `world` gradient buffers in place via a chunked ring
/// reduce-scatter + allgather. All buffers must have equal length; after
/// the call every buffer holds the elementwise mean.
pub fn ring_allreduce_average(grads: &mut [Vec<f32>]) {
    let world = grads.len();
    if world == 0 {
        return;
    }
    let len = grads[0].len();
    assert!(
        grads.iter().all(|g| g.len() == len),
        "gradient buffers must have equal length"
    );
    if world == 1 {
        return;
    }

    // Chunk boundaries: world chunks of ~len/world.
    let bounds: Vec<(usize, usize)> = (0..world)
        .map(|c| {
            let s = c * len / world;
            let e = (c + 1) * len / world;
            (s, e)
        })
        .collect();

    // Reduce-scatter: after world-1 steps, rank r holds the full sum of
    // chunk (r+1) mod world.
    for step in 0..world - 1 {
        for r in 0..world {
            // Rank r sends chunk (r - step) to rank (r+1); emulate by
            // accumulating into the receiver in a temporary pass.
            let chunk = (r + world - step) % world;
            let (s, e) = bounds[chunk];
            let src_rank = r;
            let dst_rank = (r + 1) % world;
            // Accumulate src's chunk into dst. Split borrow.
            if s == e {
                continue;
            }
            let (src_chunk, dst): (Vec<f32>, &mut Vec<f32>) = {
                let tmp = grads[src_rank][s..e].to_vec();
                (tmp, &mut grads[dst_rank])
            };
            for (d, v) in dst[s..e].iter_mut().zip(src_chunk) {
                *d += v;
            }
        }
    }
    // Allgather: propagate each completed chunk around the ring.
    for step in 0..world - 1 {
        for r in 0..world {
            let chunk = (r + 1 + world - step) % world;
            let (s, e) = bounds[chunk];
            if s == e {
                continue;
            }
            let dst_rank = (r + 1) % world;
            let src_chunk = grads[r][s..e].to_vec();
            grads[dst_rank][s..e].copy_from_slice(&src_chunk);
        }
    }
    // Average.
    let inv = 1.0 / world as f32;
    for g in grads.iter_mut() {
        for v in g.iter_mut() {
            *v *= inv;
        }
    }
}

/// Bounds `[start, end)` of ring chunk `chunk` for a gradient of `len`
/// elements split across `world` ranks. Pure function of `(len, world)` —
/// the same deterministic-chunking contract the rayon shim enforces — so
/// any thread can compute any chunk without coordination.
#[inline]
pub fn ring_chunk_bounds(len: usize, world: usize, chunk: usize) -> (usize, usize) {
    (chunk * len / world, (chunk + 1) * len / world)
}

/// Average chunk `chunk` of the `world` equal-length gradient buffers in
/// `srcs` into `dst[start..end)`, reproducing `ring_allreduce_average`'s
/// accumulation order bit for bit: the ring's reduce-scatter folds chunk
/// `c` as `((g_{c+1} + g_c) + g_{c+2}) + … + g_{c+world-1}` (ranks mod
/// `world`), then scales by `1.0 / world as f32` — except at `world == 1`,
/// where the ring returns early and the chunk is copied unscaled.
///
/// Elements of `dst` outside the chunk are left untouched, so `world`
/// threads each reducing their own chunk into a shared buffer cover it
/// exactly once with no overlap — lock-free by construction.
pub fn reduce_ring_chunk_average(srcs: &[&[f32]], chunk: usize, dst: &mut [f32]) {
    let world = srcs.len();
    let len = dst.len();
    debug_assert!(srcs.iter().all(|s| s.len() == len));
    let (s, e) = ring_chunk_bounds(len, world, chunk);
    reduce_ring_chunk_average_with(chunk, world, len, |r| srcs[r], &mut dst[s..e]);
}

/// [`reduce_ring_chunk_average`] with the source buffers behind an
/// accessor instead of a slice list: `src(r)` returns rank `r`'s full
/// gradient buffer, and `dst` is exactly the chunk's
/// `[start, end)` window (`ring_chunk_bounds(len, world, chunk)`).
/// Lets a lock-free arena hand out transient per-rank views without
/// materializing (allocating) a `&[&[f32]]` every step.
pub fn reduce_ring_chunk_average_with<'a, F>(
    chunk: usize,
    world: usize,
    len: usize,
    src: F,
    dst: &mut [f32],
) where
    F: Fn(usize) -> &'a [f32],
{
    assert!(world > 0 && chunk < world, "chunk {chunk} out of {world}");
    let (s, e) = ring_chunk_bounds(len, world, chunk);
    debug_assert_eq!(dst.len(), e - s);
    if s == e {
        return;
    }
    if world == 1 {
        dst.copy_from_slice(&src(0)[s..e]);
        return;
    }
    // Ring step 0 accumulates rank `chunk`'s send into rank `chunk+1`.
    dst.copy_from_slice(&src((chunk + 1) % world)[s..e]);
    for (d, v) in dst.iter_mut().zip(&src(chunk)[s..e]) {
        *d += *v;
    }
    // Remaining ring hops add ranks chunk+2 … chunk+world-1 in order.
    for k in 2..world {
        for (d, v) in dst.iter_mut().zip(&src((chunk + k) % world)[s..e]) {
            *d += *v;
        }
    }
    let inv = 1.0 / world as f32;
    for d in dst.iter_mut() {
        *d *= inv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_average(grads: &[Vec<f32>]) -> Vec<f32> {
        let len = grads[0].len();
        let mut out = vec![0.0f32; len];
        for g in grads {
            for (o, &v) in out.iter_mut().zip(g) {
                *o += v;
            }
        }
        let inv = 1.0 / grads.len() as f32;
        out.iter_mut().for_each(|v| *v *= inv);
        out
    }

    #[test]
    fn matches_naive_average() {
        for world in [2usize, 3, 4, 7] {
            for len in [1usize, 5, 16, 33] {
                let mut grads: Vec<Vec<f32>> = (0..world)
                    .map(|r| (0..len).map(|i| (r * 31 + i) as f32 * 0.1).collect())
                    .collect();
                let expected = naive_average(&grads);
                ring_allreduce_average(&mut grads);
                for g in &grads {
                    for (a, b) in g.iter().zip(&expected) {
                        assert!((a - b).abs() < 1e-4, "world={world} len={len}");
                    }
                }
            }
        }
    }

    #[test]
    fn single_rank_untouched() {
        let mut grads = vec![vec![1.0, 2.0, 3.0]];
        ring_allreduce_average(&mut grads);
        assert_eq!(grads[0], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn all_ranks_agree_after() {
        let mut grads: Vec<Vec<f32>> = (0..5).map(|r| vec![r as f32; 10]).collect();
        ring_allreduce_average(&mut grads);
        for g in &grads {
            for &v in g {
                assert!((v - 2.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let mut grads = vec![vec![0.0; 3], vec![0.0; 4]];
        ring_allreduce_average(&mut grads);
    }

    /// Gradient fixtures with mixed magnitudes so any deviation in f32
    /// summation order shows up in the low mantissa bits.
    fn nasty_grads(world: usize, len: usize) -> Vec<Vec<f32>> {
        (0..world)
            .map(|r| {
                (0..len)
                    .map(|i| {
                        let m = [1.0e-4f32, 3.7, 1.0e4, -2.5e-2][(r + i) % 4];
                        m * ((r * 131 + i * 17 + 1) as f32).sin()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn chunked_reduction_bitwise_matches_ring() {
        for world in [1usize, 2, 3, 4, 5, 8] {
            for len in [0usize, 1, 3, 7, 16, 33, 257] {
                let grads = nasty_grads(world, len);
                let mut ring = grads.clone();
                ring_allreduce_average(&mut ring);

                let srcs: Vec<&[f32]> = grads.iter().map(|g| g.as_slice()).collect();
                let mut chunked = vec![0.0f32; len];
                for c in 0..world {
                    reduce_ring_chunk_average(&srcs, c, &mut chunked);
                }
                for (r, g) in ring.iter().enumerate() {
                    for (i, (a, b)) in g.iter().zip(&chunked).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "world={world} len={len} rank={r} i={i}: ring {a} vs chunked {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn chunk_bounds_tile_exactly() {
        for world in [1usize, 2, 3, 4, 7] {
            for len in [0usize, 1, 5, 16, 31] {
                let mut next = 0usize;
                for c in 0..world {
                    let (s, e) = ring_chunk_bounds(len, world, c);
                    assert_eq!(s, next);
                    assert!(e >= s);
                    next = e;
                }
                assert_eq!(next, len);
            }
        }
    }

    #[test]
    fn chunked_reduction_leaves_other_chunks_untouched() {
        let grads = nasty_grads(4, 32);
        let srcs: Vec<&[f32]> = grads.iter().map(|g| g.as_slice()).collect();
        let mut dst = vec![f32::NAN; 32];
        reduce_ring_chunk_average(&srcs, 1, &mut dst);
        let (s, e) = ring_chunk_bounds(32, 4, 1);
        for (i, v) in dst.iter().enumerate() {
            if (s..e).contains(&i) {
                assert!(v.is_finite());
            } else {
                assert!(v.is_nan(), "chunk 1 wrote outside [{s},{e}) at {i}");
            }
        }
    }
}
