//! Synchronous data-parallel gradient averaging.
//!
//! PyTorch DDP allreduces gradients during the backward pass; the paper's
//! trainers synchronize every minibatch (Algorithm 1 line 15). Here the
//! trainers live in one process, so the ring allreduce is implemented
//! directly over their flat gradient buffers — numerically identical to
//! the distributed version (chunked reduce-scatter + allgather), with the
//! communication *cost* charged by `mgnn_net::CostModel::t_allreduce`.

/// Average `world` gradient buffers in place via a chunked ring
/// reduce-scatter + allgather. All buffers must have equal length; after
/// the call every buffer holds the elementwise mean.
pub fn ring_allreduce_average(grads: &mut [Vec<f32>]) {
    let world = grads.len();
    if world == 0 {
        return;
    }
    let len = grads[0].len();
    assert!(
        grads.iter().all(|g| g.len() == len),
        "gradient buffers must have equal length"
    );
    if world == 1 {
        return;
    }

    // Chunk boundaries: world chunks of ~len/world.
    let bounds: Vec<(usize, usize)> = (0..world)
        .map(|c| {
            let s = c * len / world;
            let e = (c + 1) * len / world;
            (s, e)
        })
        .collect();

    // Reduce-scatter: after world-1 steps, rank r holds the full sum of
    // chunk (r+1) mod world.
    for step in 0..world - 1 {
        for r in 0..world {
            // Rank r sends chunk (r - step) to rank (r+1); emulate by
            // accumulating into the receiver in a temporary pass.
            let chunk = (r + world - step) % world;
            let (s, e) = bounds[chunk];
            let src_rank = r;
            let dst_rank = (r + 1) % world;
            // Accumulate src's chunk into dst. Split borrow.
            if s == e {
                continue;
            }
            let (src_chunk, dst): (Vec<f32>, &mut Vec<f32>) = {
                let tmp = grads[src_rank][s..e].to_vec();
                (tmp, &mut grads[dst_rank])
            };
            for (d, v) in dst[s..e].iter_mut().zip(src_chunk) {
                *d += v;
            }
        }
    }
    // Allgather: propagate each completed chunk around the ring.
    for step in 0..world - 1 {
        for r in 0..world {
            let chunk = (r + 1 + world - step) % world;
            let (s, e) = bounds[chunk];
            if s == e {
                continue;
            }
            let dst_rank = (r + 1) % world;
            let src_chunk = grads[r][s..e].to_vec();
            grads[dst_rank][s..e].copy_from_slice(&src_chunk);
        }
    }
    // Average.
    let inv = 1.0 / world as f32;
    for g in grads.iter_mut() {
        for v in g.iter_mut() {
            *v *= inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_average(grads: &[Vec<f32>]) -> Vec<f32> {
        let len = grads[0].len();
        let mut out = vec![0.0f32; len];
        for g in grads {
            for (o, &v) in out.iter_mut().zip(g) {
                *o += v;
            }
        }
        let inv = 1.0 / grads.len() as f32;
        out.iter_mut().for_each(|v| *v *= inv);
        out
    }

    #[test]
    fn matches_naive_average() {
        for world in [2usize, 3, 4, 7] {
            for len in [1usize, 5, 16, 33] {
                let mut grads: Vec<Vec<f32>> = (0..world)
                    .map(|r| (0..len).map(|i| (r * 31 + i) as f32 * 0.1).collect())
                    .collect();
                let expected = naive_average(&grads);
                ring_allreduce_average(&mut grads);
                for g in &grads {
                    for (a, b) in g.iter().zip(&expected) {
                        assert!((a - b).abs() < 1e-4, "world={world} len={len}");
                    }
                }
            }
        }
    }

    #[test]
    fn single_rank_untouched() {
        let mut grads = vec![vec![1.0, 2.0, 3.0]];
        ring_allreduce_average(&mut grads);
        assert_eq!(grads[0], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn all_ranks_agree_after() {
        let mut grads: Vec<Vec<f32>> = (0..5).map(|r| vec![r as f32; 10]).collect();
        ring_allreduce_average(&mut grads);
        for g in &grads {
            for &v in g {
                assert!((v - 2.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let mut grads = vec![vec![0.0; 3], vec![0.0; 4]];
        ring_allreduce_average(&mut grads);
    }
}
