//! GraphSAGE with mean aggregation.
//!
//! Per layer: `out_i = act( h_i · W_self  +  mean_{j∈N(i)} h_j · W_neigh + b )`
//! where `N(i)` are the block-sampled in-neighbors of dst `i`. The final
//! layer omits the activation (logits).

use mgnn_sampling::Block;
use mgnn_tensor::ops::{relu, relu_backward};
use mgnn_tensor::{Linear, Tensor};

/// One SAGE convolution layer.
#[derive(Debug, Clone)]
pub struct SageLayer {
    /// Transform of the node's own embedding.
    pub w_self: Linear,
    /// Transform of the mean-aggregated neighborhood.
    pub w_neigh: Linear,
    // Cached forward state for backward.
    cached: Option<SageCache>,
}

#[derive(Debug, Clone)]
struct SageCache {
    /// Sparse aggregation structure of the block (cloned offsets/indices).
    block: Block,
    /// Input src features.
    src: Tensor,
    /// Pre-activation output.
    pre: Tensor,
    /// Whether the activation was applied.
    activated: bool,
}

impl SageLayer {
    /// New layer `in_dim → out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        SageLayer {
            w_self: Linear::new(in_dim, out_dim, seed),
            w_neigh: Linear::new(in_dim, out_dim, seed ^ 0x5a5a),
            cached: None,
        }
    }

    /// Mean-aggregate neighbor rows of `src` per the block.
    fn aggregate(block: &Block, src: &Tensor) -> Tensor {
        let dim = src.cols();
        let mut agg = Tensor::zeros(block.num_dst, dim);
        for i in 0..block.num_dst {
            let nbrs = block.neighbors_of(i);
            if nbrs.is_empty() {
                continue;
            }
            let inv = 1.0 / nbrs.len() as f32;
            let row = agg.row_mut(i);
            for &j in nbrs {
                let s = src.row(j as usize);
                for (r, &v) in row.iter_mut().zip(s) {
                    *r += v;
                }
            }
            for r in row.iter_mut() {
                *r *= inv;
            }
        }
        agg
    }

    /// Scatter-transpose of [`SageLayer::aggregate`]: given grad on the
    /// aggregated dst rows, push `grad/deg` back onto each neighbor row.
    fn aggregate_backward(block: &Block, grad_agg: &Tensor, grad_src: &mut Tensor) {
        for i in 0..block.num_dst {
            let nbrs = block.neighbors_of(i);
            if nbrs.is_empty() {
                continue;
            }
            let inv = 1.0 / nbrs.len() as f32;
            let g = grad_agg.row(i);
            for &j in nbrs {
                let dst = grad_src.row_mut(j as usize);
                for (d, &v) in dst.iter_mut().zip(g) {
                    *d += v * inv;
                }
            }
        }
    }

    /// Forward over one block. `src` has `block.num_src()` rows; output has
    /// `block.num_dst` rows. `activate` applies ReLU (hidden layers).
    pub fn forward(&mut self, block: &Block, src: &Tensor, activate: bool) -> Tensor {
        assert_eq!(src.rows(), block.num_src());
        // Self path uses the dst prefix of src.
        let dst_feats = Tensor::from_vec(
            block.num_dst,
            src.cols(),
            src.data()[..block.num_dst * src.cols()].to_vec(),
        );
        let agg = Self::aggregate(block, src);
        let mut pre = self.w_self.forward(&dst_feats);
        pre.add_assign(&self.w_neigh.forward(&agg));
        let out = if activate { relu(&pre) } else { pre.clone() };
        self.cached = Some(SageCache {
            block: block.clone(),
            src: src.clone(),
            pre,
            activated: activate,
        });
        out
    }

    /// Backward: returns grad w.r.t. `src`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cached.take().expect("backward before forward");
        let grad_pre = if cache.activated {
            relu_backward(grad_out, &cache.pre)
        } else {
            grad_out.clone()
        };
        // Through the two linears.
        let grad_dst = self.w_self.backward(&grad_pre);
        let grad_agg = self.w_neigh.backward(&grad_pre);
        // Assemble grad for all src rows.
        let mut grad_src = Tensor::zeros(cache.src.rows(), cache.src.cols());
        // Self path hits the dst prefix.
        for i in 0..cache.block.num_dst {
            let g = grad_dst.row(i);
            let dst = grad_src.row_mut(i);
            for (d, &v) in dst.iter_mut().zip(g) {
                *d += v;
            }
        }
        Self::aggregate_backward(&cache.block, &grad_agg, &mut grad_src);
        grad_src
    }

    /// Zero accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.w_self.zero_grad();
        self.w_neigh.zero_grad();
    }

    /// Scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.w_self.num_params() + self.w_neigh.num_params()
    }
}

/// A stacked GraphSAGE model (the paper's is 2 layers, hidden 256).
#[derive(Debug, Clone)]
pub struct SageModel {
    /// The convolution layers, input to output.
    pub layers: Vec<SageLayer>,
}

impl SageModel {
    /// Build a model with `dims = [in, hidden, ..., out]` (one layer per
    /// adjacent pair).
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least one layer");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| SageLayer::new(w[0], w[1], seed.wrapping_add(i as u64 * 7919)))
            .collect();
        SageModel { layers }
    }

    /// Number of GNN layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_block() -> Block {
        // 2 dst, 4 src; dst0 aggregates src2,src3; dst1 aggregates src0.
        Block {
            num_dst: 2,
            src_nodes: vec![100, 101, 102, 103],
            offsets: vec![0, 2, 3],
            indices: vec![2, 3, 0],
        }
    }

    #[test]
    fn aggregate_means_neighbors() {
        let src = Tensor::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 2.0, 2.0, 4.0, 4.0]);
        let agg = SageLayer::aggregate(&toy_block(), &src);
        assert_eq!(agg.row(0), &[3.0, 3.0]); // mean of src2, src3
        assert_eq!(agg.row(1), &[1.0, 0.0]); // src0
    }

    #[test]
    fn empty_neighborhood_aggregates_zero() {
        let block = Block {
            num_dst: 1,
            src_nodes: vec![7],
            offsets: vec![0, 0],
            indices: vec![],
        };
        let src = Tensor::from_vec(1, 2, vec![5.0, 5.0]);
        let agg = SageLayer::aggregate(&block, &src);
        assert_eq!(agg.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn forward_shapes() {
        let mut layer = SageLayer::new(2, 3, 1);
        let src = Tensor::from_vec(4, 2, vec![0.1; 8]);
        let out = layer.forward(&toy_block(), &src, true);
        assert_eq!(out.shape(), (2, 3));
        assert!(out.data().iter().all(|&v| v >= 0.0)); // post-ReLU
    }

    #[test]
    fn gradients_match_finite_differences() {
        let block = toy_block();
        let mut layer = SageLayer::new(2, 2, 3);
        let src = Tensor::from_vec(4, 2, vec![0.3, -0.1, 0.2, 0.4, -0.5, 0.6, 0.1, -0.2]);

        let loss_of = |layer: &SageLayer, src: &Tensor| -> f32 {
            let mut l = layer.clone();
            l.forward(&block, src, true).data().iter().sum()
        };

        let out = layer.forward(&block, &src, true);
        let ones = Tensor::from_vec(out.rows(), out.cols(), vec![1.0; out.rows() * out.cols()]);
        layer.zero_grad();
        let grad_src = layer.backward(&ones);

        let eps = 1e-3f32;
        // dX
        for idx in 0..8 {
            let mut xp = src.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = src.clone();
            xm.data_mut()[idx] -= eps;
            let num = (loss_of(&layer, &xp) - loss_of(&layer, &xm)) / (2.0 * eps);
            let ana = grad_src.data()[idx];
            assert!((num - ana).abs() < 1e-2, "dX[{idx}] {num} vs {ana}");
        }
        // dW_self
        for idx in 0..4 {
            let mut lp = layer.clone();
            lp.w_self.weight.data_mut()[idx] += eps;
            let mut lm = layer.clone();
            lm.w_self.weight.data_mut()[idx] -= eps;
            let num = (loss_of(&lp, &src) - loss_of(&lm, &src)) / (2.0 * eps);
            let ana = layer.w_self.grad_weight.data()[idx];
            assert!((num - ana).abs() < 1e-2, "dWs[{idx}] {num} vs {ana}");
        }
        // dW_neigh
        for idx in 0..4 {
            let mut lp = layer.clone();
            lp.w_neigh.weight.data_mut()[idx] += eps;
            let mut lm = layer.clone();
            lm.w_neigh.weight.data_mut()[idx] -= eps;
            let num = (loss_of(&lp, &src) - loss_of(&lm, &src)) / (2.0 * eps);
            let ana = layer.w_neigh.grad_weight.data()[idx];
            assert!((num - ana).abs() < 1e-2, "dWn[{idx}] {num} vs {ana}");
        }
    }

    #[test]
    fn model_construction() {
        let m = SageModel::new(&[16, 32, 8], 5);
        assert_eq!(m.num_layers(), 2);
        assert_eq!(m.layers[0].w_self.in_dim(), 16);
        assert_eq!(m.layers[1].w_self.out_dim(), 8);
    }
}
