//! Graph Attention Network layer (Veličković et al.) with explicit
//! backward, multi-head, matching the paper's §V-A4 configuration
//! (2 attention heads, NeighborSampler).
//!
//! Each dst node attends over its sampled neighbors *plus itself*
//! (self-loop attention, as DGL's `GATConv` with added self-loops):
//!
//! ```text
//! z   = X · W                      (per head)
//! e_ij = LeakyReLU(a_l·z_i + a_r·z_j)   j ∈ N(i) ∪ {i}
//! α_i· = softmax_j(e_i·)
//! out_i = Σ_j α_ij · z_j
//! ```
//!
//! Hidden layers concatenate heads; the output layer averages them.

use mgnn_sampling::Block;
use mgnn_tensor::{Linear, Tensor};

const LEAKY_SLOPE: f32 = 0.2;

/// One multi-head GAT layer.
#[derive(Debug, Clone)]
pub struct GatLayer {
    /// Number of attention heads.
    pub heads: usize,
    /// Per-head output dimension.
    pub head_dim: usize,
    /// Fused projection `in_dim × (heads · head_dim)`.
    pub w: Linear,
    /// Left (dst) attention vectors, `heads × head_dim` row-major.
    pub a_l: Vec<f32>,
    /// Right (src) attention vectors, `heads × head_dim` row-major.
    pub a_r: Vec<f32>,
    /// Gradient of `a_l`.
    pub grad_a_l: Vec<f32>,
    /// Gradient of `a_r`.
    pub grad_a_r: Vec<f32>,
    /// Concatenate heads (hidden layers) vs average (output layer).
    pub concat: bool,
    cached: Option<GatCache>,
}

#[derive(Debug, Clone)]
struct GatCache {
    block: Block,
    /// Projected features, `num_src × heads·head_dim`.
    z: Tensor,
    /// Attention coefficients per head per dst, ragged:
    /// `alpha[h][att_offsets[i]..att_offsets[i+1]]`.
    alpha: Vec<Vec<f32>>,
    /// Pre-activation attention logits `s_ij` (same ragged layout).
    s: Vec<Vec<f32>>,
    /// Ragged offsets per dst (shared across heads): attention set size is
    /// `1 + deg(i)` (self first).
    att_offsets: Vec<u32>,
}

impl GatLayer {
    /// New layer: `in_dim → heads · head_dim` (concat) or `head_dim` (avg).
    pub fn new(in_dim: usize, head_dim: usize, heads: usize, concat: bool, seed: u64) -> Self {
        let a_scale = (1.0 / head_dim as f32).sqrt();
        let a_l = mgnn_tensor::init::uniform(heads, head_dim, a_scale, seed ^ 0x11)
            .data()
            .to_vec();
        let a_r = mgnn_tensor::init::uniform(heads, head_dim, a_scale, seed ^ 0x22)
            .data()
            .to_vec();
        GatLayer {
            heads,
            head_dim,
            w: Linear::new(in_dim, heads * head_dim, seed),
            grad_a_l: vec![0.0; a_l.len()],
            grad_a_r: vec![0.0; a_r.len()],
            a_l,
            a_r,
            concat,
            cached: None,
        }
    }

    /// Output dimension of this layer.
    pub fn out_dim(&self) -> usize {
        if self.concat {
            self.heads * self.head_dim
        } else {
            self.head_dim
        }
    }

    /// Forward over one block.
    pub fn forward(&mut self, block: &Block, src: &Tensor) -> Tensor {
        assert_eq!(src.rows(), block.num_src());
        let z = self.w.forward(src);
        let (heads, d) = (self.heads, self.head_dim);

        let mut att_offsets: Vec<u32> = Vec::with_capacity(block.num_dst + 1);
        att_offsets.push(0);
        for i in 0..block.num_dst {
            let deg = block.neighbors_of(i).len() as u32;
            att_offsets.push(att_offsets[i] + 1 + deg);
        }
        let total = *att_offsets.last().unwrap() as usize;

        let mut alpha: Vec<Vec<f32>> = vec![vec![0.0; total]; heads];
        let mut s_store: Vec<Vec<f32>> = vec![vec![0.0; total]; heads];
        let mut out = Tensor::zeros(block.num_dst, self.out_dim());

        for h in 0..heads {
            let al = &self.a_l[h * d..(h + 1) * d];
            let ar = &self.a_r[h * d..(h + 1) * d];
            let zcol = h * d;
            for (i, &att_start) in att_offsets.iter().take(block.num_dst).enumerate() {
                let start = att_start as usize;
                let zi = &z.row(i)[zcol..zcol + d];
                let li: f32 = zi.iter().zip(al).map(|(a, b)| a * b).sum();
                // Attention set: self then neighbors.
                let nbrs = block.neighbors_of(i);
                let mut smax = f32::NEG_INFINITY;
                for (k, &j) in std::iter::once(&(i as u32)).chain(nbrs.iter()).enumerate() {
                    let zj = &z.row(j as usize)[zcol..zcol + d];
                    let rj: f32 = zj.iter().zip(ar).map(|(a, b)| a * b).sum();
                    let sij = li + rj;
                    s_store[h][start + k] = sij;
                    let e = if sij > 0.0 { sij } else { LEAKY_SLOPE * sij };
                    alpha[h][start + k] = e;
                    smax = smax.max(e);
                }
                // Softmax over the attention set.
                let cnt = 1 + nbrs.len();
                let mut sum = 0.0f32;
                for k in 0..cnt {
                    let e = (alpha[h][start + k] - smax).exp();
                    alpha[h][start + k] = e;
                    sum += e;
                }
                let inv = 1.0 / sum;
                for k in 0..cnt {
                    alpha[h][start + k] *= inv;
                }
                // Weighted sum of z_j.
                let ocol = if self.concat { h * d } else { 0 };
                let scale = if self.concat { 1.0 } else { 1.0 / heads as f32 };
                for (k, &j) in std::iter::once(&(i as u32)).chain(nbrs.iter()).enumerate() {
                    let a = alpha[h][start + k] * scale;
                    let zj = &z.row(j as usize)[zcol..zcol + d];
                    let orow = out.row_mut(i);
                    for (o, &v) in orow[ocol..ocol + d].iter_mut().zip(zj) {
                        *o += a * v;
                    }
                }
            }
        }

        self.cached = Some(GatCache {
            block: block.clone(),
            z,
            alpha,
            s: s_store,
            att_offsets,
        });
        out
    }

    /// Backward: returns grad w.r.t. `src`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cached.take().expect("backward before forward");
        let (heads, d) = (self.heads, self.head_dim);
        let block = &cache.block;
        let z = &cache.z;
        let mut dz = Tensor::zeros(z.rows(), z.cols());

        for h in 0..heads {
            let al = &self.a_l[h * d..(h + 1) * d];
            let ar = &self.a_r[h * d..(h + 1) * d];
            let zcol = h * d;
            let ocol = if self.concat { h * d } else { 0 };
            let scale = if self.concat { 1.0 } else { 1.0 / heads as f32 };
            for i in 0..block.num_dst {
                let start = cache.att_offsets[i] as usize;
                let nbrs = block.neighbors_of(i);
                let cnt = 1 + nbrs.len();
                let gi = &grad_out.row(i)[ocol..ocol + d];

                // dα_ij = (g_i · z_j) · scale ; dz_j += α_ij·scale · g_i
                let mut dalpha = vec![0.0f32; cnt];
                for (k, &j) in std::iter::once(&(i as u32)).chain(nbrs.iter()).enumerate() {
                    let a = cache.alpha[h][start + k];
                    let zj = &z.row(j as usize)[zcol..zcol + d];
                    dalpha[k] = scale * gi.iter().zip(zj).map(|(a, b)| a * b).sum::<f32>();
                    let dzj = dz.row_mut(j as usize);
                    for (dd, &g) in dzj[zcol..zcol + d].iter_mut().zip(gi) {
                        *dd += a * scale * g;
                    }
                }
                // Softmax backward.
                let dot: f32 = (0..cnt)
                    .map(|k| cache.alpha[h][start + k] * dalpha[k])
                    .sum();
                let mut dli = 0.0f32;
                for (k, &j) in std::iter::once(&(i as u32)).chain(nbrs.iter()).enumerate() {
                    let a = cache.alpha[h][start + k];
                    let de = a * (dalpha[k] - dot);
                    let sij = cache.s[h][start + k];
                    let ds = if sij > 0.0 { de } else { LEAKY_SLOPE * de };
                    dli += ds;
                    // r_j path: da_r += ds·z_j ; dz_j += ds·a_r
                    let zj_row = j as usize;
                    {
                        let zj = &z.row(zj_row)[zcol..zcol + d];
                        for (ga, &v) in self.grad_a_r[h * d..(h + 1) * d].iter_mut().zip(zj) {
                            *ga += ds * v;
                        }
                    }
                    let dzj = dz.row_mut(zj_row);
                    for (dd, &a_v) in dzj[zcol..zcol + d].iter_mut().zip(ar) {
                        *dd += ds * a_v;
                    }
                }
                // l_i path: da_l += dli·z_i ; dz_i += dli·a_l
                {
                    let zi = &z.row(i)[zcol..zcol + d];
                    for (ga, &v) in self.grad_a_l[h * d..(h + 1) * d].iter_mut().zip(zi) {
                        *ga += dli * v;
                    }
                }
                let dzi = dz.row_mut(i);
                for (dd, &a_v) in dzi[zcol..zcol + d].iter_mut().zip(al) {
                    *dd += dli * a_v;
                }
            }
        }
        self.w.backward(&dz)
    }

    /// Zero accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.w.zero_grad();
        self.grad_a_l.iter_mut().for_each(|g| *g = 0.0);
        self.grad_a_r.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Scalar parameter count (projection + both attention vectors).
    pub fn num_params(&self) -> usize {
        self.w.num_params() + self.a_l.len() + self.a_r.len()
    }
}

/// A stacked GAT model: hidden layers concat heads + ELU-free ReLU-style
/// nonlinearity is folded into attention (the paper's 2-head config),
/// final layer averages heads into class logits.
#[derive(Debug, Clone)]
pub struct GatModel {
    /// GAT layers, input to output.
    pub layers: Vec<GatLayer>,
    /// Post-ReLU activations between layers, cached by forward for the
    /// inter-layer ReLU mask in backward (`relu_inputs[i]` is the input
    /// layer `i+1` consumed).
    pub(crate) relu_inputs: Vec<Tensor>,
}

impl GatModel {
    /// `dims = [in, hidden, ..., out]`, all hidden layers with `heads`
    /// heads concatenated, the final layer averaging.
    pub fn new(dims: &[usize], heads: usize, seed: u64) -> Self {
        assert!(dims.len() >= 2);
        let n = dims.len() - 1;
        let mut layers = Vec::with_capacity(n);
        let mut in_dim = dims[0];
        for (i, &out) in dims[1..].iter().enumerate() {
            let last = i == n - 1;
            // Hidden layers emit heads*out (concat); the head_dim is `out`.
            let layer = GatLayer::new(
                in_dim,
                out,
                heads,
                !last,
                seed.wrapping_add(i as u64 * 104729),
            );
            in_dim = layer.out_dim();
            layers.push(layer);
        }
        GatModel {
            layers,
            relu_inputs: Vec::new(),
        }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_block() -> Block {
        Block {
            num_dst: 2,
            src_nodes: vec![100, 101, 102, 103],
            offsets: vec![0, 2, 3],
            indices: vec![2, 3, 0],
        }
    }

    #[test]
    fn forward_shapes_concat_and_mean() {
        let src = Tensor::from_vec(4, 3, (0..12).map(|x| x as f32 * 0.1).collect());
        let mut concat = GatLayer::new(3, 4, 2, true, 1);
        assert_eq!(concat.forward(&toy_block(), &src).shape(), (2, 8));
        let mut mean = GatLayer::new(3, 4, 2, false, 1);
        assert_eq!(mean.forward(&toy_block(), &src).shape(), (2, 4));
    }

    #[test]
    fn attention_weights_normalized() {
        let src = Tensor::from_vec(4, 3, (0..12).map(|x| x as f32 * 0.3 - 1.0).collect());
        let mut layer = GatLayer::new(3, 2, 2, true, 3);
        layer.forward(&toy_block(), &src);
        let cache = layer.cached.as_ref().unwrap();
        for h in 0..2 {
            for i in 0..2 {
                let start = cache.att_offsets[i] as usize;
                let end = cache.att_offsets[i + 1] as usize;
                let sum: f32 = cache.alpha[h][start..end].iter().sum();
                assert!((sum - 1.0).abs() < 1e-5, "head {h} dst {i} sum {sum}");
            }
        }
    }

    #[test]
    fn isolated_dst_attends_to_self_only() {
        let block = Block {
            num_dst: 1,
            src_nodes: vec![7],
            offsets: vec![0, 0],
            indices: vec![],
        };
        let src = Tensor::from_vec(1, 2, vec![1.0, -1.0]);
        let mut layer = GatLayer::new(2, 2, 1, true, 5);
        let out = layer.forward(&block, &src);
        // α over {self} is 1, so out = z_self exactly.
        let z = layer.w.forward_inference(&src);
        for (o, zv) in out.data().iter().zip(z.data()) {
            assert!((o - zv).abs() < 1e-5);
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let block = toy_block();
        let mut layer = GatLayer::new(2, 2, 2, true, 7);
        let src = Tensor::from_vec(4, 2, vec![0.3, -0.1, 0.2, 0.4, -0.5, 0.6, 0.1, -0.2]);

        let loss_of = |layer: &GatLayer, src: &Tensor| -> f32 {
            let mut l = layer.clone();
            l.forward(&block, src).data().iter().sum()
        };

        let out = layer.forward(&block, &src);
        let ones = Tensor::from_vec(out.rows(), out.cols(), vec![1.0; out.rows() * out.cols()]);
        layer.zero_grad();
        let grad_src = layer.backward(&ones);

        let eps = 1e-3f32;
        for idx in 0..8 {
            let mut xp = src.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = src.clone();
            xm.data_mut()[idx] -= eps;
            let num = (loss_of(&layer, &xp) - loss_of(&layer, &xm)) / (2.0 * eps);
            let ana = grad_src.data()[idx];
            assert!((num - ana).abs() < 2e-2, "dX[{idx}] {num} vs {ana}");
        }
        // a_l gradient
        for idx in 0..4 {
            let mut lp = layer.clone();
            lp.a_l[idx] += eps;
            let mut lm = layer.clone();
            lm.a_l[idx] -= eps;
            let num = (loss_of(&lp, &src) - loss_of(&lm, &src)) / (2.0 * eps);
            let ana = layer.grad_a_l[idx];
            assert!((num - ana).abs() < 2e-2, "da_l[{idx}] {num} vs {ana}");
        }
        // a_r gradient
        for idx in 0..4 {
            let mut lp = layer.clone();
            lp.a_r[idx] += eps;
            let mut lm = layer.clone();
            lm.a_r[idx] -= eps;
            let num = (loss_of(&lp, &src) - loss_of(&lm, &src)) / (2.0 * eps);
            let ana = layer.grad_a_r[idx];
            assert!((num - ana).abs() < 2e-2, "da_r[{idx}] {num} vs {ana}");
        }
        // W gradient (spot-check a few entries)
        for idx in 0..8 {
            let mut lp = layer.clone();
            lp.w.weight.data_mut()[idx] += eps;
            let mut lm = layer.clone();
            lm.w.weight.data_mut()[idx] -= eps;
            let num = (loss_of(&lp, &src) - loss_of(&lm, &src)) / (2.0 * eps);
            let ana = layer.w.grad_weight.data()[idx];
            assert!((num - ana).abs() < 2e-2, "dW[{idx}] {num} vs {ana}");
        }
    }

    #[test]
    fn model_dims_chain_through_concat() {
        let m = GatModel::new(&[16, 8, 4], 2, 1);
        assert_eq!(m.layers[0].out_dim(), 16); // 2 heads × 8 concat
        assert_eq!(m.layers[1].w.in_dim(), 16);
        assert_eq!(m.layers[1].out_dim(), 4); // averaged
    }
}
