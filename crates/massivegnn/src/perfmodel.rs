//! The paper's analytical performance model (§IV-C, Eqs. 2–7), as pure
//! functions — used both to sanity-check the simulator's behaviour and to
//! reproduce the model-vs-measured comparisons.

/// Per-minibatch component times feeding the model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Components {
    /// Neighbor sampling time.
    pub t_sampling: f64,
    /// Remote feature fetch time.
    pub t_rpc: f64,
    /// Local feature copy time.
    pub t_copy: f64,
    /// Buffer lookup time (prefetch path only).
    pub t_lookup: f64,
    /// Scoreboard maintenance time (prefetch path only).
    pub t_scoring: f64,
    /// Data-parallel training time.
    pub t_ddp: f64,
}

/// Eq. 2: baseline DistDGL per-minibatch time
/// `t_sampling + max(t_RPC, t_copy) + t_DDP`.
pub fn t_baseline(c: &Components) -> f64 {
    c.t_sampling + c.t_rpc.max(c.t_copy) + c.t_ddp
}

/// Eq. 3: next-minibatch preparation time
/// `t_sampling + t_lookup + t_scoring + max(t_RPC, t_copy)`.
pub fn t_prepare(c: &Components) -> f64 {
    c.t_sampling + c.t_lookup + c.t_scoring + c.t_rpc.max(c.t_copy)
}

/// Eq. 4: the first minibatch pays a serial preparation plus the overlap
/// `t_prepare + max(t_prepare, t_DDP)`.
pub fn t_prefetch_first(c: &Components) -> f64 {
    t_prepare(c) + t_prepare(c).max(c.t_ddp)
}

/// Eq. 5: steady-state prefetch per-minibatch time
/// `max(t_prepare, t_DDP)`.
pub fn t_prefetch_steady(c: &Components) -> f64 {
    t_prepare(c).max(c.t_ddp)
}

/// Eq. 6: predicted improvement factor `T_baseline / T_prefetch` in the
/// perfect-overlap regime, `≈ t_RPC / t_DDP + 1` under the paper's
/// simplification (`t_sampling` cheap relative to `t_RPC`,
/// `t_RPC ≥ t_copy`).
pub fn improvement_factor(c: &Components) -> f64 {
    t_baseline(c) / t_prefetch_steady(c)
}

/// Eq. 6's simplified right-hand side `t_RPC / t_DDP + 1`.
pub fn improvement_factor_simplified(c: &Components) -> f64 {
    c.t_rpc / c.t_ddp + 1.0
}

/// Eq. 7: compounding of scoring overhead across maintenance intervals:
/// `t_prepare(future) = t_prepare(present) · (1 + scoring_pct/100)^periods`.
pub fn compounded_prepare(t_prepare_present: f64, scoring_pct: f64, periods: u32) -> f64 {
    t_prepare_present * (1.0 + scoring_pct / 100.0).powi(periods as i32)
}

/// Whether the configuration achieves the paper's "perfect overlap"
/// (`t_prepare ≤ t_DDP`), making preparation free.
pub fn perfect_overlap(c: &Components) -> bool {
    t_prepare(c) <= c.t_ddp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu_like() -> Components {
        Components {
            t_sampling: 0.01,
            t_rpc: 0.05,
            t_copy: 0.005,
            t_lookup: 0.001,
            t_scoring: 0.001,
            t_ddp: 0.2,
        }
    }

    fn gpu_like() -> Components {
        Components {
            t_ddp: 0.02,
            ..cpu_like()
        }
    }

    #[test]
    fn baseline_decomposition() {
        let c = cpu_like();
        assert!((t_baseline(&c) - (0.01 + 0.05 + 0.2)).abs() < 1e-12);
    }

    #[test]
    fn cpu_achieves_perfect_overlap() {
        let c = cpu_like();
        assert!(perfect_overlap(&c));
        // Steady state collapses to t_DDP.
        assert!((t_prefetch_steady(&c) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn gpu_overlap_imperfect() {
        let c = gpu_like();
        assert!(!perfect_overlap(&c));
        assert!((t_prefetch_steady(&c) - t_prepare(&c)).abs() < 1e-12);
    }

    #[test]
    fn first_minibatch_pays_extra() {
        let c = cpu_like();
        assert!(t_prefetch_first(&c) > t_prefetch_steady(&c));
        assert!((t_prefetch_first(&c) - (t_prepare(&c) + 0.2)).abs() < 1e-12);
    }

    #[test]
    fn improvement_factor_above_one_when_comm_bound() {
        let c = cpu_like();
        assert!(improvement_factor(&c) > 1.0);
        // The simplification tracks the exact factor within ~20% here.
        let exact = improvement_factor(&c);
        let simple = improvement_factor_simplified(&c);
        assert!((exact - simple).abs() / exact < 0.2, "{exact} vs {simple}");
    }

    #[test]
    fn eq7_reference_point() {
        // The paper's worked example: 10% scoring per interval, 10
        // intervals ⇒ ×(1.1)^10 ≈ 2.59 — "about 25% overhead" per the
        // paper refers to the per-interval compounding at small t.
        let f = compounded_prepare(1.0, 10.0, 10);
        assert!((f - 1.1f64.powi(10)).abs() < 1e-12);
        assert!(f > 2.5 && f < 2.6);
    }

    #[test]
    fn prepare_uses_max_of_rpc_copy() {
        let mut c = cpu_like();
        c.t_copy = 0.5; // local copy dominates
        assert!((t_prepare(&c) - (0.01 + 0.001 + 0.001 + 0.5)).abs() < 1e-12);
    }
}
