//! Real-thread look-ahead pipeline — Algorithm 1 lines 5–9 with an actual
//! prepare thread, not just modeled time.
//!
//! The paper overlaps next-minibatch preparation with training using a
//! `ThreadPoolExecutor` (one look-ahead worker) plus NUMBA to escape the
//! GIL. Rust needs no such escape hatch: [`PrefetchPipeline::spawn`] moves
//! the [`Prefetcher`] onto a dedicated prepare thread that pushes
//! [`PreparedBatch`]es into a bounded channel of depth `lookahead` (the
//! queue `Q`), while the caller trains on the previously prepared batch.
//! Back-pressure is automatic: when training is slower than preparation
//! (the paper's "perfect overlap" regime) the worker blocks on the full
//! queue; when preparation is slower, the caller blocks in
//! [`PrefetchPipeline::next`] — exactly the stall the overlap-efficiency
//! metric measures.
//!
//! Preparation is deliberately *infallible* even under a fault profile:
//! RPC failures are absorbed inside [`Prefetcher::prepare`]'s
//! degradation ladder (retry → stale buffered row → zero-fill), so the
//! prepare thread never dies mid-run and the queue protocol needs no
//! error variant.

use crate::prefetcher::{Prefetcher, PreparedBatch};
use mgnn_net::{CommMetrics, CostModel, SimCluster};
use mgnn_partition::LocalPartition;
use mgnn_sampling::{DataLoader, NeighborSampler};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running prepare thread feeding a bounded queue of minibatches.
///
/// A second, unbounded *recycle* channel flows the other way: the trainer
/// returns consumed [`PreparedBatch`] carcasses via
/// [`recycle`](Self::recycle) and the prepare thread opportunistically
/// dismantles one per step ([`Prefetcher::prepare_reuse`]), so in steady
/// state the feature matrix, block and label allocations circulate
/// instead of being dropped and reallocated. Recycling is purely an
/// allocation optimization — batch contents are bitwise-identical whether
/// or not a carcass arrives in time.
pub struct PrefetchPipeline {
    rx: Option<crossbeam_channel::Receiver<PreparedBatch>>,
    recycle_tx: crossbeam_channel::Sender<PreparedBatch>,
    handle: Option<JoinHandle<Prefetcher>>,
}

impl PrefetchPipeline {
    /// Spawn the prepare thread. It walks `epochs × steps` minibatches in
    /// order (continuous across epochs, like the paper's scheme), preparing
    /// each through the prefetcher and blocking when the queue holds
    /// `lookahead` unconsumed batches.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn(
        prefetcher: Prefetcher,
        part: Arc<LocalPartition>,
        sampler: NeighborSampler,
        loader: DataLoader,
        cluster: Arc<SimCluster>,
        cost: CostModel,
        metrics: Arc<CommMetrics>,
        epochs: usize,
        steps_per_epoch: usize,
    ) -> Self {
        let lookahead = prefetcher.cfg.lookahead;
        let (tx, rx) = crossbeam_channel::bounded::<PreparedBatch>(lookahead);
        let (recycle_tx, recycle_rx) = crossbeam_channel::unbounded::<PreparedBatch>();
        let handle = std::thread::Builder::new()
            .name("prefetch-prepare".into())
            .spawn(move || {
                let mut pf = prefetcher;
                let mut global_step = 0u64;
                'outer: for epoch in 0..epochs as u64 {
                    let batches = loader.epoch(epoch);
                    for seeds in batches.iter().take(steps_per_epoch) {
                        let batch = pf.prepare_reuse(
                            recycle_rx.try_recv().ok(),
                            &part,
                            &sampler,
                            seeds,
                            epoch,
                            global_step,
                            &cluster,
                            &cost,
                            &metrics,
                        );
                        global_step += 1;
                        if tx.send(batch).is_err() {
                            // Consumer hung up early; stop preparing.
                            break 'outer;
                        }
                    }
                }
                pf
            })
            .expect("failed to spawn prepare thread");
        PrefetchPipeline {
            rx: Some(rx),
            recycle_tx,
            handle: Some(handle),
        }
    }

    /// Return a consumed batch's allocations to the prepare thread. Lossy
    /// by design: if the worker already exited, the carcass is dropped.
    pub fn recycle(&self, batch: PreparedBatch) {
        let _ = self.recycle_tx.send(batch);
    }

    /// Pop the next prepared minibatch (Algorithm 1 line 5, `Q.pop()`),
    /// blocking if preparation is behind. `None` once all minibatches are
    /// consumed.
    pub fn next(&self) -> Option<PreparedBatch> {
        self.rx.as_ref().and_then(|rx| rx.recv().ok())
    }

    /// Non-blocking pop — `None` means the queue is momentarily empty
    /// (a stall) or finished.
    pub fn try_next(&self) -> Option<PreparedBatch> {
        self.rx.as_ref().and_then(|rx| rx.try_recv().ok())
    }

    /// Wait for the prepare thread and recover the prefetcher state
    /// (buffer, scoreboards) for inspection.
    pub fn join(mut self) -> Prefetcher {
        // Dropping the receiver unblocks a worker stuck on a full queue.
        drop(self.rx.take());
        self.handle
            .take()
            .expect("already joined")
            .join()
            .expect("prepare thread panicked")
    }
}

impl Drop for PrefetchPipeline {
    fn drop(&mut self) {
        drop(self.rx.take());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrefetchConfig;
    use crate::init::initialize_prefetcher;
    use mgnn_graph::generators::erdos_renyi;
    use mgnn_graph::FeatureStore;
    use mgnn_partition::{build_local_partitions, multilevel_partition};

    fn setup() -> (Arc<LocalPartition>, Arc<SimCluster>, usize) {
        let g = erdos_renyi(400, 4000, 21);
        let p = multilevel_partition(&g, 2, 21);
        let feats = FeatureStore::synthesize(&g, 8, 3, 4);
        let cluster = Arc::new(SimCluster::new(&feats, &p.assignment, 2));
        let train: Vec<u32> = (0..400).collect();
        let part = Arc::new(build_local_partitions(&g, &p, &train).remove(0));
        let n = g.num_nodes();
        (part, cluster, n)
    }

    fn trainer_seeds(part: &LocalPartition) -> Vec<u32> {
        part.train_nodes
            .iter()
            .map(|&g| part.local_id(g).unwrap())
            .collect()
    }

    #[test]
    fn pipeline_delivers_all_batches_in_order() {
        let (part, cluster, n) = setup();
        let metrics = Arc::new(CommMetrics::new());
        let cfg = PrefetchConfig {
            delta: 4,
            ..Default::default()
        };
        let (pf, _) =
            initialize_prefetcher(&part, cfg, n, &cluster, &CostModel::default(), &metrics);
        let loader = DataLoader::new(trainer_seeds(&part), 32, 5);
        let steps = loader.batches_per_epoch();
        let sampler = NeighborSampler::new(vec![4, 4], 9);
        let pipeline = PrefetchPipeline::spawn(
            pf,
            Arc::clone(&part),
            sampler,
            loader.clone(),
            Arc::clone(&cluster),
            CostModel::default(),
            Arc::clone(&metrics),
            2,
            steps,
        );
        let mut count = 0;
        while let Some(batch) = pipeline.next() {
            assert_eq!(batch.input.rows(), batch.minibatch.input_nodes.len());
            assert_eq!(batch.labels.len(), batch.minibatch.seeds.len());
            count += 1;
        }
        assert_eq!(count, 2 * steps);
    }

    #[test]
    fn pipeline_matches_sequential_preparation() {
        // The overlapped pipeline must produce byte-identical batches to
        // preparing sequentially (determinism across threading).
        let (part, cluster, n) = setup();
        let cost = CostModel::default();
        let cfg = PrefetchConfig {
            delta: 4,
            ..Default::default()
        };
        let loader = DataLoader::new(trainer_seeds(&part), 32, 5);
        let steps = loader.batches_per_epoch();
        let sampler = NeighborSampler::new(vec![4, 4], 9);

        // Sequential reference.
        let m1 = Arc::new(CommMetrics::new());
        let (mut pf1, _) = initialize_prefetcher(&part, cfg, n, &cluster, &cost, &m1);
        let mut expected = Vec::new();
        let mut gs = 0u64;
        for epoch in 0..2u64 {
            for seeds in loader.epoch(epoch).iter().take(steps) {
                expected.push(pf1.prepare(&part, &sampler, seeds, epoch, gs, &cluster, &cost, &m1));
                gs += 1;
            }
        }

        // Pipelined.
        let m2 = Arc::new(CommMetrics::new());
        let (pf2, _) = initialize_prefetcher(&part, cfg, n, &cluster, &cost, &m2);
        let pipeline = PrefetchPipeline::spawn(
            pf2,
            Arc::clone(&part),
            NeighborSampler::new(vec![4, 4], 9),
            loader.clone(),
            Arc::clone(&cluster),
            cost,
            Arc::clone(&m2),
            2,
            steps,
        );
        for exp in &expected {
            let got = pipeline.next().expect("pipeline ended early");
            assert_eq!(got.minibatch, exp.minibatch);
            assert_eq!(got.input.data(), exp.input.data());
            assert_eq!(got.labels, exp.labels);
        }
        assert!(pipeline.next().is_none());
        assert_eq!(m1.snapshot(), m2.snapshot());
    }

    #[test]
    fn recycled_batches_identical_to_fresh() {
        // Same oracle as above, but the consumer returns every carcass, so
        // later preparations run through the reuse path with dirty buffers.
        let (part, cluster, n) = setup();
        let cost = CostModel::default();
        let cfg = PrefetchConfig {
            delta: 4,
            ..Default::default()
        };
        let loader = DataLoader::new(trainer_seeds(&part), 32, 5);
        let steps = loader.batches_per_epoch();

        let m1 = Arc::new(CommMetrics::new());
        let (mut pf1, _) = initialize_prefetcher(&part, cfg, n, &cluster, &cost, &m1);
        pf1.set_pooling(false);
        let sampler = NeighborSampler::new(vec![4, 4], 9);
        let mut expected = Vec::new();
        let mut gs = 0u64;
        for epoch in 0..2u64 {
            for seeds in loader.epoch(epoch).iter().take(steps) {
                expected.push(pf1.prepare(&part, &sampler, seeds, epoch, gs, &cluster, &cost, &m1));
                gs += 1;
            }
        }

        let m2 = Arc::new(CommMetrics::new());
        let (pf2, _) = initialize_prefetcher(&part, cfg, n, &cluster, &cost, &m2);
        let pipeline = PrefetchPipeline::spawn(
            pf2,
            Arc::clone(&part),
            NeighborSampler::new(vec![4, 4], 9),
            loader.clone(),
            Arc::clone(&cluster),
            cost,
            Arc::clone(&m2),
            2,
            steps,
        );
        for exp in &expected {
            let got = pipeline.next().expect("pipeline ended early");
            assert_eq!(got.minibatch, exp.minibatch);
            assert_eq!(got.input.data(), exp.input.data());
            assert_eq!(got.labels, exp.labels);
            pipeline.recycle(got);
        }
        assert!(pipeline.next().is_none());
        assert_eq!(m1.snapshot(), m2.snapshot());
    }

    #[test]
    fn early_drop_does_not_hang() {
        let (part, cluster, n) = setup();
        let metrics = Arc::new(CommMetrics::new());
        let (pf, _) = initialize_prefetcher(
            &part,
            PrefetchConfig::default(),
            n,
            &cluster,
            &CostModel::default(),
            &metrics,
        );
        let loader = DataLoader::new(trainer_seeds(&part), 16, 1);
        let steps = loader.batches_per_epoch();
        let pipeline = PrefetchPipeline::spawn(
            pf,
            Arc::clone(&part),
            NeighborSampler::new(vec![4], 2),
            loader,
            Arc::clone(&cluster),
            CostModel::default(),
            metrics,
            10,
            steps,
        );
        let _ = pipeline.next();
        drop(pipeline); // must return promptly
    }

    #[test]
    fn join_recovers_prefetcher_state() {
        let (part, cluster, n) = setup();
        let metrics = Arc::new(CommMetrics::new());
        let (pf, _) = initialize_prefetcher(
            &part,
            PrefetchConfig::default(),
            n,
            &cluster,
            &CostModel::default(),
            &metrics,
        );
        let buffered_before = pf.buffer.len();
        let loader = DataLoader::new(trainer_seeds(&part), 64, 3);
        let steps = loader.batches_per_epoch();
        let pipeline = PrefetchPipeline::spawn(
            pf,
            Arc::clone(&part),
            NeighborSampler::new(vec![4], 2),
            loader,
            Arc::clone(&cluster),
            CostModel::default(),
            metrics,
            1,
            steps,
        );
        while pipeline.next().is_some() {}
        let pf = pipeline.join();
        assert_eq!(pf.buffer.len(), buffered_before, "capacity invariant");
        pf.buffer.check_invariants().unwrap();
    }
}
