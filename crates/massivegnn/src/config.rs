//! Prefetcher configuration — the paper's tunables (Table I).

/// Which `S_A` memory layout to use (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScoreLayout {
    /// `O(|V|)` array indexed by global node id; `O(1)` updates. The
    /// default for all inputs except papers in the paper's experiments.
    Dense,
    /// `O(|V_p^h|)` scores over the sorted halo list; `O(log |V_p^h|)`
    /// binary-search updates. Used for papers100M.
    MemEfficient,
}

/// Which admission/eviction/pull policy drives the prefetcher (DESIGN
/// §10). Selecting `Scoreboard` reproduces the paper bitwise; the
/// variants only change *which* rows sit in the buffer and *when* they
/// are fetched — never the feature bytes a minibatch trains on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetchPolicyKind {
    /// The paper's reactive S_E/S_A scoreboard with Δ-periodic
    /// evict-and-replace (Algorithm 2).
    Scoreboard,
    /// Deterministic lookahead planning: walk the memoized epoch plan
    /// `depth` steps ahead, re-run the seeded sampler against future
    /// seeds, and pull each upcoming batch's not-yet-resident halo rows
    /// before they are due. Disables the reactive scoreboard passes.
    Lookahead {
        /// Planning horizon in minibatch steps (≥ 1).
        depth: usize,
    },
}

impl PrefetchPolicyKind {
    /// Stable CLI/report name.
    pub fn name(&self) -> &'static str {
        match self {
            PrefetchPolicyKind::Scoreboard => "scoreboard",
            PrefetchPolicyKind::Lookahead { .. } => "lookahead",
        }
    }
}

/// All prefetch/eviction parameters (paper Table I, §IV).
#[derive(Debug, Clone, Copy)]
pub struct PrefetchConfig {
    /// `f_p^h`: fraction of the partition's halo nodes to prefetch at
    /// initialization (buffer capacity). Paper sweeps {0.15, 0.25, 0.35,
    /// 0.5} (plus 0.85/0.95 for papers at large scale).
    pub f_h: f64,
    /// `γ`: eviction-score decay per unsampled minibatch. Paper sweeps
    /// {0.95, 0.995, 0.9995}; γ→1 is low decay.
    pub gamma: f64,
    /// `Δ`: eviction interval in minibatch steps. Paper sweeps 16–1024.
    pub delta: usize,
    /// Enable the Δ-periodic evict-and-replace pass ("prefetch with
    /// eviction" vs "prefetch without eviction", §V-A).
    pub eviction: bool,
    /// `S_A` layout.
    pub layout: ScoreLayout,
    /// Look-ahead depth of the next-minibatch queue (the paper uses 1).
    pub lookahead: usize,
    /// Admission/eviction/pull policy (DESIGN §10). `Scoreboard` is the
    /// paper-faithful default.
    pub policy: PrefetchPolicyKind,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            f_h: 0.25,
            gamma: 0.995,
            delta: 64,
            eviction: true,
            layout: ScoreLayout::Dense,
            lookahead: 1,
            policy: PrefetchPolicyKind::Scoreboard,
        }
    }
}

impl PrefetchConfig {
    /// The Eq. 1 eviction threshold `α = S_E(init) · γ^Δ` with
    /// `S_E(init) = 1`.
    pub fn alpha(&self) -> f64 {
        self.gamma.powi(self.delta as i32)
    }

    /// Validate ranges; returns a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.f_h) {
            return Err(format!("f_h {} out of [0,1]", self.f_h));
        }
        if !(0.0..=1.0).contains(&self.gamma) {
            return Err(format!("gamma {} out of [0,1]", self.gamma));
        }
        if self.eviction && self.delta == 0 {
            return Err("delta must be >= 1 when eviction is enabled".into());
        }
        if self.lookahead == 0 {
            return Err("lookahead must be >= 1".into());
        }
        if let PrefetchPolicyKind::Lookahead { depth } = self.policy {
            if depth == 0 {
                return Err("lookahead policy depth must be >= 1".into());
            }
        }
        Ok(())
    }

    /// Disable eviction (the paper's "prefetch without eviction" variant).
    pub fn without_eviction(mut self) -> Self {
        self.eviction = false;
        self
    }

    /// Switch to the deterministic lookahead policy with the given
    /// planning horizon.
    pub fn with_lookahead_policy(mut self, depth: usize) -> Self {
        self.policy = PrefetchPolicyKind::Lookahead { depth };
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_matches_eq1() {
        let c = PrefetchConfig {
            gamma: 0.95,
            delta: 10,
            ..Default::default()
        };
        assert!((c.alpha() - 0.95f64.powi(10)).abs() < 1e-12);
    }

    #[test]
    fn default_is_valid() {
        assert!(PrefetchConfig::default().validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_ranges() {
        let mut c = PrefetchConfig {
            f_h: 1.5,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        c = PrefetchConfig {
            gamma: -0.1,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        c = PrefetchConfig {
            delta: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        c = c.without_eviction();
        assert!(c.validate().is_ok(), "delta=0 fine without eviction");
        c.lookahead = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn default_policy_is_scoreboard() {
        let c = PrefetchConfig::default();
        assert_eq!(c.policy, PrefetchPolicyKind::Scoreboard);
        assert_eq!(c.policy.name(), "scoreboard");
    }

    #[test]
    fn lookahead_policy_validates_depth() {
        let c = PrefetchConfig::default().with_lookahead_policy(4);
        assert_eq!(c.policy, PrefetchPolicyKind::Lookahead { depth: 4 });
        assert_eq!(c.policy.name(), "lookahead");
        assert!(c.validate().is_ok());
        let bad = PrefetchConfig::default().with_lookahead_policy(0);
        assert!(bad.validate().is_err());
    }
}
