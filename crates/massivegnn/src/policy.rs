//! Pluggable prefetch policies (DESIGN §10).
//!
//! The prefetcher's admission/eviction/pull decisions go through the
//! [`PrefetchPolicy`] trait. Two implementations ship:
//!
//! * [`ScoreboardPolicy`] — the paper's reactive S_E/S_A scheme. It is a
//!   pure marker: `reactive()` returns `true`, which keeps every
//!   scoreboard pass in [`crate::prefetcher::Prefetcher::prepare_reuse`]
//!   on its original code path, so scoreboard runs are bitwise-identical
//!   to the pre-trait prefetcher (pinned by the identity tests).
//! * [`LookaheadPolicy`] — a deterministic planner in the RapidGNN
//!   spirit. The sampler is seeded and [`DataLoader::epoch`] memoizes the
//!   full shuffled plan, so the exact halo rows every *future* minibatch
//!   needs are computable ahead of time. Each prepare step the planner
//!   walks the plan `depth` steps past the current one, re-runs the
//!   sampler against those future seeds, and issues one batched
//!   [`SimCluster::pull_grouped_checked`] for the not-yet-resident rows
//!   — before they are due. At steady state every probe hits and the
//!   critical-path `t_rpc` collapses to the empty-fetch cost.
//!
//! Contract (all policies):
//!
//! * **Determinism** — decisions may depend only on the policy's own
//!   seeded state and the (epoch, step) position; planning on the
//!   threaded engine's prepare thread must replay the sequential
//!   engine's decisions bit for bit.
//! * **Clock charging** — time spent planning is returned from
//!   [`PrefetchPolicy::plan`] and charged to the *prepare window*
//!   (`t_planned` of Eq. 3's extended form), never to the critical-path
//!   `t_rpc`; its spans land on [`mgnn_obs::Lane::Lookahead`].
//! * **Fault composition** — planned pulls go through the same
//!   retry/degradation ladder as demand fetches: a row whose fetch
//!   exhausts every retry is simply *not installed* (no zero rows ever
//!   enter the buffer), so the demand path later re-fetches it with its
//!   own full ladder. Learning math is therefore policy-independent.

use crate::buffer::PrefetchBuffer;
use mgnn_graph::NodeId;
use mgnn_net::{CommMetrics, CostModel, SimCluster};
use mgnn_partition::LocalPartition;
use mgnn_sampling::{DataLoader, NeighborSampler, SampledMinibatch, SamplerScratch};

/// Everything a policy may read or mutate during one planning round.
/// Borrowed out of the prefetcher at the head of each prepare call.
pub struct PlanCtx<'a> {
    /// The trainer's prefetch buffer (the policy installs planned rows
    /// here).
    pub buffer: &'a mut PrefetchBuffer,
    /// The trainer's partition.
    pub part: &'a LocalPartition,
    /// RPC cluster handle for planned pulls.
    pub cluster: &'a SimCluster,
    /// Simulated cost model (planned-pull time charging).
    pub cost: &'a CostModel,
    /// The trainer's counters/span recorder.
    pub metrics: &'a CommMetrics,
    /// Global step being prepared (continuous across epochs).
    pub step: u64,
}

/// A prefetch admission/eviction/pull policy (see the module docs for
/// the determinism / clock-charging / fault-composition contract).
pub trait PrefetchPolicy: Send {
    /// Stable name for reports and labels.
    fn name(&self) -> &'static str;

    /// Whether the prepare path runs the paper's reactive scoreboard
    /// passes (S_E decay, S_A increments, Δ-periodic evict-and-replace).
    /// `true` for the scoreboard policy; planners that manage the buffer
    /// themselves return `false`.
    fn reactive(&self) -> bool;

    /// One planning round at the head of `ctx.step`'s prepare window.
    /// Returns the modeled seconds of planned-pull work to charge to the
    /// prepare window (exactly `0.0` when nothing was pulled, keeping
    /// scoreboard timings bitwise-unchanged).
    fn plan(&mut self, ctx: PlanCtx<'_>) -> f64;
}

/// The paper-faithful reactive policy: all decisions stay on the
/// prefetcher's original S_E/S_A code path.
#[derive(Debug, Default)]
pub struct ScoreboardPolicy;

impl PrefetchPolicy for ScoreboardPolicy {
    fn name(&self) -> &'static str {
        "scoreboard"
    }

    fn reactive(&self) -> bool {
        true
    }

    fn plan(&mut self, _ctx: PlanCtx<'_>) -> f64 {
        0.0
    }
}

/// Deterministic lookahead planner (see the module docs).
///
/// Owns private clones of the trainer's [`DataLoader`] and
/// [`NeighborSampler`]: both are pure functions of `(epoch, step)` given
/// their construction seed, so re-running them here reproduces exactly
/// the minibatches the prepare loop will sample later — without
/// thrashing the prepare loop's single-slot epoch memo.
pub struct LookaheadPolicy {
    depth: usize,
    loader: DataLoader,
    sampler: NeighborSampler,
    steps_per_epoch: u64,
    total_steps: u64,
    /// First global step whose needs have not been planned yet.
    next_plan: u64,
    /// Per-halo-idx "needed through step f" marks, stored as `f + 1`
    /// (0 = never needed so far). A buffered row is evictable at step
    /// `s` iff `need_until <= s`.
    need_until: Vec<u64>,
    /// Stamp-dedup for the per-round want list (same mechanism as the
    /// prefetcher's `sampled_stamp`).
    want_stamp: Vec<u64>,
    stamp: u64,
    /// `(halo, due)` rows wanted but not yet installed: wants that found
    /// no room, plus still-needed occupants displaced by Belady
    /// eviction. Re-tried first every round while still needed: as their
    /// due approaches, earlier rows finish serving and free evictable
    /// slots, so a near-due want usually lands before the demand path
    /// would have missed on it.
    pending: Vec<(u32, u64)>,
    // Reusable planning scratch — allocation-free after warmup, like
    // `PrepareScratch`.
    mb: SampledMinibatch,
    samp: SamplerScratch,
    local_ids: Vec<u32>,
    halo_ids: Vec<u32>,
    /// `(due, halo)` wants for the current round, sorted earliest-first.
    want: Vec<(u64, u32)>,
    want_globals: Vec<NodeId>,
    evict_slots: Vec<u32>,
    /// `(need_until, slot)` Belady candidates, furthest-needed first.
    far_slots: Vec<(u64, u32)>,
}

impl LookaheadPolicy {
    /// Planner over this trainer's loader/sampler clones. `depth ≥ 1` is
    /// the planning horizon in minibatch steps past the one being
    /// prepared. `steps_per_epoch` must be the *engine's* value (the min
    /// across trainers), not this loader's `batches_per_epoch` — the
    /// global-step → (epoch, step) mapping has to replay the run loop's
    /// exactly.
    pub fn new(
        depth: usize,
        loader: DataLoader,
        sampler: NeighborSampler,
        steps_per_epoch: usize,
        epochs: usize,
        num_halo: usize,
    ) -> Self {
        assert!(depth >= 1, "lookahead depth must be >= 1");
        let steps_per_epoch = steps_per_epoch as u64;
        LookaheadPolicy {
            depth,
            loader,
            sampler,
            steps_per_epoch,
            total_steps: steps_per_epoch * epochs as u64,
            next_plan: 0,
            need_until: vec![0; num_halo],
            want_stamp: vec![0; num_halo],
            stamp: 0,
            pending: Vec::new(),
            mb: SampledMinibatch::default(),
            samp: SamplerScratch::default(),
            local_ids: Vec::new(),
            halo_ids: Vec::new(),
            want: Vec::new(),
            want_globals: Vec::new(),
            evict_slots: Vec::new(),
            far_slots: Vec::new(),
        }
    }

    /// Planning horizon in steps.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

impl PrefetchPolicy for LookaheadPolicy {
    fn name(&self) -> &'static str {
        "lookahead"
    }

    fn reactive(&self) -> bool {
        false
    }

    fn plan(&mut self, ctx: PlanCtx<'_>) -> f64 {
        if self.total_steps == 0 || self.steps_per_epoch == 0 {
            return 0.0;
        }
        let step = ctx.step;
        let horizon = (step + self.depth as u64).min(self.total_steps - 1);
        let num_local = ctx.part.num_local();

        // Collect this round's wants as (due, halo) pairs: carried-over
        // pending rows first (with their original dues, clamped up to
        // `step` once missed), then every not-yet-planned step up to the
        // horizon, re-sampling its minibatch to learn the exact halo ids
        // it will probe.
        self.stamp += 1;
        self.want.clear();
        for i in 0..self.pending.len() {
            let (h, due) = self.pending[i];
            if self.need_until[h as usize] > step
                && self.want_stamp[h as usize] != self.stamp
                && !ctx.buffer.contains(h)
            {
                self.want_stamp[h as usize] = self.stamp;
                self.want.push((due.max(step), h));
            }
        }
        for f in self.next_plan..=horizon {
            let epoch = f / self.steps_per_epoch;
            let s = (f % self.steps_per_epoch) as usize;
            let plan = self.loader.epoch(epoch);
            let seeds = &plan[s];
            self.sampler
                .sample_into(ctx.part, seeds, epoch, f, &mut self.mb, &mut self.samp);
            self.mb
                .split_local_halo_into(num_local, &mut self.local_ids, &mut self.halo_ids);
            for &lid in &self.halo_ids {
                let h = lid - num_local as u32;
                let due = f + 1;
                if self.need_until[h as usize] < due {
                    self.need_until[h as usize] = due;
                }
                if self.want_stamp[h as usize] != self.stamp && !ctx.buffer.contains(h) {
                    self.want_stamp[h as usize] = self.stamp;
                    self.want.push((f, h));
                }
            }
        }
        self.next_plan = horizon + 1;
        if self.want.is_empty() {
            self.pending.clear();
            return 0.0;
        }
        // Earliest-due first; halo id tiebreak keeps the order — and the
        // whole run — deterministic at any thread count.
        self.want.sort_unstable();

        // Room for installs, Belady-style: unused capacity first, then
        // occupants whose last planned use has passed, then — pairing
        // the latest wants against the furthest-needed occupants — an
        // occupant needed strictly *later* than the want being placed.
        // Such an occupant is re-pended with its own (later) due, so
        // displacement chains strictly increase in due and cannot churn;
        // never evicting an occupant needed sooner than the incoming
        // want is what keeps deep horizons from squatting on slots that
        // near-due rows need.
        let spare = ctx.buffer.capacity() - ctx.buffer.len();
        self.evict_slots.clear();
        if self.want.len() > spare {
            let needed = self.want.len() - spare;
            for slot in 0..ctx.buffer.len() as u32 {
                if self.evict_slots.len() == needed {
                    break;
                }
                let h = ctx.buffer.halo_at(slot);
                if self.need_until[h as usize] <= step {
                    self.evict_slots.push(slot);
                }
            }
            if self.evict_slots.len() < needed {
                self.far_slots.clear();
                for slot in 0..ctx.buffer.len() as u32 {
                    let h = ctx.buffer.halo_at(slot);
                    let need = self.need_until[h as usize];
                    if need > step {
                        self.far_slots.push((need, slot));
                    }
                }
                self.far_slots
                    .sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
                let mut fi = 0;
                let mut wi = spare + self.evict_slots.len();
                while wi < self.want.len() && fi < self.far_slots.len() {
                    let (need, slot) = self.far_slots[fi];
                    // `need` is "needed through step need-1": evict only
                    // if that is strictly after the want's due.
                    if need <= self.want[wi].0 + 1 {
                        break;
                    }
                    self.evict_slots.push(slot);
                    fi += 1;
                    wi += 1;
                }
            }
        }
        // Wants that found no room carry over to the next round's
        // pending list, falling back to a demand fetch only if their due
        // step arrives first.
        let k = self.want.len().min(spare + self.evict_slots.len());
        self.pending.clear();
        self.pending
            .extend(self.want[k..].iter().map(|&(due, h)| (h, due)));
        if k == 0 {
            return 0.0;
        }
        self.want.truncate(k);

        // One batched pull for the whole round, through the same
        // retry/degradation ladder as demand fetches.
        let halo_nodes = &ctx.part.halo_nodes;
        self.want_globals.clear();
        self.want_globals
            .extend(self.want.iter().map(|&(_, h)| halo_nodes[h as usize]));
        let req_id = mgnn_obs::events::request_id(
            mgnn_obs::events::ORIGIN_PLANNED,
            ctx.metrics.trace_rank(),
            step,
        );
        let (rows, outcome) = ctx.cluster.pull_grouped_tagged(&self.want_globals, req_id);
        let dim = ctx.cluster.dim();
        let t_fault = outcome.charge_s(ctx.cost, dim, ctx.cluster.retry_policy());
        let t_planned = ctx.cost.t_rpc(k, dim) + t_fault;
        ctx.metrics.record_planned(k as u64, dim);
        ctx.metrics.record_pull_outcome(&outcome);
        ctx.metrics.planned_span(step, 0.0, t_planned);
        if t_fault > 0.0 {
            ctx.metrics.fault_span_corr(step, 0.0, t_fault, req_id);
        }

        // Install the rows that survived the ladder. A failed row is
        // skipped — never zero-filled into the buffer — so the demand
        // path re-fetches it at its due step with full retries. An
        // evicted occupant that is still needed goes back on the pending
        // list with its own later due, to be re-pulled before then.
        let mut next_evict = 0usize;
        for (i, &(_, h)) in self.want.iter().enumerate() {
            if outcome.failed_rows.binary_search(&i).is_ok() {
                continue;
            }
            let feat = &rows[i * dim..(i + 1) * dim];
            if ctx.buffer.len() < ctx.buffer.capacity() {
                ctx.buffer.insert(h, feat);
            } else {
                let slot = self.evict_slots[next_evict];
                next_evict += 1;
                let old = ctx.buffer.replace(slot, h, feat);
                let need = self.need_until[old as usize];
                if need > step {
                    self.pending.push((old, need - 1));
                }
            }
        }
        t_planned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoreboard_policy_is_inert() {
        let p = ScoreboardPolicy;
        assert_eq!(p.name(), "scoreboard");
        assert!(p.reactive());
    }

    #[test]
    fn lookahead_policy_reports_shape() {
        let loader = DataLoader::new((0..32).collect(), 8, 7);
        let sampler = NeighborSampler::new(vec![2, 2], 9);
        let p = LookaheadPolicy::new(4, loader, sampler, 4, 2, 100);
        assert_eq!(p.name(), "lookahead");
        assert!(!p.reactive());
        assert_eq!(p.depth(), 4);
        assert_eq!(p.steps_per_epoch, 4);
        assert_eq!(p.total_steps, 8);
    }

    #[test]
    #[should_panic(expected = "depth must be >= 1")]
    fn zero_depth_rejected() {
        let loader = DataLoader::new((0..8).collect(), 8, 0);
        let sampler = NeighborSampler::new(vec![2], 0);
        let _ = LookaheadPolicy::new(0, loader, sampler, 1, 1, 10);
    }
}
