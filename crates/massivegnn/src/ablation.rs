//! Eviction-policy ablation: replay a real sampled halo-node stream
//! through alternative cache policies and compare hit rates against the
//! paper's score-based periodic evict-and-replace.
//!
//! The paper argues (§III, §IV-E) that classic per-access policies (LRU,
//! LFU) do per-minibatch bookkeeping on every touched node and evict
//! one-at-a-time on misses — fine for a CPU cache, but the prefetch buffer
//! wants *bulk periodic* maintenance so score updates hide under the miss
//! RPC and replacements batch into one fetch. This module makes that
//! trade-off measurable: all policies see the identical access stream
//! (hit/miss counting only, no feature payloads), so differences are
//! purely the replacement decisions.

use crate::hitrate::HitRateTracker;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which replacement policy a [`CacheSim`] uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CachePolicy {
    /// The paper's scheme: decay-based eviction scores, Δ-periodic bulk
    /// evict-and-replace by access scores.
    ScoreBased {
        /// Decay factor γ.
        gamma: f64,
        /// Eviction interval Δ.
        delta: usize,
    },
    /// Static buffer: initialize once, never evict
    /// ("prefetch without eviction").
    Static,
    /// Classic LRU: on miss, evict the least-recently-used entry.
    Lru,
    /// Classic LFU: on miss, evict the least-frequently-used entry.
    Lfu,
    /// Random replacement on miss.
    Random {
        /// RNG seed.
        seed: u64,
    },
}

impl CachePolicy {
    /// Short label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            CachePolicy::ScoreBased { .. } => "score-based",
            CachePolicy::Static => "static",
            CachePolicy::Lru => "lru",
            CachePolicy::Lfu => "lfu",
            CachePolicy::Random { .. } => "random",
        }
    }
}

/// A feature-less cache simulator over halo indices `0..num_halo`.
pub struct CacheSim {
    policy: CachePolicy,
    capacity: usize,
    num_halo: usize,
    /// halo -> present
    present: Vec<bool>,
    /// Occupants (unordered for score-based/static, recency-ordered for
    /// LRU where front = oldest).
    occupants: Vec<u32>,
    // Per-policy state.
    last_used: Vec<u64>, // LRU timestamps, per halo
    freq: Vec<u64>,      // LFU counts, per halo
    s_e: Vec<f64>,       // score-based: aligned with occupants
    s_a: Vec<f64>,       // score-based: per halo
    step: u64,
    rng: StdRng,
    /// Running hit/miss record.
    pub tracker: HitRateTracker,
    /// Total replacements performed (bulk or per-miss).
    pub replacements: u64,
    /// Number of maintenance events (bookkeeping rounds): per-minibatch
    /// for LRU/LFU, every Δ-th minibatch for score-based, 0 for static.
    pub maintenance_events: u64,
}

impl CacheSim {
    /// Create with an initial occupant set (e.g. top-degree halo indices).
    pub fn new(policy: CachePolicy, num_halo: usize, initial: &[u32]) -> Self {
        let capacity = initial.len();
        let mut present = vec![false; num_halo];
        for &h in initial {
            assert!((h as usize) < num_halo);
            assert!(!present[h as usize], "duplicate initial occupant");
            present[h as usize] = true;
        }
        let seed = match policy {
            CachePolicy::Random { seed } => seed,
            _ => 0,
        };
        CacheSim {
            policy,
            capacity,
            num_halo,
            present,
            occupants: initial.to_vec(),
            last_used: vec![0; num_halo],
            freq: vec![0; num_halo],
            s_e: vec![1.0; capacity],
            s_a: vec![0.0; num_halo],
            step: 0,
            rng: StdRng::seed_from_u64(seed),
            tracker: HitRateTracker::new(),
            replacements: 0,
            maintenance_events: 0,
        }
    }

    /// The policy driving this simulator.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Current occupant count (constant = capacity).
    pub fn len(&self) -> usize {
        self.occupants.len()
    }

    /// Whether the cache has no occupants.
    pub fn is_empty(&self) -> bool {
        self.occupants.is_empty()
    }

    /// Whether halo index `h` is cached.
    pub fn contains(&self, h: u32) -> bool {
        self.present[h as usize]
    }

    /// Process one minibatch's sampled halo set (deduplicated ids).
    pub fn access(&mut self, sampled: &[u32]) {
        self.step += 1;
        let mut hits = 0u64;
        let mut misses_list: Vec<u32> = Vec::new();
        for &h in sampled {
            if self.present[h as usize] {
                hits += 1;
                self.last_used[h as usize] = self.step;
                self.freq[h as usize] += 1;
            } else {
                misses_list.push(h);
                self.freq[h as usize] += 1;
            }
        }
        self.tracker.record(hits, misses_list.len() as u64);
        if self.capacity == 0 {
            return;
        }

        match self.policy {
            CachePolicy::Static => {}
            CachePolicy::Lru => {
                self.maintenance_events += 1;
                for &h in &misses_list {
                    let victim_pos = self.victim_min_by(|s, h| s.last_used[h as usize]);
                    self.swap_in(victim_pos, h);
                    self.last_used[h as usize] = self.step;
                }
            }
            CachePolicy::Lfu => {
                self.maintenance_events += 1;
                for &h in &misses_list {
                    let victim_pos = self.victim_min_by(|s, h| s.freq[h as usize]);
                    // Only replace if the newcomer is at least as frequent
                    // (classic LFU admission).
                    let victim = self.occupants[victim_pos];
                    if self.freq[h as usize] >= self.freq[victim as usize] {
                        self.swap_in(victim_pos, h);
                    }
                }
            }
            CachePolicy::Random { .. } => {
                self.maintenance_events += 1;
                for &h in &misses_list {
                    let victim_pos = self.rng.gen_range(0..self.occupants.len());
                    self.swap_in(victim_pos, h);
                }
            }
            CachePolicy::ScoreBased { gamma, delta } => {
                // Decay unsampled occupants (used ones reset to 1),
                // bump S_A of misses.
                for i in 0..self.occupants.len() {
                    let h = self.occupants[i];
                    if self.last_used[h as usize] != self.step {
                        self.s_e[i] *= gamma;
                    } else {
                        self.s_e[i] = 1.0;
                    }
                }
                for &h in &misses_list {
                    self.s_a[h as usize] += 1.0;
                }
                if delta > 0 && self.step.is_multiple_of(delta as u64) {
                    self.maintenance_events += 1;
                    let alpha = gamma.powi(delta as i32);
                    // Eviction candidates at/below threshold (Eq. 1 is
                    // inclusive — see scoreboard::meets_eviction_threshold),
                    // ascending score.
                    let mut evict: Vec<usize> = (0..self.occupants.len())
                        .filter(|&i| {
                            crate::scoreboard::meets_eviction_threshold(self.s_e[i], alpha)
                                && self.last_used[self.occupants[i] as usize] != self.step
                        })
                        .collect();
                    // `total_cmp` + index tie-break: panic-proof under
                    // NaN and fully deterministic on equal scores.
                    evict.sort_unstable_by(|&a, &b| {
                        self.s_e[a].total_cmp(&self.s_e[b]).then(a.cmp(&b))
                    });
                    // Replacement candidates: uncached with S_A > 0, by S_A.
                    let mut cands: Vec<u32> = (0..self.num_halo as u32)
                        .filter(|&h| !self.present[h as usize] && self.s_a[h as usize] > 0.0)
                        .collect();
                    cands.sort_unstable_by(|&a, &b| {
                        self.s_a[b as usize]
                            .total_cmp(&self.s_a[a as usize])
                            .then(a.cmp(&b))
                    });
                    let k = evict.len().min(cands.len());
                    for i in 0..k {
                        let pos = evict[i];
                        let new_h = cands[i];
                        let old = self.occupants[pos];
                        // Score swap, as in the paper.
                        self.s_a[old as usize] = self.s_e[pos];
                        self.s_e[pos] = self.s_a[new_h as usize];
                        self.s_a[new_h as usize] = -1.0;
                        self.swap_in(pos, new_h);
                    }
                }
            }
        }
    }

    fn victim_min_by(&self, key: impl Fn(&Self, u32) -> u64) -> usize {
        let mut best = 0usize;
        let mut best_key = u64::MAX;
        for (i, &h) in self.occupants.iter().enumerate() {
            let k = key(self, h);
            if k < best_key {
                best_key = k;
                best = i;
            }
        }
        best
    }

    fn swap_in(&mut self, pos: usize, new_h: u32) {
        let old = self.occupants[pos];
        debug_assert!(self.present[old as usize] && !self.present[new_h as usize]);
        self.present[old as usize] = false;
        self.present[new_h as usize] = true;
        self.occupants[pos] = new_h;
        self.replacements += 1;
    }
}

/// Replay the same access stream through several policies. Each element of
/// `stream` is one minibatch's deduplicated sampled halo set; `initial` is
/// the shared starting occupancy (top-degree, as the paper initializes).
pub fn replay_policies(
    policies: &[CachePolicy],
    num_halo: usize,
    initial: &[u32],
    stream: &[Vec<u32>],
) -> Vec<CacheSim> {
    policies
        .iter()
        .map(|&p| {
            let mut sim = CacheSim::new(p, num_halo, initial);
            for mb in stream {
                sim.access(mb);
            }
            sim
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic skewed stream: node h is sampled with probability
    /// proportional to a power-law over a shuffled popularity ranking, so
    /// the popular set is stable but not identical to the initial set.
    fn skewed_stream(
        num_halo: usize,
        minibatches: usize,
        per_mb: usize,
        seed: u64,
    ) -> Vec<Vec<u32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        // popularity rank: permutation of halo ids
        let mut rank: Vec<u32> = (0..num_halo as u32).collect();
        use rand::seq::SliceRandom;
        rank.shuffle(&mut rng);
        (0..minibatches)
            .map(|_| {
                let mut mb: Vec<u32> = Vec::with_capacity(per_mb);
                while mb.len() < per_mb {
                    // Zipf-ish: index ~ floor(u^3 * n) concentrates mass on
                    // low ranks.
                    let u: f64 = rng.gen();
                    let idx = ((u * u * u) * num_halo as f64) as usize;
                    let h = rank[idx.min(num_halo - 1)];
                    if !mb.contains(&h) {
                        mb.push(h);
                    }
                }
                mb
            })
            .collect()
    }

    fn initial_random(num_halo: usize, capacity: usize) -> Vec<u32> {
        // A deliberately bad initial set (the tail ids) so adaptive
        // policies have room to improve.
        ((num_halo - capacity) as u32..num_halo as u32).collect()
    }

    #[test]
    fn capacity_constant_for_all_policies() {
        let stream = skewed_stream(500, 60, 40, 1);
        let initial = initial_random(500, 100);
        let policies = [
            CachePolicy::ScoreBased {
                gamma: 0.95,
                delta: 8,
            },
            CachePolicy::Static,
            CachePolicy::Lru,
            CachePolicy::Lfu,
            CachePolicy::Random { seed: 3 },
        ];
        for sim in replay_policies(&policies, 500, &initial, &stream) {
            assert_eq!(sim.len(), 100, "{}", sim.policy.name());
            // present[] agrees with occupants
            let count = sim.present.iter().filter(|&&p| p).count();
            assert_eq!(count, 100);
        }
    }

    #[test]
    fn adaptive_policies_beat_static_on_skewed_stream() {
        let stream = skewed_stream(800, 150, 50, 7);
        let initial = initial_random(800, 150);
        let policies = [
            CachePolicy::ScoreBased {
                gamma: 0.95,
                delta: 8,
            },
            CachePolicy::Static,
            CachePolicy::Lru,
            CachePolicy::Lfu,
        ];
        let sims = replay_policies(&policies, 800, &initial, &stream);
        let hr: Vec<f64> = sims.iter().map(|s| s.tracker.cumulative()).collect();
        let (score, stat, lru, lfu) = (hr[0], hr[1], hr[2], hr[3]);
        assert!(score > stat + 0.05, "score {score} vs static {stat}");
        assert!(lru > stat, "lru {lru} vs static {stat}");
        assert!(lfu > stat, "lfu {lfu} vs static {stat}");
    }

    #[test]
    fn score_based_does_fewer_maintenance_rounds_than_lru() {
        let stream = skewed_stream(500, 64, 40, 5);
        let initial = initial_random(500, 100);
        let sims = replay_policies(
            &[
                CachePolicy::ScoreBased {
                    gamma: 0.95,
                    delta: 16,
                },
                CachePolicy::Lru,
            ],
            500,
            &initial,
            &stream,
        );
        assert!(
            sims[0].maintenance_events < sims[1].maintenance_events,
            "score {} vs lru {}",
            sims[0].maintenance_events,
            sims[1].maintenance_events
        );
        // And the bulk policy stays within striking distance of LRU's
        // hit rate despite 16× fewer maintenance rounds.
        let score = sims[0].tracker.cumulative();
        let lru = sims[1].tracker.cumulative();
        assert!(score > lru * 0.6, "score {score} vs lru {lru}");
    }

    #[test]
    fn static_never_replaces() {
        let stream = skewed_stream(300, 30, 20, 2);
        let initial = initial_random(300, 50);
        let sims = replay_policies(&[CachePolicy::Static], 300, &initial, &stream);
        assert_eq!(sims[0].replacements, 0);
        assert_eq!(sims[0].maintenance_events, 0);
    }

    #[test]
    fn random_policy_reproducible() {
        let stream = skewed_stream(300, 30, 20, 2);
        let initial = initial_random(300, 50);
        let a = replay_policies(&[CachePolicy::Random { seed: 9 }], 300, &initial, &stream);
        let b = replay_policies(&[CachePolicy::Random { seed: 9 }], 300, &initial, &stream);
        assert_eq!(a[0].tracker.cumulative(), b[0].tracker.cumulative());
        assert_eq!(a[0].replacements, b[0].replacements);
    }

    #[test]
    fn zero_capacity_all_misses() {
        let stream = skewed_stream(100, 10, 5, 1);
        let mut sim = CacheSim::new(CachePolicy::Lru, 100, &[]);
        for mb in &stream {
            sim.access(mb);
        }
        assert_eq!(sim.tracker.cumulative(), 0.0);
    }
}
