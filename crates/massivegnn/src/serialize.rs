//! Serde lowering for the engine's report types.
//!
//! Gives `RunReport` and everything nested in it a machine-readable JSON
//! form (the `repro --json-out` artifact). All impls are hand-written
//! against the serde shim's [`Value`] tree; field names are the metric
//! names documented in DESIGN.md and stay stable across versions.

use crate::engine::{Breakdown, RunReport, TrainerReport};
use crate::hitrate::HitRateTracker;
use crate::init::InitReport;
use serde::{Serialize, Value};

impl Serialize for Breakdown {
    fn to_value(&self) -> Value {
        Value::obj([
            ("sampling_s", self.sampling_s.to_value()),
            ("lookup_s", self.lookup_s.to_value()),
            ("scoring_s", self.scoring_s.to_value()),
            ("evict_s", self.evict_s.to_value()),
            ("rpc_s", self.rpc_s.to_value()),
            ("copy_s", self.copy_s.to_value()),
            ("train_s", self.train_s.to_value()),
            ("planned_s", self.planned_s.to_value()),
            ("total_serial_s", self.total_serial().to_value()),
            (
                "communication_stall_s",
                self.communication_stall_s().to_value(),
            ),
        ])
    }
}

impl Serialize for InitReport {
    fn to_value(&self) -> Value {
        Value::obj([
            ("selection_s", self.selection_s.to_value()),
            ("fetch_s", self.fetch_s.to_value()),
            ("populate_s", self.populate_s.to_value()),
            ("scoreboard_s", self.scoreboard_s.to_value()),
            ("total_s", self.total_s().to_value()),
            ("buffer_nodes", self.buffer_nodes.to_value()),
            ("persistent_bytes", self.persistent_bytes.to_value()),
        ])
    }
}

impl Serialize for HitRateTracker {
    fn to_value(&self) -> Value {
        Value::obj([
            ("minibatches", self.len().to_value()),
            ("cumulative", self.cumulative().to_value()),
            (
                "per_minibatch",
                Value::arr((0..self.len()).map(|i| self.at(i).to_value())),
            ),
        ])
    }
}

impl Serialize for TrainerReport {
    fn to_value(&self) -> Value {
        Value::obj([
            ("part_id", self.part_id.to_value()),
            ("trainer_id", self.trainer_id.to_value()),
            ("sim_time_s", self.sim_time_s.to_value()),
            ("stall_s", self.stall_s.to_value()),
            ("overlap_efficiency", self.overlap_efficiency.to_value()),
            ("metrics", self.metrics.to_value()),
            ("hits", self.hits.to_value()),
            ("breakdown", self.breakdown.to_value()),
            ("init", self.init.to_value()),
            ("num_halo", self.num_halo.to_value()),
            ("minibatches", self.minibatches.to_value()),
            ("remote_sampled_frac", self.remote_sampled_frac.to_value()),
            ("peak_bytes", self.peak_bytes.to_value()),
        ])
    }
}

impl Serialize for RunReport {
    fn to_value(&self) -> Value {
        Value::obj([
            ("mode_label", self.mode_label.to_value()),
            ("world", self.world.to_value()),
            ("steps_per_epoch", self.steps_per_epoch.to_value()),
            ("makespan_s", self.makespan_s.to_value()),
            ("hit_rate", self.hit_rate().to_value()),
            (
                "mean_overlap_efficiency",
                self.mean_overlap_efficiency().to_value(),
            ),
            ("total_init_s", self.total_init_s().to_value()),
            ("load_imbalance", self.load_imbalance().to_value()),
            ("aggregate_metrics", self.aggregate_metrics().to_value()),
            ("epoch_loss", self.epoch_loss.to_value()),
            ("epoch_acc", self.epoch_acc.to_value()),
            ("trainers", self.trainers.to_value()),
            ("traces", self.traces.to_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use mgnn_graph::{DatasetKind, Scale};

    #[test]
    fn run_report_round_trips_through_json() {
        let report = Engine::build(EngineConfig {
            dataset: DatasetKind::Products,
            scale: Scale::Unit,
            num_parts: 2,
            trainers_per_part: 1,
            epochs: 1,
            batch_size: 64,
            ..Default::default()
        })
        .run();
        let text = serde_json::to_string_pretty(&report.to_value());
        let v = serde_json::from_str(&text).expect("report JSON must parse");
        assert_eq!(v.get("world").unwrap().as_u64(), Some(report.world as u64));
        assert_eq!(
            v.get("makespan_s").unwrap().as_f64(),
            Some(report.makespan_s),
            "f64 fields survive the round trip exactly"
        );
        let trainers = v.get("trainers").unwrap().as_array().unwrap();
        assert_eq!(trainers.len(), report.world);
        let b = trainers[0].get("breakdown").unwrap();
        assert_eq!(
            b.get("train_s").unwrap().as_f64(),
            Some(report.trainers[0].breakdown.train_s)
        );
        assert_eq!(
            b.get("communication_stall_s").unwrap().as_f64(),
            Some(report.trainers[0].breakdown.communication_stall_s())
        );
        // No tracing requested: the traces array is present but empty.
        assert_eq!(v.get("traces").unwrap().as_array().unwrap().len(), 0);
    }
}
