//! # massivegnn — continuous prefetch & eviction for distributed GNN training
//!
//! Rust reproduction of *MassiveGNN: Efficient Training via Prefetching for
//! Massively Connected Distributed Graphs* (Sarkar, Ghosh, Tallent,
//! Jannesari — IEEE CLUSTER 2024).
//!
//! Distributed minibatch GNN training fetches the features of remotely
//! owned ("halo") nodes over RPC every minibatch, putting the network on
//! the critical path. MassiveGNN adds, per trainer:
//!
//! * a [`PrefetchBuffer`](buffer::PrefetchBuffer) of halo-node features,
//!   initialized with the highest-degree `f_p^h`% of halo nodes
//!   ([`init`], Algorithm 1 `INITIALIZE_PREFETCHER`);
//! * dual [scoreboards](scoreboard): an eviction score `S_E` decayed by
//!   `γ` whenever a buffered node goes unsampled, and an access score
//!   `S_A` incremented on every buffer miss, in either the dense `O(|V|)`
//!   layout or the memory-efficient `O(|V_p^h|)` binary-search layout
//!   (§IV-B);
//! * a Δ-periodic [evict-and-replace](prefetcher) pass using the Eq. 1
//!   threshold `α = γ^Δ` with score *swapping* (Algorithm 2);
//! * [asynchronous next-minibatch preparation](pipeline) overlapped with
//!   DDP training on the current minibatch (Algorithm 1 lines 5–9).
//!
//! The [`engine`] runs the full distributed training loop in both
//! baseline-DistDGL and prefetch modes over the simulated cluster of
//! [`mgnn_net`], producing exact hit/miss/byte counts and modeled times;
//! [`perfmodel`] carries the paper's analytical Eqs. 2–7 and
//! [`tradeoff`] the Fig. 5 (γ, Δ) quadrants.
//!
//! # Example
//!
//! ```
//! use massivegnn::{Engine, EngineConfig, Mode, PrefetchConfig};
//! use mgnn_graph::{DatasetKind, Scale};
//!
//! let mut cfg = EngineConfig {
//!     dataset: DatasetKind::Products,
//!     scale: Scale::Unit,
//!     num_parts: 2,
//!     trainers_per_part: 2,
//!     epochs: 1,
//!     batch_size: 64,
//!     ..Default::default()
//! };
//! let baseline = Engine::build(cfg.clone()).run();
//!
//! cfg.mode = Mode::Prefetch(PrefetchConfig {
//!     f_h: 0.25,
//!     gamma: 0.995,
//!     delta: 16,
//!     ..Default::default()
//! });
//! let prefetch = Engine::build(cfg).run();
//!
//! assert!(prefetch.makespan_s < baseline.makespan_s);
//! assert!(prefetch.hit_rate() > 0.0);
//! ```

pub mod ablation;
#[cfg(feature = "alloc-count")]
pub mod alloc;
pub mod buffer;
pub mod config;
pub mod engine;
pub mod hitrate;
pub mod init;
pub mod perfmodel;
pub mod pipeline;
pub mod policy;
pub mod prefetcher;
pub mod scoreboard;
pub mod serialize;
pub mod tradeoff;

pub use buffer::PrefetchBuffer;
pub use config::{PrefetchConfig, PrefetchPolicyKind, ScoreLayout};
pub use engine::{Engine, EngineConfig, Mode, RunReport};
pub use mgnn_net::{FaultProfile, RetryPolicy};
pub use policy::{LookaheadPolicy, PlanCtx, PrefetchPolicy, ScoreboardPolicy};
pub use prefetcher::{Prefetcher, PrepareScratch, PreparedBatch};

/// With `alloc-count` on, the whole process allocates through the
/// counting allocator, so the steady-state proof measures every code
/// path — including shims and std collections.
#[cfg(feature = "alloc-count")]
#[global_allocator]
static COUNTING_ALLOC: alloc::CountingAlloc = alloc::CountingAlloc;
