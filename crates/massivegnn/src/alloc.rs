//! Counting global allocator (feature `alloc-count`): proves the
//! zero-allocation steady state instead of asserting it in prose.
//!
//! When the feature is on, every heap allocation in the process bumps a
//! thread-local counter and a global live/peak byte gauge (an RSS proxy
//! that ignores allocator slack). The engine brackets each training step
//! with [`thread_allocs`]/[`thread_excluded`] deltas: allocations made
//! under an [`ExcludeGuard`] — model math inside `forward_backward` and
//! inline minibatch preparation, which are *workload*, not bookkeeping —
//! still count toward the thread total but are subtracted out, so the
//! "hot" figure isolates the trainer loop proper (queue pops, clock
//! advances, accounting, DDP exchange, optimizer step).
//!
//! Steps of epoch ≥ 1 (after the warmup epoch has stretched every pooled
//! buffer to its high-water mark) record their hot count via
//! [`record_hot_step`] into thread-local accumulators; the threaded
//! engine flushes each worker's accumulator into the process-wide
//! [`global_hot`] totals at the end of the run. Nothing here touches
//! `RunReport` — the bitwise-identity oracles are unaffected by whether
//! the feature is compiled in.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Process-wide live heap bytes (allocated minus deallocated).
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
/// High-water mark of [`LIVE_BYTES`] — the RSS proxy.
static PEAK_BYTES: AtomicI64 = AtomicI64::new(0);
/// Hot allocations flushed from finished runs/workers.
static GLOBAL_HOT_ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Hot steps flushed from finished runs/workers.
static GLOBAL_HOT_STEPS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // `const` init keeps first access allocation-free — a lazily
    // initialized TLS slot would recurse into the allocator.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static THREAD_EXCLUDED: Cell<u64> = const { Cell::new(0) };
    static EXCLUDE_DEPTH: Cell<u32> = const { Cell::new(0) };
    static HOT_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static HOT_STEPS: Cell<u64> = const { Cell::new(0) };
}

/// A `System`-backed allocator that counts. `realloc`/`alloc_zeroed`
/// use the `GlobalAlloc` defaults, which route through `alloc`/`dealloc`,
/// so nothing escapes the count.
pub struct CountingAlloc;

// SAFETY: defers all actual allocation to `System`; the bookkeeping is
// atomics and Cell-based TLS without drop glue (safe during thread
// teardown).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
            EXCLUDE_DEPTH.with(|d| {
                if d.get() > 0 {
                    THREAD_EXCLUDED.with(|c| c.set(c.get() + 1));
                }
            });
            let live = LIVE_BYTES.fetch_add(layout.size() as i64, Ordering::Relaxed)
                + layout.size() as i64;
            PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        System.dealloc(ptr, layout);
    }
}

/// Total allocations made by the calling thread.
pub fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

/// Allocations the calling thread made under an [`ExcludeGuard`].
pub fn thread_excluded() -> u64 {
    THREAD_EXCLUDED.with(|c| c.get())
}

/// Live heap bytes right now.
pub fn live_bytes() -> i64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of live heap bytes since start (or [`reset_peak`]).
pub fn peak_bytes() -> i64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Restart the peak gauge from the current live level, so a measurement
/// window reports its own high-water mark rather than initialization's.
pub fn reset_peak() {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Marks a region whose allocations are workload, not trainer-loop
/// bookkeeping (model math, inline preparation). Nestable.
pub struct ExcludeGuard(());

impl ExcludeGuard {
    /// Enter an excluded region until the guard drops.
    pub fn new() -> Self {
        EXCLUDE_DEPTH.with(|d| d.set(d.get() + 1));
        ExcludeGuard(())
    }
}

impl Default for ExcludeGuard {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ExcludeGuard {
    fn drop(&mut self) {
        EXCLUDE_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// Record one steady-state step's hot (non-excluded) allocation count
/// into the calling thread's accumulator.
pub fn record_hot_step(allocs: u64) {
    HOT_ALLOCS.with(|c| c.set(c.get() + allocs));
    HOT_STEPS.with(|c| c.set(c.get() + 1));
}

/// Read and reset the calling thread's hot accumulators:
/// `(hot_allocations, steps_recorded)`.
pub fn take_hot() -> (u64, u64) {
    let a = HOT_ALLOCS.with(|c| c.replace(0));
    let s = HOT_STEPS.with(|c| c.replace(0));
    (a, s)
}

/// Flush the calling thread's hot accumulators into the process-wide
/// totals (the threaded engine calls this as each worker finishes).
pub fn flush_hot() {
    let (a, s) = take_hot();
    GLOBAL_HOT_ALLOCS.fetch_add(a, Ordering::Relaxed);
    GLOBAL_HOT_STEPS.fetch_add(s, Ordering::Relaxed);
}

/// Process-wide flushed hot totals: `(hot_allocations, steps_recorded)`.
pub fn global_hot() -> (u64, u64) {
    (
        GLOBAL_HOT_ALLOCS.load(Ordering::Relaxed),
        GLOBAL_HOT_STEPS.load(Ordering::Relaxed),
    )
}

/// Zero the process-wide hot totals before a measurement window.
pub fn reset_global_hot() {
    GLOBAL_HOT_ALLOCS.store(0, Ordering::Relaxed);
    GLOBAL_HOT_STEPS.store(0, Ordering::Relaxed);
}
