//! The per-trainer prefetch buffer (`BUF_p^i` of the paper).
//!
//! A fixed-capacity feature cache over the partition's halo nodes. Nodes
//! are keyed by *halo index* (position in the partition's sorted
//! `halo_nodes` list), giving O(1) membership via a direct-mapped slot
//! table — the Rust equivalent of the paper's NUMBA-parallel lookup.
//! Capacity never changes after construction: every eviction is paired
//! with a replacement (§IV-B "the number of nodes chosen for replacement
//! is exactly equal to the number of nodes evicted").

/// Sentinel for "not buffered".
const NONE: u32 = u32::MAX;

/// Fixed-capacity halo-feature cache.
#[derive(Debug, Clone)]
pub struct PrefetchBuffer {
    dim: usize,
    /// halo index -> slot (NONE when absent).
    slot_of_halo: Vec<u32>,
    /// slot -> halo index.
    halo_of_slot: Vec<u32>,
    /// Row-major feature storage, `capacity × dim`.
    features: Vec<f32>,
    len: usize,
}

impl PrefetchBuffer {
    /// An empty buffer for a partition with `num_halo` halo nodes and the
    /// given fixed `capacity` (`≤ num_halo`).
    pub fn new(num_halo: usize, capacity: usize, dim: usize) -> Self {
        assert!(
            capacity <= num_halo,
            "capacity {capacity} > halo {num_halo}"
        );
        PrefetchBuffer {
            dim,
            slot_of_halo: vec![NONE; num_halo],
            halo_of_slot: vec![NONE; capacity],
            features: vec![0.0; capacity * dim],
            len: 0,
        }
    }

    /// Fixed capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.halo_of_slot.len()
    }

    /// Number of occupied slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slot is occupied.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Feature dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Slot of halo index `h`, if buffered.
    #[inline]
    pub fn slot_of(&self, h: u32) -> Option<u32> {
        let s = self.slot_of_halo[h as usize];
        if s == NONE {
            None
        } else {
            Some(s)
        }
    }

    /// Whether halo index `h` is buffered (a lookup "hit").
    #[inline]
    pub fn contains(&self, h: u32) -> bool {
        self.slot_of_halo[h as usize] != NONE
    }

    /// Halo index stored in `slot` (panics on empty slot).
    #[inline]
    pub fn halo_at(&self, slot: u32) -> u32 {
        let h = self.halo_of_slot[slot as usize];
        assert_ne!(h, NONE, "slot {slot} empty");
        h
    }

    /// Feature row stored in `slot`.
    #[inline]
    pub fn row(&self, slot: u32) -> &[f32] {
        let s = slot as usize;
        &self.features[s * self.dim..(s + 1) * self.dim]
    }

    /// Insert halo node `h` with `feat` into the next free slot; returns
    /// the slot. Panics when full or when `h` is already present.
    pub fn insert(&mut self, h: u32, feat: &[f32]) -> u32 {
        assert!(self.len < self.capacity(), "buffer full");
        assert!(!self.contains(h), "halo {h} already buffered");
        assert_eq!(feat.len(), self.dim);
        let slot = self.len as u32;
        self.slot_of_halo[h as usize] = slot;
        self.halo_of_slot[slot as usize] = h;
        self.features[self.len * self.dim..(self.len + 1) * self.dim].copy_from_slice(feat);
        self.len += 1;
        slot
    }

    /// Replace the occupant of `slot` (evicting halo `old`) with halo
    /// `new_h` and its features — the paired evict-and-replace of
    /// Algorithm 2 lines 16–17. Returns the evicted halo index.
    pub fn replace(&mut self, slot: u32, new_h: u32, feat: &[f32]) -> u32 {
        assert_eq!(feat.len(), self.dim);
        assert!(!self.contains(new_h), "halo {new_h} already buffered");
        let old = self.halo_at(slot);
        self.slot_of_halo[old as usize] = NONE;
        self.slot_of_halo[new_h as usize] = slot;
        self.halo_of_slot[slot as usize] = new_h;
        let s = slot as usize;
        self.features[s * self.dim..(s + 1) * self.dim].copy_from_slice(feat);
        old
    }

    /// Partition a sampled halo-index batch into (hits, misses) —
    /// Algorithm 2 lines 4–5. Large batches run on the rayon pool (the
    /// paper parallelizes this lookup with NUMBA to escape the Python
    /// GIL; here the direct-mapped table makes each probe O(1) and the
    /// split embarrassingly parallel). The shim's `partition_map`
    /// combines per-chunk results in chunk order, so both output
    /// vectors preserve input order exactly like the serial loop, at
    /// any thread count.
    pub fn probe_batch(&self, sampled: &[u32]) -> (Vec<u32>, Vec<u32>) {
        let mut hits = Vec::new();
        let mut misses = Vec::new();
        self.probe_batch_into(sampled, &mut hits, &mut misses);
        (hits, misses)
    }

    /// [`probe_batch`](Self::probe_batch) into caller-owned buffers
    /// (cleared first), so the steady-state prepare loop reuses the same
    /// two vectors every step. Output order is identical on both size
    /// paths — `partition_map` combines per-chunk results in chunk order.
    pub fn probe_batch_into(&self, sampled: &[u32], hits: &mut Vec<u32>, misses: &mut Vec<u32>) {
        const PAR_THRESHOLD: usize = 4096;
        hits.clear();
        misses.clear();
        if sampled.len() < PAR_THRESHOLD {
            for &h in sampled {
                if self.contains(h) {
                    hits.push(h);
                } else {
                    misses.push(h);
                }
            }
        } else {
            use rayon::prelude::*;
            let (h, m): (Vec<u32>, Vec<u32>) = sampled.par_iter().partition_map(|&h| {
                if self.contains(h) {
                    rayon::iter::Either::Left(h)
                } else {
                    rayon::iter::Either::Right(h)
                }
            });
            hits.extend_from_slice(&h);
            misses.extend_from_slice(&m);
        }
    }

    /// Iterate over occupied `(slot, halo_index)` pairs.
    pub fn occupied(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.halo_of_slot
            .iter()
            .enumerate()
            .take(self.len)
            .map(|(s, &h)| (s as u32, h))
    }

    /// Heap bytes of the buffer (features + both index maps) — Fig. 14's
    /// dominant initialization allocation.
    pub fn heap_bytes(&self) -> usize {
        self.features.len() * 4 + self.slot_of_halo.len() * 4 + self.halo_of_slot.len() * 4
    }

    /// Internal consistency check for tests: maps are mutually inverse and
    /// occupancy is a prefix.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen = 0usize;
        for (s, &h) in self.halo_of_slot.iter().enumerate() {
            if h == NONE {
                continue;
            }
            seen += 1;
            if self.slot_of_halo[h as usize] != s as u32 {
                return Err(format!("slot {s} / halo {h} maps disagree"));
            }
        }
        if seen != self.len {
            return Err(format!("len {} but {} occupied", self.len, seen));
        }
        for (h, &s) in self.slot_of_halo.iter().enumerate() {
            if s != NONE && self.halo_of_slot[s as usize] != h as u32 {
                return Err(format!("halo {h} / slot {s} maps disagree"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut b = PrefetchBuffer::new(10, 3, 2);
        let s = b.insert(7, &[1.0, 2.0]);
        assert_eq!(b.slot_of(7), Some(s));
        assert!(b.contains(7));
        assert!(!b.contains(3));
        assert_eq!(b.row(s), &[1.0, 2.0]);
        assert_eq!(b.halo_at(s), 7);
        assert_eq!(b.len(), 1);
        b.check_invariants().unwrap();
    }

    #[test]
    fn replace_swaps_occupant() {
        let mut b = PrefetchBuffer::new(10, 2, 2);
        let s = b.insert(1, &[1.0, 1.0]);
        b.insert(2, &[2.0, 2.0]);
        let old = b.replace(s, 5, &[5.0, 5.0]);
        assert_eq!(old, 1);
        assert!(!b.contains(1));
        assert!(b.contains(5));
        assert_eq!(b.row(s), &[5.0, 5.0]);
        assert_eq!(b.len(), 2, "capacity constant under replace");
        b.check_invariants().unwrap();
    }

    #[test]
    #[should_panic]
    fn insert_when_full_panics() {
        let mut b = PrefetchBuffer::new(5, 1, 1);
        b.insert(0, &[0.0]);
        b.insert(1, &[1.0]);
    }

    #[test]
    #[should_panic]
    fn double_insert_panics() {
        let mut b = PrefetchBuffer::new(5, 2, 1);
        b.insert(0, &[0.0]);
        b.insert(0, &[0.0]);
    }

    #[test]
    fn occupied_iterates_in_slot_order() {
        let mut b = PrefetchBuffer::new(10, 3, 1);
        b.insert(9, &[9.0]);
        b.insert(4, &[4.0]);
        let pairs: Vec<_> = b.occupied().collect();
        assert_eq!(pairs, vec![(0, 9), (1, 4)]);
    }

    #[test]
    fn zero_capacity_ok() {
        let b = PrefetchBuffer::new(5, 0, 4);
        assert_eq!(b.capacity(), 0);
        assert!(b.is_empty());
        b.check_invariants().unwrap();
    }

    #[test]
    fn probe_batch_splits_correctly() {
        let mut b = PrefetchBuffer::new(100, 10, 1);
        for h in 0..10u32 {
            b.insert(h * 3, &[h as f32]);
        }
        let sampled: Vec<u32> = (0..60).collect();
        let (hits, misses) = b.probe_batch(&sampled);
        assert_eq!(hits.len() + misses.len(), 60);
        for &h in &hits {
            assert!(b.contains(h));
        }
        for &m in &misses {
            assert!(!b.contains(m));
        }
        // Serial and would-be-parallel agree on membership (order within
        // each class is also preserved in serial mode).
        assert_eq!(hits, vec![0, 3, 6, 9, 12, 15, 18, 21, 24, 27]);
    }

    #[test]
    fn probe_batch_large_parallel_path() {
        let mut b = PrefetchBuffer::new(100_000, 1000, 1);
        for h in 0..1000u32 {
            b.insert(h * 7, &[0.0]);
        }
        let sampled: Vec<u32> = (0..50_000).collect();
        let (hits, misses) = b.probe_batch(&sampled);
        assert_eq!(hits.len() + misses.len(), 50_000);
        let expected_hits = sampled.iter().filter(|&&h| b.contains(h)).count();
        assert_eq!(hits.len(), expected_hits);
    }

    #[test]
    fn heap_bytes_counts_feature_storage() {
        let b = PrefetchBuffer::new(100, 50, 8);
        assert!(b.heap_bytes() >= 50 * 8 * 4);
    }
}
