//! `PREFETCH_WITH_EVICTION` — Algorithm 2 of the paper.
//!
//! Per minibatch the prefetcher: samples the neighborhood, splits it into
//! local (`V_p^{l|s}`) and halo (`V_p^{h|s}`) nodes, probes the buffer for
//! hits/misses, decays `S_E` of unsampled buffered nodes, increments `S_A`
//! of missed nodes (overlapped with the miss RPC in spirit — here the
//! scoring cost is charged to the model the same way), fetches miss
//! features over RPC, and on every Δ-th step runs `EVICT_AND_REPLACE`:
//! buffered slots with `S_E < α` are evicted and replaced by the
//! equally-many highest-`S_A` missing halo nodes, swapping scores.
//!
//! Under a fault profile the fetch can partially fail even after the
//! cluster's retry ladder. Preparation stays infallible through graceful
//! degradation: a failed *replacement* fetch is cancelled (the stale
//! resident keeps serving and the candidate's `S_A` keeps accumulating),
//! a failed *miss* fetch serves a zero row, and both are reported in
//! [`PrepareCounts`]/[`CommMetrics`]. Fault time (injected delays,
//! retries, backoff) is charged to `t_rpc`, so Eq. 3/6 see the loss.
//!
//! Steady-state preparation is allocation-free: every per-step vector
//! lives in [`PrepareScratch`] (cleared, never dropped), the miss-row map
//! is a stamp-validated array instead of a `HashMap`, and a recycled
//! [`PreparedBatch`] carcass donates its minibatch blocks, feature matrix
//! and label vector back to the next [`Prefetcher::prepare_reuse`] call.

use crate::buffer::PrefetchBuffer;
use crate::config::{PrefetchConfig, ScoreLayout};
use crate::policy::{PlanCtx, PrefetchPolicy, ScoreboardPolicy};
use crate::scoreboard::{AccessScores, EvictionScores};
use mgnn_graph::NodeId;
use mgnn_net::{CommMetrics, CostModel, SimCluster};
use mgnn_obs::Phase;
use mgnn_partition::LocalPartition;
use mgnn_sampling::{NeighborSampler, SampledMinibatch, SamplerScratch};
use mgnn_tensor::Tensor;

/// Modeled time breakdown of one minibatch preparation (Eq. 3 terms).
#[derive(Debug, Clone, Copy, Default)]
pub struct PrepareTiming {
    /// Neighbor sampling.
    pub t_sampling: f64,
    /// Buffer membership probes.
    pub t_lookup: f64,
    /// Scoreboard maintenance (decay + miss increments).
    pub t_scoring: f64,
    /// Eviction-round overhead (candidate scan), nonzero on Δ steps.
    pub t_evict: f64,
    /// Remote feature fetch (misses + replacements).
    pub t_rpc: f64,
    /// Local feature gather.
    pub t_copy: f64,
    /// Planned lookahead pulls (rows fetched for future minibatches by
    /// the lookahead policy). Exactly 0.0 under the scoreboard policy.
    pub t_planned: f64,
}

impl PrepareTiming {
    /// Eq. 3: `t_prepare = t_sampling + t_lookup + t_scoring (+ eviction)
    /// (+ planned pulls) + max(t_RPC, t_copy)`. The planned-pull term is
    /// exactly 0.0 under the scoreboard policy, keeping its sums
    /// bitwise-unchanged.
    pub fn t_prepare(&self) -> f64 {
        self.t_sampling
            + self.t_lookup
            + self.t_scoring
            + self.t_evict
            + self.t_planned
            + self.t_rpc.max(self.t_copy)
    }
}

/// Exact event counts of one preparation.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrepareCounts {
    /// Local nodes in the sampled minibatch (`|V_p^{l|s}|`).
    pub local: usize,
    /// Halo nodes in the sampled minibatch (`|V_p^{h|s}|`).
    pub halo: usize,
    /// Buffer hits.
    pub hits: usize,
    /// Buffer misses.
    pub misses: usize,
    /// Nodes evicted this step.
    pub evicted: usize,
    /// Replacement nodes fetched this step.
    pub replaced: usize,
    /// Missed halo nodes whose fetch exhausted every retry and were
    /// served as zero rows (degradation rung 3).
    pub degraded: usize,
    /// Eviction replacements cancelled because their fetch failed; the
    /// stale resident row kept its slot (degradation rung 2).
    pub stale: usize,
}

/// A minibatch ready for training: blocks + gathered input features +
/// labels, with the timing/counts of its preparation.
#[derive(Debug, Clone)]
pub struct PreparedBatch {
    /// The sampled structure.
    pub minibatch: SampledMinibatch,
    /// Input features aligned with `minibatch.input_nodes`.
    pub input: Tensor,
    /// Labels of the seed nodes.
    pub labels: Vec<u32>,
    /// Modeled preparation time breakdown.
    pub timing: PrepareTiming,
    /// Exact event counts.
    pub counts: PrepareCounts,
}

/// Reusable per-step scratch of one preparation pipeline. Every vector is
/// cleared (never shrunk) at the start of each step, so after a warmup
/// epoch has touched the high-water mark the prepare path performs no
/// heap allocation. The miss-row map is a stamp-validated pair of arrays
/// indexed by halo idx — `row_stamp[h] == stamp` marks `row_val[h]` as
/// this step's fetch row for halo `h` — replacing the per-step `HashMap`
/// (same mechanism as the prefetcher's `sampled_stamp` dedup).
#[derive(Debug, Default)]
pub struct PrepareScratch {
    sampler: SamplerScratch,
    local_ids: Vec<u32>,
    halo_ids: Vec<u32>,
    halo_idx: Vec<u32>,
    hits: Vec<u32>,
    misses: Vec<u32>,
    miss_globals: Vec<NodeId>,
    fetch_ids: Vec<NodeId>,
    replacements: Vec<(u32, u32)>,
    replacement_rows: Vec<usize>,
    protect: Vec<u32>,
    /// halo idx -> fetch row, valid when `row_stamp[h] == stamp`.
    row_stamp: Vec<u64>,
    row_val: Vec<u32>,
    stamp: u64,
}

impl PrepareScratch {
    fn mark_rows(&mut self, num_halo: usize) -> u64 {
        self.stamp += 1;
        if self.row_stamp.len() < num_halo {
            self.row_stamp.resize(num_halo, 0);
            self.row_val.resize(num_halo, 0);
        }
        self.stamp
    }
}

/// Per-trainer prefetcher state (`BUF_p^i`, `S_E`, `S_A`).
pub struct Prefetcher {
    /// Configuration in force.
    pub cfg: PrefetchConfig,
    /// The feature buffer.
    pub buffer: PrefetchBuffer,
    /// Per-slot eviction scores.
    pub s_e: EvictionScores,
    /// Per-halo access scores.
    pub s_a: AccessScores,
    alpha: f64,
    /// Stamp array marking which halo indices were sampled this step.
    sampled_stamp: Vec<u64>,
    current_stamp: u64,
    /// Transient bytes high-water mark (eviction scratch), for Fig. 14.
    peak_transient_bytes: usize,
    /// When false, per-step scratch is re-created fresh each call —
    /// bitwise-identical outputs, baseline allocation behavior.
    pooling: bool,
    scratch: PrepareScratch,
    /// Admission/eviction/pull policy (DESIGN §10). The scoreboard
    /// default keeps every decision on the original Algorithm 2 path.
    policy: Box<dyn PrefetchPolicy>,
}

impl Prefetcher {
    /// Construct with an already-populated buffer and scoreboards (see
    /// [`crate::init::initialize_prefetcher`] for the Algorithm 1 path).
    pub fn from_parts(
        cfg: PrefetchConfig,
        buffer: PrefetchBuffer,
        s_e: EvictionScores,
        s_a: AccessScores,
        num_halo: usize,
    ) -> Self {
        let alpha = cfg.alpha();
        Prefetcher {
            cfg,
            buffer,
            s_e,
            s_a,
            alpha,
            sampled_stamp: vec![0; num_halo],
            current_stamp: 0,
            peak_transient_bytes: 0,
            pooling: true,
            scratch: PrepareScratch::default(),
            policy: Box::new(ScoreboardPolicy),
        }
    }

    /// Install a prefetch policy (default: [`ScoreboardPolicy`]).
    pub fn set_policy(&mut self, policy: Box<dyn PrefetchPolicy>) {
        self.policy = policy;
    }

    /// Name of the policy in force.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The Eq. 1 threshold in force.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Enable or disable per-step scratch reuse. Outputs are
    /// bitwise-identical either way; `false` restores the
    /// allocate-per-step behavior (the pooled-vs-fresh oracle).
    pub fn set_pooling(&mut self, on: bool) {
        self.pooling = on;
    }

    /// Persistent heap bytes (buffer + scoreboards + stamp array).
    pub fn heap_bytes(&self) -> usize {
        self.buffer.heap_bytes()
            + self.s_e.heap_bytes()
            + self.s_a.heap_bytes()
            + self.sampled_stamp.len() * 8
    }

    /// Peak transient allocation observed during eviction rounds.
    pub fn peak_transient_bytes(&self) -> usize {
        self.peak_transient_bytes
    }

    /// Sample and prepare one minibatch (Algorithm 2). `step` is the
    /// *global* minibatch counter (continuous across epochs — the scheme
    /// is continuous).
    #[allow(clippy::too_many_arguments)]
    pub fn prepare(
        &mut self,
        part: &LocalPartition,
        sampler: &NeighborSampler,
        seeds: &[u32],
        epoch: u64,
        step: u64,
        cluster: &SimCluster,
        cost: &CostModel,
        metrics: &CommMetrics,
    ) -> PreparedBatch {
        self.prepare_reuse(
            None, part, sampler, seeds, epoch, step, cluster, cost, metrics,
        )
    }

    /// [`prepare`](Self::prepare), recycling a consumed batch: the
    /// carcass donates its minibatch blocks, feature matrix and label
    /// vector, which are cleared and refilled in place. The produced
    /// batch is bitwise-identical to a fresh preparation — gather fully
    /// overwrites every feature row, so no stale bytes can leak.
    #[allow(clippy::too_many_arguments)]
    pub fn prepare_reuse(
        &mut self,
        reuse: Option<PreparedBatch>,
        part: &LocalPartition,
        sampler: &NeighborSampler,
        seeds: &[u32],
        epoch: u64,
        step: u64,
        cluster: &SimCluster,
        cost: &CostModel,
        metrics: &CommMetrics,
    ) -> PreparedBatch {
        let mut scratch = std::mem::take(&mut self.scratch);
        if !self.pooling {
            scratch = PrepareScratch::default();
        }
        let (mut mb, mut input_vec, mut labels) = match reuse.filter(|_| self.pooling) {
            Some(b) => (b.minibatch, b.input.into_vec(), b.labels),
            None => (SampledMinibatch::default(), Vec::new(), Vec::new()),
        };

        let num_local = part.num_local();
        let dim = cluster.dim();

        // Policy planning round (DESIGN §10): the lookahead planner
        // pulls future minibatches' halo rows into the buffer here,
        // before this step's probe. The scoreboard policy is a no-op
        // returning exactly 0.0, so its path is bitwise-unchanged.
        let reactive = self.policy.reactive();
        let t_planned = self.policy.plan(PlanCtx {
            buffer: &mut self.buffer,
            part,
            cluster,
            cost,
            metrics,
            step,
        });

        // Line 1: sample the neighborhood.
        sampler.sample_into(part, seeds, epoch, step, &mut mb, &mut scratch.sampler);
        let t_sampling = cost.t_sampling(mb.total_edges());

        // Lines 2–3: split local / halo.
        mb.split_local_halo_into(num_local, &mut scratch.local_ids, &mut scratch.halo_ids);

        // Lines 4–5: hits and misses. Mark sampled halo indices with a
        // stamp so the decay pass below is O(buffer) without a set. The
        // stamp doubles as an O(1) dedup: `increment_batch` requires
        // unique ids (a duplicate would double-increment S_A) and
        // the miss-row map assumes one row per missed node, so a halo
        // node sampled twice in one minibatch must be processed once.
        self.current_stamp += 1;
        let stamp = self.current_stamp;
        scratch.halo_idx.clear();
        for &lid in &scratch.halo_ids {
            let h = lid - num_local as u32;
            if self.sampled_stamp[h as usize] != stamp {
                self.sampled_stamp[h as usize] = stamp;
                scratch.halo_idx.push(h);
            }
        }
        self.buffer
            .probe_batch_into(&scratch.halo_idx, &mut scratch.hits, &mut scratch.misses);
        let t_lookup = cost.t_lookup(scratch.halo_ids.len() + self.buffer.len());

        // Lines 6–9 + 21 are the *reactive* scoreboard passes; a
        // planning policy manages the buffer itself and skips them
        // (its scoring cost is already charged to `t_planned`).
        let halo_nodes = &part.halo_nodes;
        let t_scoring = if reactive {
            // Decay S_E of buffered nodes not sampled this step; a
            // sampled (hit) node's score returns to the initial 1 (paper
            // Fig. 4 shows used nodes back at score 1 — without the
            // reset, every node's lifetime idle budget is finite and
            // even hot nodes churn out, which contradicts the paper's
            // observed hit-rate growth).
            let decayed = {
                let buffer = &self.buffer;
                let sampled_stamp = &self.sampled_stamp;
                self.s_e
                    .decay_or_reset_prefix(buffer.len(), self.cfg.gamma, |slot| {
                        sampled_stamp[buffer.halo_at(slot) as usize] == stamp
                    })
            };

            // Line 21: S_A increments for misses (batched; the memory-
            // efficient layout binary-searches in parallel, §IV-B).
            scratch.miss_globals.clear();
            scratch
                .miss_globals
                .extend(scratch.misses.iter().map(|&h| halo_nodes[h as usize]));
            self.s_a.increment_batch(halo_nodes, &scratch.miss_globals);
            let mem_eff = self.cfg.layout == ScoreLayout::MemEfficient;
            cost.t_scoring(decayed + scratch.misses.len(), mem_eff, part.num_halo())
        } else {
            0.0
        };

        // Map miss halo idx -> row in the bulk fetch payload.
        let rstamp = scratch.mark_rows(part.num_halo());
        for (i, &h) in scratch.misses.iter().enumerate() {
            scratch.row_stamp[h as usize] = rstamp;
            scratch.row_val[h as usize] = i as u32;
        }

        // Lines 12–17: Δ-periodic evict-and-replace (reactive policies
        // only — a planner's installs already happened in its round).
        let mut t_evict = 0.0;
        scratch.replacements.clear();
        if reactive
            && self.cfg.eviction
            && self.cfg.delta > 0
            && step > 0
            && step.is_multiple_of(self.cfg.delta as u64)
        {
            // Hits were copied out of the buffer (line 11) before eviction;
            // protecting their slots keeps that copy semantics without
            // materializing it, and avoids evicting a node the sampler is
            // using this very minibatch.
            scratch.protect.clear();
            scratch
                .protect
                .extend(scratch.hits.iter().filter_map(|&h| self.buffer.slot_of(h)));
            scratch.protect.sort_unstable();
            let evict_slots = self.s_e.below_threshold(self.alpha, &scratch.protect);
            // Replacement candidates: non-buffered halo nodes with S_A > 0.
            let buffer = &self.buffer;
            let s_a = &self.s_a;
            let candidates = (0..part.num_halo() as u32).filter(|&h| !buffer.contains(h));
            let (replace_globals, scoring_bytes) = s_a.top_k_candidates_with_footprint(
                halo_nodes,
                candidates.map(|h| halo_nodes[h as usize]),
                evict_slots.len(),
                |g| {
                    let h = halo_nodes.binary_search(&g).unwrap();
                    part.halo_degree[h]
                },
            );
            let k = evict_slots.len().min(replace_globals.len());
            for i in 0..k {
                let slot = evict_slots[i];
                let new_g = replace_globals[i];
                let new_h = halo_nodes.binary_search(&new_g).unwrap() as u32;
                scratch.replacements.push((slot, new_h));
            }
            // Eviction-round overhead: scan every slot plus every halo
            // candidate (the "extra work" of §IV-E).
            t_evict = cost.t_lookup(self.buffer.capacity() + part.num_halo());
            // The dominant transient of the round is the scored-candidate
            // vector top_k_candidates materializes over every positive-S_A
            // non-buffered halo node — not the slot/id vectors, which are
            // bounded by the buffer capacity.
            let transient = scoring_bytes + evict_slots.len() * 4 + replace_globals.len() * 8;
            self.peak_transient_bytes = self.peak_transient_bytes.max(transient);
        }

        // Lines 15 + 22: one bulk fetch of miss + replacement features.
        // A replacement that is also a miss this step reuses the miss row
        // (DistDGL's bulk pull deduplicates node ids the same way).
        scratch.fetch_ids.clear();
        scratch
            .fetch_ids
            .extend(scratch.misses.iter().map(|&h| halo_nodes[h as usize]));
        scratch.replacement_rows.clear();
        for &(_, new_h) in &scratch.replacements {
            if scratch.row_stamp[new_h as usize] == rstamp {
                scratch
                    .replacement_rows
                    .push(scratch.row_val[new_h as usize] as usize);
            } else {
                scratch.replacement_rows.push(scratch.fetch_ids.len());
                scratch.fetch_ids.push(halo_nodes[new_h as usize]);
            }
        }
        // Deterministic request id: pure function of (origin, rank,
        // step), so it is identical across the sequential and threaded
        // engines and across pool widths.
        let req_id = mgnn_obs::events::request_id(
            mgnn_obs::events::ORIGIN_PREPARE,
            metrics.trace_rank(),
            step,
        );
        let (fetched, outcome) = cluster.pull_grouped_tagged(&scratch.fetch_ids, req_id);
        // Faults charge simulated time on top of the ideal RPC cost:
        // injected delays multiply the request's latency and every retry
        // re-pays it plus deterministic backoff (Eq. 6 still sees the
        // loss through `t_prepare`). `charge_s` is exactly 0.0 on the
        // fault-free path, so `t_rpc` is bitwise-unchanged there.
        let t_fault = outcome.charge_s(cost, dim, cluster.retry_policy());
        let t_rpc = cost.t_rpc(scratch.fetch_ids.len(), dim) + t_fault;
        // Spans of this preparation, at their Eq. 3 offsets within the
        // prepare window: a planning round (if any) runs first, then the
        // serial prefix sampling → lookup → scoring → evict, then RPC
        // and copy overlap at its end. No-ops when tracing is off (the
        // metrics carry no recorder). `t_planned` is exactly 0.0 under
        // the scoreboard policy, so these offsets are bitwise-unchanged
        // there.
        metrics.span(step, Phase::Sampling, t_planned, t_sampling);
        metrics.span(step, Phase::Lookup, t_planned + t_sampling, t_lookup);
        metrics.span(
            step,
            Phase::Scoring,
            t_planned + t_sampling + t_lookup,
            t_scoring,
        );
        metrics.span(
            step,
            Phase::Evict,
            t_planned + t_sampling + t_lookup + t_scoring,
            t_evict,
        );
        let serial = t_planned + t_sampling + t_lookup + t_scoring + t_evict;
        metrics.record_rpc_spanned_corr(
            scratch.fetch_ids.len() as u64,
            dim,
            step,
            serial,
            t_rpc,
            req_id,
        );
        metrics.record_lookup(scratch.hits.len() as u64, scratch.misses.len() as u64);
        metrics.record_pull_outcome(&outcome);
        if t_fault > 0.0 {
            metrics.fault_span_corr(step, serial, t_fault, req_id);
        }

        // Lines 16–17 + score swap (§IV-B): install replacements. A
        // replacement whose fetch row exhausted every retry is cancelled
        // — installing zeros would poison the buffer for every later
        // step — so the stale resident keeps the slot and the
        // candidate's accumulated S_A survives (it stays miss-pending
        // and is re-tried on a later eviction round).
        let row_failed = |r: usize| outcome.failed_rows.binary_search(&r).is_ok();
        let mut installed = 0usize;
        let mut stale = 0usize;
        for (i, &(slot, new_h)) in scratch.replacements.iter().enumerate() {
            let r = scratch.replacement_rows[i];
            if row_failed(r) {
                stale += 1;
                continue;
            }
            let feat = &fetched[r * dim..(r + 1) * dim];
            let old_h = self.buffer.replace(slot, new_h, feat);
            let old_g = halo_nodes[old_h as usize];
            let new_g = halo_nodes[new_h as usize];
            // Swap: evicted node's new S_A ← its last S_E;
            // replacement's new S_E ← its last S_A; then mark buffered.
            let last_se = self.s_e.get(slot);
            let last_sa = self.s_a.get(halo_nodes, new_g) as f64;
            self.s_a.set(halo_nodes, old_g, last_se as f32);
            self.s_e.set(slot, last_sa);
            self.s_a.set(halo_nodes, new_g, -1.0);
            installed += 1;
        }
        metrics.record_eviction(installed as u64, installed as u64);
        // Missed nodes on a failed partition come back as zero rows —
        // the final degradation rung. Their S_A increments already
        // happened above, so the sampler's access history stays exact.
        let degraded = outcome
            .failed_rows
            .iter()
            .filter(|&&r| r < scratch.misses.len())
            .count();
        if stale > 0 || degraded > 0 {
            metrics.record_degradation(stale as u64, degraded as u64);
            if mgnn_obs::events::enabled() {
                if stale > 0 {
                    mgnn_obs::events::push(mgnn_obs::events::TraceEvent {
                        request_id: req_id,
                        kind: "stale_rows",
                        part: part.part_id,
                        attempt: 0,
                        value: stale as u64,
                    });
                }
                if degraded > 0 {
                    mgnn_obs::events::push(mgnn_obs::events::TraceEvent {
                        request_id: req_id,
                        kind: "degraded_rows",
                        part: part.part_id,
                        attempt: 0,
                        value: degraded as u64,
                    });
                }
            }
        }

        // Assemble input features in input-node order: local rows from the
        // partition's own KVStore, halo hits from the buffer, halo misses
        // from the fetched payload. Row-parallel: each output row selects
        // its source slice independently and copies the same bytes the
        // sequential assembly would, so the tensor is bitwise-identical
        // at any thread count.
        let local_store = cluster.store(part.part_id);
        input_vec.clear();
        input_vec.resize(mb.input_nodes.len() * dim, 0.0);
        if dim > 0 {
            use rayon::prelude::*;
            let buffer = &self.buffer;
            let input_nodes = &mb.input_nodes;
            let row_stamp = &scratch.row_stamp;
            let row_val = &scratch.row_val;
            input_vec
                .par_chunks_mut(dim)
                .enumerate()
                .for_each(|(idx, row)| {
                    let lid = input_nodes[idx];
                    let src: &[f32] = if (lid as usize) < num_local {
                        local_store.row(part.local_nodes[lid as usize])
                    } else {
                        let h = lid - num_local as u32;
                        if let Some(slot) = buffer.slot_of(h) {
                            // Careful: a replacement installed *this step*
                            // occupies a slot but was fetched fresh; either
                            // path yields the same bytes.
                            buffer.row(slot)
                        } else {
                            debug_assert_eq!(row_stamp[h as usize], rstamp);
                            let r = row_val[h as usize] as usize;
                            &fetched[r * dim..(r + 1) * dim]
                        }
                    };
                    row.copy_from_slice(src);
                });
        }
        let t_copy = cost.t_copy(scratch.local_ids.len(), dim);
        metrics.record_local_copy_spanned(scratch.local_ids.len() as u64, step, serial, t_copy);

        labels.clear();
        labels.extend(
            mb.seeds
                .iter()
                .map(|&lid| local_store.label(part.local_nodes[lid as usize])),
        );

        let counts = PrepareCounts {
            local: scratch.local_ids.len(),
            halo: scratch.halo_ids.len(),
            hits: scratch.hits.len(),
            misses: scratch.misses.len(),
            evicted: installed,
            replaced: installed,
            degraded,
            stale,
        };
        let timing = PrepareTiming {
            t_sampling,
            t_lookup,
            t_scoring,
            t_evict,
            t_rpc,
            t_copy,
            t_planned,
        };
        let input = Tensor::from_vec(mb.input_nodes.len(), dim, input_vec);
        self.scratch = scratch;
        PreparedBatch {
            minibatch: mb,
            input,
            labels,
            timing,
            counts,
        }
    }
}

/// Baseline DistDGL preparation (Eq. 2): sample, fetch *all* sampled halo
/// features over RPC, gather local features — no buffer, no scoreboards.
#[allow(clippy::too_many_arguments)]
pub fn baseline_prepare(
    part: &LocalPartition,
    sampler: &NeighborSampler,
    seeds: &[u32],
    epoch: u64,
    step: u64,
    cluster: &SimCluster,
    cost: &CostModel,
    metrics: &CommMetrics,
) -> PreparedBatch {
    let mut scratch = PrepareScratch::default();
    baseline_prepare_reuse(
        None,
        &mut scratch,
        part,
        sampler,
        seeds,
        epoch,
        step,
        cluster,
        cost,
        metrics,
    )
}

/// [`baseline_prepare`] with caller-owned scratch and an optional
/// recycled carcass — the allocation-free steady-state path. Outputs are
/// bitwise-identical to the fresh version.
#[allow(clippy::too_many_arguments)]
pub fn baseline_prepare_reuse(
    reuse: Option<PreparedBatch>,
    scratch: &mut PrepareScratch,
    part: &LocalPartition,
    sampler: &NeighborSampler,
    seeds: &[u32],
    epoch: u64,
    step: u64,
    cluster: &SimCluster,
    cost: &CostModel,
    metrics: &CommMetrics,
) -> PreparedBatch {
    let num_local = part.num_local();
    let dim = cluster.dim();
    let (mut mb, mut input_vec, mut labels) = match reuse {
        Some(b) => (b.minibatch, b.input.into_vec(), b.labels),
        None => (SampledMinibatch::default(), Vec::new(), Vec::new()),
    };
    sampler.sample_into(part, seeds, epoch, step, &mut mb, &mut scratch.sampler);
    let t_sampling = cost.t_sampling(mb.total_edges());
    mb.split_local_halo_into(num_local, &mut scratch.local_ids, &mut scratch.halo_ids);

    scratch.fetch_ids.clear();
    scratch.fetch_ids.extend(
        scratch
            .halo_ids
            .iter()
            .map(|&lid| part.halo_nodes[(lid - num_local as u32) as usize]),
    );
    let req_id = mgnn_obs::events::request_id(
        mgnn_obs::events::ORIGIN_BASELINE,
        metrics.trace_rank(),
        step,
    );
    let (fetched, outcome) = cluster.pull_grouped_tagged(&scratch.fetch_ids, req_id);
    // Same fault-time charging as the prefetch path; exactly 0.0 when
    // nothing fired.
    let t_fault = outcome.charge_s(cost, dim, cluster.retry_policy());
    let t_rpc = cost.t_rpc(scratch.fetch_ids.len(), dim) + t_fault;
    // Baseline has no buffer work, but zero-length spans for the
    // prefetch-only phases keep per-phase histogram counts equal to the
    // step count in both modes.
    metrics.span(step, Phase::Sampling, 0.0, t_sampling);
    metrics.span(step, Phase::Lookup, t_sampling, 0.0);
    metrics.span(step, Phase::Scoring, t_sampling, 0.0);
    metrics.span(step, Phase::Evict, t_sampling, 0.0);
    metrics.record_rpc_spanned_corr(
        scratch.fetch_ids.len() as u64,
        dim,
        step,
        t_sampling,
        t_rpc,
        req_id,
    );
    metrics.record_pull_outcome(&outcome);
    if t_fault > 0.0 {
        metrics.fault_span_corr(step, t_sampling, t_fault, req_id);
    }
    // No buffer to fall back on: every failed row is a zero-filled input
    // row (the baseline skips degradation rung 2 entirely).
    if !outcome.failed_rows.is_empty() {
        metrics.record_degradation(0, outcome.failed_rows.len() as u64);
        if mgnn_obs::events::enabled() {
            mgnn_obs::events::push(mgnn_obs::events::TraceEvent {
                request_id: req_id,
                kind: "degraded_rows",
                part: part.part_id,
                attempt: 0,
                value: outcome.failed_rows.len() as u64,
            });
        }
    }

    let local_store = cluster.store(part.part_id);
    // Map halo idx -> fetch row (one row per sampled halo node;
    // `input_nodes` is duplicate-free).
    let rstamp = scratch.mark_rows(part.num_halo());
    for (i, &lid) in scratch.halo_ids.iter().enumerate() {
        let h = (lid - num_local as u32) as usize;
        scratch.row_stamp[h] = rstamp;
        scratch.row_val[h] = i as u32;
    }
    // Row-parallel gather, same bytes as the sequential loop (see the
    // prefetch-path assembly above for the determinism argument).
    input_vec.clear();
    input_vec.resize(mb.input_nodes.len() * dim, 0.0);
    if dim > 0 {
        use rayon::prelude::*;
        let input_nodes = &mb.input_nodes;
        let row_stamp = &scratch.row_stamp;
        let row_val = &scratch.row_val;
        input_vec
            .par_chunks_mut(dim)
            .enumerate()
            .for_each(|(idx, row)| {
                let lid = input_nodes[idx];
                let src: &[f32] = if (lid as usize) < num_local {
                    local_store.row(part.local_nodes[lid as usize])
                } else {
                    let h = (lid - num_local as u32) as usize;
                    debug_assert_eq!(row_stamp[h], rstamp);
                    let r = row_val[h] as usize;
                    &fetched[r * dim..(r + 1) * dim]
                };
                row.copy_from_slice(src);
            });
    }
    let t_copy = cost.t_copy(scratch.local_ids.len(), dim);
    metrics.record_local_copy_spanned(scratch.local_ids.len() as u64, step, t_sampling, t_copy);

    labels.clear();
    labels.extend(
        mb.seeds
            .iter()
            .map(|&lid| local_store.label(part.local_nodes[lid as usize])),
    );

    let counts = PrepareCounts {
        local: scratch.local_ids.len(),
        halo: scratch.halo_ids.len(),
        hits: 0,
        misses: scratch.halo_ids.len(),
        evicted: 0,
        replaced: 0,
        degraded: outcome.failed_rows.len(),
        stale: 0,
    };
    let timing = PrepareTiming {
        t_sampling,
        t_lookup: 0.0,
        t_scoring: 0.0,
        t_evict: 0.0,
        t_rpc,
        t_copy,
        t_planned: 0.0,
    };
    let input = Tensor::from_vec(mb.input_nodes.len(), dim, input_vec);
    PreparedBatch {
        minibatch: mb,
        input,
        labels,
        timing,
        counts,
    }
}
