//! `INITIALIZE_PREFETCHER` — Algorithm 1 lines 16–22.
//!
//! Selects the top `f_p^h`% of the partition's halo nodes by (global)
//! degree, bulk-fetches their features over RPC, populates the buffer, and
//! initializes the scoreboards (`S_E = 1`, `S_A = −1` for buffered nodes,
//! `S_A = 0` for the rest). Returns the component-wise initialization cost
//! breakdown that Fig. 8 reports.

use crate::buffer::PrefetchBuffer;
use crate::config::{PrefetchConfig, ScoreLayout};
use crate::prefetcher::Prefetcher;
use crate::scoreboard::{AccessScores, EvictionScores};
use mgnn_net::{CommMetrics, CostModel, SimCluster};
use mgnn_partition::LocalPartition;

/// Component-wise initialization cost (Fig. 8).
#[derive(Debug, Clone, Copy, Default)]
pub struct InitReport {
    /// Selecting the top-degree halo nodes (sort/partial-select).
    pub selection_s: f64,
    /// Bulk RPC fetching their features.
    pub fetch_s: f64,
    /// Copying rows into the buffer.
    pub populate_s: f64,
    /// Scoreboard allocation + initialization.
    pub scoreboard_s: f64,
    /// How many halo nodes were prefetched.
    pub buffer_nodes: usize,
    /// Persistent bytes allocated (buffer + scoreboards).
    pub persistent_bytes: usize,
}

impl InitReport {
    /// Total modeled initialization time.
    pub fn total_s(&self) -> f64 {
        self.selection_s + self.fetch_s + self.populate_s + self.scoreboard_s
    }
}

/// Build a ready [`Prefetcher`] for one trainer on `part`.
pub fn initialize_prefetcher(
    part: &LocalPartition,
    cfg: PrefetchConfig,
    num_global_nodes: usize,
    cluster: &SimCluster,
    cost: &CostModel,
    metrics: &CommMetrics,
) -> (Prefetcher, InitReport) {
    cfg.validate().expect("invalid prefetch config");
    let num_halo = part.num_halo();
    let dim = cluster.dim();
    let capacity = ((num_halo as f64) * cfg.f_h).round() as usize;
    let capacity = capacity.min(num_halo);

    // Top-capacity halo indices by degree (ties by id for determinism).
    // O(n) partial selection instead of a full O(n log n) sort over all
    // halo nodes (Fig. 8 init cost): quickselect the capacity-th node,
    // drop the tail, sort only the survivors. The (Reverse(degree), id)
    // key is a total order over distinct ids, so this reproduces the
    // full-sort prefix exactly.
    let key = |h: &u32| (std::cmp::Reverse(part.halo_degree[*h as usize]), *h);
    let mut order: Vec<u32> = (0..num_halo as u32).collect();
    if capacity == 0 {
        order.clear();
    } else if capacity < order.len() {
        order.select_nth_unstable_by_key(capacity - 1, key);
        order.truncate(capacity);
    }
    order.sort_unstable_by_key(key);
    let selection_s = cost.t_lookup(num_halo) + cost.t_scoring(num_halo, false, num_halo);

    // Bulk fetch (line 18: RPC).
    let globals: Vec<u32> = order.iter().map(|&h| part.halo_nodes[h as usize]).collect();
    let req_id =
        mgnn_obs::events::request_id(mgnn_obs::events::ORIGIN_INIT, metrics.trace_rank(), 0);
    let (fetched, outcome) = cluster.pull_grouped_tagged(&globals, req_id);
    // Fault charge is 0.0 on the fault-free path (see Prefetcher::prepare).
    let fetch_s = cost.t_rpc(capacity, dim) + outcome.charge_s(cost, dim, cluster.retry_policy());
    metrics.record_rpc(capacity as u64, dim);
    metrics.record_pull_outcome(&outcome);
    if !outcome.failed_rows.is_empty() {
        // Rows a dead partition never delivered are simply not buffered
        // (buffering zeros would serve wrong data on every later hit);
        // those nodes stay ordinary misses and are fetched the first
        // time the sampler needs them, so init stays infallible.
        metrics.record_degradation(0, outcome.failed_rows.len() as u64);
        if mgnn_obs::events::enabled() {
            mgnn_obs::events::push(mgnn_obs::events::TraceEvent {
                request_id: req_id,
                kind: "degraded_rows",
                part: part.part_id,
                attempt: 0,
                value: outcome.failed_rows.len() as u64,
            });
        }
    }
    let row_failed = |r: usize| outcome.failed_rows.binary_search(&r).is_ok();

    // Populate buffer.
    let mut buffer = PrefetchBuffer::new(num_halo, capacity, dim);
    for (i, &h) in order.iter().enumerate() {
        if row_failed(i) {
            continue;
        }
        buffer.insert(h, &fetched[i * dim..(i + 1) * dim]);
    }
    let populate_s = cost.t_copy(capacity, dim);

    // Scoreboards (lines 17, 19–21).
    let s_e = EvictionScores::new(capacity);
    let mut s_a = AccessScores::new(cfg.layout, num_global_nodes, num_halo);
    for (i, &h) in order.iter().enumerate() {
        if row_failed(i) {
            continue;
        }
        s_a.set(&part.halo_nodes, part.halo_nodes[h as usize], -1.0);
    }
    let sb_cells = match cfg.layout {
        ScoreLayout::Dense => num_global_nodes,
        ScoreLayout::MemEfficient => num_halo,
    };
    let scoreboard_s = cost.t_scoring(sb_cells, cfg.layout == ScoreLayout::MemEfficient, num_halo);

    let buffered = buffer.len();
    let pf = Prefetcher::from_parts(cfg, buffer, s_e, s_a, num_halo);
    let report = InitReport {
        selection_s,
        fetch_s,
        populate_s,
        scoreboard_s,
        buffer_nodes: buffered,
        persistent_bytes: pf.heap_bytes(),
    };
    (pf, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgnn_graph::generators::erdos_renyi;
    use mgnn_graph::FeatureStore;
    use mgnn_partition::{build_local_partitions, multilevel_partition};

    fn fixture() -> (LocalPartition, SimCluster, usize) {
        let g = erdos_renyi(300, 3000, 11);
        let p = multilevel_partition(&g, 3, 11);
        let feats = FeatureStore::synthesize(&g, 8, 4, 2);
        let cluster = SimCluster::new(&feats, &p.assignment, 3);
        let part = build_local_partitions(&g, &p, &[]).remove(0);
        (part, cluster, g.num_nodes())
    }

    #[test]
    fn buffer_holds_top_degree_halo_nodes() {
        let (part, cluster, n) = fixture();
        let cfg = PrefetchConfig {
            f_h: 0.3,
            ..Default::default()
        };
        let metrics = CommMetrics::new();
        let (pf, report) =
            initialize_prefetcher(&part, cfg, n, &cluster, &CostModel::default(), &metrics);
        let expect = ((part.num_halo() as f64) * 0.3).round() as usize;
        assert_eq!(pf.buffer.len(), expect);
        assert_eq!(report.buffer_nodes, expect);
        // Minimum buffered degree >= maximum unbuffered degree.
        let min_in = pf
            .buffer
            .occupied()
            .map(|(_, h)| part.halo_degree[h as usize])
            .min()
            .unwrap();
        let max_out = (0..part.num_halo() as u32)
            .filter(|&h| !pf.buffer.contains(h))
            .map(|h| part.halo_degree[h as usize])
            .max()
            .unwrap();
        assert!(min_in >= max_out, "degree-based selection violated");
    }

    #[test]
    fn buffered_features_match_kvstore() {
        let (part, cluster, n) = fixture();
        let cfg = PrefetchConfig::default();
        let metrics = CommMetrics::new();
        let (pf, _) =
            initialize_prefetcher(&part, cfg, n, &cluster, &CostModel::default(), &metrics);
        for (slot, h) in pf.buffer.occupied() {
            let g = part.halo_nodes[h as usize];
            let owner = cluster.owner(g);
            assert_eq!(pf.buffer.row(slot), cluster.store(owner).row(g));
        }
    }

    #[test]
    fn scoreboards_initialized_per_paper() {
        let (part, cluster, n) = fixture();
        let cfg = PrefetchConfig::default();
        let metrics = CommMetrics::new();
        let (pf, _) =
            initialize_prefetcher(&part, cfg, n, &cluster, &CostModel::default(), &metrics);
        // S_E = 1 for all slots.
        for (slot, _) in pf.buffer.occupied() {
            assert_eq!(pf.s_e.get(slot), 1.0);
        }
        // S_A = -1 buffered, 0 otherwise.
        for h in 0..part.num_halo() as u32 {
            let g = part.halo_nodes[h as usize];
            if pf.buffer.contains(h) {
                assert_eq!(pf.s_a.get(&part.halo_nodes, g), -1.0);
            } else {
                assert_eq!(pf.s_a.get(&part.halo_nodes, g), 0.0);
            }
        }
    }

    #[test]
    fn init_cost_components_positive() {
        let (part, cluster, n) = fixture();
        let metrics = CommMetrics::new();
        let (_, report) = initialize_prefetcher(
            &part,
            PrefetchConfig::default(),
            n,
            &cluster,
            &CostModel::default(),
            &metrics,
        );
        assert!(report.selection_s > 0.0);
        assert!(report.fetch_s > 0.0);
        assert!(report.populate_s > 0.0);
        assert!(report.scoreboard_s > 0.0);
        assert!(report.total_s() > report.fetch_s);
        assert!(report.persistent_bytes > 0);
        // RPC metrics recorded the initialization fetch.
        assert_eq!(
            metrics.snapshot().remote_nodes_fetched,
            report.buffer_nodes as u64
        );
    }

    #[test]
    fn mem_efficient_layout_allocates_less() {
        let (part, cluster, n) = fixture();
        let metrics = CommMetrics::new();
        let dense_cfg = PrefetchConfig::default();
        let me_cfg = PrefetchConfig {
            layout: ScoreLayout::MemEfficient,
            ..Default::default()
        };
        let (pd, _) = initialize_prefetcher(
            &part,
            dense_cfg,
            n,
            &cluster,
            &CostModel::default(),
            &metrics,
        );
        let (pm, _) =
            initialize_prefetcher(&part, me_cfg, n, &cluster, &CostModel::default(), &metrics);
        // Dense is 4·|V|; memory-efficient is 4·|V_p^h| — halo is a strict
        // subset of the node set, so the latter is always smaller.
        assert_eq!(pd.s_a.heap_bytes(), n * 4);
        assert_eq!(pm.s_a.heap_bytes(), part.num_halo() * 4);
        assert!(pm.s_a.heap_bytes() < pd.s_a.heap_bytes());
    }

    #[test]
    fn f_h_one_buffers_every_halo_node() {
        let (part, cluster, n) = fixture();
        let metrics = CommMetrics::new();
        let cfg = PrefetchConfig {
            f_h: 1.0,
            ..Default::default()
        };
        let (pf, _) =
            initialize_prefetcher(&part, cfg, n, &cluster, &CostModel::default(), &metrics);
        assert_eq!(pf.buffer.len(), part.num_halo());
    }

    /// The O(n) partial selection must populate the buffer in exactly
    /// the order the old full `sort_by_key` + truncate produced.
    #[test]
    fn partial_selection_matches_full_sort_order() {
        let (part, cluster, n) = fixture();
        let metrics = CommMetrics::new();
        for f_h in [0.05, 0.3, 0.77, 1.0] {
            let cfg = PrefetchConfig {
                f_h,
                ..Default::default()
            };
            let (pf, _) =
                initialize_prefetcher(&part, cfg, n, &cluster, &CostModel::default(), &metrics);
            let capacity = ((part.num_halo() as f64) * f_h).round() as usize;
            let mut reference: Vec<u32> = (0..part.num_halo() as u32).collect();
            reference.sort_by_key(|&h| (std::cmp::Reverse(part.halo_degree[h as usize]), h));
            reference.truncate(capacity.min(part.num_halo()));
            let inserted: Vec<u32> = pf.buffer.occupied().map(|(_, h)| h).collect();
            assert_eq!(inserted, reference, "f_h={f_h}");
        }
    }

    #[test]
    fn f_h_zero_empty_buffer() {
        let (part, cluster, n) = fixture();
        let metrics = CommMetrics::new();
        let cfg = PrefetchConfig {
            f_h: 0.0,
            ..Default::default()
        };
        let (pf, _) =
            initialize_prefetcher(&part, cfg, n, &cluster, &CostModel::default(), &metrics);
        assert!(pf.buffer.is_empty());
    }
}
