//! Hit-rate tracking (Eq. 8) with per-window series for the Fig. 10
//! progression plots.

/// Records per-minibatch hit/miss counts and exposes cumulative and
/// windowed hit rates.
///
/// ```
/// use massivegnn::hitrate::HitRateTracker;
/// let mut t = HitRateTracker::new();
/// t.record(8, 2);
/// t.record(9, 1);
/// assert!((t.cumulative() - 0.85).abs() < 1e-12);
/// assert_eq!(t.windowed(1).len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct HitRateTracker {
    hits: Vec<u64>,
    misses: Vec<u64>,
}

impl HitRateTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one minibatch's lookup outcome.
    pub fn record(&mut self, hits: u64, misses: u64) {
        self.hits.push(hits);
        self.misses.push(misses);
    }

    /// Pre-size for `n` minibatches so steady-state `record` calls never
    /// reallocate (the engine reserves the whole run's step count up
    /// front).
    pub fn reserve(&mut self, n: usize) {
        self.hits.reserve(n);
        self.misses.reserve(n);
    }

    /// Number of recorded minibatches.
    pub fn len(&self) -> usize {
        self.hits.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }

    /// Cumulative hit rate `h/(h+m)` over everything recorded
    /// (0 when empty).
    pub fn cumulative(&self) -> f64 {
        let h: u64 = self.hits.iter().sum();
        let m: u64 = self.misses.iter().sum();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Hit rate of minibatch `i`.
    pub fn at(&self, i: usize) -> f64 {
        let t = self.hits[i] + self.misses[i];
        if t == 0 {
            0.0
        } else {
            self.hits[i] as f64 / t as f64
        }
    }

    /// Non-overlapping window means: one point per `window` minibatches
    /// (ragged tail included) — the Fig. 10 series.
    ///
    /// Windows with no lookups at all are *skipped*, not emitted as 0.0:
    /// a minibatch that touched no halo nodes carries no hit-rate signal,
    /// and a spurious zero would drag both the plotted series and the
    /// [`trend`](Self::trend) slope down. (`cumulative` needs no such
    /// guard — empty batches contribute nothing to either sum.)
    pub fn windowed(&self, window: usize) -> Vec<f64> {
        assert!(window > 0);
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.len() {
            let end = (i + window).min(self.len());
            let h: u64 = self.hits[i..end].iter().sum();
            let m: u64 = self.misses[i..end].iter().sum();
            if h + m > 0 {
                out.push(h as f64 / (h + m) as f64);
            }
            i = end;
        }
        out
    }

    /// Linear-regression slope of the windowed series — positive means
    /// the eviction scheme is improving the hit rate over time (§V-B3).
    pub fn trend(&self, window: usize) -> f64 {
        let ys = self.windowed(window);
        let n = ys.len();
        if n < 2 {
            return 0.0;
        }
        let nf = n as f64;
        let xmean = (nf - 1.0) / 2.0;
        let ymean = ys.iter().sum::<f64>() / nf;
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &y) in ys.iter().enumerate() {
            let dx = i as f64 - xmean;
            num += dx * (y - ymean);
            den += dx * dx;
        }
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cumulative_matches_eq8() {
        let mut t = HitRateTracker::new();
        t.record(3, 1);
        t.record(1, 3);
        assert!((t.cumulative() - 0.5).abs() < 1e-12);
        assert!((t.at(0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(HitRateTracker::new().cumulative(), 0.0);
    }

    #[test]
    fn windowed_series() {
        let mut t = HitRateTracker::new();
        for _ in 0..4 {
            t.record(1, 1);
        }
        t.record(4, 0);
        let w = t.windowed(2);
        assert_eq!(w.len(), 3);
        assert!((w[0] - 0.5).abs() < 1e-12);
        assert!((w[2] - 1.0).abs() < 1e-12); // ragged tail
    }

    #[test]
    fn trend_positive_for_rising_series() {
        let mut t = HitRateTracker::new();
        for i in 0..20u64 {
            t.record(i, 20 - i);
        }
        assert!(t.trend(2) > 0.0);
        let mut flat = HitRateTracker::new();
        for _ in 0..20 {
            flat.record(5, 5);
        }
        assert!(flat.trend(2).abs() < 1e-9);
    }

    #[test]
    fn zero_lookups_minibatch() {
        let mut t = HitRateTracker::new();
        t.record(0, 0);
        assert_eq!(t.at(0), 0.0);
        // An all-empty window emits no series point at all.
        assert_eq!(t.windowed(1), Vec::<f64>::new());
    }

    #[test]
    fn empty_batches_do_not_drag_the_series() {
        // Perfect hit rate interleaved with zero-lookup minibatches: the
        // series must read 1.0 throughout, not dip to 0.0 on the gaps.
        let mut t = HitRateTracker::new();
        for i in 0..10 {
            if i % 2 == 0 {
                t.record(5, 0);
            } else {
                t.record(0, 0);
            }
        }
        let w = t.windowed(1);
        assert_eq!(w.len(), 5, "empty minibatches must be skipped");
        assert!(w.iter().all(|&y| y == 1.0));
        // Mixed windows still average over the batches that had lookups.
        let w2 = t.windowed(2);
        assert_eq!(w2.len(), 5);
        assert!(w2.iter().all(|&y| y == 1.0));
        // Cumulative stays exact (5 windows × 5 hits, 0 misses).
        assert_eq!(t.cumulative(), 1.0);
    }

    #[test]
    fn trend_is_flat_over_gappy_perfect_series() {
        // Before the fix the zero-lookup gaps alternated the windowed
        // series between 1.0 and 0.0, producing a bogus slope; now the
        // trend over a constant (gappy) hit rate is exactly flat.
        let mut t = HitRateTracker::new();
        for i in 0..20 {
            if i % 4 == 0 {
                t.record(0, 0);
            } else {
                t.record(3, 1);
            }
        }
        assert!(t.trend(1).abs() < 1e-12);
    }
}
