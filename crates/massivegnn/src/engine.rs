//! End-to-end distributed training driver.
//!
//! Wires the whole stack together — dataset → METIS-like partitioning →
//! per-partition trainer shards → simulated cluster with KVStore servers →
//! per-trainer sampler/dataloader/prefetcher → GraphSAGE or GAT DDP
//! training — and runs it in either **baseline** (DistDGL semantics,
//! Eq. 2: serial sample → fetch → train) or **prefetch** (Algorithm 1:
//! next-minibatch preparation overlapped with training, Eqs. 4–5) mode.
//!
//! Data movement (sampling, buffer hits/misses, RPC payloads) is *real*;
//! elapsed time is accumulated on per-trainer [`SimClock`]s through the
//! [`CostModel`], so a 64-node Perlmutter run is reproduced on one machine
//! with exact event counts and modeled seconds. Setting
//! [`EngineConfig::train_math`] additionally runs the actual tensor
//! math + ring-allreduce DDP every step (used by the correctness tests:
//! prefetch mode must produce bitwise-identical model parameters to
//! baseline, since the paper's scheme only reorganizes the data pipeline).

use crate::config::PrefetchConfig;
use crate::hitrate::HitRateTracker;
use crate::init::{initialize_prefetcher, InitReport};
use crate::pipeline::PrefetchPipeline;
use crate::prefetcher::{Prefetcher, PreparedBatch};
use mgnn_graph::{Dataset, DatasetKind, Scale};
use mgnn_model::{
    train::{forward_backward, StepStats},
    GatModel, GcnModel, Model, ModelKind, Optimizer, SageModel, Sgd,
};
use mgnn_net::clock::PipelineClock;
use mgnn_net::metrics::MetricsSnapshot;
use mgnn_net::{Backend, CommMetrics, CostModel, FaultProfile, RetryPolicy, SimClock, SimCluster};
use mgnn_obs::registry;
use mgnn_obs::{Lane, Phase, SpanRecorder, StepAnchor, StepPoint, TrainerTrace};
use mgnn_partition::{
    build_local_partitions, multilevel_partition, split_train_nodes, LocalPartition,
};
use mgnn_sampling::{DataLoader, NeighborSampler, SamplingStrategy};
use serde::Serialize;
use std::sync::{Arc, Barrier};

/// Baseline DistDGL vs the paper's prefetch scheme.
#[derive(Debug, Clone, Copy)]
pub enum Mode {
    /// DistDGL semantics: every sampled halo feature fetched over RPC,
    /// serially with training.
    Baseline,
    /// MassiveGNN prefetch (+ optional eviction) with overlapped
    /// next-minibatch preparation.
    Prefetch(PrefetchConfig),
}

impl Mode {
    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            Mode::Baseline => "DistDGL".into(),
            Mode::Prefetch(c) => {
                if let crate::config::PrefetchPolicyKind::Lookahead { depth } = c.policy {
                    return format!("Prefetch+Lookahead(d={},f={})", depth, c.f_h);
                }
                if c.eviction {
                    format!("Prefetch+Evict(f={},γ={},Δ={})", c.f_h, c.gamma, c.delta)
                } else {
                    format!("Prefetch(f={})", c.f_h)
                }
            }
        }
    }
}

/// Full experiment configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Which OGB-like dataset preset.
    pub dataset: DatasetKind,
    /// Generation scale.
    pub scale: Scale,
    /// Number of graph partitions (= compute nodes; the paper uses
    /// #partitions = #nodes).
    pub num_parts: usize,
    /// Trainer PEs per compute node (4 in the paper).
    pub trainers_per_part: usize,
    /// Minibatch size per trainer (2000 in the paper, scaled here).
    pub batch_size: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Sampler fanouts, input layer first ({10, 25} in the paper).
    pub fanouts: Vec<usize>,
    /// Neighbor-selection strategy (the paper's default is uniform).
    pub sampling: SamplingStrategy,
    /// Hidden dimension (256-class scale in the paper; scaled here).
    pub hidden_dim: usize,
    /// GraphSAGE or GAT.
    pub model: ModelKind,
    /// Attention heads for GAT (2 in the paper).
    pub gat_heads: usize,
    /// CPU or GPU training backend (cost model).
    pub backend: Backend,
    /// Baseline vs prefetch.
    pub mode: Mode,
    /// Master seed.
    pub seed: u64,
    /// Cost model parameters.
    pub cost: CostModel,
    /// Run real tensor math + DDP updates (slower; exact parameters) or
    /// only the data pipeline + cost accounting (fast; identical counts).
    pub train_math: bool,
    /// Step every trainer on its own OS thread with a per-step DDP
    /// barrier (wall-clock parallelism; results are bitwise-identical to
    /// the sequential engine) instead of round-robin on one thread.
    ///
    /// Trainer threads are spawned *outside* the global kernel pool, so a
    /// `num_parts × trainers_per_part` world multiplies against the
    /// pool's size. On small machines set `MGNN_THREADS` (e.g. to 1) to
    /// keep `world × pool` within the core count; results are unaffected
    /// — the pool is bitwise-deterministic at any thread count.
    pub parallel: bool,
    /// Record per-phase spans, latency histograms, and per-step telemetry
    /// into [`RunReport::traces`]. Off by default; when off, no recorder
    /// exists anywhere and the report is bitwise-identical to an untraced
    /// run.
    pub trace: bool,
    /// Deterministic fault profile injected into every RPC server.
    /// `None` disables the chaos machinery entirely; a profile whose
    /// probabilities are all zero (`FaultProfile::off`) keeps the
    /// machinery armed but produces a bitwise-identical report to
    /// `None` — the identity tests pin exactly that.
    pub fault: Option<FaultProfile>,
    /// Retry/backoff policy failed pulls follow when `fault` is active.
    /// Backoff is charged to the *simulated* clock, never slept.
    pub retry: RetryPolicy,
    /// Recycle per-step buffers (prepare scratch, `PreparedBatch`
    /// carcasses, gradient-exchange arena, optimizer scratch) so the
    /// steady-state hot loop performs no heap allocation. Off restores
    /// allocate-per-step behavior; reports are bitwise-identical either
    /// way.
    pub pooling: bool,
    /// Mirror counters into the process-global live-telemetry registry
    /// ([`mgnn_obs::registry`]) so a Prometheus scrape server can expose
    /// them mid-run. Perturbs only wall-clock (a few atomic adds per
    /// step), never the simulated clock: the [`RunReport`] is
    /// bitwise-identical with telemetry on or off.
    pub telemetry: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            dataset: DatasetKind::Products,
            scale: Scale::Unit,
            num_parts: 2,
            trainers_per_part: 2,
            batch_size: 64,
            epochs: 2,
            fanouts: vec![10, 25],
            sampling: SamplingStrategy::Uniform,
            hidden_dim: 32,
            model: ModelKind::Sage,
            gat_heads: 2,
            backend: Backend::Cpu,
            mode: Mode::Baseline,
            seed: 42,
            cost: CostModel::default(),
            train_math: false,
            parallel: false,
            trace: false,
            fault: None,
            retry: RetryPolicy::default(),
            pooling: true,
            telemetry: false,
        }
    }
}

/// Modeled time breakdown accumulated over a trainer's whole run.
#[derive(Debug, Clone, Copy, Default)]
pub struct Breakdown {
    /// Neighbor sampling.
    pub sampling_s: f64,
    /// Buffer lookups.
    pub lookup_s: f64,
    /// Scoreboard maintenance.
    pub scoring_s: f64,
    /// Eviction rounds.
    pub evict_s: f64,
    /// Remote feature fetch.
    pub rpc_s: f64,
    /// Local feature copy.
    pub copy_s: f64,
    /// DDP training.
    pub train_s: f64,
    /// Lookahead-planned pulls (policy work off the critical RPC path;
    /// 0.0 under the scoreboard policy).
    pub planned_s: f64,
}

impl Breakdown {
    fn add_prepare(&mut self, t: &crate::prefetcher::PrepareTiming) {
        self.sampling_s += t.t_sampling;
        self.lookup_s += t.t_lookup;
        self.scoring_s += t.t_scoring;
        self.evict_s += t.t_evict;
        self.rpc_s += t.t_rpc;
        self.copy_s += t.t_copy;
        self.planned_s += t.t_planned;
    }

    /// Sum of all components (serial work, ignoring overlap).
    pub fn total_serial(&self) -> f64 {
        self.sampling_s
            + self.lookup_s
            + self.scoring_s
            + self.evict_s
            + self.rpc_s
            + self.copy_s
            + self.train_s
            + self.planned_s
    }

    /// The paper's §V-B5 communication stall:
    /// `t_communication = t_RPC − t_copy` (clamped at 0).
    pub fn communication_stall_s(&self) -> f64 {
        (self.rpc_s - self.copy_s).max(0.0)
    }

    /// The field corresponding to a tracing [`Phase`] (`None` for
    /// [`Phase::Allreduce`], which is a sub-span of `train_s`). Lets the
    /// trace-consistency checks compare span sums against this breakdown
    /// without hand-listing fields.
    pub fn phase_s(&self, phase: Phase) -> Option<f64> {
        match phase {
            Phase::Sampling => Some(self.sampling_s),
            Phase::Lookup => Some(self.lookup_s),
            Phase::Scoring => Some(self.scoring_s),
            Phase::Evict => Some(self.evict_s),
            Phase::Rpc => Some(self.rpc_s),
            Phase::Copy => Some(self.copy_s),
            Phase::Train => Some(self.train_s),
            Phase::Allreduce => None,
            // Fault time is already folded into `rpc_s`; its lane-level
            // span is an out-of-band annotation, not a breakdown field.
            Phase::Fault => None,
            // Planned pulls are out-of-band like Fault: tracked in
            // `planned_s` but emitted only on steps where the lookahead
            // planner actually pulled, so span-count checks over
            // `Phase::ALL` must not include them.
            Phase::Planned => None,
        }
    }
}

/// Per-trainer result.
#[derive(Debug, Clone)]
pub struct TrainerReport {
    /// Partition this trainer lives on.
    pub part_id: u32,
    /// Trainer index within the partition.
    pub trainer_id: u32,
    /// Simulated end-to-end time.
    pub sim_time_s: f64,
    /// Stall time (preparation exceeding training during overlap).
    pub stall_s: f64,
    /// Overlap efficiency (1.0 = the paper's perfect overlap).
    pub overlap_efficiency: f64,
    /// Exact communication counters.
    pub metrics: MetricsSnapshot,
    /// Per-minibatch hit/miss history.
    pub hits: HitRateTracker,
    /// Modeled time breakdown.
    pub breakdown: Breakdown,
    /// Prefetcher initialization cost (zeroed in baseline mode).
    pub init: InitReport,
    /// Halo nodes visible to this trainer's partition.
    pub num_halo: usize,
    /// Minibatches processed.
    pub minibatches: u64,
    /// Mean fraction of the partition's halo set sampled per minibatch
    /// (Fig. 10's right-hand series).
    pub remote_sampled_frac: f64,
    /// Peak bytes: persistent prefetcher state + largest per-step
    /// transient (Fig. 14).
    pub peak_bytes: usize,
}

/// Whole-run result.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Mode that ran.
    pub mode_label: String,
    /// Per-trainer reports.
    pub trainers: Vec<TrainerReport>,
    /// Makespan: slowest trainer's simulated time.
    pub makespan_s: f64,
    /// Synchronized steps per epoch.
    pub steps_per_epoch: usize,
    /// World size (total trainers).
    pub world: usize,
    /// Mean loss per epoch (empty unless `train_math`).
    pub epoch_loss: Vec<f32>,
    /// Mean minibatch accuracy per epoch (empty unless `train_math`).
    pub epoch_acc: Vec<f64>,
    /// Final model parameters of trainer 0 (empty unless `train_math`) —
    /// lets tests assert baseline ≡ prefetch.
    pub final_params: Vec<f32>,
    /// Per-trainer observability traces (empty unless
    /// [`EngineConfig::trace`]).
    pub traces: Vec<TrainerTrace>,
}

impl RunReport {
    /// Aggregate cumulative hit rate over all trainers.
    pub fn hit_rate(&self) -> f64 {
        let agg = self.aggregate_metrics();
        agg.hit_rate()
    }

    /// Sum of all trainers' counters.
    pub fn aggregate_metrics(&self) -> MetricsSnapshot {
        self.trainers
            .iter()
            .fold(MetricsSnapshot::default(), |a, t| a.merge(&t.metrics))
    }

    /// Mean overlap efficiency over trainers.
    pub fn mean_overlap_efficiency(&self) -> f64 {
        if self.trainers.is_empty() {
            return 1.0;
        }
        self.trainers
            .iter()
            .map(|t| t.overlap_efficiency)
            .sum::<f64>()
            / self.trainers.len() as f64
    }

    /// Total initialization cost across trainers.
    pub fn total_init_s(&self) -> f64 {
        self.trainers.iter().map(|t| t.init.total_s()).sum()
    }

    /// Load-imbalance factor: slowest trainer's time over the mean.
    /// 1.0 = perfectly balanced. The paper attributes arxiv's extreme
    /// GPU-side gains to severe imbalance (§V-A2: "6x more time on
    /// communication and data movement than training").
    pub fn load_imbalance(&self) -> f64 {
        if self.trainers.is_empty() {
            return 1.0;
        }
        let mean =
            self.trainers.iter().map(|t| t.sim_time_s).sum::<f64>() / self.trainers.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            self.makespan_s / mean
        }
    }
}

/// Per-trainer mutable state. Everything in here is `Send`, so the
/// threaded engine can move each trainer onto its own worker thread.
struct TrainerState {
    part: Arc<LocalPartition>,
    loader: DataLoader,
    sampler: NeighborSampler,
    prefetcher: Option<Prefetcher>,
    metrics: Arc<CommMetrics>,
    /// Same recorder the metrics carry; `None` when tracing is off.
    recorder: Option<Arc<SpanRecorder>>,
    clock: SimClock,
    pipeline: Option<PipelineClock>,
    hits: HitRateTracker,
    breakdown: Breakdown,
    init: InitReport,
    model: Option<Box<dyn Model>>,
    opt: Box<dyn Optimizer>,
    pending: Option<PreparedBatch>,
    halo_frac_sum: f64,
    peak_step_bytes: usize,
    /// Pooled parameter buffer for [`apply_averaged_grads`]
    /// (write-params → optimizer step → read-params round trip).
    params_scratch: Vec<f32>,
    /// Pooled per-step preparation scratch (baseline mode's inline
    /// prepares; the prefetch pipeline thread owns its own inside the
    /// [`Prefetcher`]).
    prep_scratch: crate::prefetcher::PrepareScratch,
    /// Consumed batch awaiting recycling into the next inline prepare.
    carcass: Option<PreparedBatch>,
}

/// Read-only per-run context shared by the sequential loop and every
/// worker thread. Both execution paths go through the same
/// [`TrainerState`] helpers below — that shared code (plus fixed
/// per-accumulator operation order) is what makes the threaded engine
/// bitwise-reproducible against the sequential one.
struct StepCtx<'a> {
    cfg: &'a EngineConfig,
    cost: &'a CostModel,
    world: usize,
    param_bytes: usize,
}

/// Whether OS threads can actually run concurrently here: true when the
/// user pinned a pool size via `MGNN_THREADS` (explicit intent — tests
/// and CI use it to force the threaded engine) or the host exposes more
/// than one core. Errors probing the core count err toward threading.
fn real_parallelism_available() -> bool {
    if std::env::var_os("MGNN_THREADS").is_some() {
        return true;
    }
    std::thread::available_parallelism()
        .map(|n| n.get() > 1)
        .unwrap_or(true)
}

/// f32 lanes per cache line.
const CELL_F32: usize = 16;

/// One 64-byte cache line of interior-mutable f32 storage. `repr(C)`
/// pins the `UnsafeCell` at offset 0 and `[f32; 16]` fills the line
/// exactly, so every byte of a `CacheCell` is inside its `UnsafeCell` —
/// the property that makes writing through pointers derived from a
/// shared `&[CacheCell]` sound.
#[repr(C, align(64))]
struct CacheCell(std::cell::UnsafeCell<[f32; CELL_F32]>);

/// Lock-free DDP gradient exchange: one cache-line-aligned gradient slot
/// per trainer plus a shared average region, in a single arena allocated
/// once per run. Replaces the `Mutex<Vec<Vec<f32>>>` + leader-allreduce
/// scheme — no lock, no per-step allocation, no single-threaded
/// reduction: thread `t` reduces ring chunk `t`, and the chunk grid is a
/// pure function of the gradient length ([`mgnn_model::ring_chunk_bounds`]),
/// so the f32 accumulation order — and therefore every low mantissa bit —
/// is independent of thread count and identical to the sequential ring.
///
/// Slot starts are padded to a whole number of cache lines, so two
/// trainers writing their slots concurrently never share a line (no
/// false sharing, and no cross-thread byte overlap at all).
///
/// # Phase protocol (threaded engine)
///
/// ```text
/// write own slot t   -- disjoint &mut [f32] per thread
///     barrier
/// reduce chunk t     -- shared reads of all slots, disjoint &mut of avg
///     barrier
/// apply shared avg   -- shared reads of avg
/// ```
///
/// Each phase's references are created inside the phase and dropped
/// before the barrier, so no `&mut` coexists with an aliasing access.
/// The barriers publish writes (acquire/release) between phases. A
/// thread looping into the next step writes only its own slot, which no
/// other thread touches outside the reduce phase it cannot reach before
/// the same barrier.
struct GradExchange {
    cells: Box<[CacheCell]>,
    len: usize,
    cells_per_slot: usize,
    world: usize,
}

// SAFETY: all shared mutation goes through `UnsafeCell` under the phase
// protocol above; disjointness of the mutable views is structural
// (per-thread slot index, per-thread ring chunk).
unsafe impl Sync for GradExchange {}

impl GradExchange {
    /// Arena for `world` gradient buffers of `len` f32s (+ the shared
    /// average region), zero-initialized.
    fn new(world: usize, len: usize) -> Self {
        assert!(world > 0);
        let cells_per_slot = len.div_ceil(CELL_F32).max(1);
        let cells: Box<[CacheCell]> = (0..cells_per_slot * (world + 1))
            .map(|_| CacheCell(std::cell::UnsafeCell::new([0.0; CELL_F32])))
            .collect();
        GradExchange {
            cells,
            len,
            cells_per_slot,
            world,
        }
    }

    /// Gradient length.
    fn len(&self) -> usize {
        self.len
    }

    /// First f32 of region `r` (slots `0..world`; the average at `world`).
    /// Provenance covers the whole arena: derived from the full-slice
    /// pointer, not a single element's.
    #[inline]
    fn region_ptr(&self, r: usize) -> *mut f32 {
        debug_assert!(r <= self.world);
        unsafe { (self.cells.as_ptr() as *mut f32).add(r * self.cells_per_slot * CELL_F32) }
    }

    /// Exclusive view of trainer `t`'s gradient slot.
    ///
    /// # Safety
    /// Caller must hold exclusive access to slot `t` for the lifetime of
    /// the returned slice (write phase: each thread touches only its own
    /// `t`; no reader exists until after the next barrier).
    #[allow(clippy::mut_from_ref)]
    unsafe fn slot_mut(&self, t: usize) -> &mut [f32] {
        std::slice::from_raw_parts_mut(self.region_ptr(t), self.len)
    }

    /// Shared view of trainer `t`'s gradient slot.
    ///
    /// # Safety
    /// No `&mut` to slot `t` may be live (reduce phase: all slots are
    /// read-only between the two barriers).
    unsafe fn slot(&self, t: usize) -> &[f32] {
        std::slice::from_raw_parts(self.region_ptr(t), self.len)
    }

    /// Exclusive view of ring chunk `c` of the shared average region.
    ///
    /// # Safety
    /// Caller must hold exclusive access to chunk `c` (reduce phase:
    /// each thread reduces only its own chunk; chunks tile `0..len`
    /// without overlap).
    #[allow(clippy::mut_from_ref)]
    unsafe fn avg_chunk_mut(&self, c: usize) -> &mut [f32] {
        let (s, e) = mgnn_model::ring_chunk_bounds(self.len, self.world, c);
        std::slice::from_raw_parts_mut(self.region_ptr(self.world).add(s), e - s)
    }

    /// Shared view of the full averaged gradient.
    ///
    /// # Safety
    /// No `&mut` into the average region may be live (apply phase, after
    /// the post-reduce barrier).
    unsafe fn avg(&self) -> &[f32] {
        std::slice::from_raw_parts(self.region_ptr(self.world), self.len)
    }

    /// Run the whole exchange on one thread (the sequential engine):
    /// write every trainer's slot, reduce all chunks, return the shared
    /// average. Same arena, same arithmetic, no aliasing subtleties.
    fn reduce_all(&mut self, mut write_slot: impl FnMut(usize, &mut [f32])) -> &[f32] {
        for t in 0..self.world {
            // SAFETY: `&mut self` guarantees exclusivity; views are
            // created and dropped one at a time.
            write_slot(t, unsafe { self.slot_mut(t) });
        }
        for c in 0..self.world {
            let dst = unsafe { self.avg_chunk_mut(c) };
            mgnn_model::reduce_ring_chunk_average_with(
                c,
                self.world,
                self.len,
                // SAFETY: slots are read-only while `dst` (average
                // region) is the only live mutable view.
                |r| unsafe { self.slot(r) },
                dst,
            );
        }
        unsafe { self.avg() }
    }
}

impl TrainerState {
    /// Fold one prepared batch's timing and counters into the per-trainer
    /// accumulators. Called once per batch in preparation order, so every
    /// floating-point sum sees the same operand sequence on both engines.
    fn account_prepared(&mut self, batch: &PreparedBatch, baseline: bool) {
        self.breakdown.add_prepare(&batch.timing);
        if baseline {
            self.hits.record(0, batch.counts.misses as u64);
        } else {
            self.hits
                .record(batch.counts.hits as u64, batch.counts.misses as u64);
        }
        self.halo_frac_sum += if self.part.num_halo() == 0 {
            0.0
        } else {
            batch.counts.halo as f64 / self.part.num_halo() as f64
        };
    }

    /// Train on one batch: modeled DDP time, the real tensor math when
    /// enabled, and the clock advance (serial Eq. 2 in baseline mode, the
    /// bounded-queue pipeline clock in prefetch mode). Returns the step's
    /// loss/accuracy when real math ran.
    fn train_on(
        &mut self,
        batch: &PreparedBatch,
        shape_model: &dyn Model,
        ctx: &StepCtx,
        global_step: u64,
    ) -> Option<StepStats> {
        let step_bytes = batch.input.data().len() * 4;
        self.peak_step_bytes = self.peak_step_bytes.max(step_bytes);

        // Training time for this batch.
        let macs = if let Some(m) = self.model.as_ref() {
            m.macs(&batch.minibatch.blocks)
        } else {
            shape_model.macs(&batch.minibatch.blocks)
        };
        let input_bytes = batch.input.data().len() * 4;
        let t_train = ctx.cost.t_ddp(
            macs,
            input_bytes,
            ctx.param_bytes,
            ctx.world,
            ctx.cfg.backend,
        );
        self.breakdown.train_s += t_train;

        // Live telemetry: step counters and modeled per-lane latencies.
        // Wall-clock only — nothing here feeds the simulated clock or the
        // report.
        if ctx.cfg.telemetry && registry::enabled() {
            registry::STEPS.inc();
            registry::STEP_LATENCY.record("prepare", batch.timing.t_prepare());
            registry::STEP_LATENCY.record("train", t_train);
        }

        // Real math, if enabled. Model math is workload, not trainer-loop
        // bookkeeping — its allocations are excluded from the hot count.
        let stats = self.model.as_mut().map(|model| {
            #[cfg(feature = "alloc-count")]
            let _workload = crate::alloc::ExcludeGuard::new();
            forward_backward(
                model.as_mut(),
                &batch.minibatch.blocks,
                &batch.input,
                &batch.labels,
            )
        });

        // Advance the clock: baseline is serial (Eq. 2); prefetch feeds
        // the bounded-queue pipeline clock (Eqs. 4–5 generalized to
        // lookahead ≥ 1). With tracing on, the clocks also yield this
        // step's timeline anchors (where the prepare window and the train
        // window landed in simulated time) and its telemetry sample.
        match ctx.cfg.mode {
            Mode::Baseline => {
                let t_fetch = batch.timing.t_rpc.max(batch.timing.t_copy);
                if let Some(rec) = &self.recorder {
                    let prep_start = self.clock.now();
                    rec.record_anchor(StepAnchor {
                        step: global_step,
                        prep_start_s: prep_start,
                        train_start_s: prep_start + batch.timing.t_sampling + t_fetch,
                    });
                    self.record_train_spans(rec, global_step, t_train, ctx);
                    rec.record_step(StepPoint {
                        step: global_step,
                        // §V-B5 per-step communication stall.
                        stall_s: (batch.timing.t_rpc - batch.timing.t_copy).max(0.0),
                        hits: batch.counts.hits as u64,
                        misses: batch.counts.misses as u64,
                        overlap_efficiency: 0.0, // Eq. 2: nothing overlaps
                    });
                }
                self.clock
                    .advance(batch.timing.t_sampling + t_fetch + t_train);
            }
            Mode::Prefetch(_) => {
                let times = self
                    .pipeline
                    .as_mut()
                    .unwrap()
                    .step_timed(batch.timing.t_prepare(), t_train);
                if let Some(rec) = &self.recorder {
                    rec.record_anchor(StepAnchor {
                        step: global_step,
                        prep_start_s: times.prep_start,
                        train_start_s: times.train_start,
                    });
                    self.record_train_spans(rec, global_step, t_train, ctx);
                    let waited = times.stall_s + times.slack_s;
                    rec.record_step(StepPoint {
                        step: global_step,
                        stall_s: times.stall_s,
                        hits: batch.counts.hits as u64,
                        misses: batch.counts.misses as u64,
                        overlap_efficiency: if waited == 0.0 {
                            1.0
                        } else {
                            times.slack_s / waited
                        },
                    });
                }
            }
        }
        stats
    }

    /// Record this step's `train` span (train-lane relative, so it starts
    /// at 0) with the ring-allreduce tail nested at its end.
    fn record_train_spans(&self, rec: &SpanRecorder, step: u64, t_train: f64, ctx: &StepCtx) {
        rec.record(Lane::Train, step, Phase::Train, 0.0, t_train);
        let t_ar = ctx.cost.t_allreduce(ctx.param_bytes, ctx.world);
        rec.record(Lane::Train, step, Phase::Allreduce, t_train - t_ar, t_ar);
    }

    /// DDP update with pre-averaged gradients: one optimizer step applied
    /// to the local replica (identical arithmetic on both engines). The
    /// parameter round-trip buffer is pooled — after the first step it
    /// never reallocates.
    fn apply_averaged_grads(&mut self, grads: &[f32]) {
        let m = self.model.as_mut().unwrap();
        self.params_scratch.clear();
        self.params_scratch.resize(m.num_params(), 0.0);
        m.write_params(&mut self.params_scratch);
        self.opt.step(&mut self.params_scratch, grads);
        m.read_params(&self.params_scratch);
    }
}

/// One fully-constructed experiment, reusable across modes.
pub struct Engine {
    cfg: EngineConfig,
    dataset: Dataset,
    parts: Vec<Arc<LocalPartition>>,
    cluster: Arc<SimCluster>,
    /// (partition, trainer-local seeds) per trainer.
    trainer_shards: Vec<(usize, Vec<u32>)>,
}

impl Engine {
    /// Build the experiment: generate, partition, shard, spawn servers.
    pub fn build(cfg: EngineConfig) -> Self {
        assert!(cfg.num_parts >= 1 && cfg.trainers_per_part >= 1);
        let dataset = Dataset::generate(cfg.dataset, cfg.scale, cfg.seed);
        let partitioning = multilevel_partition(&dataset.graph, cfg.num_parts, cfg.seed);
        let parts: Vec<Arc<LocalPartition>> =
            build_local_partitions(&dataset.graph, &partitioning, &dataset.train_nodes)
                .into_iter()
                .map(Arc::new)
                .collect();
        let cluster = Arc::new(SimCluster::with_faults(
            &dataset.features,
            &partitioning.assignment,
            cfg.num_parts,
            cfg.fault.clone(),
            cfg.retry.clone(),
        ));

        // Second-level split: train nodes of each partition among its
        // trainers, converted to partition-local ids.
        let mut trainer_shards = Vec::with_capacity(cfg.num_parts * cfg.trainers_per_part);
        for (pid, part) in parts.iter().enumerate() {
            let shards = split_train_nodes(
                &part.train_nodes,
                cfg.trainers_per_part,
                cfg.seed ^ (pid as u64).wrapping_mul(0x9e37),
            );
            for shard in shards {
                let local: Vec<u32> = shard
                    .iter()
                    .map(|&g| part.local_id(g).expect("train node not in partition"))
                    .collect();
                trainer_shards.push((pid, local));
            }
        }
        Engine {
            cfg,
            dataset,
            parts,
            cluster,
            trainer_shards,
        }
    }

    /// The generated dataset (for inspection).
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The per-partition views.
    pub fn partitions(&self) -> &[Arc<LocalPartition>] {
        &self.parts
    }

    /// Synchronized steps per epoch: the minimum shard's batch count
    /// (synchronous SGD requires all trainers present every step).
    pub fn steps_per_epoch(&self) -> usize {
        self.trainer_shards
            .iter()
            .map(|(_, s)| s.len().div_ceil(self.cfg.batch_size))
            .min()
            .unwrap_or(0)
    }

    /// Total trainers.
    pub fn world(&self) -> usize {
        self.trainer_shards.len()
    }

    fn make_model(&self) -> Box<dyn Model> {
        let feat = self.dataset.features.dim();
        let classes = self.dataset.features.num_classes();
        let dims = [feat, self.cfg.hidden_dim, classes];
        match self.cfg.model {
            ModelKind::Sage => Box::new(SageModel::new(&dims, self.cfg.seed ^ 0x6d30_6465)),
            ModelKind::Gat => Box::new(GatModel::new(
                &dims,
                self.cfg.gat_heads,
                self.cfg.seed ^ 0x6d30_6465,
            )),
            ModelKind::Gcn => Box::new(GcnModel::new(&dims, self.cfg.seed ^ 0x6d30_6465)),
        }
    }

    /// Build the per-trainer worker states in trainer order.
    fn build_trainer_states(&self) -> Vec<TrainerState> {
        let cfg = &self.cfg;
        let cost = &cfg.cost;
        let num_global = self.dataset.num_nodes();
        let total_steps = cfg.epochs * self.steps_per_epoch();
        self.trainer_shards
            .iter()
            .enumerate()
            .map(|(t, (pid, seeds))| {
                let part = Arc::clone(&self.parts[*pid]);
                let recorder = cfg
                    .trace
                    .then(|| Arc::new(SpanRecorder::for_trainer(t as u32, *pid as u32)));
                let mut metrics = match &recorder {
                    Some(r) => CommMetrics::with_recorder(Arc::clone(r)),
                    None => CommMetrics::new(),
                };
                // Trainer rank keys the deterministic request ids the
                // prefetcher tags its pulls with; set unconditionally —
                // it is a plain field, free when correlation is unused.
                metrics.set_trace_rank(t as u64);
                let metrics = Arc::new(metrics);
                let loader = DataLoader::new(
                    seeds.clone(),
                    cfg.batch_size,
                    cfg.seed ^ (t as u64).wrapping_mul(0x517c_c1b7_2722_0a95),
                );
                let sampler = NeighborSampler::with_strategy(
                    cfg.fanouts.clone(),
                    cfg.sampling,
                    cfg.seed ^ (t as u64).wrapping_mul(0xda94_2042_e4dd_58b5),
                );
                let mut init = InitReport::default();
                let prefetcher = match cfg.mode {
                    Mode::Baseline => None,
                    Mode::Prefetch(pcfg) => {
                        let (mut pf, rep) = initialize_prefetcher(
                            &part,
                            pcfg,
                            num_global,
                            &self.cluster,
                            cost,
                            &metrics,
                        );
                        pf.set_pooling(cfg.pooling);
                        if let crate::config::PrefetchPolicyKind::Lookahead { depth } = pcfg.policy
                        {
                            // The planner replays the run loop's
                            // step→(epoch, batch) mapping, so it must use
                            // the *engine's* synchronized steps-per-epoch
                            // (the min shard), not this loader's own
                            // batch count.
                            pf.set_policy(Box::new(crate::policy::LookaheadPolicy::new(
                                depth,
                                loader.clone(),
                                sampler.clone(),
                                self.steps_per_epoch(),
                                cfg.epochs,
                                part.num_halo(),
                            )));
                        }
                        init = rep;
                        Some(pf)
                    }
                };
                let pipeline = match cfg.mode {
                    Mode::Prefetch(pcfg) => {
                        Some(PipelineClock::new(pcfg.lookahead, init.total_s()))
                    }
                    Mode::Baseline => None,
                };
                TrainerState {
                    part,
                    pipeline,
                    loader,
                    sampler,
                    prefetcher,
                    metrics,
                    recorder,
                    clock: SimClock::new(),
                    hits: {
                        let mut h = HitRateTracker::new();
                        h.reserve(total_steps);
                        h
                    },
                    breakdown: Breakdown::default(),
                    init,
                    model: if cfg.train_math {
                        Some(self.make_model())
                    } else {
                        None
                    },
                    opt: Box::new(Sgd::new(0.05)),
                    pending: None,
                    halo_frac_sum: 0.0,
                    peak_step_bytes: 0,
                    params_scratch: Vec::new(),
                    prep_scratch: crate::prefetcher::PrepareScratch::default(),
                    carcass: None,
                }
            })
            .collect()
    }

    /// Run the configured mode end to end. With [`EngineConfig::parallel`]
    /// set, every trainer gets its own OS thread (plus a prepare thread in
    /// prefetch mode) and the run report is bitwise-identical to the
    /// sequential engine's; otherwise the trainers are stepped round-robin
    /// on the calling thread.
    ///
    /// `parallel` is adaptive: on a host without real parallelism
    /// (one core and no `MGNN_THREADS` override), spawning trainer
    /// threads only adds scheduling overhead, so the engine falls back to
    /// the sequential stepper — legal precisely because the two paths are
    /// bitwise-identical. Setting `MGNN_THREADS` forces the threaded path
    /// (the determinism CI matrix relies on this).
    pub fn run(&self) -> RunReport {
        // Arm the live-telemetry registry for this run. `enable` resets
        // every metric, so scraped totals are attributable to the run
        // that armed them; the registry stays enabled after the run so a
        // final snapshot (`--metrics-out`) sees the totals.
        if self.cfg.telemetry {
            registry::enable();
        }
        if self.cfg.parallel && real_parallelism_available() {
            self.run_parallel()
        } else {
            self.run_sequential()
        }
    }

    fn run_sequential(&self) -> RunReport {
        let cfg = &self.cfg;
        let world = self.world();
        let steps_per_epoch = self.steps_per_epoch();
        let cost = &cfg.cost;
        let mut trainers = self.build_trainer_states();

        // A shape-only model for MAC estimation when math is off.
        let shape_model = self.make_model();
        let ctx = StepCtx {
            cfg,
            cost,
            world,
            param_bytes: shape_model.num_params() * 4,
        };

        // Prefetch mode: prepare the first minibatch (Eq. 4's serial
        // term is accounted by the pipeline clock when the batch is
        // consumed).
        if matches!(cfg.mode, Mode::Prefetch(_)) && steps_per_epoch > 0 && cfg.epochs > 0 {
            for ts in trainers.iter_mut() {
                let seeds = ts.loader.epoch(0)[0].clone();
                let pf = ts.prefetcher.as_mut().unwrap();
                let batch = pf.prepare(
                    &ts.part,
                    &ts.sampler,
                    &seeds,
                    0,
                    0,
                    &self.cluster,
                    cost,
                    &ts.metrics,
                );
                ts.account_prepared(&batch, false);
                ts.pending = Some(batch);
            }
        }

        let mut epoch_loss = Vec::new();
        let mut epoch_acc = Vec::new();
        let total_steps = cfg.epochs * steps_per_epoch;

        // One gradient arena for the whole run: per-trainer padded slots
        // plus the shared average, reduced with the same chunked ring
        // arithmetic the threaded engine uses.
        let mut exchange = cfg
            .train_math
            .then(|| GradExchange::new(world, shape_model.num_params()));

        let mut global_step = 0u64;
        for epoch in 0..cfg.epochs as u64 {
            let mut loss_sum = 0.0f64;
            let mut acc_sum = 0.0f64;
            let mut stat_count = 0usize;
            for step in 0..steps_per_epoch as u64 {
                #[cfg(feature = "alloc-count")]
                let hot_start = (
                    crate::alloc::thread_allocs(),
                    crate::alloc::thread_excluded(),
                );
                // Each trainer: obtain current batch, compute training
                // time, prepare next batch (prefetch) or account serially
                // (baseline).
                for ts in trainers.iter_mut() {
                    let batch = match cfg.mode {
                        Mode::Baseline => {
                            if !cfg.pooling {
                                ts.prep_scratch = crate::prefetcher::PrepareScratch::default();
                            }
                            let b = {
                                #[cfg(feature = "alloc-count")]
                                let _workload = crate::alloc::ExcludeGuard::new();
                                let seeds = ts.loader.epoch(epoch)[step as usize].clone();
                                crate::prefetcher::baseline_prepare_reuse(
                                    ts.carcass.take(),
                                    &mut ts.prep_scratch,
                                    &ts.part,
                                    &ts.sampler,
                                    &seeds,
                                    epoch,
                                    global_step,
                                    &self.cluster,
                                    cost,
                                    &ts.metrics,
                                )
                            };
                            ts.account_prepared(&b, true);
                            b
                        }
                        Mode::Prefetch(_) => ts.pending.take().expect("queue empty"),
                    };
                    if let Some(stats) =
                        ts.train_on(&batch, shape_model.as_ref(), &ctx, global_step)
                    {
                        loss_sum += stats.loss as f64;
                        acc_sum += stats.accuracy;
                        stat_count += 1;
                    }

                    match cfg.mode {
                        // Baseline: the consumed batch becomes the next
                        // inline prepare's carcass.
                        Mode::Baseline => {
                            if cfg.pooling {
                                ts.carcass = Some(batch);
                            }
                        }
                        // Prefetch: prepare the next minibatch (the
                        // threaded engine runs this on a real prepare
                        // thread; here it interleaves with training and
                        // the overlap is modeled by the pipeline clock),
                        // dismantling the just-consumed batch.
                        Mode::Prefetch(_) => {
                            let next_global = global_step + 1;
                            if (next_global as usize) < total_steps {
                                let (nepoch, nstep) = (
                                    next_global / steps_per_epoch as u64,
                                    next_global % steps_per_epoch as u64,
                                );
                                let pf = ts.prefetcher.as_mut().unwrap();
                                let next = {
                                    #[cfg(feature = "alloc-count")]
                                    let _workload = crate::alloc::ExcludeGuard::new();
                                    let seeds = ts.loader.epoch(nepoch)[nstep as usize].clone();
                                    pf.prepare_reuse(
                                        cfg.pooling.then_some(batch),
                                        &ts.part,
                                        &ts.sampler,
                                        &seeds,
                                        nepoch,
                                        next_global,
                                        &self.cluster,
                                        cost,
                                        &ts.metrics,
                                    )
                                };
                                ts.account_prepared(&next, false);
                                ts.pending = Some(next);
                            }
                        }
                    }
                }

                // DDP synchronization (real math only): write every
                // trainer's gradients into its arena slot, reduce the
                // shared average chunk by chunk, and step every optimizer
                // with it — the allgather's "all ranks end bitwise
                // identical" property makes the shared copy exact.
                if let Some(ex) = exchange.as_mut() {
                    let avg = ex.reduce_all(|t, slot| {
                        trainers[t].model.as_ref().unwrap().write_grads(slot)
                    });
                    for ts in trainers.iter_mut() {
                        ts.apply_averaged_grads(avg);
                    }
                }
                #[cfg(feature = "alloc-count")]
                if epoch >= 1 {
                    let hot = (crate::alloc::thread_allocs() - hot_start.0)
                        - (crate::alloc::thread_excluded() - hot_start.1);
                    crate::alloc::record_hot_step(hot);
                }
                global_step += 1;
            }
            if cfg.train_math && stat_count > 0 {
                epoch_loss.push((loss_sum / stat_count as f64) as f32);
                epoch_acc.push(acc_sum / stat_count as f64);
            }
        }
        // Hot-step counts stay in the calling thread's accumulators
        // (`alloc::take_hot`); callers that want process-wide totals call
        // `alloc::flush_hot` themselves. The threaded engine's workers
        // flush as they exit because their TLS dies with them.

        self.finalize(trainers, total_steps, epoch_loss, epoch_acc)
    }

    /// Threaded engine: one worker thread per trainer (plus one prepare
    /// thread per trainer in prefetch mode, via [`PrefetchPipeline`]).
    /// With `train_math`, workers exchange gradients through a lock-free
    /// [`GradExchange`] arena: write own padded slot → barrier → reduce
    /// own ring chunk of the shared average → barrier → apply. The chunk
    /// arithmetic is exactly the sequential engine's (and the old leader
    /// ring-allreduce's), so reports stay bitwise identical.
    fn run_parallel(&self) -> RunReport {
        let cfg = &self.cfg;
        let world = self.world();
        let steps_per_epoch = self.steps_per_epoch();
        let total_steps = cfg.epochs * steps_per_epoch;
        let trainers = self.build_trainer_states();
        let num_params = self.make_model().num_params();
        let ctx = StepCtx {
            cfg,
            cost: &cfg.cost,
            world,
            param_bytes: num_params * 4,
        };

        // One cache-line-aligned gradient slot per trainer plus the
        // shared average, allocated once for the whole run.
        let exchange = cfg.train_math.then(|| GradExchange::new(world, num_params));
        let barrier = Barrier::new(world);

        let mut results: Vec<(TrainerState, Vec<StepStats>)> = Vec::with_capacity(world);
        std::thread::scope(|s| {
            let handles: Vec<_> = trainers
                .into_iter()
                .enumerate()
                .map(|(t, mut ts)| {
                    let ctx = &ctx;
                    let barrier = &barrier;
                    let exchange = &exchange;
                    s.spawn(move || {
                        let shape_model = self.make_model();
                        let mut stats_log: Vec<StepStats> = Vec::with_capacity(total_steps);
                        // Prefetch mode: hand the prefetcher to a dedicated
                        // prepare thread walking the engine's epoch/step
                        // schedule; this worker consumes its bounded queue.
                        let feed = ts.prefetcher.take().map(|pf| {
                            PrefetchPipeline::spawn(
                                pf,
                                Arc::clone(&ts.part),
                                ts.sampler.clone(),
                                ts.loader.clone(),
                                Arc::clone(&self.cluster),
                                cfg.cost.clone(),
                                Arc::clone(&ts.metrics),
                                cfg.epochs,
                                steps_per_epoch,
                            )
                        });
                        let mut global_step = 0u64;
                        for epoch in 0..cfg.epochs as u64 {
                            for step in 0..steps_per_epoch as u64 {
                                #[cfg(feature = "alloc-count")]
                                let hot_start = (
                                    crate::alloc::thread_allocs(),
                                    crate::alloc::thread_excluded(),
                                );
                                let batch = if let Some(feed) = &feed {
                                    let b = feed.next().expect("prepare thread ended early");
                                    ts.account_prepared(&b, false);
                                    b
                                } else {
                                    if !cfg.pooling {
                                        ts.prep_scratch =
                                            crate::prefetcher::PrepareScratch::default();
                                    }
                                    let b = {
                                        #[cfg(feature = "alloc-count")]
                                        let _workload = crate::alloc::ExcludeGuard::new();
                                        let seeds = ts.loader.epoch(epoch)[step as usize].clone();
                                        crate::prefetcher::baseline_prepare_reuse(
                                            ts.carcass.take(),
                                            &mut ts.prep_scratch,
                                            &ts.part,
                                            &ts.sampler,
                                            &seeds,
                                            epoch,
                                            global_step,
                                            &self.cluster,
                                            ctx.cost,
                                            &ts.metrics,
                                        )
                                    };
                                    ts.account_prepared(&b, true);
                                    b
                                };
                                if let Some(stats) =
                                    ts.train_on(&batch, shape_model.as_ref(), ctx, global_step)
                                {
                                    stats_log.push(stats);
                                }
                                // Return the consumed batch's buffers: to the
                                // prepare thread in prefetch mode, or as the
                                // next inline prepare's carcass in baseline.
                                if cfg.pooling {
                                    match &feed {
                                        Some(feed) => feed.recycle(batch),
                                        None => ts.carcass = Some(batch),
                                    }
                                }
                                if let Some(ex) = exchange {
                                    // Phase 1: publish own gradients. Slots
                                    // are disjoint, so no lock is needed.
                                    {
                                        let m = ts.model.as_ref().unwrap();
                                        // SAFETY: only thread `t` touches
                                        // slot `t`, and no thread reads any
                                        // slot until the barrier below.
                                        m.write_grads(unsafe { ex.slot_mut(t) });
                                    }
                                    barrier.wait();
                                    // Phase 2: reduce own ring chunk of the
                                    // shared average from the (now frozen)
                                    // slots.
                                    {
                                        // SAFETY: avg chunks are disjoint
                                        // per thread; slots are only read
                                        // between the two barriers.
                                        let dst = unsafe { ex.avg_chunk_mut(t) };
                                        mgnn_model::reduce_ring_chunk_average_with(
                                            t,
                                            world,
                                            ex.len(),
                                            |r| unsafe { ex.slot(r) },
                                            dst,
                                        );
                                    }
                                    barrier.wait();
                                    // Phase 3: everyone reads the shared
                                    // average (writes resume only after the
                                    // next step's phase-1 barrier).
                                    ts.apply_averaged_grads(unsafe { ex.avg() });
                                }
                                #[cfg(feature = "alloc-count")]
                                if epoch >= 1 {
                                    let hot = (crate::alloc::thread_allocs() - hot_start.0)
                                        - (crate::alloc::thread_excluded() - hot_start.1);
                                    crate::alloc::record_hot_step(hot);
                                }
                                global_step += 1;
                            }
                        }
                        // Recover the prefetcher (buffer + scoreboards) for
                        // the memory accounting in the report.
                        if let Some(feed) = feed {
                            ts.prefetcher = Some(feed.join());
                        }
                        #[cfg(feature = "alloc-count")]
                        crate::alloc::flush_hot();
                        (ts, stats_log)
                    })
                })
                .collect();
            // Join in trainer order so reports keep their indices.
            results = handles
                .into_iter()
                .map(|h| h.join().expect("trainer thread panicked"))
                .collect();
        });

        let (trainers, stats): (Vec<TrainerState>, Vec<Vec<StepStats>>) =
            results.into_iter().unzip();

        // Fold epoch statistics in the sequential engine's exact order
        // (step-major, trainer-minor) so the f64 sums are bitwise equal.
        let mut epoch_loss = Vec::new();
        let mut epoch_acc = Vec::new();
        if cfg.train_math {
            for epoch in 0..cfg.epochs {
                let mut loss_sum = 0.0f64;
                let mut acc_sum = 0.0f64;
                let mut stat_count = 0usize;
                for step in 0..steps_per_epoch {
                    let g = epoch * steps_per_epoch + step;
                    for per_trainer in &stats {
                        let st = per_trainer[g];
                        loss_sum += st.loss as f64;
                        acc_sum += st.accuracy;
                        stat_count += 1;
                    }
                }
                if stat_count > 0 {
                    epoch_loss.push((loss_sum / stat_count as f64) as f32);
                    epoch_acc.push(acc_sum / stat_count as f64);
                }
            }
        }
        self.finalize(trainers, total_steps, epoch_loss, epoch_acc)
    }

    /// Assemble the [`RunReport`] from finished trainer states (shared by
    /// both execution paths).
    fn finalize(
        &self,
        trainers: Vec<TrainerState>,
        total_steps: usize,
        epoch_loss: Vec<f32>,
        epoch_acc: Vec<f64>,
    ) -> RunReport {
        let cfg = &self.cfg;
        let traces: Vec<TrainerTrace> = trainers
            .iter()
            .filter_map(|ts| ts.recorder.as_ref().map(|r| r.snapshot()))
            .collect();
        let final_params = if cfg.train_math && !trainers.is_empty() {
            let m = trainers[0].model.as_ref().unwrap();
            let mut p = vec![0.0f32; m.num_params()];
            m.write_params(&mut p);
            p
        } else {
            Vec::new()
        };

        let reports: Vec<TrainerReport> = trainers
            .into_iter()
            .enumerate()
            .map(|(t, ts)| {
                let minibatches = total_steps as u64;
                let persistent = ts
                    .prefetcher
                    .as_ref()
                    .map(|p| p.heap_bytes() + p.peak_transient_bytes())
                    .unwrap_or(0);
                let (sim_time_s, stall_s, overlap_efficiency) = match &ts.pipeline {
                    Some(p) => (p.now(), p.stall(), p.overlap_efficiency()),
                    None => (
                        ts.clock.now(),
                        ts.clock.stall(),
                        ts.clock.overlap_efficiency(),
                    ),
                };
                TrainerReport {
                    part_id: ts.part.part_id,
                    trainer_id: (t % cfg.trainers_per_part) as u32,
                    sim_time_s,
                    stall_s,
                    overlap_efficiency,
                    metrics: ts.metrics.snapshot(),
                    remote_sampled_frac: if minibatches == 0 {
                        0.0
                    } else {
                        ts.halo_frac_sum / ts.hits.len().max(1) as f64
                    },
                    hits: ts.hits,
                    breakdown: ts.breakdown,
                    init: ts.init,
                    num_halo: ts.part.num_halo(),
                    minibatches,
                    peak_bytes: persistent + ts.peak_step_bytes,
                }
            })
            .collect();

        let makespan = reports.iter().map(|r| r.sim_time_s).fold(0.0f64, f64::max);

        let report = RunReport {
            mode_label: cfg.mode.label(),
            trainers: reports,
            makespan_s: makespan,
            steps_per_epoch: self.steps_per_epoch(),
            world: self.world(),
            epoch_loss,
            epoch_acc,
            final_params,
            traces,
        };
        // Final telemetry gauges: run-level summaries a mid-run scrape
        // can't derive from counters alone.
        if cfg.telemetry && registry::enabled() {
            registry::HIT_RATE.set(report.hit_rate());
            registry::MAKESPAN.set(report.makespan_s);
            registry::WORLD.set(report.world as f64);
        }
        // Hand a copy to the global capture sink, if one is installed
        // (the repro binary's trace/JSON export path). One atomic load
        // when no sink exists.
        if mgnn_obs::sink::enabled() {
            mgnn_obs::sink::push(mgnn_obs::RunCapture {
                label: report.mode_label.clone(),
                report: report.to_value(),
                traces: report.traces.clone(),
            });
        }
        report
    }

    /// Evaluate model parameters (as returned in
    /// [`RunReport::final_params`]) on the dataset's validation split:
    /// forward-only inference over every partition's validation nodes with
    /// ground-truth features gathered straight from the KVStores.
    /// Returns accuracy in `[0, 1]`.
    pub fn evaluate(&self, params: &[f32]) -> f64 {
        let mut model = self.make_model();
        assert_eq!(params.len(), model.num_params(), "parameter shape mismatch");
        model.read_params(params);
        let sampler = NeighborSampler::new(self.cfg.fanouts.clone(), self.cfg.seed ^ 0xe5a1);
        let mut correct = 0usize;
        let mut total = 0usize;
        for part in &self.parts {
            // Validation nodes owned by this partition.
            let val: Vec<u32> = self
                .dataset
                .val_nodes
                .iter()
                .filter_map(|&g| {
                    part.local_id(g)
                        .filter(|&l| (l as usize) < part.num_local())
                })
                .collect();
            let store = self.cluster.store(part.part_id);
            for chunk in val.chunks(self.cfg.batch_size.max(1)) {
                let mb = sampler.sample(part, chunk, 0, 0);
                let dim = self.cluster.dim();
                let mut input = Vec::with_capacity(mb.input_nodes.len() * dim);
                for &lid in &mb.input_nodes {
                    let gid = part.global_id(lid);
                    let owner = self.cluster.owner(gid);
                    input.extend_from_slice(self.cluster.store(owner).row(gid));
                }
                let input = mgnn_tensor::Tensor::from_vec(mb.input_nodes.len(), dim, input);
                let logits = model.forward(&mb.blocks, &input);
                let labels: Vec<u32> = mb
                    .seeds
                    .iter()
                    .map(|&l| store.label(part.local_nodes[l as usize]))
                    .collect();
                let acc = mgnn_tensor::loss::accuracy(&logits, &labels);
                correct += (acc * labels.len() as f64).round() as usize;
                total += labels.len();
            }
        }
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PrefetchPolicyKind, ScoreLayout};

    fn base_cfg() -> EngineConfig {
        EngineConfig {
            dataset: DatasetKind::Products,
            scale: Scale::Unit,
            num_parts: 2,
            trainers_per_part: 2,
            batch_size: 64,
            epochs: 2,
            fanouts: vec![5, 10],
            hidden_dim: 16,
            ..Default::default()
        }
    }

    fn prefetch_mode() -> Mode {
        Mode::Prefetch(PrefetchConfig {
            f_h: 0.35,
            gamma: 0.995,
            delta: 8,
            eviction: true,
            layout: ScoreLayout::Dense,
            lookahead: 1,
            policy: PrefetchPolicyKind::Scoreboard,
        })
    }

    #[test]
    fn baseline_smoke() {
        let engine = Engine::build(base_cfg());
        let report = engine.run();
        assert_eq!(report.world, 4);
        assert!(report.steps_per_epoch > 0);
        assert!(report.makespan_s > 0.0);
        assert_eq!(report.hit_rate(), 0.0, "baseline has no buffer");
        let agg = report.aggregate_metrics();
        assert!(agg.remote_nodes_fetched > 0);
        assert!(agg.rpc_calls > 0);
        for t in &report.trainers {
            assert!(t.sim_time_s > 0.0);
            assert!(t.breakdown.train_s > 0.0);
            assert!(t.breakdown.rpc_s > 0.0);
            assert_eq!(t.init.total_s(), 0.0);
        }
    }

    #[test]
    fn prefetch_reduces_remote_fetches_and_time() {
        let mut cfg = base_cfg();
        let baseline = Engine::build(cfg.clone()).run();
        cfg.mode = prefetch_mode();
        let prefetch = Engine::build(cfg).run();

        let b = baseline.aggregate_metrics();
        let p = prefetch.aggregate_metrics();
        assert!(
            p.remote_nodes_fetched < b.remote_nodes_fetched,
            "prefetch {} should fetch fewer remote nodes than baseline {}",
            p.remote_nodes_fetched,
            b.remote_nodes_fetched
        );
        assert!(
            prefetch.hit_rate() > 0.2,
            "hit rate {}",
            prefetch.hit_rate()
        );
        assert!(
            prefetch.makespan_s < baseline.makespan_s,
            "prefetch {} vs baseline {}",
            prefetch.makespan_s,
            baseline.makespan_s
        );
    }

    #[test]
    fn oracle_prefetch_trains_identically_to_baseline() {
        // The paper: "accuracy remains unchanged ... optimizes the
        // pre-training data pipeline without altering the underlying
        // training process". Strongest possible check: bitwise-equal
        // final parameters under the same seeds.
        let mut cfg = base_cfg();
        cfg.train_math = true;
        cfg.epochs = 2;
        let baseline = Engine::build(cfg.clone()).run();
        cfg.mode = prefetch_mode();
        let prefetch = Engine::build(cfg).run();
        assert!(!baseline.final_params.is_empty());
        assert_eq!(
            baseline.final_params, prefetch.final_params,
            "prefetching must not alter training"
        );
        assert_eq!(baseline.epoch_loss, prefetch.epoch_loss);
    }

    #[test]
    fn loss_decreases_with_training() {
        let mut cfg = base_cfg();
        cfg.train_math = true;
        cfg.epochs = 5;
        let report = Engine::build(cfg).run();
        assert_eq!(report.epoch_loss.len(), 5);
        let first = report.epoch_loss[0];
        let last = *report.epoch_loss.last().unwrap();
        assert!(last < first, "loss {first} -> {last} did not decrease");
        assert!(*report.epoch_acc.last().unwrap() > report.epoch_acc[0] * 0.9);
    }

    #[test]
    fn cpu_overlap_better_than_gpu() {
        // Use a compute-heavy configuration (paper-like hidden dim and
        // fanouts) so CPU training is long enough to hide preparation;
        // tiny hidden sizes make even CPU compute shorter than one RPC
        // latency, which is not the paper's regime.
        let mut cfg = base_cfg();
        cfg.hidden_dim = 128;
        cfg.batch_size = 128;
        cfg.fanouts = vec![10, 25];
        cfg.mode = prefetch_mode();
        let cpu = Engine::build(cfg.clone()).run();
        cfg.backend = Backend::Gpu;
        let gpu = Engine::build(cfg).run();
        assert!(
            cpu.mean_overlap_efficiency() >= gpu.mean_overlap_efficiency(),
            "cpu {} vs gpu {}",
            cpu.mean_overlap_efficiency(),
            gpu.mean_overlap_efficiency()
        );
        // CPU should be at or near perfect overlap (Fig. 9).
        assert!(
            cpu.mean_overlap_efficiency() > 0.9,
            "cpu overlap {}",
            cpu.mean_overlap_efficiency()
        );
    }

    #[test]
    fn gat_runs_end_to_end() {
        let mut cfg = base_cfg();
        cfg.model = ModelKind::Gat;
        cfg.mode = prefetch_mode();
        cfg.train_math = true;
        cfg.epochs = 1;
        let report = Engine::build(cfg).run();
        assert!(report.makespan_s > 0.0);
        assert!(!report.epoch_loss.is_empty());
        assert!(report.epoch_loss[0].is_finite());
    }

    #[test]
    fn eviction_disabled_never_evicts() {
        let mut cfg = base_cfg();
        cfg.mode = Mode::Prefetch(PrefetchConfig {
            eviction: false,
            ..PrefetchConfig::default()
        });
        let report = Engine::build(cfg).run();
        assert_eq!(report.aggregate_metrics().evictions, 0);
        assert!(report.hit_rate() > 0.0);
    }

    #[test]
    fn eviction_enabled_evicts_and_tracks() {
        let mut cfg = base_cfg();
        cfg.epochs = 4;
        cfg.mode = Mode::Prefetch(PrefetchConfig {
            f_h: 0.25,
            gamma: 0.95,
            delta: 4,
            eviction: true,
            layout: ScoreLayout::Dense,
            lookahead: 1,
            policy: PrefetchPolicyKind::Scoreboard,
        });
        let report = Engine::build(cfg).run();
        let agg = report.aggregate_metrics();
        assert!(agg.evictions > 0, "no evictions happened");
        assert_eq!(agg.evictions, agg.replacements_fetched);
    }

    #[test]
    fn dense_and_mem_efficient_layouts_agree_on_counts() {
        let mut cfg = base_cfg();
        cfg.mode = Mode::Prefetch(PrefetchConfig {
            layout: ScoreLayout::Dense,
            delta: 4,
            ..PrefetchConfig::default()
        });
        let dense = Engine::build(cfg.clone()).run();
        cfg.mode = Mode::Prefetch(PrefetchConfig {
            layout: ScoreLayout::MemEfficient,
            delta: 4,
            ..PrefetchConfig::default()
        });
        let me = Engine::build(cfg).run();
        // Same hits/misses/evictions — only memory/time costs differ.
        let d = dense.aggregate_metrics();
        let m = me.aggregate_metrics();
        assert_eq!(d.buffer_hits, m.buffer_hits);
        assert_eq!(d.buffer_misses, m.buffer_misses);
        assert_eq!(d.evictions, m.evictions);
        // Mem-efficient costs more scoring time (binary search).
        let dt: f64 = dense.trainers.iter().map(|t| t.breakdown.scoring_s).sum();
        let mt: f64 = me.trainers.iter().map(|t| t.breakdown.scoring_s).sum();
        assert!(mt >= dt);
    }

    #[test]
    fn deterministic_runs() {
        let mut cfg = base_cfg();
        cfg.mode = prefetch_mode();
        let a = Engine::build(cfg.clone()).run();
        let b = Engine::build(cfg).run();
        assert_eq!(a.makespan_s, b.makespan_s);
        assert_eq!(a.aggregate_metrics(), b.aggregate_metrics());
    }

    #[test]
    fn gpu_faster_than_cpu_in_wallclock() {
        let mut cfg = base_cfg();
        cfg.mode = prefetch_mode();
        let cpu = Engine::build(cfg.clone()).run();
        cfg.backend = Backend::Gpu;
        let gpu = Engine::build(cfg).run();
        assert!(gpu.makespan_s < cpu.makespan_s);
    }

    #[test]
    fn evaluate_trained_model_beats_chance() {
        let mut cfg = base_cfg();
        cfg.train_math = true;
        cfg.epochs = 6;
        let engine = Engine::build(cfg);
        let report = engine.run();
        let acc = engine.evaluate(&report.final_params);
        // Products-like has 47 classes but imbalanced priors; trained
        // accuracy should still be far above the ~6% majority-class-ish
        // floor after a few epochs on label-correlated features.
        assert!(acc > 0.15, "validation accuracy {acc}");
        // And an untrained model does worse.
        let fresh = Engine::build(base_cfg());
        let n = report.final_params.len();
        let untrained = fresh.evaluate(&vec![0.01f32; n]);
        assert!(acc > untrained, "trained {acc} vs untrained {untrained}");
    }

    #[test]
    fn table3_style_minibatch_counts() {
        // More trainers ⇒ fewer minibatches per trainer (constant batch
        // size), the Table III relationship.
        let mut cfg = base_cfg();
        cfg.trainers_per_part = 1;
        let few = Engine::build(cfg.clone());
        cfg.trainers_per_part = 4;
        let many = Engine::build(cfg);
        assert!(many.steps_per_epoch() < few.steps_per_epoch());
    }

    #[test]
    fn deeper_lookahead_never_hurts() {
        let mut cfg = base_cfg();
        cfg.epochs = 4;
        let mut times = Vec::new();
        let mut stalls = Vec::new();
        for lookahead in [1usize, 4] {
            cfg.mode = Mode::Prefetch(PrefetchConfig {
                f_h: 0.25,
                gamma: 0.95,
                delta: 4,
                lookahead,
                ..Default::default()
            });
            cfg.backend = Backend::Gpu;
            let r = Engine::build(cfg.clone()).run();
            times.push(r.makespan_s);
            stalls.push(r.trainers.iter().map(|t| t.stall_s).sum::<f64>());
        }
        assert!(
            times[1] <= times[0] * 1.0001,
            "deeper queue slower: {times:?}"
        );
        assert!(
            stalls[1] <= stalls[0] + 1e-9,
            "deeper queue stalls more: {stalls:?}"
        );
    }

    #[test]
    fn load_imbalance_reported() {
        let report = Engine::build(base_cfg()).run();
        let li = report.load_imbalance();
        assert!(li >= 1.0, "imbalance {li} below 1");
        assert!(li < 3.0, "implausible imbalance {li}");
    }

    /// Field-by-field bitwise comparison of two run reports.
    fn assert_reports_identical(a: &RunReport, b: &RunReport) {
        assert_eq!(a.mode_label, b.mode_label);
        assert_eq!(a.final_params, b.final_params, "final params differ");
        assert_eq!(a.epoch_loss, b.epoch_loss, "epoch losses differ");
        assert_eq!(a.epoch_acc, b.epoch_acc, "epoch accuracies differ");
        assert_eq!(a.aggregate_metrics(), b.aggregate_metrics());
        assert_eq!(a.makespan_s, b.makespan_s, "makespan differs");
        assert_eq!(a.trainers.len(), b.trainers.len());
        for (x, y) in a.trainers.iter().zip(&b.trainers) {
            assert_eq!(x.part_id, y.part_id);
            assert_eq!(x.sim_time_s, y.sim_time_s, "sim time differs");
            assert_eq!(x.stall_s, y.stall_s);
            assert_eq!(x.overlap_efficiency, y.overlap_efficiency);
            assert_eq!(x.metrics, y.metrics, "per-trainer metrics differ");
            assert_eq!(x.minibatches, y.minibatches);
            assert_eq!(x.peak_bytes, y.peak_bytes, "peak bytes differ");
            assert_eq!(x.remote_sampled_frac, y.remote_sampled_frac);
            assert_eq!(x.hits.len(), y.hits.len());
            for i in 0..x.hits.len() {
                assert_eq!(x.hits.at(i), y.hits.at(i), "hit history differs at {i}");
            }
            assert_eq!(x.breakdown.sampling_s, y.breakdown.sampling_s);
            assert_eq!(x.breakdown.lookup_s, y.breakdown.lookup_s);
            assert_eq!(x.breakdown.scoring_s, y.breakdown.scoring_s);
            assert_eq!(x.breakdown.evict_s, y.breakdown.evict_s);
            assert_eq!(x.breakdown.rpc_s, y.breakdown.rpc_s);
            assert_eq!(x.breakdown.copy_s, y.breakdown.copy_s);
            assert_eq!(x.breakdown.train_s, y.breakdown.train_s);
        }
    }

    #[test]
    fn threaded_baseline_bitwise_identical_to_sequential() {
        let mut cfg = base_cfg();
        cfg.train_math = true;
        let seq = Engine::build(cfg.clone()).run();
        cfg.parallel = true;
        let par = Engine::build(cfg).run();
        assert!(!seq.final_params.is_empty());
        assert_reports_identical(&seq, &par);
    }

    #[test]
    fn threaded_prefetch_bitwise_identical_to_sequential() {
        let mut cfg = base_cfg();
        cfg.train_math = true;
        cfg.mode = prefetch_mode();
        let seq = Engine::build(cfg.clone()).run();
        cfg.parallel = true;
        let par = Engine::build(cfg).run();
        assert!(!seq.final_params.is_empty());
        assert!(
            seq.aggregate_metrics().evictions > 0,
            "want evictions in play"
        );
        assert_reports_identical(&seq, &par);
    }

    #[test]
    fn threaded_prefetch_identical_without_math() {
        // Without train_math there is no barrier at all — workers run
        // fully independently — and the counts must still match.
        let mut cfg = base_cfg();
        cfg.mode = prefetch_mode();
        let seq = Engine::build(cfg.clone()).run();
        cfg.parallel = true;
        let par = Engine::build(cfg).run();
        assert_reports_identical(&seq, &par);
    }

    #[test]
    fn pooling_off_bitwise_identical_to_pooled() {
        // Buffer recycling is a pure allocation optimization: turning it
        // off (fresh allocations every step, the pre-pooling behavior)
        // must not change a single bit of the report, in either mode on
        // either engine.
        for prefetch in [false, true] {
            let mut cfg = base_cfg();
            cfg.train_math = true;
            if prefetch {
                cfg.mode = prefetch_mode();
            }
            let pooled = Engine::build(cfg.clone()).run();
            cfg.pooling = false;
            let fresh = Engine::build(cfg.clone()).run();
            assert!(!pooled.final_params.is_empty());
            assert_reports_identical(&pooled, &fresh);
            cfg.parallel = true;
            let fresh_par = Engine::build(cfg).run();
            assert_reports_identical(&pooled, &fresh_par);
        }
    }

    /// The PR's headline claim, proven by the counting allocator: once
    /// the warmup epoch has stretched every pooled buffer to its
    /// high-water mark, steady-state steps allocate *nothing* in the
    /// trainer hot loop (preparation and model math are excluded as
    /// workload; see `alloc`).
    #[cfg(feature = "alloc-count")]
    #[test]
    fn steady_state_steps_allocate_nothing() {
        for prefetch in [false, true] {
            let mut cfg = base_cfg();
            cfg.train_math = true;
            cfg.epochs = 3;
            if prefetch {
                cfg.mode = prefetch_mode();
            }
            let engine = Engine::build(cfg);
            let steps_per_epoch = engine.steps_per_epoch();
            crate::alloc::take_hot(); // discard anything a previous run left
            let report = engine.run();
            assert!(!report.final_params.is_empty());
            let (hot_allocs, hot_steps) = crate::alloc::take_hot();
            // Sequential engine records on this thread: epochs 1..3.
            assert_eq!(hot_steps, (2 * steps_per_epoch) as u64);
            assert_eq!(
                hot_allocs, 0,
                "steady-state trainer loop must not allocate \
                 ({hot_allocs} allocations over {hot_steps} steps, prefetch={prefetch})"
            );
        }
    }

    #[test]
    fn breakdown_total_serial_sums_all_components() {
        let b = Breakdown {
            sampling_s: 1.0,
            lookup_s: 2.0,
            scoring_s: 4.0,
            evict_s: 8.0,
            rpc_s: 16.0,
            copy_s: 32.0,
            train_s: 64.0,
            planned_s: 128.0,
        };
        assert_eq!(b.total_serial(), 255.0);
        assert_eq!(Breakdown::default().total_serial(), 0.0);
    }

    #[test]
    fn communication_stall_clamps_at_zero() {
        let mut b = Breakdown {
            rpc_s: 5.0,
            copy_s: 2.0,
            ..Default::default()
        };
        assert_eq!(b.communication_stall_s(), 3.0);
        // Copy dominating RPC must clamp to zero, not go negative.
        b.rpc_s = 1.0;
        b.copy_s = 4.0;
        assert_eq!(b.communication_stall_s(), 0.0);
        assert_eq!(Breakdown::default().communication_stall_s(), 0.0);
    }

    #[test]
    fn tracing_does_not_change_the_report() {
        // The disabled-by-default contract, and its converse: turning
        // tracing ON must also leave every report field untouched (the
        // recorder only observes).
        for parallel in [false, true] {
            for mode in [Mode::Baseline, prefetch_mode()] {
                let mut cfg = base_cfg();
                cfg.mode = mode;
                cfg.parallel = parallel;
                let plain = Engine::build(cfg.clone()).run();
                cfg.trace = true;
                let traced = Engine::build(cfg).run();
                assert_reports_identical(&plain, &traced);
                assert!(plain.traces.is_empty(), "no traces without the flag");
                assert_eq!(traced.traces.len(), plain.world);
            }
        }
    }

    /// Shared trace-consistency assertions: every phase present with
    /// histogram counts equal to the step count, and span sums matching
    /// the breakdown fields.
    fn assert_trace_matches_breakdown(report: &RunReport) {
        let total_steps = (report.steps_per_epoch * 2) as u64; // epochs = 2 in base_cfg
        assert_eq!(report.traces.len(), report.trainers.len());
        for (trainer, trace) in report.trainers.iter().zip(&report.traces) {
            assert_eq!(trace.part_id, trainer.part_id);
            assert_eq!(trace.dropped, 0, "unit-scale runs must not drop events");
            for phase in Phase::ALL {
                let stats = trace
                    .phase(phase)
                    .unwrap_or_else(|| panic!("no {} spans recorded", phase.name()));
                assert_eq!(
                    stats.count,
                    total_steps,
                    "{} histogram count != steps",
                    phase.name()
                );
                if let Some(expect) = trainer.breakdown.phase_s(phase) {
                    assert!(
                        (stats.sum_s - expect).abs() < 1e-6,
                        "{} span sum {} != breakdown {}",
                        phase.name(),
                        stats.sum_s,
                        expect
                    );
                }
                assert!(stats.min_s <= stats.p50_s && stats.p50_s <= stats.p95_s);
                assert!(stats.p95_s <= stats.p99_s && stats.p99_s <= stats.max_s);
            }
            assert_eq!(trace.anchors.len() as u64, total_steps);
            assert_eq!(trace.series.len() as u64, total_steps);
            // Prefetch mode: per-step pipeline stalls sum to the trainer's
            // reported stall. (Baseline's series carries the §V-B5
            // communication stall instead — checked separately.)
            if report.mode_label != "DistDGL" {
                let stall: f64 = trace.series.iter().map(|p| p.stall_s).sum();
                assert!(
                    (stall - trainer.stall_s).abs() < 1e-9,
                    "series stall {stall} vs report {}",
                    trainer.stall_s
                );
            }
            // Prefetch mode: per-step hits/misses sum to the exact
            // CommMetrics counters. (Baseline has no buffer, so its
            // series misses count sampled halo nodes while the buffer
            // counters stay zero.)
            if report.mode_label != "DistDGL" {
                let hits: u64 = trace.series.iter().map(|p| p.hits).sum();
                let misses: u64 = trace.series.iter().map(|p| p.misses).sum();
                assert_eq!(hits, trainer.metrics.buffer_hits);
                assert_eq!(misses, trainer.metrics.buffer_misses);
            } else {
                assert!(trace.series.iter().all(|p| p.hits == 0));
            }
        }
    }

    #[test]
    fn traced_prefetch_spans_match_breakdown() {
        let mut cfg = base_cfg();
        cfg.mode = prefetch_mode();
        cfg.trace = true;
        let report = Engine::build(cfg.clone()).run();
        assert_trace_matches_breakdown(&report);
        // The threaded engine records the same sums from its real worker
        // and prepare threads.
        cfg.parallel = true;
        let par = Engine::build(cfg).run();
        assert_trace_matches_breakdown(&par);
    }

    #[test]
    fn traced_baseline_spans_match_breakdown() {
        let mut cfg = base_cfg();
        cfg.trace = true;
        let report = Engine::build(cfg).run();
        assert_trace_matches_breakdown(&report);
        // Baseline telemetry: zero overlap, per-step stall = §V-B5
        // communication stall.
        for (trainer, trace) in report.trainers.iter().zip(&report.traces) {
            assert!(trace.series.iter().all(|p| p.overlap_efficiency == 0.0));
            let stall: f64 = trace.series.iter().map(|p| p.stall_s).sum();
            assert!(
                (stall - trainer.breakdown.communication_stall_s()).abs() < 1e-9,
                "per-step stalls should sum to the aggregate §V-B5 stall"
            );
        }
    }

    #[test]
    fn traced_spans_resolve_onto_the_simulated_timeline() {
        let mut cfg = base_cfg();
        cfg.mode = prefetch_mode();
        cfg.trace = true;
        let report = Engine::build(cfg).run();
        for (trainer, trace) in report.trainers.iter().zip(&report.traces) {
            // Every event must resolve (each prepared batch was consumed),
            // land within [0, sim_time], and train spans must start at
            // their step's train anchor.
            for ev in &trace.events {
                let start = trace
                    .absolute_start_s(ev)
                    .expect("every recorded step has an anchor");
                assert!(start >= 0.0);
                assert!(
                    start + ev.dur_s <= trainer.sim_time_s + 1e-9,
                    "span beyond end of run"
                );
            }
            // Anchors are monotone in training order.
            for w in trace.anchors.windows(2) {
                assert!(w[1].train_start_s >= w[0].train_start_s);
            }
        }
    }

    #[test]
    fn peak_bytes_higher_with_prefetch() {
        let mut cfg = base_cfg();
        let baseline = Engine::build(cfg.clone()).run();
        cfg.mode = prefetch_mode();
        let prefetch = Engine::build(cfg).run();
        let pb: usize = baseline.trainers.iter().map(|t| t.peak_bytes).sum();
        let pp: usize = prefetch.trainers.iter().map(|t| t.peak_bytes).sum();
        assert!(pp > pb, "prefetch should allocate buffer memory");
    }

    /// Retry policy whose timeout is far beyond any healthy reply, so a
    /// loaded test machine can never produce a spurious timeout.
    fn generous_retry() -> RetryPolicy {
        RetryPolicy {
            timeout: std::time::Duration::from_secs(120),
            ..RetryPolicy::default()
        }
    }

    /// The faults-disabled identity oracle: arming the chaos machinery
    /// with an all-zero profile must leave every report field bitwise
    /// unchanged against a `fault: None` run — timeouts, Result plumbing
    /// and outcome accounting cost exactly nothing when nothing fires.
    #[test]
    fn faultless_chaos_config_is_bitwise_identical() {
        for parallel in [false, true] {
            for mode in [Mode::Baseline, prefetch_mode()] {
                let mut cfg = base_cfg();
                cfg.mode = mode;
                cfg.parallel = parallel;
                cfg.train_math = true;
                let plain = Engine::build(cfg.clone()).run();
                cfg.fault = Some(FaultProfile::off(0xC4A0));
                cfg.retry = generous_retry();
                let armed = Engine::build(cfg).run();
                assert!(!armed.aggregate_metrics().had_faults());
                assert_reports_identical(&plain, &armed);
            }
        }
    }

    /// A server crash mid-run is fully absorbed: the cluster respawns it
    /// from the resident KvStore, retries return the exact bytes, and
    /// training is bitwise-unaffected — only simulated time pays.
    #[test]
    fn crash_only_chaos_recovers_and_trains_identically() {
        let mut cfg = base_cfg();
        cfg.mode = prefetch_mode();
        cfg.train_math = true;
        let clean = Engine::build(cfg.clone()).run();
        cfg.fault = Some(FaultProfile {
            crash_part: Some(0),
            crash_after: 8,
            ..FaultProfile::off(7)
        });
        cfg.retry = generous_retry();
        let crashed = Engine::build(cfg).run();
        let agg = crashed.aggregate_metrics();
        assert!(agg.server_respawns >= 1, "crash must trigger a respawn");
        assert!(agg.rpc_disconnects >= 1);
        assert!(agg.rpc_retries >= 1);
        assert_eq!(
            agg.degraded_rows, 0,
            "respawn + retry must deliver every row"
        );
        assert_eq!(agg.stale_served, 0);
        assert_eq!(clean.final_params, crashed.final_params);
        assert_eq!(clean.epoch_loss, crashed.epoch_loss);
        let clean_rpc: f64 = clean.trainers.iter().map(|t| t.breakdown.rpc_s).sum();
        let crashed_rpc: f64 = crashed.trainers.iter().map(|t| t.breakdown.rpc_s).sum();
        assert!(
            crashed_rpc > clean_rpc,
            "retry charges must show in rpc time: {crashed_rpc} vs {clean_rpc}"
        );
    }

    /// Full chaos mix (drops + delays + truncations + one crash) on the
    /// sequential engine: the run completes without panicking and replays
    /// bit-for-bit from the same fault seed.
    #[test]
    fn seeded_chaos_replays_bit_for_bit() {
        let mut cfg = base_cfg();
        cfg.mode = prefetch_mode();
        cfg.epochs = 1;
        cfg.fault = Some(FaultProfile {
            drop_prob: 0.02,
            delay_prob: 0.10,
            delay_factor: 3,
            truncate_prob: 0.02,
            crash_part: Some(1),
            crash_after: 8,
            ..FaultProfile::off(99)
        });
        cfg.retry = RetryPolicy {
            timeout: std::time::Duration::from_millis(500),
            ..RetryPolicy::default()
        };
        let a = Engine::build(cfg.clone()).run();
        let b = Engine::build(cfg).run();
        assert!(
            a.aggregate_metrics().had_faults(),
            "chaos mix fired nothing"
        );
        assert_reports_identical(&a, &b);
    }

    /// Fault lane reconciliation: with delay-only chaos the data path is
    /// untouched (identical counts), the extra rpc time equals the fault
    /// spans exactly, and every fault span lands on the fault lane.
    #[test]
    fn chaos_fault_spans_reconcile_with_breakdown() {
        let mut cfg = base_cfg();
        cfg.mode = prefetch_mode();
        cfg.trace = true;
        cfg.epochs = 1;
        let clean = Engine::build(cfg.clone()).run();
        cfg.fault = Some(FaultProfile {
            delay_prob: 1.0,
            delay_factor: 4,
            ..FaultProfile::off(5)
        });
        cfg.retry = generous_retry();
        let chaos = Engine::build(cfg).run();
        let total_steps = chaos.steps_per_epoch as u64;
        for ((ct, xt), trace) in clean
            .trainers
            .iter()
            .zip(&chaos.trainers)
            .zip(&chaos.traces)
        {
            // Delays deliver full data: exact counts identical.
            assert_eq!(ct.metrics.buffer_hits, xt.metrics.buffer_hits);
            assert_eq!(ct.metrics.buffer_misses, xt.metrics.buffer_misses);
            assert!(xt.metrics.rpc_delays > 0);
            let f = trace.phase(Phase::Fault).expect("fault spans recorded");
            assert!(f.count >= 1 && f.count <= total_steps, "count {}", f.count);
            assert!(f.count <= xt.metrics.rpc_delays);
            assert!(f.sum_s > 0.0);
            // The whole fault charge is folded into rpc_s — span sum and
            // breakdown delta agree to fp noise.
            let delta = xt.breakdown.rpc_s - ct.breakdown.rpc_s;
            assert!(
                (delta - f.sum_s).abs() < 1e-9,
                "fault spans {} vs rpc delta {delta}",
                f.sum_s
            );
            for ev in trace.events.iter().filter(|e| e.phase == Phase::Fault) {
                assert_eq!(ev.lane, Lane::Fault);
            }
        }
    }
}
