//! The dual scoreboards of §IV-B.
//!
//! * **Eviction scores `S_E`** live per buffer slot ([`EvictionScores`]):
//!   initialized to 1 for every prefetched node, multiplied by the decay
//!   `γ` each minibatch the node goes unsampled.
//! * **Access scores `S_A`** ([`AccessScores`]) track, per *non-buffered*
//!   halo node, how often the sampler wanted it but missed: +1 per miss.
//!   Buffered nodes carry the sentinel −1. Two layouts, exactly as the
//!   paper describes: a dense `O(|V|)` array indexed by global node id
//!   (`O(1)` updates), and a memory-efficient `O(|V_p^h|)` array over the
//!   partition's sorted halo list with `O(log |V_p^h|)` binary-search
//!   addressing (the halo list itself already lives in the
//!   [`mgnn_partition::LocalPartition`] and is passed in per call, so the
//!   memory-efficient layout allocates only the score array).

use crate::config::ScoreLayout;
use mgnn_graph::NodeId;

/// Relative tolerance for the Eq. 1 eviction boundary `S_E ≤ α`.
///
/// A node idle for exactly Δ minibatches reaches `S_E = γ^Δ` by Δ
/// sequential `*= γ` multiplies, while `α = γ^Δ` is computed by `powi`;
/// the two round differently, so the score float-drifts a few ulps to
/// either side of α. The tolerance absorbs that drift without admitting
/// a node idle only Δ−1 minibatches (whose score is a factor 1/γ ≫ 1+ε
/// above α).
pub const EVICTION_BOUNDARY_RTOL: f64 = 1e-9;

/// Eq. 1 eviction test: has `score` decayed to the threshold `alpha`?
///
/// Inclusive at the boundary (`S_E ≤ α`, within [`EVICTION_BOUNDARY_RTOL`]):
/// a strict `<` would never fire for the paradigmatic eviction candidate —
/// a node idle exactly Δ minibatches — leaving Algorithm 2's
/// evict-and-replace dead whenever decay lands on or above the threshold.
#[inline]
pub fn meets_eviction_threshold(score: f64, alpha: f64) -> bool {
    score <= alpha * (1.0 + EVICTION_BOUNDARY_RTOL)
}

/// Per-slot eviction scores, aligned with the prefetch buffer's slots.
#[derive(Debug, Clone)]
pub struct EvictionScores {
    scores: Vec<f64>,
}

impl EvictionScores {
    /// All slots start at the paper's initial score of 1.
    pub fn new(capacity: usize) -> Self {
        EvictionScores {
            scores: vec![1.0; capacity],
        }
    }

    /// Score of `slot`.
    #[inline]
    pub fn get(&self, slot: u32) -> f64 {
        self.scores[slot as usize]
    }

    /// Overwrite `slot` (used by the swap on replacement).
    #[inline]
    pub fn set(&mut self, slot: u32, v: f64) {
        self.scores[slot as usize] = v;
    }

    /// Decay `slot` by `γ` (node unsampled this minibatch).
    #[inline]
    pub fn decay(&mut self, slot: u32, gamma: f64) {
        self.scores[slot as usize] *= gamma;
    }

    /// Reset `slot` to the initial score 1.
    #[inline]
    pub fn reset(&mut self, slot: u32) {
        self.scores[slot as usize] = 1.0;
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Whether there are no slots.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Slots whose score has decayed to `alpha` or below (Algorithm 2
    /// line 28, Eq. 1 `S_E ≤ α` — see [`meets_eviction_threshold`] for
    /// why the boundary is inclusive), in ascending score order (evict
    /// the least useful first). Slots listed in `protect` (sorted) are
    /// skipped — nodes sampled in the current minibatch have already had
    /// their features copied out per Algorithm 2 line 11, and evicting a
    /// node the sampler is actively using would immediately re-fetch it.
    pub fn below_threshold(&self, alpha: f64, protect: &[u32]) -> Vec<u32> {
        let mut v: Vec<u32> = (0..self.scores.len() as u32)
            .filter(|&s| {
                meets_eviction_threshold(self.scores[s as usize], alpha)
                    && protect.binary_search(&s).is_err()
            })
            .collect();
        // `total_cmp` is panic-proof under NaN (unlike the previous
        // `partial_cmp(..).unwrap()`), and the slot-id tie-break pins a
        // total deterministic order for equal scores.
        v.sort_unstable_by(|&a, &b| {
            self.scores[a as usize]
                .total_cmp(&self.scores[b as usize])
                .then(a.cmp(&b))
        });
        v
    }

    /// Batched Algorithm 2 lines 6–9 over the occupied slot prefix
    /// `0..len` (buffer occupancy is always a prefix — see
    /// `PrefetchBuffer::check_invariants`): slots whose node was
    /// sampled this minibatch (per `sampled`) reset to the initial
    /// score 1, the rest decay by `gamma`. Returns how many slots
    /// decayed. Runs on the rayon pool in deterministic chunks; each
    /// slot is touched independently and the count is an
    /// order-independent sum, so the result is identical at any
    /// thread count.
    pub fn decay_or_reset_prefix(
        &mut self,
        len: usize,
        gamma: f64,
        sampled: impl Fn(u32) -> bool + Sync,
    ) -> usize {
        use rayon::prelude::*;
        use std::sync::atomic::{AtomicUsize, Ordering};
        const BATCH: usize = 512;
        let decayed = AtomicUsize::new(0);
        self.scores[..len]
            .par_chunks_mut(BATCH)
            .enumerate()
            .for_each(|(ci, chunk)| {
                let mut local = 0usize;
                for (i, s) in chunk.iter_mut().enumerate() {
                    let slot = (ci * BATCH + i) as u32;
                    if sampled(slot) {
                        *s = 1.0;
                    } else {
                        *s *= gamma;
                        local += 1;
                    }
                }
                decayed.fetch_add(local, Ordering::Relaxed);
            });
        decayed.load(Ordering::Relaxed)
    }

    /// Heap bytes.
    pub fn heap_bytes(&self) -> usize {
        self.scores.len() * 8
    }
}

/// Access scores over halo nodes, in either paper layout.
///
/// Every accessor takes the partition's sorted `halo_nodes` slice; the
/// dense layout ignores it (direct global-id indexing), the
/// memory-efficient layout binary-searches it.
#[derive(Debug, Clone)]
pub enum AccessScores {
    /// `O(|V|)` global-id-indexed array.
    Dense {
        /// Score per global node id (only halo entries are meaningful).
        scores: Vec<f32>,
    },
    /// `O(|V_p^h|)` scores aligned with the partition's sorted halo list.
    MemEfficient {
        /// Scores aligned with `halo_nodes`.
        scores: Vec<f32>,
    },
}

impl AccessScores {
    /// Build for a partition: `num_global` total nodes, `num_halo` halo
    /// nodes. Initial scores are 0 (the prefetcher then marks buffered
    /// nodes −1).
    pub fn new(layout: ScoreLayout, num_global: usize, num_halo: usize) -> Self {
        match layout {
            ScoreLayout::Dense => AccessScores::Dense {
                scores: vec![0.0; num_global],
            },
            ScoreLayout::MemEfficient => AccessScores::MemEfficient {
                scores: vec![0.0; num_halo],
            },
        }
    }

    /// Which layout this is.
    pub fn layout(&self) -> ScoreLayout {
        match self {
            AccessScores::Dense { .. } => ScoreLayout::Dense,
            AccessScores::MemEfficient { .. } => ScoreLayout::MemEfficient,
        }
    }

    #[inline]
    fn index(&self, halo_nodes: &[NodeId], g: NodeId) -> usize {
        match self {
            AccessScores::Dense { .. } => g as usize,
            AccessScores::MemEfficient { .. } => halo_nodes
                .binary_search(&g)
                .unwrap_or_else(|_| panic!("node {g} is not a halo node")),
        }
    }

    /// Score of global node `g`.
    pub fn get(&self, halo_nodes: &[NodeId], g: NodeId) -> f32 {
        let i = self.index(halo_nodes, g);
        match self {
            AccessScores::Dense { scores } | AccessScores::MemEfficient { scores } => scores[i],
        }
    }

    /// Set the score of `g`.
    pub fn set(&mut self, halo_nodes: &[NodeId], g: NodeId, v: f32) {
        let i = self.index(halo_nodes, g);
        match self {
            AccessScores::Dense { scores } | AccessScores::MemEfficient { scores } => scores[i] = v,
        }
    }

    /// Increment on a miss (Algorithm 2 line 21).
    pub fn increment(&mut self, halo_nodes: &[NodeId], g: NodeId) {
        let i = self.index(halo_nodes, g);
        match self {
            AccessScores::Dense { scores } | AccessScores::MemEfficient { scores } => {
                scores[i] += 1.0
            }
        }
    }

    /// Batched increment for one minibatch's (unique) miss ids. The
    /// memory-efficient layout resolves the `O(log |V_p^h|)` binary
    /// searches with rayon when the batch is large — the paper's
    /// "binary search to locate and update S_A in parallel" (§IV-B).
    pub fn increment_batch(&mut self, halo_nodes: &[NodeId], ids: &[NodeId]) {
        const PAR_THRESHOLD: usize = 2048;
        match self {
            AccessScores::Dense { scores } => {
                for &g in ids {
                    scores[g as usize] += 1.0;
                }
            }
            AccessScores::MemEfficient { scores } => {
                if ids.len() < PAR_THRESHOLD {
                    for &g in ids {
                        let i = halo_nodes
                            .binary_search(&g)
                            .unwrap_or_else(|_| panic!("node {g} is not a halo node"));
                        scores[i] += 1.0;
                    }
                } else {
                    use rayon::prelude::*;
                    let idx: Vec<usize> = ids
                        .par_iter()
                        .map(|g| {
                            halo_nodes
                                .binary_search(g)
                                .unwrap_or_else(|_| panic!("node {g} is not a halo node"))
                        })
                        .collect();
                    for i in idx {
                        scores[i] += 1.0;
                    }
                }
            }
        }
    }

    /// The top `k` replacement candidates among `candidates` (global ids):
    /// highest `S_A` first, requiring `S_A > 0` (a node never missed is not
    /// a candidate — Algorithm 2 line 30), ties broken by higher degree
    /// via the provided `degree_of`, then by id for determinism.
    pub fn top_k_candidates(
        &self,
        halo_nodes: &[NodeId],
        candidates: impl Iterator<Item = NodeId>,
        k: usize,
        degree_of: impl Fn(NodeId) -> u32,
    ) -> Vec<NodeId> {
        self.top_k_candidates_with_footprint(halo_nodes, candidates, k, degree_of)
            .0
    }

    /// [`Self::top_k_candidates`] plus the transient heap footprint of the
    /// scoring pass in bytes: the `(f32, u32, NodeId)` scored vector is
    /// materialized over every positive-score candidate *before* the
    /// truncate to `k`, and Fig. 14's transient-memory accounting must
    /// include it (it dwarfs the slot/id vectors on large halos).
    pub fn top_k_candidates_with_footprint(
        &self,
        halo_nodes: &[NodeId],
        candidates: impl Iterator<Item = NodeId>,
        k: usize,
        degree_of: impl Fn(NodeId) -> u32,
    ) -> (Vec<NodeId>, usize) {
        let mut scored: Vec<(f32, u32, NodeId)> = candidates
            .filter_map(|g| {
                let s = self.get(halo_nodes, g);
                if s > 0.0 {
                    Some((s, degree_of(g), g))
                } else {
                    None
                }
            })
            .collect();
        let footprint = scored.len() * std::mem::size_of::<(f32, u32, NodeId)>();
        // Highest score first, ties by higher degree then lower id.
        // `total_cmp` is panic-proof under NaN; the id tie-break (ids
        // are unique) makes the order — and thus the partial
        // selection below — fully deterministic.
        let cmp = |a: &(f32, u32, NodeId), b: &(f32, u32, NodeId)| {
            b.0.total_cmp(&a.0).then(b.1.cmp(&a.1)).then(a.2.cmp(&b.2))
        };
        if k == 0 {
            return (Vec::new(), footprint);
        }
        // O(n) partial selection instead of an O(n log n) full sort:
        // quickselect the k-th element, drop the tail, then sort only
        // the k survivors — same output as the old full sort because
        // the comparator is total.
        if scored.len() > k {
            scored.select_nth_unstable_by(k - 1, cmp);
            scored.truncate(k);
        }
        scored.sort_unstable_by(cmp);
        (scored.into_iter().map(|(_, _, g)| g).collect(), footprint)
    }

    /// Heap bytes — the Fig. 14 memory distinction between layouts:
    /// `4·|V|` dense vs `4·|V_p^h|` memory-efficient.
    pub fn heap_bytes(&self) -> usize {
        match self {
            AccessScores::Dense { scores } | AccessScores::MemEfficient { scores } => {
                scores.len() * 4
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_scores_decay_and_reset() {
        let mut e = EvictionScores::new(3);
        assert_eq!(e.get(0), 1.0);
        e.decay(0, 0.5);
        e.decay(0, 0.5);
        assert!((e.get(0) - 0.25).abs() < 1e-12);
        e.reset(0);
        assert_eq!(e.get(0), 1.0);
    }

    #[test]
    fn below_threshold_sorted_ascending() {
        let mut e = EvictionScores::new(4);
        e.set(0, 0.5);
        e.set(1, 0.1);
        e.set(2, 0.9);
        e.set(3, 0.3);
        assert_eq!(e.below_threshold(0.6, &[]), vec![1, 3, 0]);
        assert!(e.below_threshold(0.05, &[]).is_empty());
    }

    #[test]
    fn idle_exactly_delta_is_evicted_hit_at_delta_minus_one_is_not() {
        // Regression for the Eq. 1 boundary: repeated `*= γ` decay lands a
        // node idle exactly Δ minibatches at (a few ulps around) α = γ^Δ,
        // and a strict `S_E < α` compare never fired — Algorithm 2's
        // evict-and-replace was dead for its paradigmatic candidate.
        for (gamma, delta) in [(0.995f64, 8u32), (0.9, 16), (0.5, 4), (0.99, 100)] {
            let alpha = gamma.powi(delta as i32);
            let mut e = EvictionScores::new(2);
            // Slot 0: idle for exactly Δ minibatches since prefetch.
            for _ in 0..delta {
                e.decay(0, gamma);
            }
            // Slot 1: sampled (reset) at minibatch Δ−1, then idle once.
            for _ in 0..delta.saturating_sub(1) {
                e.decay(1, gamma);
            }
            e.reset(1);
            e.decay(1, gamma);
            let evicted = e.below_threshold(alpha, &[]);
            assert_eq!(
                evicted,
                vec![0],
                "γ={gamma} Δ={delta}: slot 0 (idle Δ) must be evicted, \
                 slot 1 (recently hit) must survive"
            );
        }
    }

    #[test]
    fn boundary_tolerance_does_not_admit_delta_minus_one() {
        // One fewer decay leaves the score a factor 1/γ above α — far
        // outside the boundary tolerance even for γ very close to 1.
        let (gamma, delta) = (0.9999f64, 1000u32);
        let alpha = gamma.powi(delta as i32);
        let mut e = EvictionScores::new(1);
        for _ in 0..delta - 1 {
            e.decay(0, gamma);
        }
        assert!(e.below_threshold(alpha, &[]).is_empty());
        e.decay(0, gamma); // the Δ-th idle minibatch crosses the boundary
        assert_eq!(e.below_threshold(alpha, &[]), vec![0]);
    }

    #[test]
    fn below_threshold_respects_protection() {
        let mut e = EvictionScores::new(3);
        e.set(0, 0.1);
        e.set(1, 0.2);
        e.set(2, 0.3);
        assert_eq!(e.below_threshold(0.5, &[1]), vec![0, 2]);
        assert_eq!(e.below_threshold(0.5, &[0, 1, 2]), Vec::<u32>::new());
    }

    fn both_layouts(num_halo: usize, num_global: usize) -> [AccessScores; 2] {
        [
            AccessScores::new(ScoreLayout::Dense, num_global, num_halo),
            AccessScores::new(ScoreLayout::MemEfficient, num_global, num_halo),
        ]
    }

    #[test]
    fn layouts_agree_on_all_operations() {
        let halo = vec![3u32, 7, 11, 20];
        let [mut dense, mut me] = both_layouts(halo.len(), 30);
        for &g in &[7u32, 7, 20, 3] {
            dense.increment(&halo, g);
            me.increment(&halo, g);
        }
        dense.set(&halo, 11, -1.0);
        me.set(&halo, 11, -1.0);
        for &g in &halo {
            assert_eq!(dense.get(&halo, g), me.get(&halo, g), "node {g}");
        }
        let deg = |g: NodeId| g; // degree = id for the test
        let top_d = dense.top_k_candidates(&halo, halo.iter().copied(), 2, deg);
        let top_m = me.top_k_candidates(&halo, halo.iter().copied(), 2, deg);
        assert_eq!(top_d, top_m);
        assert_eq!(top_d, vec![7, 20]); // 7 scored 2; 20 and 3 tie at 1, 20 wins by degree
    }

    #[test]
    fn top_k_excludes_nonpositive() {
        let halo = vec![1u32, 2, 3];
        let [mut s, _] = both_layouts(halo.len(), 10);
        s.set(&halo, 1, -1.0);
        s.increment(&halo, 2);
        // node 3 stays at 0 — not a candidate.
        let top = s.top_k_candidates(&halo, halo.iter().copied(), 3, |_| 0);
        assert_eq!(top, vec![2]);
    }

    #[test]
    fn increment_batch_matches_singles() {
        let halo: Vec<u32> = (0..3000u32).map(|i| i * 2).collect();
        let ids: Vec<u32> = (0..2500u32)
            .map(|i| halo[(i as usize * 7) % halo.len()])
            .collect();
        // Deduplicate (prefetcher misses are unique per minibatch).
        let mut uniq = ids.clone();
        uniq.sort_unstable();
        uniq.dedup();
        let [mut a, mut b] = both_layouts(halo.len(), 10_000);
        for &g in &uniq {
            a.increment(&halo, g);
        }
        b.increment_batch(&halo, &uniq);
        for &g in &halo {
            assert_eq!(a.get(&halo, g), b.get(&halo, g));
        }
        // Large batch exercises the parallel path on the ME layout.
        let mut c = AccessScores::new(ScoreLayout::MemEfficient, 10_000, halo.len());
        c.increment_batch(&halo, &uniq);
        for &g in &uniq {
            assert_eq!(c.get(&halo, g), 1.0);
        }
    }

    #[test]
    fn mem_efficient_strictly_smaller() {
        // Halo is always a strict subset of the global node set.
        let [dense, me] = both_layouts(100, 1_000_000);
        assert_eq!(dense.heap_bytes(), 4_000_000);
        assert_eq!(me.heap_bytes(), 400);
    }

    #[test]
    #[should_panic]
    fn mem_efficient_rejects_non_halo() {
        let halo = vec![1u32, 5];
        let [_, mut me] = both_layouts(halo.len(), 10);
        me.increment(&halo, 3);
    }

    /// The O(n) partial selection must reproduce the old full-sort
    /// top-k exactly, including score ties broken by degree and id.
    #[test]
    fn top_k_partial_selection_matches_full_sort() {
        let halo: Vec<u32> = (0..500u32).collect();
        let mut s = AccessScores::new(ScoreLayout::MemEfficient, 1000, halo.len());
        // Scores with many ties: id mod 7 misses each.
        for &g in &halo {
            for _ in 0..(g % 7) {
                s.increment(&halo, g);
            }
        }
        // Degrees with ties too: id mod 5.
        let deg = |g: NodeId| g % 5;
        for k in [0usize, 1, 3, 50, 499, 500, 1000] {
            let fast = s.top_k_candidates(&halo, halo.iter().copied(), k, deg);
            // Reference: the old full-sort implementation.
            let mut scored: Vec<(f32, u32, NodeId)> = halo
                .iter()
                .filter_map(|&g| {
                    let v = s.get(&halo, g);
                    (v > 0.0).then(|| (v, deg(g), g))
                })
                .collect();
            scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(b.1.cmp(&a.1)).then(a.2.cmp(&b.2)));
            scored.truncate(k);
            let reference: Vec<NodeId> = scored.into_iter().map(|(_, _, g)| g).collect();
            assert_eq!(fast, reference, "k={k}");
        }
    }

    #[test]
    fn decay_or_reset_prefix_matches_singles() {
        let gamma = 0.75f64;
        let n = 3000usize; // several 512-wide parallel batches
        let mut batched = EvictionScores::new(n);
        let mut singles = EvictionScores::new(n);
        // Give every slot a distinct starting score.
        for s in 0..n as u32 {
            batched.set(s, 1.0 + f64::from(s) * 1e-3);
            singles.set(s, 1.0 + f64::from(s) * 1e-3);
        }
        let sampled = |slot: u32| slot.is_multiple_of(3);
        let prefix = 2500usize;
        let decayed = batched.decay_or_reset_prefix(prefix, gamma, sampled);
        let mut expect_decayed = 0usize;
        for s in 0..prefix as u32 {
            if sampled(s) {
                singles.reset(s);
            } else {
                singles.decay(s, gamma);
                expect_decayed += 1;
            }
        }
        assert_eq!(decayed, expect_decayed);
        for s in 0..n as u32 {
            assert_eq!(
                batched.get(s).to_bits(),
                singles.get(s).to_bits(),
                "slot {s}"
            );
        }
    }
}
