//! The Fig. 5 trade-off quadrants: combinations of decay factor `γ` and
//! eviction interval `Δ` and their expected behaviour.

/// One of the four (γ, Δ) regimes of Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quadrant {
    /// Low decay (γ→1) + short interval: hit-rate stagnation risk, high
    /// inspection overhead.
    LowDecayShortInterval,
    /// High decay (γ→0) + short interval: aggressive eviction, hit-rate
    /// swings, highest overhead.
    HighDecayShortInterval,
    /// High decay + long interval: delayed bulk evictions, possible hit
    /// drops, low overhead.
    HighDecayLongInterval,
    /// Low decay + long interval: the paper's recommended regime —
    /// strategic eviction, consistent hit-rate growth, low overhead.
    LowDecayLongInterval,
}

/// γ at or above this is "low decay" (the paper's empirical boundary from
/// Fig. 13: γ ≥ 0.9 yields the best hit rates).
pub const LOW_DECAY_GAMMA: f64 = 0.9;
/// Δ at or above this is a "long" interval (paper sweeps 16–1024; its
/// optimal settings cluster at 64+).
pub const LONG_INTERVAL_DELTA: usize = 64;

/// Classify a (γ, Δ) pair.
///
/// ```
/// use massivegnn::tradeoff::{classify, Quadrant};
/// assert!(classify(0.995, 512).recommended());
/// assert_eq!(classify(0.5, 16), Quadrant::HighDecayShortInterval);
/// ```
pub fn classify(gamma: f64, delta: usize) -> Quadrant {
    let low_decay = gamma >= LOW_DECAY_GAMMA;
    let long_interval = delta >= LONG_INTERVAL_DELTA;
    match (low_decay, long_interval) {
        (true, false) => Quadrant::LowDecayShortInterval,
        (false, false) => Quadrant::HighDecayShortInterval,
        (false, true) => Quadrant::HighDecayLongInterval,
        (true, true) => Quadrant::LowDecayLongInterval,
    }
}

impl Quadrant {
    /// Whether this is the paper's recommended operating regime.
    pub fn recommended(&self) -> bool {
        matches!(self, Quadrant::LowDecayLongInterval)
    }

    /// Relative eviction-inspection overhead of the regime (short
    /// intervals inspect more often).
    pub fn overhead_rank(&self) -> u8 {
        match self {
            Quadrant::HighDecayShortInterval => 3,
            Quadrant::LowDecayShortInterval => 2,
            Quadrant::HighDecayLongInterval => 1,
            Quadrant::LowDecayLongInterval => 0,
        }
    }

    /// Expected fraction of the buffer evicted per round, qualitatively:
    /// high decay evicts aggressively.
    pub fn eviction_aggressiveness(&self) -> &'static str {
        match self {
            Quadrant::LowDecayShortInterval => "few nodes per round",
            Quadrant::HighDecayShortInterval => "many nodes, frequent",
            Quadrant::HighDecayLongInterval => "bulk, delayed",
            Quadrant::LowDecayLongInterval => "strategic, gradual",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_optimal_settings_land_in_recommended_quadrant() {
        // Table IV's most common CPU settings: γ ∈ {0.95, 0.995}, Δ ≥ 64.
        for (g, d) in [(0.95, 64), (0.995, 128), (0.9995, 1024), (0.995, 512)] {
            assert!(classify(g, d).recommended(), "({g}, {d})");
        }
    }

    #[test]
    fn quadrants_distinct() {
        assert_eq!(classify(0.99, 16), Quadrant::LowDecayShortInterval);
        assert_eq!(classify(0.5, 16), Quadrant::HighDecayShortInterval);
        assert_eq!(classify(0.5, 512), Quadrant::HighDecayLongInterval);
        assert_eq!(classify(0.99, 512), Quadrant::LowDecayLongInterval);
    }

    #[test]
    fn overhead_ordering() {
        assert!(
            classify(0.5, 16).overhead_rank() > classify(0.99, 512).overhead_rank(),
            "frequent eviction must rank higher overhead"
        );
    }
}
