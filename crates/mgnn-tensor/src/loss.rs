//! Softmax cross-entropy loss and accuracy.

use crate::ops::softmax_rows;
use crate::tensor::Tensor;

/// Softmax cross-entropy over `logits` (`batch × classes`) against integer
/// `labels`. Returns `(mean_loss, grad_logits)` where the gradient already
/// includes the `1/batch` factor.
pub fn cross_entropy(logits: &Tensor, labels: &[u32]) -> (f32, Tensor) {
    assert_eq!(logits.rows(), labels.len());
    let probs = softmax_rows(logits);
    let batch = logits.rows().max(1);
    let inv = 1.0 / batch as f32;
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    for (i, &label) in labels.iter().enumerate() {
        let p = probs.get(i, label as usize).max(1e-12);
        loss -= p.ln();
        let g = grad.get(i, label as usize);
        grad.set(i, label as usize, g - 1.0);
    }
    grad.scale(inv);
    (loss * inv, grad)
}

/// Fraction of rows whose argmax equals the label.
pub fn accuracy(logits: &Tensor, labels: &[u32]) -> f64 {
    assert_eq!(logits.rows(), labels.len());
    if labels.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        let row = logits.row(i);
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(j, _)| j)
            .unwrap();
        if argmax == label as usize {
            correct += 1;
        }
    }
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_of_perfect_prediction_is_small() {
        let logits = Tensor::from_vec(2, 3, vec![10.0, 0.0, 0.0, 0.0, 10.0, 0.0]);
        let (loss, _) = cross_entropy(&logits, &[0, 1]);
        assert!(loss < 0.01, "loss {loss}");
    }

    #[test]
    fn loss_of_uniform_is_log_c() {
        let logits = Tensor::zeros(1, 4);
        let (loss, _) = cross_entropy(&logits, &[2]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(2, 3, vec![0.5, -0.2, 0.1, -0.3, 0.7, 0.2]);
        let labels = [2u32, 0u32];
        let (_, grad) = cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let (up, _) = cross_entropy(&lp, &labels);
            let (um, _) = cross_entropy(&lm, &labels);
            let num = (up - um) / (2.0 * eps);
            assert!(
                (num - grad.data()[idx]).abs() < 1e-3,
                "grad[{idx}] {num} vs {}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let (_, grad) = cross_entropy(&logits, &[1]);
        let s: f32 = grad.row(0).iter().sum();
        assert!(s.abs() < 1e-6);
    }

    #[test]
    fn accuracy_counts() {
        let logits = Tensor::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(accuracy(&Tensor::zeros(0, 2), &[]), 0.0);
    }
}
