//! Sparse row-normalized adjacency and SpMM.
//!
//! GNN aggregation is a sparse-dense matrix product `A·X` where `A` is the
//! (normalized) sampled adjacency. The model layers implement their
//! aggregations with fused scatter loops; this module provides the explicit
//! sparse form for library users who want to build custom layers, plus a
//! reference the fused implementations are tested against.

use crate::tensor::Tensor;
use rayon::prelude::*;

/// An immutable CSR sparse matrix of `f32` weights.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    offsets: Vec<u32>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl SparseMatrix {
    /// Build from CSR parts. Panics on malformed inputs.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        offsets: Vec<u32>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(offsets.len(), rows + 1, "offsets length");
        assert_eq!(indices.len(), values.len(), "indices/values length");
        assert_eq!(*offsets.last().unwrap() as usize, indices.len());
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "offsets monotone");
        assert!(
            indices.iter().all(|&c| (c as usize) < cols),
            "column index out of range"
        );
        SparseMatrix {
            rows,
            cols,
            offsets,
            indices,
            values,
        }
    }

    /// Row-mean aggregation matrix of a sampled bipartite layer:
    /// `A[i, j] = 1/deg(i)` for each sampled neighbor position `j` of dst
    /// `i` (rows with no neighbors are all-zero) — exactly GraphSAGE's
    /// neighbor-mean operator.
    pub fn mean_aggregator(
        num_dst: usize,
        num_src: usize,
        offsets: &[u32],
        indices: &[u32],
    ) -> Self {
        assert_eq!(offsets.len(), num_dst + 1);
        let mut values = Vec::with_capacity(indices.len());
        for i in 0..num_dst {
            let deg = (offsets[i + 1] - offsets[i]) as usize;
            let w = if deg == 0 { 0.0 } else { 1.0 / deg as f32 };
            values.extend(std::iter::repeat_n(w, deg));
        }
        SparseMatrix::from_parts(num_dst, num_src, offsets.to_vec(), indices.to_vec(), values)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Sparse-dense product `self · x` (`rows×cols · cols×d → rows×d`),
    /// parallel over output rows.
    pub fn spmm(&self, x: &Tensor) -> Tensor {
        assert_eq!(self.cols, x.rows(), "spmm shape mismatch");
        let d = x.cols();
        let mut out = vec![0.0f32; self.rows * d];
        out.par_chunks_mut(d).enumerate().for_each(|(i, orow)| {
            let s = self.offsets[i] as usize;
            let e = self.offsets[i + 1] as usize;
            for k in s..e {
                let j = self.indices[k] as usize;
                let w = self.values[k];
                if w == 0.0 {
                    continue;
                }
                let xrow = x.row(j);
                for (o, &v) in orow.iter_mut().zip(xrow) {
                    *o += w * v;
                }
            }
        });
        Tensor::from_vec(self.rows, d, out)
    }

    /// Transposed sparse-dense product `selfᵀ · g` (`cols×rows · rows×d →
    /// cols×d`) — the backward of [`SparseMatrix::spmm`].
    pub fn spmm_t(&self, g: &Tensor) -> Tensor {
        assert_eq!(self.rows, g.rows(), "spmm_t shape mismatch");
        let d = g.cols();
        let mut out = vec![0.0f32; self.cols * d];
        // Scatter form: serial over rows (rows write disjoint target rows
        // only if columns are unique, which they are not in general).
        for i in 0..self.rows {
            let s = self.offsets[i] as usize;
            let e = self.offsets[i + 1] as usize;
            let grow = g.row(i);
            for k in s..e {
                let j = self.indices[k] as usize;
                let w = self.values[k];
                let dst = &mut out[j * d..(j + 1) * d];
                for (o, &v) in dst.iter_mut().zip(grow) {
                    *o += w * v;
                }
            }
        }
        Tensor::from_vec(self.cols, d, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SparseMatrix {
        // 2×3: [[0.5 at col 2, 0.5 at col 0], [1.0 at col 1]]
        SparseMatrix::from_parts(2, 3, vec![0, 2, 3], vec![2, 0, 1], vec![0.5, 0.5, 1.0])
    }

    #[test]
    fn spmm_small() {
        let x = Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = small().spmm(&x);
        // row0 = 0.5·x2 + 0.5·x0 = [3, 4]; row1 = x1 = [3, 4]
        assert_eq!(y.data(), &[3.0, 4.0, 3.0, 4.0]);
    }

    #[test]
    fn spmm_t_is_adjoint() {
        // <A x, g> == <x, Aᵀ g> for random-ish data.
        let a = small();
        let x = Tensor::from_vec(3, 2, vec![0.3, -0.1, 0.7, 0.2, -0.5, 0.9]);
        let g = Tensor::from_vec(2, 2, vec![1.0, -2.0, 0.5, 0.25]);
        let lhs: f32 = a
            .spmm(&x)
            .data()
            .iter()
            .zip(g.data())
            .map(|(p, q)| p * q)
            .sum();
        let rhs: f32 = x
            .data()
            .iter()
            .zip(a.spmm_t(&g).data())
            .map(|(p, q)| p * q)
            .sum();
        assert!((lhs - rhs).abs() < 1e-5, "{lhs} vs {rhs}");
    }

    #[test]
    fn mean_aggregator_rows_sum_to_one_or_zero() {
        let a = SparseMatrix::mean_aggregator(3, 5, &[0, 2, 2, 5], &[0, 4, 1, 2, 3]);
        assert_eq!(a.nnz(), 5);
        let ones = Tensor::from_vec(5, 1, vec![1.0; 5]);
        let y = a.spmm(&ones);
        assert!((y.get(0, 0) - 1.0).abs() < 1e-6);
        assert_eq!(y.get(1, 0), 0.0); // isolated row
        assert!((y.get(2, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn rejects_column_out_of_range() {
        SparseMatrix::from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]);
    }

    #[test]
    fn empty_matrix() {
        let a = SparseMatrix::from_parts(2, 3, vec![0, 0, 0], vec![], vec![]);
        let x = Tensor::from_vec(3, 2, vec![1.0; 6]);
        let y = a.spmm(&x);
        assert!(y.data().iter().all(|&v| v == 0.0));
    }
}
