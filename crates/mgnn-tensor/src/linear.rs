//! Linear (fully connected) layer with explicit forward/backward.

use crate::init::xavier_uniform;
use crate::tensor::Tensor;

/// `y = x · W + b` with cached input for the backward pass.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix, `in_dim × out_dim`.
    pub weight: Tensor,
    /// Bias vector, length `out_dim`.
    pub bias: Vec<f32>,
    /// Accumulated weight gradient.
    pub grad_weight: Tensor,
    /// Accumulated bias gradient.
    pub grad_bias: Vec<f32>,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Xavier-initialized layer.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        Linear {
            weight: xavier_uniform(in_dim, out_dim, seed),
            bias: vec![0.0; out_dim],
            grad_weight: Tensor::zeros(in_dim, out_dim),
            grad_bias: vec![0.0; out_dim],
            cached_input: None,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    /// Forward pass; caches `x` for backward.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.cols(), self.in_dim());
        let mut y = x.matmul(&self.weight);
        y.add_row_broadcast(&self.bias);
        self.cached_input = Some(x.clone());
        y
    }

    /// Forward without caching (inference).
    pub fn forward_inference(&self, x: &Tensor) -> Tensor {
        let mut y = x.matmul(&self.weight);
        y.add_row_broadcast(&self.bias);
        y
    }

    /// Backward pass: accumulates `grad_weight`/`grad_bias`, returns grad
    /// w.r.t. the input. Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        // dW = xᵀ · dY,  db = Σ_rows dY,  dX = dY · Wᵀ
        self.grad_weight.add_assign(&x.t_matmul(grad_out));
        for (gb, s) in self.grad_bias.iter_mut().zip(grad_out.sum_rows()) {
            *gb += s;
        }
        grad_out.matmul_t(&self.weight)
    }

    /// Zero accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_weight = Tensor::zeros(self.in_dim(), self.out_dim());
        self.grad_bias.iter_mut().for_each(|b| *b = 0.0);
    }

    /// Number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.in_dim() * self.out_dim() + self.out_dim()
    }

    /// Copy parameters into `out`, returning the number written.
    pub fn write_params(&self, out: &mut [f32]) -> usize {
        let w = self.weight.data();
        out[..w.len()].copy_from_slice(w);
        out[w.len()..w.len() + self.bias.len()].copy_from_slice(&self.bias);
        w.len() + self.bias.len()
    }

    /// Load parameters from `src`, returning the number read.
    pub fn read_params(&mut self, src: &[f32]) -> usize {
        let wlen = self.weight.data().len();
        self.weight.data_mut().copy_from_slice(&src[..wlen]);
        let blen = self.bias.len();
        self.bias.copy_from_slice(&src[wlen..wlen + blen]);
        wlen + blen
    }

    /// Copy gradients into `out`, returning the number written.
    pub fn write_grads(&self, out: &mut [f32]) -> usize {
        let w = self.grad_weight.data();
        out[..w.len()].copy_from_slice(w);
        out[w.len()..w.len() + self.grad_bias.len()].copy_from_slice(&self.grad_bias);
        w.len() + self.grad_bias.len()
    }

    /// Load gradients from `src` (after allreduce), returning number read.
    pub fn read_grads(&mut self, src: &[f32]) -> usize {
        let wlen = self.grad_weight.data().len();
        self.grad_weight.data_mut().copy_from_slice(&src[..wlen]);
        let blen = self.grad_bias.len();
        self.grad_bias.copy_from_slice(&src[wlen..wlen + blen]);
        wlen + blen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference check of the full backward pass.
    #[test]
    fn gradients_match_finite_differences() {
        let mut layer = Linear::new(3, 2, 42);
        let x = Tensor::from_vec(2, 3, vec![0.1, -0.2, 0.3, 0.5, 0.4, -0.1]);
        // Loss = sum(y); dL/dy = ones.
        let y = layer.forward(&x);
        let ones = Tensor::from_vec(y.rows(), y.cols(), vec![1.0; y.rows() * y.cols()]);
        layer.zero_grad();
        let gx = layer.backward(&ones);

        let eps = 1e-3f32;
        // Check dW numerically.
        for idx in 0..6 {
            let mut wp = layer.clone();
            wp.weight.data_mut()[idx] += eps;
            let mut wm = layer.clone();
            wm.weight.data_mut()[idx] -= eps;
            let lp: f32 = wp.forward_inference(&x).data().iter().sum();
            let lm: f32 = wm.forward_inference(&x).data().iter().sum();
            let num = (lp - lm) / (2.0 * eps);
            let ana = layer.grad_weight.data()[idx];
            assert!((num - ana).abs() < 1e-2, "dW[{idx}]: {num} vs {ana}");
        }
        // Check dX numerically.
        for idx in 0..6 {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp: f32 = layer.forward_inference(&xp).data().iter().sum();
            let lm: f32 = layer.forward_inference(&xm).data().iter().sum();
            let num = (lp - lm) / (2.0 * eps);
            let ana = gx.data()[idx];
            assert!((num - ana).abs() < 1e-2, "dX[{idx}]: {num} vs {ana}");
        }
        // Bias gradient is just the row count here.
        for &gb in &layer.grad_bias {
            assert!((gb - 2.0).abs() < 1e-5);
        }
    }

    #[test]
    fn params_round_trip() {
        let layer = Linear::new(4, 3, 7);
        let mut buf = vec![0.0f32; layer.num_params()];
        assert_eq!(layer.write_params(&mut buf), 15);
        let mut other = Linear::new(4, 3, 99);
        other.read_params(&buf);
        assert_eq!(other.weight, layer.weight);
        assert_eq!(other.bias, layer.bias);
    }

    #[test]
    fn grads_accumulate_until_zeroed() {
        let mut layer = Linear::new(2, 2, 1);
        let x = Tensor::from_vec(1, 2, vec![1.0, 1.0]);
        let g = Tensor::from_vec(1, 2, vec![1.0, 1.0]);
        layer.forward(&x);
        layer.backward(&g);
        let after_one = layer.grad_weight.clone();
        layer.forward(&x);
        layer.backward(&g);
        for (a, b) in layer.grad_weight.data().iter().zip(after_one.data()) {
            assert!((a - 2.0 * b).abs() < 1e-5);
        }
        layer.zero_grad();
        assert!(layer.grad_weight.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic]
    fn backward_before_forward_panics() {
        let mut layer = Linear::new(2, 2, 0);
        layer.backward(&Tensor::zeros(1, 2));
    }
}
