//! Elementwise activations and their backward passes, plus dropout.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// ReLU forward: `max(0, x)`.
pub fn relu(x: &Tensor) -> Tensor {
    let data = x.data().iter().map(|&v| v.max(0.0)).collect();
    Tensor::from_vec(x.rows(), x.cols(), data)
}

/// ReLU backward: `grad * (x > 0)` where `x` is the forward *input*.
pub fn relu_backward(grad: &Tensor, input: &Tensor) -> Tensor {
    assert_eq!(grad.shape(), input.shape());
    let data = grad
        .data()
        .iter()
        .zip(input.data())
        .map(|(&g, &x)| if x > 0.0 { g } else { 0.0 })
        .collect();
    Tensor::from_vec(grad.rows(), grad.cols(), data)
}

/// LeakyReLU forward with negative slope `alpha` (GAT uses 0.2).
pub fn leaky_relu(x: &Tensor, alpha: f32) -> Tensor {
    let data = x
        .data()
        .iter()
        .map(|&v| if v > 0.0 { v } else { alpha * v })
        .collect();
    Tensor::from_vec(x.rows(), x.cols(), data)
}

/// LeakyReLU backward.
pub fn leaky_relu_backward(grad: &Tensor, input: &Tensor, alpha: f32) -> Tensor {
    assert_eq!(grad.shape(), input.shape());
    let data = grad
        .data()
        .iter()
        .zip(input.data())
        .map(|(&g, &x)| if x > 0.0 { g } else { alpha * g })
        .collect();
    Tensor::from_vec(grad.rows(), grad.cols(), data)
}

/// Row-wise softmax (numerically stabilized).
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(x.rows(), x.cols());
    for i in 0..x.rows() {
        let row = x.row(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        let orow = out.row_mut(i);
        for (o, &v) in orow.iter_mut().zip(row) {
            *o = (v - max).exp();
            sum += *o;
        }
        let inv = 1.0 / sum;
        for o in orow.iter_mut() {
            *o *= inv;
        }
    }
    out
}

/// Inverted dropout: zero each element with probability `p`, scale the rest
/// by `1/(1-p)`. Returns `(output, mask)`; the mask encodes the applied
/// scale so the backward is a pure elementwise product.
pub fn dropout(x: &Tensor, p: f32, seed: u64) -> (Tensor, Tensor) {
    assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
    if p == 0.0 {
        let mask = Tensor::from_vec(x.rows(), x.cols(), vec![1.0; x.rows() * x.cols()]);
        return (x.clone(), mask);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let keep = 1.0 / (1.0 - p);
    let mask_data: Vec<f32> = (0..x.rows() * x.cols())
        .map(|_| if rng.gen::<f32>() < p { 0.0 } else { keep })
        .collect();
    let out_data: Vec<f32> = x
        .data()
        .iter()
        .zip(&mask_data)
        .map(|(&v, &m)| v * m)
        .collect();
    (
        Tensor::from_vec(x.rows(), x.cols(), out_data),
        Tensor::from_vec(x.rows(), x.cols(), mask_data),
    )
}

/// Dropout backward: `grad * mask`.
pub fn dropout_backward(grad: &Tensor, mask: &Tensor) -> Tensor {
    assert_eq!(grad.shape(), mask.shape());
    let data = grad
        .data()
        .iter()
        .zip(mask.data())
        .map(|(&g, &m)| g * m)
        .collect();
    Tensor::from_vec(grad.rows(), grad.cols(), data)
}

/// L2-normalize each row in place (GraphSAGE's final-layer normalization).
pub fn l2_normalize_rows(x: &mut Tensor) {
    for i in 0..x.rows() {
        let row = x.row_mut(i);
        let norm = row.iter().map(|&v| v * v).sum::<f32>().sqrt();
        if norm > 1e-12 {
            let inv = 1.0 / norm;
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let x = Tensor::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -3.0]);
        let y = relu(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
        let g = Tensor::from_vec(1, 4, vec![1.0; 4]);
        let gx = relu_backward(&g, &x);
        assert_eq!(gx.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn leaky_relu_slope() {
        let x = Tensor::from_vec(1, 2, vec![-10.0, 10.0]);
        let y = leaky_relu(&x, 0.2);
        assert_eq!(y.data(), &[-2.0, 10.0]);
        let g = Tensor::from_vec(1, 2, vec![1.0, 1.0]);
        let gx = leaky_relu_backward(&g, &x, 0.2);
        assert_eq!(gx.data(), &[0.2, 1.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0]);
        let s = softmax_rows(&x);
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Stability: huge inputs don't produce NaN.
        assert!(s.data().iter().all(|v| v.is_finite()));
        // Monotone: bigger logit, bigger prob.
        assert!(s.get(0, 2) > s.get(0, 0));
    }

    #[test]
    fn dropout_zero_p_is_identity() {
        let x = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let (y, m) = dropout(&x, 0.0, 1);
        assert_eq!(y, x);
        assert!(m.data().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn dropout_preserves_expectation() {
        let x = Tensor::from_vec(1, 10_000, vec![1.0; 10_000]);
        let (y, _) = dropout(&x, 0.5, 7);
        let mean: f32 = y.data().iter().sum::<f32>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.1, "dropout mean {mean}");
    }

    #[test]
    fn dropout_backward_masks_gradient() {
        let x = Tensor::from_vec(1, 100, vec![1.0; 100]);
        let (_, m) = dropout(&x, 0.3, 3);
        let g = Tensor::from_vec(1, 100, vec![1.0; 100]);
        let gx = dropout_backward(&g, &m);
        for (gv, mv) in gx.data().iter().zip(m.data()) {
            assert_eq!(gv, mv);
        }
    }

    #[test]
    fn l2_normalize() {
        let mut x = Tensor::from_vec(2, 2, vec![3.0, 4.0, 0.0, 0.0]);
        l2_normalize_rows(&mut x);
        assert!((x.get(0, 0) - 0.6).abs() < 1e-6);
        assert!((x.get(0, 1) - 0.8).abs() < 1e-6);
        assert_eq!(x.row(1), &[0.0, 0.0]); // zero row untouched
    }
}
