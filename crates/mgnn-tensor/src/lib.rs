//! # mgnn-tensor — dense math substrate
//!
//! The paper trains GraphSAGE/GAT through PyTorch; this crate provides the
//! minimal dense-tensor machinery those models need, in pure Rust:
//! a row-major 2-D `f32` [`Tensor`] with rayon-parallel [matmul](Tensor::matmul),
//! [elementwise ops](ops), a [`linear::Linear`] layer with manual backward,
//! [cross-entropy loss](loss), and seeded [Xavier init](init).
//!
//! It is deliberately *not* a general autograd engine: every layer in
//! `mgnn-model` implements an explicit `forward`/`backward` pair, which
//! keeps the hot paths allocation-predictable (the HPC idiom) and makes the
//! gradient flow auditable in tests against finite differences.

pub mod init;
pub mod linear;
pub mod loss;
pub mod ops;
pub mod sparse;
pub mod tensor;

pub use linear::Linear;
pub use tensor::Tensor;
