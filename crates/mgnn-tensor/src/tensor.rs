//! Row-major 2-D `f32` tensor with rayon-parallel matrix products.

use rayon::prelude::*;
use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Zero-filled `rows × cols` tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Construct from a row-major buffer. Panics on shape mismatch.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "tensor shape mismatch");
        Tensor { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the raw row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the raw row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, recovering the raw row-major buffer (and its
    /// capacity) — the recycling path of the `PreparedBatch` pool.
    #[inline]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    /// Set element `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.cols + j] = v;
    }

    /// Rows per parallel row block in the matmul family. Blocks keep
    /// the streamed `rhs` panel hot in cache across nearby output rows
    /// and amortize task dispatch.
    const MATMUL_RB: usize = 16;

    /// `k`-block width in [`Tensor::matmul`]: one `KB×n` panel of
    /// `rhs` (256·n·4 bytes) is reused by all rows of a row block
    /// before moving on.
    const MATMUL_KB: usize = 256;

    /// Matrix product `self · rhs` (`m×k · k×n → m×n`), parallel over
    /// row blocks and cache-blocked over `k`.
    ///
    /// The inner loop is `i-k-j` so the `rhs` row is streamed
    /// contiguously (cache-friendly; see the Rust Performance Book's
    /// advice on access order). Each output element still accumulates
    /// in ascending-`k` order — `k`-blocking reorders loops, not the
    /// per-element sum — so results are bitwise-identical to the
    /// untiled kernel at any thread count.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.cols, rhs.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = vec![0.0f32; m * n];
        if m == 0 || n == 0 {
            return Tensor::from_vec(m, n, out);
        }
        out.par_chunks_mut(n * Self::MATMUL_RB)
            .enumerate()
            .for_each(|(blk, oblock)| {
                let i0 = blk * Self::MATMUL_RB;
                for kb in (0..k).step_by(Self::MATMUL_KB) {
                    let kend = (kb + Self::MATMUL_KB).min(k);
                    for (r, orow) in oblock.chunks_mut(n).enumerate() {
                        let i = i0 + r;
                        let arow = &self.data[i * k..(i + 1) * k];
                        for (kk, &a) in arow[kb..kend].iter().enumerate() {
                            if a == 0.0 {
                                continue;
                            }
                            let brow = &rhs.data[(kb + kk) * n..(kb + kk + 1) * n];
                            for (o, &b) in orow.iter_mut().zip(brow) {
                                *o += a * b;
                            }
                        }
                    }
                }
            });
        Tensor::from_vec(m, n, out)
    }

    /// `selfᵀ · rhs` (`k×m ᵀ · k×n → m×n`) without materializing the
    /// transpose — the gradient-of-weights product in linear backward.
    pub fn t_matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rows, rhs.rows, "t_matmul shape mismatch");
        let (k, m, n) = (self.rows, self.cols, rhs.cols);
        // Accumulate per row-block in parallel then reduce.
        let out = (0..k)
            .into_par_iter()
            .fold(
                || vec![0.0f32; m * n],
                |mut acc, kk| {
                    let arow = &self.data[kk * m..(kk + 1) * m];
                    let brow = &rhs.data[kk * n..(kk + 1) * n];
                    for (i, &a) in arow.iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        let dst = &mut acc[i * n..(i + 1) * n];
                        for (d, &b) in dst.iter_mut().zip(brow) {
                            *d += a * b;
                        }
                    }
                    acc
                },
            )
            .reduce(
                || vec![0.0f32; m * n],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            );
        Tensor::from_vec(m, n, out)
    }

    /// `self · rhsᵀ` (`m×k · n×k ᵀ → m×n`) — the gradient-of-input product.
    ///
    /// Row-block parallel; each dot product uses a fixed 4-lane
    /// unrolled accumulation (combined as `(s0+s1)+(s2+s3)+tail`), so
    /// the result is deterministic at any thread count.
    pub fn matmul_t(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.cols, rhs.cols, "matmul_t shape mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        let mut out = vec![0.0f32; m * n];
        if m == 0 || n == 0 {
            return Tensor::from_vec(m, n, out);
        }
        out.par_chunks_mut(n * Self::MATMUL_RB)
            .enumerate()
            .for_each(|(blk, oblock)| {
                let i0 = blk * Self::MATMUL_RB;
                for (r, orow) in oblock.chunks_mut(n).enumerate() {
                    let i = i0 + r;
                    let arow = &self.data[i * k..(i + 1) * k];
                    for (j, o) in orow.iter_mut().enumerate() {
                        let brow = &rhs.data[j * k..(j + 1) * k];
                        *o = dot_unrolled(arow, brow);
                    }
                }
            });
        Tensor::from_vec(m, n, out)
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Elementwise addition in place.
    pub fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(self.shape(), rhs.shape());
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Scale every element in place.
    pub fn scale(&mut self, s: f32) {
        for a in self.data.iter_mut() {
            *a *= s;
        }
    }

    /// Add `row` (length `cols`) to every row — bias broadcast.
    pub fn add_row_broadcast(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols);
        for r in self.data.chunks_mut(self.cols) {
            for (a, &b) in r.iter_mut().zip(row) {
                *a += b;
            }
        }
    }

    /// Sum over rows, producing a length-`cols` vector — bias gradient.
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for r in self.data.chunks(self.cols) {
            for (o, &v) in out.iter_mut().zip(r) {
                *o += v;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Concatenate two tensors with equal row counts along columns.
    pub fn concat_cols(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rows, rhs.rows);
        let cols = self.cols + rhs.cols;
        let mut out = Tensor::zeros(self.rows, cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(rhs.row(i));
        }
        out
    }

    /// Split columns at `at`, inverse of [`Tensor::concat_cols`].
    pub fn split_cols(&self, at: usize) -> (Tensor, Tensor) {
        assert!(at <= self.cols);
        let mut a = Tensor::zeros(self.rows, at);
        let mut b = Tensor::zeros(self.rows, self.cols - at);
        for i in 0..self.rows {
            a.row_mut(i).copy_from_slice(&self.row(i)[..at]);
            b.row_mut(i).copy_from_slice(&self.row(i)[at..]);
        }
        (a, b)
    }
}

/// Dot product with four independent accumulator lanes and a fixed
/// combine order `(s0+s1)+(s2+s3)+tail` — deterministic and unlocks
/// instruction-level parallelism the single-accumulator loop serializes
/// on the FP add latency chain.
#[inline]
fn dot_unrolled(a: &[f32], b: &[f32]) -> f32 {
    let mut lanes = [0.0f32; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (xs, ys) in (&mut ca).zip(&mut cb) {
        for l in 0..4 {
            lanes[l] += xs[l] * ys[l];
        }
    }
    let mut tail = 0.0f32;
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}×{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = t(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = t(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 4, &(0..12).map(|x| x as f32).collect::<Vec<_>>());
        let via_fused = a.t_matmul(&b);
        let via_explicit = a.transpose().matmul(&b);
        for (x, y) in via_fused.data().iter().zip(via_explicit.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(4, 3, &(0..12).map(|x| x as f32).collect::<Vec<_>>());
        let via_fused = a.matmul_t(&b);
        let via_explicit = a.matmul(&b.transpose());
        for (x, y) in via_fused.data().iter().zip(via_explicit.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn broadcast_and_sum_rows_are_adjoint() {
        let mut x = Tensor::zeros(3, 2);
        x.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(x.data(), &[1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
        assert_eq!(x.sum_rows(), vec![3.0, 6.0]);
    }

    #[test]
    fn concat_split_round_trip() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = t(2, 1, &[5.0, 6.0]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        let (a2, b2) = c.split_cols(2);
        assert_eq!(a2, a);
        assert_eq!(b2, b);
    }

    #[test]
    fn scale_and_norm() {
        let mut a = t(1, 2, &[3.0, 4.0]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
        a.scale(2.0);
        assert_eq!(a.data(), &[6.0, 8.0]);
    }

    #[test]
    #[should_panic]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        a.matmul(&b);
    }

    #[test]
    fn zero_sized() {
        let a = Tensor::zeros(0, 5);
        let b = Tensor::zeros(5, 2);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (0, 2));
    }

    /// Pseudo-random but deterministic fill (no RNG dep in this crate).
    fn filled(rows: usize, cols: usize, salt: u32) -> Tensor {
        let data = (0..rows * cols)
            .map(|i| {
                let h = (i as u32).wrapping_add(salt).wrapping_mul(2654435761);
                ((h % 97) as f32 - 48.0) / 16.0
            })
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    /// The tiled kernel must be *bitwise* identical to the naive
    /// ascending-k triple loop — k-blocking reorders loops, not the
    /// per-element accumulation — at sizes straddling the RB=16 and
    /// KB=256 block boundaries.
    #[test]
    fn tiled_matmul_bitwise_matches_naive() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (15, 17, 7),
            (16, 256, 5),
            (17, 257, 33),
            (40, 300, 3),
        ] {
            let a = filled(m, k, 1);
            let b = filled(k, n, 2);
            let mut naive = vec![0.0f32; m * n];
            for i in 0..m {
                for kk in 0..k {
                    let av = a.get(i, kk);
                    if av == 0.0 {
                        continue;
                    }
                    for j in 0..n {
                        naive[i * n + j] += av * b.get(kk, j);
                    }
                }
            }
            let tiled = a.matmul(&b);
            let same = tiled
                .data()
                .iter()
                .zip(&naive)
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "tiled matmul diverged at m={m} k={k} n={n}");
        }
    }

    /// Thread-count independence: the matmul family must return
    /// bitwise-identical outputs when forced onto one thread.
    #[test]
    fn matmul_family_identical_across_thread_caps() {
        let a = filled(37, 129, 3);
        let b = filled(129, 19, 4);
        let at = a.transpose(); // 129×37, so atᵀ·b is valid for t_matmul
        let bt = b.transpose(); // 19×129, so a·btᵀ is valid for matmul_t
        let (mm, tm, mt) =
            rayon::pool::with_max_threads(1, || (a.matmul(&b), at.t_matmul(&b), a.matmul_t(&bt)));
        assert_eq!(mm, a.matmul(&b));
        assert_eq!(tm, at.t_matmul(&b));
        assert_eq!(mt, a.matmul_t(&bt));
    }
}
