//! Row-major 2-D `f32` tensor with rayon-parallel matrix products.

use rayon::prelude::*;
use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Zero-filled `rows × cols` tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Construct from a row-major buffer. Panics on shape mismatch.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "tensor shape mismatch");
        Tensor { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the raw row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the raw row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    /// Set element `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.cols + j] = v;
    }

    /// Matrix product `self · rhs` (`m×k · k×n → m×n`), parallel over rows.
    ///
    /// Inner loop is written `i-k-j` so the `rhs` row is streamed
    /// contiguously (cache-friendly; see the Rust Performance Book's advice
    /// on access order).
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.cols, rhs.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = vec![0.0f32; m * n];
        out.par_chunks_mut(n).enumerate().for_each(|(i, orow)| {
            let arow = &self.data[i * k..(i + 1) * k];
            for (kk, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &rhs.data[kk * n..(kk + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        });
        Tensor::from_vec(m, n, out)
    }

    /// `selfᵀ · rhs` (`k×m ᵀ · k×n → m×n`) without materializing the
    /// transpose — the gradient-of-weights product in linear backward.
    pub fn t_matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rows, rhs.rows, "t_matmul shape mismatch");
        let (k, m, n) = (self.rows, self.cols, rhs.cols);
        // Accumulate per row-block in parallel then reduce.
        let out = (0..k)
            .into_par_iter()
            .fold(
                || vec![0.0f32; m * n],
                |mut acc, kk| {
                    let arow = &self.data[kk * m..(kk + 1) * m];
                    let brow = &rhs.data[kk * n..(kk + 1) * n];
                    for (i, &a) in arow.iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        let dst = &mut acc[i * n..(i + 1) * n];
                        for (d, &b) in dst.iter_mut().zip(brow) {
                            *d += a * b;
                        }
                    }
                    acc
                },
            )
            .reduce(
                || vec![0.0f32; m * n],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            );
        Tensor::from_vec(m, n, out)
    }

    /// `self · rhsᵀ` (`m×k · n×k ᵀ → m×n`) — the gradient-of-input product.
    pub fn matmul_t(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.cols, rhs.cols, "matmul_t shape mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        let mut out = vec![0.0f32; m * n];
        out.par_chunks_mut(n).enumerate().for_each(|(i, orow)| {
            let arow = &self.data[i * k..(i + 1) * k];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &rhs.data[j * k..(j + 1) * k];
                let mut s = 0.0f32;
                for (&a, &b) in arow.iter().zip(brow) {
                    s += a * b;
                }
                *o = s;
            }
        });
        Tensor::from_vec(m, n, out)
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Elementwise addition in place.
    pub fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(self.shape(), rhs.shape());
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Scale every element in place.
    pub fn scale(&mut self, s: f32) {
        for a in self.data.iter_mut() {
            *a *= s;
        }
    }

    /// Add `row` (length `cols`) to every row — bias broadcast.
    pub fn add_row_broadcast(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols);
        for r in self.data.chunks_mut(self.cols) {
            for (a, &b) in r.iter_mut().zip(row) {
                *a += b;
            }
        }
    }

    /// Sum over rows, producing a length-`cols` vector — bias gradient.
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for r in self.data.chunks(self.cols) {
            for (o, &v) in out.iter_mut().zip(r) {
                *o += v;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Concatenate two tensors with equal row counts along columns.
    pub fn concat_cols(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rows, rhs.rows);
        let cols = self.cols + rhs.cols;
        let mut out = Tensor::zeros(self.rows, cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(rhs.row(i));
        }
        out
    }

    /// Split columns at `at`, inverse of [`Tensor::concat_cols`].
    pub fn split_cols(&self, at: usize) -> (Tensor, Tensor) {
        assert!(at <= self.cols);
        let mut a = Tensor::zeros(self.rows, at);
        let mut b = Tensor::zeros(self.rows, self.cols - at);
        for i in 0..self.rows {
            a.row_mut(i).copy_from_slice(&self.row(i)[..at]);
            b.row_mut(i).copy_from_slice(&self.row(i)[at..]);
        }
        (a, b)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}×{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = t(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = t(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 4, &(0..12).map(|x| x as f32).collect::<Vec<_>>());
        let via_fused = a.t_matmul(&b);
        let via_explicit = a.transpose().matmul(&b);
        for (x, y) in via_fused.data().iter().zip(via_explicit.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(4, 3, &(0..12).map(|x| x as f32).collect::<Vec<_>>());
        let via_fused = a.matmul_t(&b);
        let via_explicit = a.matmul(&b.transpose());
        for (x, y) in via_fused.data().iter().zip(via_explicit.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn broadcast_and_sum_rows_are_adjoint() {
        let mut x = Tensor::zeros(3, 2);
        x.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(x.data(), &[1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
        assert_eq!(x.sum_rows(), vec![3.0, 6.0]);
    }

    #[test]
    fn concat_split_round_trip() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = t(2, 1, &[5.0, 6.0]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        let (a2, b2) = c.split_cols(2);
        assert_eq!(a2, a);
        assert_eq!(b2, b);
    }

    #[test]
    fn scale_and_norm() {
        let mut a = t(1, 2, &[3.0, 4.0]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
        a.scale(2.0);
        assert_eq!(a.data(), &[6.0, 8.0]);
    }

    #[test]
    #[should_panic]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        a.matmul(&b);
    }

    #[test]
    fn zero_sized() {
        let a = Tensor::zeros(0, 5);
        let b = Tensor::zeros(5, 2);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (0, 2));
    }
}
