//! Seeded parameter initializers.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, seed: u64) -> Tensor {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..rows * cols).map(|_| rng.gen_range(-a..a)).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Uniform in `(-bound, bound)`.
pub fn uniform(rows: usize, cols: usize, bound: f32, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-bound..bound))
        .collect();
    Tensor::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_bounds_and_determinism() {
        let w = xavier_uniform(64, 32, 5);
        let a = (6.0f32 / 96.0).sqrt();
        assert!(w.data().iter().all(|&v| v.abs() <= a));
        assert_eq!(w, xavier_uniform(64, 32, 5));
        assert_ne!(w, xavier_uniform(64, 32, 6));
    }

    #[test]
    fn xavier_not_degenerate() {
        let w = xavier_uniform(32, 32, 1);
        let mean: f32 = w.data().iter().sum::<f32>() / 1024.0;
        assert!(mean.abs() < 0.05);
        assert!(w.norm() > 0.0);
    }

    #[test]
    fn uniform_bound() {
        let w = uniform(10, 10, 0.5, 2);
        assert!(w.data().iter().all(|&v| v.abs() <= 0.5));
    }
}
