//! Shared experiment plumbing: option handling, engine-config presets,
//! parameter sweeps and report formatting.

use massivegnn::{
    Engine, EngineConfig, Mode, PrefetchConfig, PrefetchPolicyKind, RunReport, ScoreLayout,
};
use mgnn_graph::{DatasetKind, Scale};
use mgnn_model::ModelKind;
use mgnn_net::{Backend, FaultProfile, RetryPolicy};
use mgnn_obs::Phase;

/// Harness-wide options (size/effort knobs shared by all experiments).
#[derive(Debug, Clone)]
pub struct Opts {
    /// Dataset generation scale.
    pub scale: Scale,
    /// Training epochs per run.
    pub epochs: usize,
    /// Per-trainer batch size.
    pub batch_size: usize,
    /// Sampler fanouts (input layer first; the paper uses {10, 25}).
    pub fanouts: Vec<usize>,
    /// Hidden dimension of the 2-layer models.
    pub hidden_dim: usize,
    /// Run the complete paper grid (slow) instead of the representative
    /// subset.
    pub full: bool,
    /// Master seed.
    pub seed: u64,
    /// Record per-step spans, histograms and series (`mgnn-obs`) in every
    /// engine the experiments build. Off by default: the disabled path is
    /// a no-op and leaves `RunReport` bitwise identical.
    pub trace: bool,
    /// Named chaos profile (`off`/`light`/`heavy`, see
    /// [`FaultProfile::NAMES`]) injected into every engine the
    /// experiments build; `None` disables the fault machinery entirely.
    pub fault_profile: Option<String>,
    /// Seed for the chaos profile (independent of the run seed so the
    /// same training run can be replayed under different fault
    /// schedules).
    pub fault_seed: u64,
    /// Prefetch policy selected on the CLI (`--policy`/`--depth`).
    /// Honored by the policy-aware experiments (the `lookahead` study
    /// measures exactly this policy against the scoreboard); the
    /// paper-figure experiments always use the paper's scoreboard.
    pub policy: PrefetchPolicyKind,
    /// Mirror counters into the live-telemetry registry
    /// (`--telemetry-port`/`--metrics-out`). Wall-clock only; reports
    /// stay bitwise identical.
    pub telemetry: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            scale: Scale::Unit,
            epochs: 3,
            batch_size: 128,
            fanouts: vec![10, 25],
            hidden_dim: 64,
            full: false,
            seed: 42,
            trace: false,
            fault_profile: None,
            fault_seed: 0xFA01,
            policy: PrefetchPolicyKind::Scoreboard,
            telemetry: false,
        }
    }
}

impl Opts {
    /// The [`FaultProfile`] these options select, or `None` when chaos
    /// is off. Panics on an unknown profile name (the CLI validates).
    pub fn fault(&self) -> Option<FaultProfile> {
        self.fault_profile.as_deref().map(|name| {
            FaultProfile::named(name, self.fault_seed)
                .unwrap_or_else(|| panic!("unknown fault profile {name:?}"))
        })
    }

    /// A quick profile for smoke tests and `cargo bench` figure runs.
    pub fn quick() -> Self {
        Opts {
            epochs: 2,
            batch_size: 96,
            fanouts: vec![5, 10],
            hidden_dim: 32,
            ..Default::default()
        }
    }

    /// The paper-shaped profile used by the repro CLI by default.
    pub fn standard() -> Self {
        Opts::default()
    }

    /// The long-run profile used by the eviction-dynamics figures
    /// (Figs. 10, 12, 13): a larger graph (so the halo set dwarfs one
    /// minibatch's sampled set, as at paper scale), smaller batches and
    /// enough epochs for many Δ intervals to elapse.
    ///
    /// Debug builds keep the Unit scale and fewer epochs so `cargo test`
    /// stays fast; the figure *shapes* asserted by tests hold at both
    /// sizes, and release runs (`repro`, `cargo bench`) use the full
    /// profile.
    pub fn longrun_of(&self) -> Opts {
        let mut o = self.clone();
        if cfg!(debug_assertions) {
            o.batch_size = o.batch_size.min(48);
            o.epochs = (o.epochs * 4).max(8);
            return o;
        }
        if matches!(o.scale, Scale::Unit) {
            o.scale = Scale::Small;
        }
        o.batch_size = o.batch_size.min(64);
        o.epochs = (o.epochs * 10).max(20);
        o
    }
}

/// Base engine config for `(dataset, backend, num_parts)` under `opts`.
/// `trainers_per_part` is fixed at the paper's 4.
pub fn engine_config(
    opts: &Opts,
    dataset: DatasetKind,
    backend: Backend,
    num_parts: usize,
) -> EngineConfig {
    EngineConfig {
        dataset,
        scale: opts.scale,
        num_parts,
        trainers_per_part: 4,
        batch_size: opts.batch_size,
        epochs: opts.epochs,
        fanouts: opts.fanouts.clone(),
        sampling: mgnn_sampling::SamplingStrategy::Uniform,
        hidden_dim: opts.hidden_dim,
        model: ModelKind::Sage,
        gat_heads: 2,
        backend,
        mode: Mode::Baseline,
        seed: opts.seed,
        cost: Default::default(),
        train_math: false,
        parallel: false,
        trace: opts.trace,
        fault: opts.fault(),
        retry: RetryPolicy::default(),
        pooling: true,
        telemetry: opts.telemetry,
    }
}

/// Cross-check a traced run's spans against its own report: for every
/// trainer, every phase must have exactly one span per minibatch, the
/// span durations must sum to the corresponding [`Breakdown`] field
/// within 1e-6 s, and the per-step anchors/series must cover every step.
/// Panics with a descriptive message on any mismatch.
///
/// [`Breakdown`]: massivegnn::engine::Breakdown
pub fn assert_trace_consistent(report: &RunReport) {
    assert_eq!(
        report.traces.len(),
        report.trainers.len(),
        "traced run must carry one trace per trainer"
    );
    for (trace, tr) in report.traces.iter().zip(&report.trainers) {
        assert_eq!(trace.part_id, tr.part_id);
        let steps = tr.minibatches;
        assert_eq!(trace.anchors.len() as u64, steps, "one anchor per step");
        assert_eq!(trace.series.len() as u64, steps, "one sample per step");
        for phase in Phase::ALL {
            let stats = trace
                .phase(phase)
                .unwrap_or_else(|| panic!("trainer {}: no {} spans", trace.trainer, phase.name()));
            assert_eq!(
                stats.count,
                steps,
                "trainer {}: {} span count != minibatches",
                trace.trainer,
                phase.name()
            );
            if let Some(expect) = tr.breakdown.phase_s(phase) {
                assert!(
                    (stats.sum_s - expect).abs() < 1e-6,
                    "trainer {}: {} spans sum to {} but breakdown says {}",
                    trace.trainer,
                    phase.name(),
                    stats.sum_s,
                    expect
                );
            }
        }
        for ev in &trace.events {
            let abs = trace.absolute_start_s(ev).unwrap_or_else(|| {
                panic!(
                    "trainer {}: {} span at step {} has no anchor",
                    trace.trainer,
                    ev.phase.name(),
                    ev.step
                )
            });
            assert!(abs >= 0.0 && abs.is_finite());
        }
    }
}

/// Wall-clock comparison of the sequential engine against the threaded
/// one on the *same* configuration. Both runs produce bitwise-identical
/// reports (asserted here); the interesting output is the real elapsed
/// time, which is what the paper's multi-trainer deployment buys.
pub struct WallclockCompare {
    /// Elapsed seconds, sequential engine.
    pub sequential_s: f64,
    /// Elapsed seconds, threaded engine.
    pub parallel_s: f64,
    /// The (identical) run report.
    pub report: RunReport,
    /// Total trainers.
    pub world: usize,
}

impl WallclockCompare {
    /// Sequential time over threaded time (>1 = threading wins).
    pub fn speedup(&self) -> f64 {
        if self.parallel_s == 0.0 {
            1.0
        } else {
            self.sequential_s / self.parallel_s
        }
    }
}

/// Run `cfg` once sequentially and once threaded, timing each with a real
/// wall clock, and check the two reports agree on the bitwise-sensitive
/// fields (final params, aggregate counters, simulated makespan).
pub fn wallclock_compare(cfg: &EngineConfig) -> WallclockCompare {
    wallclock_compare_ordered(cfg, false)
}

/// [`wallclock_compare`] with explicit measurement order. Whichever run
/// goes second inherits the first run's warmed (and fragmented) heap —
/// a few percent of systematic bias on short runs — so benchmarks that
/// repeat the comparison alternate `parallel_first` to cancel it.
pub fn wallclock_compare_ordered(cfg: &EngineConfig, parallel_first: bool) -> WallclockCompare {
    let time_one = |parallel: bool| {
        let mut c = cfg.clone();
        c.parallel = parallel;
        let engine = Engine::build(c);
        let t0 = std::time::Instant::now();
        let report = engine.run();
        (report, t0.elapsed().as_secs_f64())
    };
    let world = Engine::build(cfg.clone()).world();
    let ((sequential, sequential_s), (parallel, parallel_s)) = if parallel_first {
        let p = time_one(true);
        (time_one(false), p)
    } else {
        let s = time_one(false);
        (s, time_one(true))
    };

    assert_eq!(
        sequential.final_params, parallel.final_params,
        "threaded engine diverged from sequential"
    );
    assert_eq!(sequential.aggregate_metrics(), parallel.aggregate_metrics());
    assert_eq!(sequential.makespan_s, parallel.makespan_s);
    WallclockCompare {
        sequential_s,
        parallel_s,
        report: parallel,
        world,
    }
}

/// The paper's `f_p^h` sweep values.
pub fn f_h_values(full: bool) -> Vec<f64> {
    if full {
        vec![0.15, 0.25, 0.35, 0.5]
    } else {
        vec![0.25, 0.5]
    }
}

/// The paper's γ sweep values.
pub fn gamma_values() -> Vec<f64> {
    vec![0.95, 0.995, 0.9995]
}

/// The paper's Δ sweep values (subset unless `full`).
pub fn delta_values(full: bool) -> Vec<usize> {
    if full {
        vec![16, 32, 64, 128, 512, 1024]
    } else {
        vec![16, 64, 256]
    }
}

/// Default memory layout per dataset: the paper uses the memory-efficient
/// `S_A` for papers100M only.
pub fn layout_for(dataset: DatasetKind) -> ScoreLayout {
    match dataset {
        DatasetKind::Papers => ScoreLayout::MemEfficient,
        _ => ScoreLayout::Dense,
    }
}

/// Result of optimizing prefetch parameters for one cell of Fig. 6 /
/// Table IV: the best configuration found and its run.
pub struct Optimized {
    /// Best "prefetch without eviction" run and its `f_p^h`.
    pub no_evict: (f64, RunReport),
    /// Best "prefetch with eviction" run per γ: `(γ, Δ, report)`.
    pub with_evict: Vec<(f64, usize, RunReport)>,
}

/// Sweep `f_p^h` (no eviction), then Δ per γ on the optimal `f_p^h`,
/// choosing by lowest makespan — the paper's §V-A methodology
/// ("we always prioritize time over hit rate").
pub fn optimize_prefetch(base: &EngineConfig, full: bool) -> Optimized {
    let layout = layout_for(base.dataset);
    let mut best_ne: Option<(f64, RunReport)> = None;
    for f_h in f_h_values(full) {
        let mut cfg = base.clone();
        cfg.mode = Mode::Prefetch(PrefetchConfig {
            f_h,
            layout,
            ..PrefetchConfig::default().without_eviction()
        });
        let r = Engine::build(cfg).run();
        if best_ne
            .as_ref()
            .is_none_or(|(_, b)| r.makespan_s < b.makespan_s)
        {
            best_ne = Some((f_h, r));
        }
    }
    let best_f = best_ne.as_ref().unwrap().0;

    let mut with_evict = Vec::new();
    for gamma in gamma_values() {
        let mut best: Option<(usize, RunReport)> = None;
        for delta in delta_values(full) {
            let mut cfg = base.clone();
            cfg.mode = Mode::Prefetch(PrefetchConfig {
                f_h: best_f,
                gamma,
                delta,
                eviction: true,
                layout,
                lookahead: 1,
                policy: PrefetchPolicyKind::Scoreboard,
            });
            let r = Engine::build(cfg).run();
            if best
                .as_ref()
                .is_none_or(|(_, b)| r.makespan_s < b.makespan_s)
            {
                best = Some((delta, r));
            }
        }
        let (delta, r) = best.unwrap();
        with_evict.push((gamma, delta, r));
    }
    Optimized {
        no_evict: best_ne.unwrap(),
        with_evict,
    }
}

/// Percent improvement of `new` over `old` (positive = faster).
pub fn improvement_pct(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        0.0
    } else {
        100.0 * (1.0 - new / old)
    }
}

/// Render a series as `a, b, c` with fixed precision.
pub fn fmt_series(xs: &[f64], decimals: usize) -> String {
    xs.iter()
        .map(|x| format!("{x:.decimals$}"))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_math() {
        assert!((improvement_pct(10.0, 7.0) - 30.0).abs() < 1e-9);
        assert_eq!(improvement_pct(0.0, 1.0), 0.0);
        assert!(improvement_pct(10.0, 12.0) < 0.0);
    }

    #[test]
    fn sweep_values_match_paper() {
        assert_eq!(f_h_values(true), vec![0.15, 0.25, 0.35, 0.5]);
        assert_eq!(gamma_values(), vec![0.95, 0.995, 0.9995]);
        assert_eq!(delta_values(true), vec![16, 32, 64, 128, 512, 1024]);
    }

    #[test]
    fn papers_uses_mem_efficient_layout() {
        assert_eq!(layout_for(DatasetKind::Papers), ScoreLayout::MemEfficient);
        assert_eq!(layout_for(DatasetKind::Arxiv), ScoreLayout::Dense);
    }

    #[test]
    fn fmt_series_rounds() {
        assert_eq!(fmt_series(&[0.123, 0.456], 2), "0.12, 0.46");
    }

    #[test]
    fn wallclock_compare_reports_agree() {
        // The identity assertions live inside wallclock_compare; this
        // exercises them on a real-math run at world 4. Speedup itself is
        // machine-dependent and checked by the ignored scaling test below.
        let mut cfg = engine_config(&Opts::quick(), DatasetKind::Products, Backend::Cpu, 2);
        cfg.trainers_per_part = 2;
        cfg.train_math = true;
        let cmp = wallclock_compare(&cfg);
        assert_eq!(cmp.world, 4);
        assert!(cmp.sequential_s > 0.0 && cmp.parallel_s > 0.0);
        assert!(!cmp.report.final_params.is_empty());
    }

    #[test]
    fn traced_run_passes_the_consistency_check() {
        let mut cfg = engine_config(&Opts::quick(), DatasetKind::Products, Backend::Cpu, 2);
        cfg.trainers_per_part = 2;
        cfg.trace = true;
        cfg.mode = Mode::Prefetch(PrefetchConfig::default());
        let report = Engine::build(cfg).run();
        assert_trace_consistent(&report);
    }

    #[test]
    #[ignore = "timing-sensitive; run explicitly: cargo test --release -- --ignored tracing_overhead"]
    fn tracing_overhead_under_one_percent() {
        // Acceptance check for the no-op fast path: on a unit-scale run,
        // even *enabled* tracing must cost < 1% wall clock, so the
        // disabled path (a handful of `Option::None` checks) is free.
        // Median of several runs to damp scheduler noise; run in release.
        let mut cfg = engine_config(&Opts::quick(), DatasetKind::Products, Backend::Cpu, 2);
        cfg.trainers_per_part = 2;
        cfg.mode = Mode::Prefetch(PrefetchConfig::default());
        let median = |cfg: &EngineConfig| {
            let mut times: Vec<f64> = (0..7)
                .map(|_| {
                    let engine = Engine::build(cfg.clone());
                    let t0 = std::time::Instant::now();
                    let _ = engine.run();
                    t0.elapsed().as_secs_f64()
                })
                .collect();
            times.sort_by(f64::total_cmp);
            times[times.len() / 2]
        };
        let plain_s = median(&cfg);
        cfg.trace = true;
        let traced_s = median(&cfg);
        let overhead_pct = 100.0 * (traced_s - plain_s) / plain_s;
        println!("untraced {plain_s:.4}s, traced {traced_s:.4}s, overhead {overhead_pct:.2}%");
        assert!(
            overhead_pct < 1.0,
            "tracing overhead {overhead_pct:.2}% exceeds the 1% contract"
        );
    }

    #[test]
    #[ignore = "timing-sensitive; run explicitly: cargo test --release -- --ignored threaded_speedup"]
    fn threaded_speedup_at_world_8() {
        // Acceptance check for the threaded engine: ≥2× wall-clock at
        // world ≥ 8 on a 4+ core machine (run in release).
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let mut cfg = engine_config(&Opts::standard(), DatasetKind::Products, Backend::Cpu, 2);
        cfg.trainers_per_part = 4; // world = 8
        cfg.train_math = true;
        cfg.hidden_dim = 64;
        cfg.epochs = 3;
        let cmp = wallclock_compare(&cfg);
        println!(
            "world {} on {} cores: sequential {:.3}s, threaded {:.3}s, speedup {:.2}x",
            cmp.world,
            cores,
            cmp.sequential_s,
            cmp.parallel_s,
            cmp.speedup()
        );
        if cores >= 4 {
            assert!(
                cmp.speedup() >= 2.0,
                "threaded engine only {:.2}x faster at world {} on {} cores",
                cmp.speedup(),
                cmp.world,
                cores
            );
        }
    }
}
