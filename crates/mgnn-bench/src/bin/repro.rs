//! Reproduction CLI: regenerate any table or figure of the paper.
//!
//! ```bash
//! cargo run --release -p mgnn-bench --bin repro -- --experiment fig6
//! cargo run --release -p mgnn-bench --bin repro -- --experiment all --scale small
//! cargo run --release -p mgnn-bench --bin repro -- --experiment table4 --full
//! cargo run --release -p mgnn-bench --bin repro -- --experiment fig8 \
//!     --trace-out /tmp/trace --json-out /tmp/run.json
//! ```
//!
//! `--json-out FILE` writes every engine run's full `RunReport` as JSON;
//! `--trace-out DIR` additionally enables span tracing and writes one
//! Chrome/Perfetto `*.trace.json` per run (open at <https://ui.perfetto.dev>)
//! plus an `index.json` mapping files to experiments and one
//! `*-events.jsonl` per experiment with the request-correlated fault
//! ladder (empty files are skipped).
//!
//! Live telemetry: `--telemetry-port N` serves Prometheus text
//! exposition at `http://127.0.0.1:N/metrics` for the life of the
//! process (port 0 picks an ephemeral port, printed on stderr);
//! `--metrics-out FILE` writes one final exposition snapshot after all
//! experiments, no server required. Both perturb only wall-clock — every
//! report stays bitwise identical to a telemetry-off run.

use massivegnn::PrefetchPolicyKind;
use mgnn_bench::{bench, experiments, figures::chaos, Opts};
use mgnn_graph::Scale;
use mgnn_net::FaultProfile;
use serde::{Serialize, Value};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: repro --experiment <{}|all> [--scale unit|small|bench] [--epochs N] [--batch N] \
         [--hidden N] [--full] [--seed N] [--trace-out DIR] [--json-out FILE] \
         [--bench-out FILE] [--bench-iters N] [--perf-guard] \
         [--policy scoreboard|lookahead] [--depth N] \
         [--fault-profile <{}>] [--fault-seed N] \
         [--telemetry-port N] [--metrics-out FILE] [--telemetry-linger-ms N]",
        experiments::names().join("|"),
        FaultProfile::NAMES.join("|")
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment: Option<String> = None;
    let mut opts = Opts::standard();
    let mut trace_out: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut bench_out: Option<PathBuf> = None;
    let mut bench_iters = 5usize;
    let mut perf_guard = false;
    let mut telemetry_port: Option<u16> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut telemetry_linger_ms = 0u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--experiment" | "-e" => {
                i += 1;
                experiment = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--scale" => {
                i += 1;
                opts.scale = match args.get(i).map(String::as_str) {
                    Some("unit") => Scale::Unit,
                    Some("small") => Scale::Small,
                    Some("bench") => Scale::Bench,
                    _ => usage(),
                };
            }
            "--epochs" => {
                i += 1;
                opts.epochs = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--batch" => {
                i += 1;
                opts.batch_size = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--hidden" => {
                i += 1;
                opts.hidden_dim = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                opts.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--trace-out" => {
                i += 1;
                trace_out = Some(PathBuf::from(
                    args.get(i).cloned().unwrap_or_else(|| usage()),
                ));
            }
            "--json-out" => {
                i += 1;
                json_out = Some(PathBuf::from(
                    args.get(i).cloned().unwrap_or_else(|| usage()),
                ));
            }
            "--bench-out" => {
                i += 1;
                bench_out = Some(PathBuf::from(
                    args.get(i).cloned().unwrap_or_else(|| usage()),
                ));
            }
            "--bench-iters" => {
                i += 1;
                bench_iters = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--policy" => {
                i += 1;
                opts.policy = match args.get(i).map(String::as_str) {
                    Some("scoreboard") => PrefetchPolicyKind::Scoreboard,
                    Some("lookahead") => {
                        // Keep a --depth seen earlier on the line;
                        // depth 1 (just-in-time) is the robust default.
                        let depth = match opts.policy {
                            PrefetchPolicyKind::Lookahead { depth } => depth,
                            PrefetchPolicyKind::Scoreboard => 1,
                        };
                        PrefetchPolicyKind::Lookahead { depth }
                    }
                    _ => usage(),
                };
            }
            "--depth" => {
                i += 1;
                let depth: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|d| *d >= 1)
                    .unwrap_or_else(|| usage());
                opts.policy = PrefetchPolicyKind::Lookahead { depth };
            }
            "--fault-profile" => {
                i += 1;
                let name = args.get(i).cloned().unwrap_or_else(|| usage());
                if FaultProfile::named(&name, 0).is_none() {
                    eprintln!("unknown fault profile: {name}");
                    usage()
                }
                opts.fault_profile = Some(name);
            }
            "--fault-seed" => {
                i += 1;
                opts.fault_seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--telemetry-port" => {
                i += 1;
                telemetry_port = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--metrics-out" => {
                i += 1;
                metrics_out = Some(PathBuf::from(
                    args.get(i).cloned().unwrap_or_else(|| usage()),
                ));
            }
            "--telemetry-linger-ms" => {
                i += 1;
                telemetry_linger_ms = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--perf-guard" => perf_guard = true,
            "--full" => opts.full = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
        i += 1;
    }

    // Kernel benchmarks run first (and alone, unless an experiment was
    // explicitly requested alongside them).
    if let Some(file) = &bench_out {
        let doc = bench::run_all(opts.seed, bench_iters);
        write_or_die(file, &serde_json::to_string_pretty(&doc));
        eprintln!("[bench timings written to {}]", file.display());
        // Perf guard (CI): the end-to-end threaded engine must not fall
        // behind the sequential one beyond the shared tolerance.
        if perf_guard {
            // A single-core host has no helpers to speed the threaded
            // engine up, so the speedup floor would flag the hardware,
            // not a regression. Warn and skip instead of failing.
            let cores = doc
                .get("cores")
                .and_then(Value::as_f64)
                .expect("bench document carries cores");
            if cores <= 1.0 {
                eprintln!(
                    "perf guard: skipped — single-core host cannot exercise the threaded engine"
                );
            } else {
                let speedup = doc
                    .get("end_to_end")
                    .and_then(|e| e.get("speedup"))
                    .and_then(Value::as_f64)
                    .expect("bench document carries end_to_end.speedup");
                if speedup < bench::PERF_GUARD_MIN_SPEEDUP {
                    eprintln!(
                        "perf guard: end-to-end speedup {speedup:.3} fell below the floor {:.2}",
                        bench::PERF_GUARD_MIN_SPEEDUP
                    );
                    std::process::exit(1);
                }
                eprintln!(
                    "[perf guard: speedup {speedup:.3} >= {:.2}]",
                    bench::PERF_GUARD_MIN_SPEEDUP
                );
            }
        }
        if experiment.is_none() {
            return;
        }
    } else if perf_guard {
        eprintln!("--perf-guard requires --bench-out FILE");
        usage()
    }

    let experiment = experiment.unwrap_or_else(|| String::from("all"));
    let list: Vec<&experiments::Experiment> = if experiment == "all" {
        experiments::ALL.iter().collect()
    } else if let Some(e) = experiments::find(&experiment) {
        vec![e]
    } else {
        eprintln!("unknown experiment: {experiment}");
        usage()
    };

    // Spans are only worth recording when there is somewhere to write
    // them; reports alone (--json-out) keep the no-op fast path.
    opts.trace = trace_out.is_some();
    // Telemetry arms the registry inside every engine run; either flag
    // implies it (a scrape server with nothing mirrored would read 0s).
    opts.telemetry = telemetry_port.is_some() || metrics_out.is_some();
    let capture = trace_out.is_some() || json_out.is_some();
    if capture {
        mgnn_obs::sink::install();
    }
    if trace_out.is_some() {
        // Correlated fault-ladder events ride along with span traces.
        mgnn_obs::events::install();
    }
    let scrape = telemetry_port.map(|port| {
        let server = mgnn_obs::ScrapeServer::start(port).unwrap_or_else(|e| {
            eprintln!("cannot bind scrape server on port {port}: {e}");
            std::process::exit(1)
        });
        eprintln!(
            "[telemetry: serving /metrics on http://{}]",
            server.local_addr()
        );
        server
    });
    if let Some(dir) = &trace_out {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(1)
        });
    }

    let mut experiment_values: Vec<Value> = Vec::new();
    let mut index_rows: Vec<Value> = Vec::new();
    let mut chaos_diverged = false;
    for exp in list {
        let t0 = std::time::Instant::now();
        let rendered = (exp.run)(&opts);
        println!("{rendered}");
        // The chaos experiment gates CI: a degraded run whose loss left
        // the tolerance band marks its verdict line and fails the CLI.
        chaos_diverged |= rendered.contains(chaos::DIVERGED_MARKER);
        eprintln!("[{} took {:.1?}]\n", exp.name, t0.elapsed());
        if !capture {
            continue;
        }
        let captures = mgnn_obs::sink::drain();
        if let Some(dir) = &trace_out {
            let events = mgnn_obs::events::drain();
            if !events.is_empty() {
                let file = format!("{}-events.jsonl", exp.name);
                write_or_die(&dir.join(file), &mgnn_obs::events::to_jsonl(&events));
            }
        }
        let mut run_values: Vec<Value> = Vec::new();
        for (seq, cap) in captures.iter().enumerate() {
            if let Some(dir) = &trace_out {
                if !cap.traces.is_empty() {
                    let file = format!("{}-{seq:03}.trace.json", exp.name);
                    let text = mgnn_obs::export::perfetto_trace_string(&cap.traces);
                    write_or_die(&dir.join(&file), &text);
                    index_rows.push(Value::obj([
                        ("file", file.to_value()),
                        ("experiment", exp.name.to_value()),
                        ("label", cap.label.to_value()),
                        ("seq", (seq as u64).to_value()),
                    ]));
                }
            }
            run_values.push(Value::obj([
                ("label", cap.label.to_value()),
                ("report", cap.report.clone()),
            ]));
        }
        experiment_values.push(Value::obj([
            ("name", exp.name.to_value()),
            ("about", exp.about.to_value()),
            ("runs", Value::Arr(run_values)),
        ]));
    }

    if capture {
        mgnn_obs::sink::uninstall();
    }
    if trace_out.is_some() {
        mgnn_obs::events::uninstall();
    }
    // Hold the scrape server open so an external scraper (CI smoke, a
    // real Prometheus) can read the finished run's totals.
    if telemetry_linger_ms > 0 && scrape.is_some() {
        eprintln!("[telemetry: lingering {telemetry_linger_ms} ms for scrapes]");
        std::thread::sleep(std::time::Duration::from_millis(telemetry_linger_ms));
    }
    if let Some(file) = &metrics_out {
        write_or_die(file, &mgnn_obs::prom::render());
        eprintln!("[metrics snapshot written to {}]", file.display());
    }
    if let Some(server) = scrape {
        server.shutdown();
    }
    if let Some(dir) = &trace_out {
        let index = serde_json::to_string_pretty(&Value::obj([("traces", Value::Arr(index_rows))]));
        write_or_die(&dir.join("index.json"), &index);
        eprintln!("[traces written to {}]", dir.display());
    }
    if let Some(file) = &json_out {
        let doc = Value::obj([
            ("schema", "mgnn-repro/v1".to_value()),
            ("scale", format!("{:?}", opts.scale).to_value()),
            ("seed", opts.seed.to_value()),
            (
                "fault_profile",
                opts.fault_profile
                    .as_deref()
                    .map_or(Value::Null, |p| p.to_value()),
            ),
            ("fault_seed", opts.fault_seed.to_value()),
            ("experiments", Value::Arr(experiment_values)),
        ]);
        write_or_die(file, &serde_json::to_string_pretty(&doc));
        eprintln!("[reports written to {}]", file.display());
    }
    if chaos_diverged {
        eprintln!("chaos verdict: degraded run's loss diverged beyond tolerance");
        std::process::exit(1);
    }
}

fn write_or_die(path: &std::path::Path, text: &str) {
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1)
    }
}
