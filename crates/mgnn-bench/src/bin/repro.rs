//! Reproduction CLI: regenerate any table or figure of the paper.
//!
//! ```bash
//! cargo run --release -p mgnn-bench --bin repro -- --experiment fig6
//! cargo run --release -p mgnn-bench --bin repro -- --experiment all --scale small
//! cargo run --release -p mgnn-bench --bin repro -- --experiment table4 --full
//! ```

use mgnn_bench::figures::{
    ablation, convergence, fig10, fig11, fig12, fig13, fig14, fig6, fig7, fig8, fig9, lookahead,
    partitioning, perfmodel,
};
use mgnn_bench::tables::{table2, table3, table4};
use mgnn_bench::Opts;
use mgnn_graph::Scale;

const EXPERIMENTS: &[&str] = &[
    "table2",
    "table3",
    "table4",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "perfmodel",
    "ablation",
    "lookahead",
    "partitioning",
    "convergence",
];

fn usage() -> ! {
    eprintln!(
        "usage: repro --experiment <{}|all> [--scale unit|small|bench] [--epochs N] [--batch N] [--hidden N] [--full] [--seed N]",
        EXPERIMENTS.join("|")
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = String::from("all");
    let mut opts = Opts::standard();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--experiment" | "-e" => {
                i += 1;
                experiment = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--scale" => {
                i += 1;
                opts.scale = match args.get(i).map(String::as_str) {
                    Some("unit") => Scale::Unit,
                    Some("small") => Scale::Small,
                    Some("bench") => Scale::Bench,
                    _ => usage(),
                };
            }
            "--epochs" => {
                i += 1;
                opts.epochs = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--batch" => {
                i += 1;
                opts.batch_size = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--hidden" => {
                i += 1;
                opts.hidden_dim = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                opts.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--full" => opts.full = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
        i += 1;
    }

    let list: Vec<&str> = if experiment == "all" {
        EXPERIMENTS.to_vec()
    } else if EXPERIMENTS.contains(&experiment.as_str()) {
        vec![experiment.as_str()]
    } else {
        eprintln!("unknown experiment: {experiment}");
        usage()
    };

    for name in list {
        let t0 = std::time::Instant::now();
        match name {
            "table2" => println!("{}", table2::run(&opts)),
            "table3" => println!("{}", table3::run(&opts)),
            "table4" => println!("{}", table4::run(&opts)),
            "fig6" => println!("{}", fig6::run(&opts)),
            "fig7" => println!("{}", fig7::run(&opts)),
            "fig8" => println!("{}", fig8::run(&opts)),
            "fig9" => println!("{}", fig9::run(&opts)),
            "fig10" => println!("{}", fig10::run(&opts)),
            "fig11" => println!("{}", fig11::run(&opts)),
            "fig12" => println!("{}", fig12::run(&opts)),
            "fig13" => println!("{}", fig13::run(&opts)),
            "fig14" => println!("{}", fig14::run(&opts)),
            "perfmodel" => println!("{}", perfmodel::run(&opts)),
            "ablation" => println!("{}", ablation::run(&opts)),
            "lookahead" => println!("{}", lookahead::run(&opts)),
            "partitioning" => println!("{}", partitioning::run(&opts)),
            "convergence" => println!("{}", convergence::run(&opts)),
            _ => unreachable!(),
        }
        eprintln!("[{name} took {:.1?}]\n", t0.elapsed());
    }
}
