//! Compare two benchmark or repro JSON documents and fail on regression.
//!
//! ```bash
//! report-diff BASELINE.json CANDIDATE.json
//! ```
//!
//! Exit codes: 0 = no breach, 1 = a perf guard breached, 2 = the
//! documents could not be read or compared (usage, parse, or schema
//! errors). See [`mgnn_bench::diff`] for the comparison rules.

use mgnn_bench::diff;
use serde_json::from_str;

fn die(msg: &str) -> ! {
    eprintln!("report-diff: {msg}");
    eprintln!("usage: report-diff BASELINE.json CANDIDATE.json");
    std::process::exit(2)
}

fn load(path: &str) -> serde::Value {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    from_str(&text).unwrap_or_else(|e| die(&format!("cannot parse {path}: {e:?}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline, candidate] = args.as_slice() else {
        die("expected exactly two arguments");
    };
    let base = load(baseline);
    let cand = load(candidate);
    let report = diff::diff_docs(&base, &cand).unwrap_or_else(|e| die(&e));
    print!("{}", report.render());
    if report.failed() {
        std::process::exit(1);
    }
}
