//! Validate the artifacts `repro` writes: the `--json-out` report file
//! and/or a `--trace-out` directory of Perfetto traces. Used by CI's
//! smoke step to prove the exported JSON actually parses and carries the
//! structure DESIGN.md documents; exits non-zero with a message on the
//! first violation.
//!
//! ```bash
//! cargo run --release -p mgnn-bench --bin validate -- \
//!     --json /tmp/run.json --trace /tmp/trace
//! ```

use serde::Value;
use std::path::{Path, PathBuf};

fn usage() -> ! {
    eprintln!("usage: validate [--json FILE] [--trace DIR]");
    std::process::exit(2)
}

fn fail(msg: String) -> ! {
    eprintln!("validate: {msg}");
    std::process::exit(1)
}

fn load(path: &Path) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format!("cannot read {}: {e}", path.display())));
    serde_json::from_str(&text)
        .unwrap_or_else(|e| fail(format!("{} is not valid JSON: {e:?}", path.display())))
}

fn require<'v>(v: &'v Value, key: &str, ctx: &str) -> &'v Value {
    v.get(key)
        .unwrap_or_else(|| fail(format!("{ctx}: missing field {key:?}")))
}

/// Check one run report: world/trainers agree and the headline metrics
/// are finite numbers.
fn check_report(report: &Value, ctx: &str) {
    let world = require(report, "world", ctx)
        .as_u64()
        .unwrap_or_else(|| fail(format!("{ctx}: world is not an integer")));
    let trainers = require(report, "trainers", ctx)
        .as_array()
        .unwrap_or_else(|| fail(format!("{ctx}: trainers is not an array")));
    if trainers.len() as u64 != world {
        fail(format!(
            "{ctx}: {} trainer reports for world {world}",
            trainers.len()
        ));
    }
    for key in ["makespan_s", "hit_rate", "mean_overlap_efficiency"] {
        let x = require(report, key, ctx)
            .as_f64()
            .unwrap_or_else(|| fail(format!("{ctx}: {key} is not a number")));
        if !x.is_finite() || x < 0.0 {
            fail(format!("{ctx}: {key} = {x} is not a finite non-negative"));
        }
    }
    for (t, tr) in trainers.iter().enumerate() {
        let ctx = format!("{ctx}: trainer {t}");
        let b = require(tr, "breakdown", &ctx);
        for key in ["sampling_s", "rpc_s", "copy_s", "train_s", "total_serial_s"] {
            require(b, key, &ctx)
                .as_f64()
                .unwrap_or_else(|| fail(format!("{ctx}: breakdown.{key} is not a number")));
        }
        require(tr, "minibatches", &ctx)
            .as_u64()
            .unwrap_or_else(|| fail(format!("{ctx}: minibatches is not an integer")));
    }
}

fn check_json(path: &Path) {
    let doc = load(path);
    let ctx = path.display().to_string();
    let schema = require(&doc, "schema", &ctx)
        .as_str()
        .unwrap_or_else(|| fail(format!("{ctx}: schema is not a string")));
    if schema != "mgnn-repro/v1" {
        fail(format!("{ctx}: unknown schema {schema:?}"));
    }
    let experiments = require(&doc, "experiments", &ctx)
        .as_array()
        .unwrap_or_else(|| fail(format!("{ctx}: experiments is not an array")));
    if experiments.is_empty() {
        fail(format!("{ctx}: no experiments captured"));
    }
    let mut runs_total = 0usize;
    for exp in experiments {
        let name = require(exp, "name", &ctx)
            .as_str()
            .unwrap_or_else(|| fail(format!("{ctx}: experiment name is not a string")))
            .to_string();
        let runs = require(exp, "runs", &name)
            .as_array()
            .unwrap_or_else(|| fail(format!("{name}: runs is not an array")));
        for (i, run) in runs.iter().enumerate() {
            let label = require(run, "label", &name)
                .as_str()
                .unwrap_or_else(|| fail(format!("{name}: run label is not a string")));
            check_report(
                require(run, "report", &name),
                &format!("{name} run {i} ({label})"),
            );
        }
        runs_total += runs.len();
    }
    if runs_total == 0 {
        fail(format!("{ctx}: experiments captured zero engine runs"));
    }
    println!(
        "{}: ok ({} experiments, {runs_total} runs)",
        path.display(),
        experiments.len()
    );
}

fn check_trace_dir(dir: &Path) {
    let index = load(&dir.join("index.json"));
    let rows = require(&index, "traces", "index.json")
        .as_array()
        .unwrap_or_else(|| fail("index.json: traces is not an array".into()));
    if rows.is_empty() {
        fail("index.json lists no trace files".into());
    }
    let mut spans_total = 0usize;
    for row in rows {
        let file = require(row, "file", "index.json")
            .as_str()
            .unwrap_or_else(|| fail("index.json: file is not a string".into()))
            .to_string();
        let doc = load(&dir.join(&file));
        let events = require(&doc, "traceEvents", &file)
            .as_array()
            .unwrap_or_else(|| fail(format!("{file}: traceEvents is not an array")));
        let mut spans = 0usize;
        let mut metadata = 0usize;
        for ev in events {
            match require(ev, "ph", &file).as_str() {
                Some("X") => {
                    for key in ["pid", "tid", "ts", "dur"] {
                        require(ev, key, &file)
                            .as_f64()
                            .unwrap_or_else(|| fail(format!("{file}: span {key} is not a number")));
                    }
                    require(ev, "name", &file)
                        .as_str()
                        .unwrap_or_else(|| fail(format!("{file}: span name is not a string")));
                    spans += 1;
                }
                Some("M") => metadata += 1,
                other => fail(format!("{file}: unexpected event phase {other:?}")),
            }
        }
        if spans == 0 {
            fail(format!("{file}: no complete (ph=X) span events"));
        }
        if metadata == 0 {
            fail(format!("{file}: no thread/process metadata events"));
        }
        spans_total += spans;
    }
    println!(
        "{}: ok ({} trace files, {spans_total} spans)",
        dir.display(),
        rows.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json: Option<PathBuf> = None;
    let mut trace: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                i += 1;
                json = Some(PathBuf::from(
                    args.get(i).cloned().unwrap_or_else(|| usage()),
                ));
            }
            "--trace" => {
                i += 1;
                trace = Some(PathBuf::from(
                    args.get(i).cloned().unwrap_or_else(|| usage()),
                ));
            }
            _ => usage(),
        }
        i += 1;
    }
    if json.is_none() && trace.is_none() {
        usage();
    }
    if let Some(path) = json {
        check_json(&path);
    }
    if let Some(dir) = trace {
        check_trace_dir(&dir);
    }
}
