//! Table III: average remote (halo) nodes per trainer and minibatches per
//! trainer as the trainer count grows with a constant batch size — the
//! structural driver of the paper's "hit rate falls with more trainers"
//! observation.

use crate::harness::{engine_config, Opts};
use massivegnn::Engine;
use mgnn_graph::DatasetKind;
use mgnn_net::Backend;
use std::fmt;

/// One (dataset, #trainers) cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Total trainers (4 per compute node).
    pub trainers: usize,
    /// Mean halo nodes visible per trainer's partition.
    pub avg_remote: f64,
    /// Minibatches per trainer per full run.
    pub minibatches: usize,
}

/// Rows per dataset.
pub struct Table3 {
    /// `(dataset name, cells over trainer counts)`.
    pub rows: Vec<(&'static str, Vec<Cell>)>,
    /// Epochs the minibatch counts cover.
    pub epochs: usize,
}

/// Compute the table for trainer counts {8, 16, 32} (4/node ⇒ 2/4/8
/// compute nodes; extend with `--full`).
pub fn run(opts: &Opts) -> Table3 {
    let node_counts: &[usize] = if opts.full {
        &[2, 4, 8, 16]
    } else {
        &[2, 4, 8]
    };
    let datasets = [
        DatasetKind::Arxiv,
        DatasetKind::Products,
        DatasetKind::Papers,
    ];
    let mut rows = Vec::new();
    for kind in datasets {
        let mut cells = Vec::new();
        for &parts in node_counts {
            let cfg = engine_config(opts, kind, Backend::Cpu, parts);
            let engine = Engine::build(cfg);
            let avg_remote = engine
                .partitions()
                .iter()
                .map(|p| p.num_halo() as f64)
                .sum::<f64>()
                / engine.partitions().len() as f64;
            cells.push(Cell {
                trainers: parts * 4,
                avg_remote,
                minibatches: engine.steps_per_epoch() * opts.epochs,
            });
        }
        rows.push((kind.name(), cells));
    }
    Table3 {
        rows,
        epochs: opts.epochs,
    }
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table III — avg remote nodes per trainer / minibatches per trainer ({} epochs)",
            self.epochs
        )?;
        write!(f, "{:<10}", "#trainers")?;
        for (name, _) in &self.rows {
            write!(f, " {name:>16}")?;
        }
        writeln!(f)?;
        let counts: Vec<usize> = self.rows[0].1.iter().map(|c| c.trainers).collect();
        for (i, t) in counts.iter().enumerate() {
            write!(f, "{t:<10}")?;
            for (_, cells) in &self.rows {
                let c = &cells[i];
                write!(f, " {:>10.1}/{:<5}", c.avg_remote, c.minibatches)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minibatches_shrink_with_more_trainers() {
        let t = run(&Opts::quick());
        for (name, cells) in &t.rows {
            for w in cells.windows(2) {
                assert!(
                    w[1].minibatches <= w[0].minibatches,
                    "{name}: minibatches should fall as trainers grow"
                );
            }
        }
    }

    #[test]
    fn remote_nodes_positive() {
        let t = run(&Opts::quick());
        for (_, cells) in &t.rows {
            assert!(cells.iter().all(|c| c.avg_remote > 0.0));
        }
    }

    #[test]
    fn display_renders() {
        let t = run(&Opts::quick());
        let s = format!("{t}");
        assert!(s.contains("Table III"));
        assert!(s.contains("products"));
    }
}
