//! Table II: dataset statistics — the paper's numbers side by side with
//! the synthetic presets' measured statistics at the chosen scale, plus
//! the shape properties (average degree, skew) the substitution promises
//! to preserve.

use crate::harness::Opts;
use mgnn_graph::stats::degree_stats;
use mgnn_graph::{Dataset, DatasetKind};
use std::fmt;

/// One dataset's row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Dataset name.
    pub name: &'static str,
    /// Paper node count.
    pub paper_nodes: u64,
    /// Paper edge count.
    pub paper_edges: u64,
    /// Paper average degree (E/V).
    pub paper_avg_deg: f64,
    /// Generated node count.
    pub gen_nodes: usize,
    /// Generated (directed) edge count.
    pub gen_edges: usize,
    /// Generated average degree.
    pub gen_avg_deg: f64,
    /// Degree-distribution Gini coefficient of the generated graph.
    pub gen_gini: f64,
    /// Feature dimension (exact in both).
    pub feat_dim: usize,
    /// Number of classes (exact in both).
    pub classes: usize,
}

/// Full table.
pub struct Table2 {
    /// One row per dataset.
    pub rows: Vec<Row>,
}

/// Generate every preset and measure it.
pub fn run(opts: &Opts) -> Table2 {
    let rows = DatasetKind::ALL
        .iter()
        .map(|&kind| {
            let d = Dataset::generate(kind, opts.scale, opts.seed);
            let stats = degree_stats(&d.graph);
            Row {
                name: kind.name(),
                paper_nodes: kind.paper_nodes(),
                paper_edges: kind.paper_edges(),
                paper_avg_deg: kind.paper_avg_degree(),
                gen_nodes: d.graph.num_nodes(),
                gen_edges: d.graph.num_edges(),
                gen_avg_deg: d.graph.avg_degree(),
                gen_gini: stats.gini,
                feat_dim: d.features.dim(),
                classes: d.features.num_classes(),
            }
        })
        .collect();
    Table2 { rows }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table II — datasets (paper vs generated preset)")?;
        writeln!(
            f,
            "{:<10} {:>12} {:>13} {:>8} | {:>9} {:>10} {:>8} {:>6} {:>5} {:>7}",
            "dataset",
            "paper |V|",
            "paper |E|",
            "avgdeg",
            "gen |V|",
            "gen |E|",
            "avgdeg",
            "gini",
            "feat",
            "classes"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:>12} {:>13} {:>8.1} | {:>9} {:>10} {:>8.1} {:>6.2} {:>5} {:>7}",
                r.name,
                r.paper_nodes,
                r.paper_edges,
                r.paper_avg_deg,
                r.gen_nodes,
                r.gen_edges,
                r.gen_avg_deg,
                r.gen_gini,
                r.feat_dim,
                r.classes
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_four_datasets() {
        let t = run(&Opts::quick());
        assert_eq!(t.rows.len(), 4);
        let names: Vec<_> = t.rows.iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["arxiv", "products", "reddit", "papers"]);
    }

    #[test]
    fn feature_dims_exact() {
        let t = run(&Opts::quick());
        let dims: Vec<_> = t.rows.iter().map(|r| r.feat_dim).collect();
        assert_eq!(dims, vec![128, 100, 602, 128]);
    }

    #[test]
    fn avg_degree_order_preserved() {
        // products denser than arxiv; papers between, as in the paper.
        let t = run(&Opts::quick());
        let get = |n: &str| t.rows.iter().find(|r| r.name == n).unwrap().gen_avg_deg;
        assert!(get("products") > get("papers"));
        assert!(get("papers") > get("arxiv"));
    }

    #[test]
    fn display_renders() {
        let t = run(&Opts::quick());
        let s = format!("{t}");
        assert!(s.contains("Table II"));
        assert!(s.contains("products"));
    }
}
