//! Table reproductions (Tables II–IV of the paper).

pub mod table2;
pub mod table3;
pub mod table4;
