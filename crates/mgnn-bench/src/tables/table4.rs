//! Table IV: the optimal `(f_p^h, γ, Δ)` per dataset and backend — the
//! argmin over the same sweep Fig. 6 evaluates, choosing by training time
//! (the paper: "we always prioritize time over hit rate").

use crate::harness::{engine_config, optimize_prefetch, Opts};
use massivegnn::Engine;
use mgnn_graph::DatasetKind;
use mgnn_net::Backend;
use std::fmt;

/// One optimal cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Dataset name.
    pub dataset: &'static str,
    /// Backend name.
    pub backend: &'static str,
    /// Optimal buffer fraction.
    pub f_h: f64,
    /// Optimal decay.
    pub gamma: f64,
    /// Optimal interval.
    pub delta: usize,
    /// Its improvement over baseline (%).
    pub improvement_pct: f64,
}

/// The table.
pub struct Table4 {
    /// Optimal settings per (dataset, backend).
    pub cells: Vec<Cell>,
    /// Compute nodes used.
    pub num_parts: usize,
}

/// Find optima on `num_parts = 2` compute nodes (extend with `--full`).
pub fn run(opts: &Opts) -> Table4 {
    let num_parts = 2;
    let datasets: &[DatasetKind] = if opts.full {
        &DatasetKind::ALL
    } else {
        &[DatasetKind::Arxiv, DatasetKind::Products]
    };
    let mut cells = Vec::new();
    for &kind in datasets {
        for backend in [Backend::Cpu, Backend::Gpu] {
            let base = engine_config(opts, kind, backend, num_parts);
            let baseline = Engine::build(base.clone()).run();
            let optimized = optimize_prefetch(&base, opts.full);
            // Best with-eviction run over γ.
            let (gamma, delta, best) = optimized
                .with_evict
                .iter()
                .min_by(|a, b| a.2.makespan_s.partial_cmp(&b.2.makespan_s).unwrap())
                .map(|(g, d, r)| (*g, *d, r))
                .unwrap();
            cells.push(Cell {
                dataset: kind.name(),
                backend: backend.name(),
                f_h: optimized.no_evict.0,
                gamma,
                delta,
                improvement_pct: crate::harness::improvement_pct(
                    baseline.makespan_s,
                    best.makespan_s,
                ),
            });
        }
    }
    Table4 { cells, num_parts }
}

impl fmt::Display for Table4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table IV — optimal (f_p^h, γ, Δ) on {} compute nodes",
            self.num_parts
        )?;
        writeln!(
            f,
            "{:<10} {:<8} {:>6} {:>8} {:>6} {:>8}",
            "dataset", "backend", "f_h", "gamma", "delta", "impr(%)"
        )?;
        for c in &self.cells {
            writeln!(
                f,
                "{:<10} {:<8} {:>6} {:>8} {:>6} {:>8.1}",
                c.dataset, c.backend, c.f_h, c.gamma, c.delta, c.improvement_pct
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optima_are_from_the_sweep_grid() {
        let mut opts = Opts::quick();
        opts.epochs = 2;
        let t = run(&opts);
        for c in &t.cells {
            assert!(crate::harness::f_h_values(false).contains(&c.f_h));
            assert!(crate::harness::gamma_values().contains(&c.gamma));
            assert!(crate::harness::delta_values(false).contains(&c.delta));
        }
        // Both backends represented.
        assert!(t.cells.iter().any(|c| c.backend == "CPU"));
        assert!(t.cells.iter().any(|c| c.backend == "GPU"));
    }

    #[test]
    fn display_renders() {
        let mut opts = Opts::quick();
        opts.epochs = 2;
        let t = run(&opts);
        assert!(format!("{t}").contains("Table IV"));
    }
}
