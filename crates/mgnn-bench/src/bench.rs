//! Machine-readable kernel benchmarks (`repro --bench-out FILE`).
//!
//! Times the hot kernels the prefetcher leans on — tiled matmul,
//! `probe_batch`, `increment_batch`, top-k candidate selection, one full
//! minibatch `prepare` — each under a 1-thread cap and under the full
//! pool, plus an end-to-end [`wallclock_compare`] of the threaded
//! engine, and emits one JSON document so CI can track the perf
//! trajectory across PRs (BENCH_PR3.json is the first point).
//!
//! Every kernel is bitwise-deterministic across thread counts (the shim
//! guarantees it), so the 1-thread and N-thread runs do the *same*
//! arithmetic — the speedup column isolates scheduling, not luck. On a
//! single-core host the pool has no helpers and speedups sit near 1;
//! the recorded `cores`/`threads` fields keep such numbers honest.

use crate::harness::{engine_config, wallclock_compare_ordered, Opts};

/// The CI perf guard's floor on the end-to-end `speedup` column: the
/// threaded engine (with its adaptive single-core fallback) must never
/// run meaningfully slower than the sequential one. The single source of
/// truth — `repro --perf-guard` and the workflow both read it from here.
pub const PERF_GUARD_MIN_SPEEDUP: f64 = 0.95;
use massivegnn::config::{PrefetchConfig, ScoreLayout};
use massivegnn::init::initialize_prefetcher;
use massivegnn::scoreboard::AccessScores;
use massivegnn::{Mode, PrefetchBuffer};
use mgnn_graph::generators::erdos_renyi;
use mgnn_graph::{DatasetKind, FeatureStore, NodeId};
use mgnn_net::{Backend, CommMetrics, CostModel, SimCluster};
use mgnn_partition::{build_local_partitions, multilevel_partition};
use mgnn_sampling::NeighborSampler;
use mgnn_tensor::Tensor;
use serde::{Serialize, Value};
use std::time::Instant;

/// Median wall-clock milliseconds of `iters` runs of `f`.
fn median_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut ts: Vec<f64> = (0..iters.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    ts.sort_by(f64::total_cmp);
    ts[ts.len() / 2]
}

/// Time `f` under a 1-thread cap and under the full pool; returns
/// `(seq_ms, par_ms)`.
fn seq_vs_par(iters: usize, mut f: impl FnMut()) -> (f64, f64) {
    let seq = rayon::pool::with_max_threads(1, || median_ms(iters, &mut f));
    let par = median_ms(iters, &mut f);
    (seq, par)
}

fn speedup(seq_ms: f64, par_ms: f64) -> f64 {
    if par_ms == 0.0 {
        1.0
    } else {
        seq_ms / par_ms
    }
}

fn kernel_value(extra: Vec<(&'static str, Value)>, seq_ms: f64, par_ms: f64) -> Value {
    let mut fields = extra;
    fields.push(("seq_ms", seq_ms.to_value()));
    fields.push(("par_ms", par_ms.to_value()));
    fields.push(("speedup", speedup(seq_ms, par_ms).to_value()));
    Value::obj(fields)
}

/// Deterministic pseudo-random tensor (no RNG state threading needed).
fn filled(rows: usize, cols: usize, salt: u32) -> Tensor {
    let data = (0..rows * cols)
        .map(|i| {
            let h = (i as u32).wrapping_add(salt).wrapping_mul(2_654_435_761);
            ((h % 97) as f32 - 48.0) / 16.0
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

fn bench_matmul(iters: usize) -> Value {
    let (m, k, n) = (512usize, 256usize, 128usize);
    let a = filled(m, k, 1);
    let b = filled(k, n, 2);
    let (seq, par) = seq_vs_par(iters, || {
        std::hint::black_box(a.matmul(&b));
    });
    kernel_value(
        vec![
            ("m", (m as u64).to_value()),
            ("k", (k as u64).to_value()),
            ("n", (n as u64).to_value()),
        ],
        seq,
        par,
    )
}

fn bench_probe_batch(iters: usize) -> Value {
    let num_halo = 200_000usize;
    let capacity = 40_000usize;
    let mut buf = PrefetchBuffer::new(num_halo, capacity, 1);
    for h in 0..capacity as u32 {
        buf.insert(h * 5, &[0.0]); // every 5th halo index buffered
    }
    let sampled: Vec<u32> = (0..num_halo as u32).collect();
    let (seq, par) = seq_vs_par(iters, || {
        std::hint::black_box(buf.probe_batch(&sampled));
    });
    kernel_value(
        vec![
            ("batch", (sampled.len() as u64).to_value()),
            ("capacity", (capacity as u64).to_value()),
        ],
        seq,
        par,
    )
}

fn bench_increment_batch(iters: usize) -> Value {
    let num_halo = 200_000usize;
    let halo: Vec<NodeId> = (0..num_halo as u32).map(|i| i * 3).collect();
    let ids: Vec<NodeId> = (0..50_000usize).map(|i| halo[(i * 7) % num_halo]).collect();
    let mut uniq = ids;
    uniq.sort_unstable();
    uniq.dedup();
    let mut scores = AccessScores::new(ScoreLayout::MemEfficient, num_halo * 3, num_halo);
    let (seq, par) = seq_vs_par(iters, || {
        scores.increment_batch(&halo, &uniq);
    });
    kernel_value(
        vec![
            ("halo", (num_halo as u64).to_value()),
            ("batch", (uniq.len() as u64).to_value()),
        ],
        seq,
        par,
    )
}

/// Top-k candidate selection: the O(n) `select_nth_unstable` path
/// against a full-sort reference, at `n` and `4n`, so the JSON records
/// the complexity drop (select scales ~4×, full sort ~4·log-factor
/// more — and the select path is strictly faster at both sizes).
fn bench_top_k(iters: usize) -> Value {
    let k = 64usize;
    let time_at = |n: usize| -> (f64, f64) {
        let halo: Vec<NodeId> = (0..n as u32).collect();
        let mut scores = AccessScores::new(ScoreLayout::MemEfficient, n, n);
        for &g in &halo {
            for _ in 0..(g % 5) {
                scores.increment(&halo, g);
            }
        }
        let deg = |g: NodeId| g.wrapping_mul(2_654_435_761) % 1024;
        let select_ms = median_ms(iters, || {
            std::hint::black_box(scores.top_k_candidates(&halo, halo.iter().copied(), k, deg));
        });
        let full_sort_ms = median_ms(iters, || {
            // The pre-PR implementation: full sort, then truncate.
            let mut scored: Vec<(f32, u32, NodeId)> = halo
                .iter()
                .filter_map(|&g| {
                    let s = scores.get(&halo, g);
                    (s > 0.0).then(|| (s, deg(g), g))
                })
                .collect();
            scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(b.1.cmp(&a.1)).then(a.2.cmp(&b.2)));
            scored.truncate(k);
            std::hint::black_box(scored);
        });
        (select_ms, full_sort_ms)
    };
    let n = 100_000usize;
    let (select_ms, full_sort_ms) = time_at(n);
    let (select_ms_4n, full_sort_ms_4n) = time_at(4 * n);
    Value::obj([
        ("n", (n as u64).to_value()),
        ("k", (k as u64).to_value()),
        ("select_ms", select_ms.to_value()),
        ("full_sort_ms", full_sort_ms.to_value()),
        ("select_ms_4n", select_ms_4n.to_value()),
        ("full_sort_ms_4n", full_sort_ms_4n.to_value()),
        // ~4 for the O(n) path; the full sort grows strictly faster.
        (
            "select_scaling_4n",
            (select_ms_4n / select_ms.max(1e-9)).to_value(),
        ),
        (
            "full_sort_scaling_4n",
            (full_sort_ms_4n / full_sort_ms.max(1e-9)).to_value(),
        ),
        (
            "select_vs_sort_speedup",
            speedup(full_sort_ms_4n, select_ms_4n).to_value(),
        ),
    ])
}

/// Fault-free bulk pull over the `Result`-based RPC path (PR4): the
/// whole checked round-trip — group by owner, issue, block on replies,
/// scatter rows, fold the (empty) `PullOutcome`. With no fault profile
/// armed the client blocks exactly like the pre-PR4 panicking path, so
/// this kernel prices the error plumbing itself; compare against the
/// same kernel in BENCH_PR3-era documents to confirm the conversion is
/// within noise.
fn bench_pull_grouped(iters: usize, seed: u64) -> Value {
    let g = erdos_renyi(4000, 40_000, seed);
    let p = multilevel_partition(&g, 4, seed);
    let dim = 64usize;
    let feats = FeatureStore::synthesize(&g, dim, 8, 3);
    let cluster = SimCluster::new(&feats, &p.assignment, 4);
    // Every node once, shuffled deterministically across owners.
    let ids: Vec<NodeId> = (0..g.num_nodes() as u32)
        .map(|i| i.wrapping_mul(2_654_435_761) % g.num_nodes() as u32)
        .collect();
    let (seq, par) = seq_vs_par(iters, || {
        let (rows, outcome) = cluster.pull_grouped_checked(&ids);
        assert!(!outcome.had_faults(), "fault-free kernel saw faults");
        std::hint::black_box(rows);
    });
    kernel_value(
        vec![
            ("nodes", (ids.len() as u64).to_value()),
            ("dim", (dim as u64).to_value()),
            ("parts", 4u64.to_value()),
        ],
        seq,
        par,
    )
}

/// One full prefetching minibatch `prepare` (sample → probe → score →
/// gather) on a synthetic partition.
fn bench_prepare(iters: usize, seed: u64) -> Value {
    let g = erdos_renyi(4000, 80_000, seed);
    let p = multilevel_partition(&g, 4, seed);
    let dim = 64usize;
    let feats = FeatureStore::synthesize(&g, dim, 8, 3);
    let cluster = SimCluster::new(&feats, &p.assignment, 4);
    let part = build_local_partitions(&g, &p, &[]).remove(0);
    let cfg = PrefetchConfig {
        f_h: 0.25,
        ..Default::default()
    };
    let metrics = CommMetrics::new();
    let cost = CostModel::default();
    let (mut pf, _) = initialize_prefetcher(&part, cfg, g.num_nodes(), &cluster, &cost, &metrics);
    let sampler = NeighborSampler::new(vec![10, 25], seed ^ 0xe5a1);
    let batch = 256usize.min(part.num_local());
    let seeds: Vec<u32> = (0..batch as u32).collect();
    let mut step = 0u64;
    let (seq, par) = seq_vs_par(iters, || {
        step += 1;
        std::hint::black_box(
            pf.prepare(&part, &sampler, &seeds, 0, step, &cluster, &cost, &metrics),
        );
    });
    kernel_value(
        vec![
            ("halo", (part.num_halo() as u64).to_value()),
            ("dim", (dim as u64).to_value()),
            ("batch", (batch as u64).to_value()),
        ],
        seq,
        par,
    )
}

/// End-to-end: sequential vs threaded engine on a real-math run.
///
/// With the `alloc-count` feature, two extra columns prove the
/// zero-allocation steady state: `allocs_per_step` (hot trainer-loop
/// allocations per steady-state step, across both engines' runs) and
/// `alloc_peak_bytes` (high-water live heap over the measurement window,
/// an RSS proxy). Without the feature both keys are `null`, so the
/// document shape is stable across build configurations.
fn bench_end_to_end(seed: u64, iters: usize) -> Value {
    let mut opts = Opts::quick();
    opts.seed = seed;
    let mut cfg = engine_config(&opts, DatasetKind::Products, Backend::Cpu, 2);
    cfg.trainers_per_part = 2;
    cfg.train_math = true;
    cfg.mode = Mode::Prefetch(PrefetchConfig::default());
    #[cfg(feature = "alloc-count")]
    {
        massivegnn::alloc::take_hot();
        massivegnn::alloc::reset_global_hot();
        massivegnn::alloc::reset_peak();
    }
    // One engine run lasts tens of milliseconds at the quick profile, so
    // a single-shot comparison is noise-dominated; repeat with
    // alternating measurement order (whichever engine runs second in a
    // pair pays a few percent of heap-warmth bias) and take the
    // per-column medians (identity is still asserted on every pass).
    let mut cmps: Vec<_> = (0..iters.max(2))
        .map(|i| wallclock_compare_ordered(&cfg, i % 2 == 1))
        .collect();
    let median = |xs: &mut Vec<f64>| -> f64 {
        xs.sort_by(f64::total_cmp);
        xs[xs.len() / 2]
    };
    let mut seqs: Vec<f64> = cmps.iter().map(|c| c.sequential_s).collect();
    let mut pars: Vec<f64> = cmps.iter().map(|c| c.parallel_s).collect();
    let sequential_s = median(&mut seqs);
    let parallel_s = median(&mut pars);
    let cmp = cmps.pop().expect("at least one comparison");
    let (allocs_per_step, alloc_peak_bytes) = {
        #[cfg(feature = "alloc-count")]
        {
            // The sequential run left its hot counts on this thread; the
            // threaded run's workers already flushed theirs.
            massivegnn::alloc::flush_hot();
            let (hot_allocs, hot_steps) = massivegnn::alloc::global_hot();
            (
                (hot_allocs as f64 / hot_steps.max(1) as f64).to_value(),
                massivegnn::alloc::peak_bytes().to_value(),
            )
        }
        #[cfg(not(feature = "alloc-count"))]
        {
            (Value::Null, Value::Null)
        }
    };
    let speedup = if parallel_s == 0.0 {
        1.0
    } else {
        sequential_s / parallel_s
    };
    Value::obj([
        ("world", (cmp.world as u64).to_value()),
        ("sequential_s", sequential_s.to_value()),
        ("parallel_s", parallel_s.to_value()),
        ("speedup", speedup.to_value()),
        ("allocs_per_step", allocs_per_step),
        ("alloc_peak_bytes", alloc_peak_bytes),
    ])
}

/// Where this benchmark document came from. `report-diff` refuses to
/// compare relative timings across documents whose host identity
/// (hostname + core count) differs — wall-clock milliseconds from two
/// different machines are not a regression signal.
pub fn provenance() -> Value {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Best-effort: a bench run outside a git checkout still produces a
    // valid document, just with an unknown commit.
    let git_commit = std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty());
    let hostname = std::fs::read_to_string("/proc/sys/kernel/hostname")
        .ok()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .or_else(|| std::env::var("HOSTNAME").ok().filter(|s| !s.is_empty()))
        .unwrap_or_else(|| "unknown".to_string());
    Value::obj([
        (
            "git_commit",
            git_commit.map_or(Value::Null, |c| c.to_value()),
        ),
        ("hostname", hostname.to_value()),
        ("cores", (cores as u64).to_value()),
    ])
}

/// Run the full kernel-benchmark suite and return the JSON document.
pub fn run_all(seed: u64, iters: usize) -> Value {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = rayon::current_num_threads();
    // The override that produced `threads`, if any: numbers recorded on a
    // single-core host (or with a forced width) are not comparable to
    // multi-core runs, and CI reads these fields to decide whether the
    // perf guard is meaningful at all.
    let mgnn_threads = std::env::var("MGNN_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok());
    eprintln!(
        "[bench: {cores} cores, pool of {threads} threads (MGNN_THREADS={}), {iters} iters per kernel]",
        mgnn_threads.map_or_else(|| "unset".into(), |n| n.to_string())
    );
    let matmul = bench_matmul(iters);
    eprintln!("[bench: matmul done]");
    let probe = bench_probe_batch(iters);
    eprintln!("[bench: probe_batch done]");
    let increment = bench_increment_batch(iters);
    eprintln!("[bench: increment_batch done]");
    let top_k = bench_top_k(iters);
    eprintln!("[bench: top_k done]");
    let pull_grouped = bench_pull_grouped(iters, seed);
    eprintln!("[bench: pull_grouped done]");
    let prepare = bench_prepare(iters, seed);
    eprintln!("[bench: prepare done]");
    let end_to_end = bench_end_to_end(seed, iters);
    eprintln!("[bench: end-to-end done]");
    Value::obj([
        ("schema", "mgnn-bench/v1".to_value()),
        ("provenance", provenance()),
        ("seed", seed.to_value()),
        ("cores", (cores as u64).to_value()),
        ("threads", (threads as u64).to_value()),
        (
            "mgnn_threads",
            mgnn_threads.map_or(Value::Null, |n| n.to_value()),
        ),
        ("iters", (iters as u64).to_value()),
        (
            "kernels",
            Value::obj([
                ("matmul", matmul),
                ("probe_batch", probe),
                ("increment_batch", increment),
                ("top_k", top_k),
                ("pull_grouped", pull_grouped),
                ("prepare", prepare),
            ]),
        ),
        ("end_to_end", end_to_end),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_runs() {
        let mut calls = 0;
        let m = median_ms(3, || calls += 1);
        assert_eq!(calls, 3);
        assert!(m >= 0.0);
    }

    #[test]
    fn bench_document_shape() {
        // One cheap iteration end to end; the document must carry every
        // kernel section CI expects to archive.
        let doc = run_all(7, 1);
        let text = serde_json::to_string_pretty(&doc);
        for key in [
            "\"matmul\"",
            "\"probe_batch\"",
            "\"increment_batch\"",
            "\"top_k\"",
            "\"pull_grouped\"",
            "\"prepare\"",
            "\"end_to_end\"",
            "\"cores\"",
            "\"threads\"",
            "\"mgnn_threads\"",
            "\"provenance\"",
            "\"hostname\"",
            "\"git_commit\"",
            "\"speedup\"",
            "\"allocs_per_step\"",
            "\"alloc_peak_bytes\"",
        ] {
            assert!(text.contains(key), "bench JSON missing {key}");
        }
        let e2e = doc.get("end_to_end").expect("end_to_end section");
        let allocs = e2e.get("allocs_per_step").expect("allocs column");
        if cfg!(feature = "alloc-count") {
            // The pooled engines must be at (or within noise of) zero.
            let per_step = allocs.as_f64().expect("numeric with alloc-count");
            assert!(
                per_step < 1.0,
                "steady state should be allocation-free, got {per_step} per step"
            );
            assert!(e2e.get("alloc_peak_bytes").unwrap().as_f64().unwrap() > 0.0);
        } else {
            assert_eq!(allocs, &Value::Null, "null without the feature");
        }
    }
}
