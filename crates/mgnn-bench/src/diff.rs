//! Run-diff regression reports (`report-diff A.json B.json`).
//!
//! Compares two benchmark documents (`mgnn-bench/v1`, from
//! `repro --bench-out`) or two report documents (`mgnn-repro/v1`, from
//! `repro --json-out`) and renders a per-row diff. Two kinds of check:
//!
//! - **Absolute floor** — the candidate bench document's end-to-end
//!   `speedup` must clear [`PERF_GUARD_MIN_SPEEDUP`]. Speedup is a ratio
//!   of two runs on the *same* host, so the floor applies no matter
//!   where either document was recorded.
//! - **Relative timings** — kernel milliseconds are wall-clock and only
//!   comparable when both documents were recorded on the same host
//!   (provenance `hostname` + `cores` match). On a mismatch — or when
//!   either document predates provenance — the relative rows are
//!   reported for context but never breach; a warning says why.
//!
//! Repro documents carry *simulated* makespans, which are host
//! independent by construction, so their relative check always applies.
//!
//! [`PERF_GUARD_MIN_SPEEDUP`]: crate::bench::PERF_GUARD_MIN_SPEEDUP

use crate::bench::PERF_GUARD_MIN_SPEEDUP;
use serde::Value;

/// A candidate kernel may be this much slower than baseline (same host)
/// before the diff counts it as a breach: wall-clock medians on shared
/// CI runners are noisy, so the bar is deliberately generous.
pub const KERNEL_REGRESSION_TOLERANCE: f64 = 1.25;

/// A candidate's simulated makespan may exceed baseline's by this factor
/// before breaching. Simulated time is deterministic — the slack only
/// absorbs intentional cost-model retunes, not noise.
pub const MAKESPAN_REGRESSION_TOLERANCE: f64 = 1.05;

/// Outcome of one document comparison.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Human-readable per-metric rows (`name: baseline -> candidate`).
    pub rows: Vec<String>,
    /// Checks that were skipped and why (e.g. host mismatch).
    pub warnings: Vec<String>,
    /// Guard violations; any entry means the diff failed.
    pub breaches: Vec<String>,
}

impl DiffReport {
    /// Whether any guard was breached (process should exit non-zero).
    pub fn failed(&self) -> bool {
        !self.breaches.is_empty()
    }

    /// Render the full report as display text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.rows {
            out.push_str(r);
            out.push('\n');
        }
        for w in &self.warnings {
            out.push_str(&format!("warning: {w}\n"));
        }
        for b in &self.breaches {
            out.push_str(&format!("BREACH: {b}\n"));
        }
        if self.breaches.is_empty() {
            out.push_str("report-diff: ok\n");
        }
        out
    }
}

/// Host identity a document was recorded on, if it carries provenance.
fn host_identity(doc: &Value) -> Option<(String, u64)> {
    let prov = doc.get("provenance")?;
    let host = prov.get("hostname").and_then(Value::as_str)?;
    let cores = prov.get("cores").and_then(Value::as_u64)?;
    Some((host.to_string(), cores))
}

fn schema_of(doc: &Value) -> Result<&str, String> {
    doc.get("schema")
        .and_then(Value::as_str)
        .ok_or_else(|| "document has no \"schema\" field".to_string())
}

/// Compare two parsed documents. `Err` means the documents could not be
/// compared at all (unknown or mismatched schemas) — the CLI maps that
/// to exit code 2, distinct from a guard breach (exit 1).
pub fn diff_docs(baseline: &Value, candidate: &Value) -> Result<DiffReport, String> {
    let (bs, cs) = (schema_of(baseline)?, schema_of(candidate)?);
    if bs != cs {
        return Err(format!(
            "schema mismatch: baseline {bs:?} vs candidate {cs:?}"
        ));
    }
    match bs {
        "mgnn-bench/v1" => Ok(diff_bench(baseline, candidate)),
        "mgnn-repro/v1" => Ok(diff_repro(baseline, candidate)),
        other => Err(format!("unknown schema {other:?}")),
    }
}

fn diff_bench(baseline: &Value, candidate: &Value) -> DiffReport {
    let mut rep = DiffReport::default();

    // Absolute floor: always enforced, host-independent.
    match candidate
        .get("end_to_end")
        .and_then(|e| e.get("speedup"))
        .and_then(Value::as_f64)
    {
        Some(speedup) => {
            rep.rows.push(format!(
                "end_to_end.speedup: candidate {speedup:.3} (floor {PERF_GUARD_MIN_SPEEDUP:.2})"
            ));
            // Mirror the repro CLI's perf guard: a single-core host has
            // no helpers, so the floor would flag hardware, not code.
            let cores = candidate.get("cores").and_then(Value::as_u64).unwrap_or(0);
            if cores <= 1 {
                rep.warnings.push(
                    "speedup floor skipped: candidate recorded on a single-core host".to_string(),
                );
            } else if speedup < PERF_GUARD_MIN_SPEEDUP {
                rep.breaches.push(format!(
                    "end-to-end speedup {speedup:.3} below floor {PERF_GUARD_MIN_SPEEDUP:.2}"
                ));
            }
        }
        None => rep
            .warnings
            .push("candidate has no end_to_end.speedup column".to_string()),
    }

    // Relative wall-clock rows: breach only on a same-host comparison.
    let same_host = match (host_identity(baseline), host_identity(candidate)) {
        (Some(b), Some(c)) if b == c => true,
        (Some(b), Some(c)) => {
            rep.warnings.push(format!(
                "host mismatch ({}/{} cores vs {}/{} cores): relative timings reported but not enforced",
                b.0, b.1, c.0, c.1
            ));
            false
        }
        _ => {
            rep.warnings.push(
                "missing provenance on one or both documents: relative timings reported but not enforced"
                    .to_string(),
            );
            false
        }
    };

    let kernel_names: Vec<String> = baseline
        .get("kernels")
        .map(|k| match k {
            Value::Obj(fields) => fields.iter().map(|(name, _)| name.clone()).collect(),
            _ => Vec::new(),
        })
        .unwrap_or_default();
    for name in &kernel_names {
        let time = |doc: &Value| {
            doc.get("kernels")
                .and_then(|k| k.get(name))
                .and_then(|k| k.get("par_ms"))
                .and_then(Value::as_f64)
        };
        let (Some(b), Some(c)) = (time(baseline), time(candidate)) else {
            rep.warnings
                .push(format!("kernel {name}: missing in one document, skipped"));
            continue;
        };
        let ratio = if b == 0.0 { 1.0 } else { c / b };
        rep.rows.push(format!(
            "kernel {name}.par_ms: {b:.3} -> {c:.3} ({ratio:.2}x)"
        ));
        if same_host && ratio > KERNEL_REGRESSION_TOLERANCE {
            rep.breaches.push(format!(
                "kernel {name} regressed {ratio:.2}x (tolerance {KERNEL_REGRESSION_TOLERANCE:.2}x)"
            ));
        }
    }
    rep
}

fn diff_repro(baseline: &Value, candidate: &Value) -> DiffReport {
    let mut rep = DiffReport::default();
    // (experiment, label, seq) -> makespan_s, in document order.
    let collect = |doc: &Value| -> Vec<(String, f64)> {
        let mut out = Vec::new();
        let Some(exps) = doc.get("experiments").and_then(Value::as_array) else {
            return out;
        };
        for exp in exps {
            let name = exp.get("name").and_then(Value::as_str).unwrap_or("?");
            let Some(runs) = exp.get("runs").and_then(Value::as_array) else {
                continue;
            };
            for (seq, run) in runs.iter().enumerate() {
                let label = run.get("label").and_then(Value::as_str).unwrap_or("?");
                if let Some(mk) = run
                    .get("report")
                    .and_then(|r| r.get("makespan_s"))
                    .and_then(Value::as_f64)
                {
                    out.push((format!("{name}/{label}#{seq}"), mk));
                }
            }
        }
        out
    };
    let base_runs = collect(baseline);
    let cand_runs = collect(candidate);
    if base_runs.is_empty() || cand_runs.is_empty() {
        rep.warnings
            .push("no per-run makespans found in one or both documents".to_string());
        return rep;
    }
    for (key, b) in &base_runs {
        let Some((_, c)) = cand_runs.iter().find(|(k, _)| k == key) else {
            rep.warnings
                .push(format!("run {key}: missing from candidate, skipped"));
            continue;
        };
        let ratio = if *b == 0.0 { 1.0 } else { c / b };
        rep.rows
            .push(format!("makespan {key}: {b:.6}s -> {c:.6}s ({ratio:.3}x)"));
        if ratio > MAKESPAN_REGRESSION_TOLERANCE {
            rep.breaches.push(format!(
                "makespan {key} regressed {ratio:.3}x (tolerance {MAKESPAN_REGRESSION_TOLERANCE:.2}x)"
            ));
        }
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    fn bench_doc(host: &str, cores: u64, speedup: f64, matmul_ms: f64, with_prov: bool) -> Value {
        let mut fields = vec![
            ("schema", "mgnn-bench/v1".to_value()),
            ("cores", cores.to_value()),
            (
                "kernels",
                Value::obj([("matmul", Value::obj([("par_ms", matmul_ms.to_value())]))]),
            ),
            ("end_to_end", Value::obj([("speedup", speedup.to_value())])),
        ];
        if with_prov {
            fields.insert(
                1,
                (
                    "provenance",
                    Value::obj([
                        ("git_commit", Value::Null),
                        ("hostname", host.to_value()),
                        ("cores", cores.to_value()),
                    ]),
                ),
            );
        }
        Value::obj(fields)
    }

    #[test]
    fn absolute_floor_applies_regardless_of_provenance() {
        let base = bench_doc("a", 4, 1.2, 10.0, false);
        let bad = bench_doc("b", 4, 0.5, 10.0, false);
        let rep = diff_docs(&base, &bad).unwrap();
        assert!(rep.failed(), "speedup 0.5 must breach the floor");
        assert!(rep.breaches[0].contains("speedup"));
        // But relative rows were not enforced (no provenance).
        assert!(rep.warnings.iter().any(|w| w.contains("provenance")));
    }

    #[test]
    fn single_core_candidate_skips_the_floor() {
        let base = bench_doc("a", 1, 1.2, 10.0, true);
        let slow = bench_doc("a", 1, 0.5, 10.0, true);
        let rep = diff_docs(&base, &slow).unwrap();
        assert!(!rep.failed(), "single-core host cannot breach the floor");
        assert!(rep.warnings.iter().any(|w| w.contains("single-core")));
    }

    #[test]
    fn kernel_regression_breaches_only_on_same_host() {
        let base = bench_doc("ci-1", 8, 1.2, 10.0, true);
        let slow_same = bench_doc("ci-1", 8, 1.2, 20.0, true);
        let rep = diff_docs(&base, &slow_same).unwrap();
        assert!(rep.failed(), "2x kernel regression on the same host");
        assert!(rep.breaches[0].contains("matmul"));

        let slow_other = bench_doc("ci-2", 8, 1.2, 20.0, true);
        let rep = diff_docs(&base, &slow_other).unwrap();
        assert!(!rep.failed(), "cross-host milliseconds never breach");
        assert!(rep.warnings.iter().any(|w| w.contains("host mismatch")));
        // The row is still reported for context.
        assert!(rep.rows.iter().any(|r| r.contains("matmul")));
    }

    #[test]
    fn schema_mismatch_and_unknown_schema_are_errors() {
        let bench = bench_doc("a", 4, 1.2, 10.0, true);
        let repro = Value::obj([("schema", "mgnn-repro/v1".to_value())]);
        assert!(diff_docs(&bench, &repro).is_err());
        let junk = Value::obj([("schema", "mgnn-junk/v9".to_value())]);
        assert!(diff_docs(&junk, &junk).is_err());
        let empty = Value::Obj(Vec::new());
        assert!(diff_docs(&empty, &empty).is_err());
    }

    fn repro_doc(makespan: f64) -> Value {
        Value::obj([
            ("schema", "mgnn-repro/v1".to_value()),
            (
                "experiments",
                Value::Arr(vec![Value::obj([
                    ("name", "fig6".to_value()),
                    (
                        "runs",
                        Value::Arr(vec![Value::obj([
                            ("label", "prefetch".to_value()),
                            ("report", Value::obj([("makespan_s", makespan.to_value())])),
                        ])]),
                    ),
                ])]),
            ),
        ])
    }

    #[test]
    fn repro_makespan_regression_breaches_and_identity_passes() {
        let base = repro_doc(10.0);
        let same = repro_doc(10.0);
        let rep = diff_docs(&base, &same).unwrap();
        assert!(!rep.failed());
        assert!(rep.rows.iter().any(|r| r.contains("fig6/prefetch#0")));

        let slow = repro_doc(11.0);
        let rep = diff_docs(&base, &slow).unwrap();
        assert!(rep.failed(), "10% simulated-time regression must breach");
        assert!(rep.render().contains("BREACH"));
    }
}
