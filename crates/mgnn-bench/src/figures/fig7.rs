//! Fig. 7: GAT (2 attention heads) on the papers-like input — does the
//! prefetch scheme transfer to another architecture? (§V-A4: up to 39%
//! CPU / 15% GPU improvement; eviction adds 5–8 points on CPU, GPU can
//! degrade when overlap fails.)

use crate::harness::{engine_config, improvement_pct, optimize_prefetch, Opts};
use massivegnn::Engine;
use mgnn_graph::DatasetKind;
use mgnn_model::ModelKind;
use mgnn_net::Backend;
use std::fmt;

/// One bar group.
#[derive(Debug, Clone)]
pub struct Group {
    /// Backend name.
    pub backend: &'static str,
    /// Compute nodes.
    pub num_parts: usize,
    /// Baseline makespan.
    pub baseline_s: f64,
    /// Best no-eviction `(f_h, time, hit)`.
    pub no_evict: (f64, f64, f64),
    /// Best with-eviction `(γ, Δ, time, hit)`.
    pub best_evict: (f64, usize, f64, f64),
}

/// The figure.
pub struct Fig7 {
    /// Bar groups.
    pub groups: Vec<Group>,
}

/// Run GAT on papers-like over {2, 4} nodes × both backends.
pub fn run(opts: &Opts) -> Fig7 {
    let node_counts: &[usize] = if opts.full { &[2, 4, 8] } else { &[2, 4] };
    let mut groups = Vec::new();
    for backend in [Backend::Cpu, Backend::Gpu] {
        for &parts in node_counts {
            let mut base = engine_config(opts, DatasetKind::Papers, backend, parts);
            base.model = ModelKind::Gat;
            base.gat_heads = 2;
            let baseline = Engine::build(base.clone()).run();
            let optimized = optimize_prefetch(&base, false);
            let (f_h, ne) = &optimized.no_evict;
            let best = optimized
                .with_evict
                .iter()
                .min_by(|a, b| a.2.makespan_s.partial_cmp(&b.2.makespan_s).unwrap())
                .unwrap();
            groups.push(Group {
                backend: backend.name(),
                num_parts: parts,
                baseline_s: baseline.makespan_s,
                no_evict: (*f_h, ne.makespan_s, ne.hit_rate()),
                best_evict: (best.0, best.1, best.2.makespan_s, best.2.hit_rate()),
            });
        }
    }
    Fig7 { groups }
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 7 — GAT (2 heads) on papers-like")?;
        writeln!(
            f,
            "{:<4} {:>6} {:>11} {:>10} {:>10} {:>9} {:>9}",
            "dev", "#nodes", "DistDGL(s)", "noEvict(s)", "evict(s)", "impr(%)", "hit(%)"
        )?;
        for g in &self.groups {
            writeln!(
                f,
                "{:<4} {:>6} {:>11.3} {:>10.3} {:>10.3} {:>9.1} {:>9.1}",
                g.backend,
                g.num_parts,
                g.baseline_s,
                g.no_evict.1,
                g.best_evict.2,
                improvement_pct(g.baseline_s, g.best_evict.2.min(g.no_evict.1)),
                100.0 * g.best_evict.3
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gat_prefetch_improves_on_cpu() {
        let mut opts = Opts::quick();
        opts.epochs = 2;
        let fig = run(&opts);
        for g in fig.groups.iter().filter(|g| g.backend == "CPU") {
            let best = g.best_evict.2.min(g.no_evict.1);
            assert!(
                improvement_pct(g.baseline_s, best) > 0.0,
                "CPU {} nodes: GAT prefetch should improve",
                g.num_parts
            );
        }
        assert!(format!("{fig}").contains("GAT"));
    }
}
