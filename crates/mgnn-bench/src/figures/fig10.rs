//! Fig. 10: hit-rate progression across minibatches on a long run, with
//! eviction points marked, plus the fraction of the partition's halo set
//! sampled per minibatch. The paper trains 1000 epochs and watches the
//! hit rate climb at each eviction point and plateau (≈95% papers, ≈75%
//! products).

use crate::harness::{engine_config, layout_for, Opts};
use massivegnn::{Engine, Mode, PrefetchConfig};
use mgnn_graph::DatasetKind;
use mgnn_net::Backend;
use std::fmt;

/// One dataset's progression.
#[derive(Debug, Clone)]
pub struct Series {
    /// Dataset name.
    pub dataset: &'static str,
    /// Windowed hit-rate series (trainer 0).
    pub hit_series: Vec<f64>,
    /// Window width in minibatches.
    pub window: usize,
    /// Eviction interval Δ (vertical dashed lines fall every Δ steps).
    pub delta: usize,
    /// Cumulative final hit rate.
    pub final_hit_rate: f64,
    /// Linear trend of the windowed series (per window).
    pub trend: f64,
    /// Mean fraction of halo nodes sampled per minibatch.
    pub remote_sampled_frac: f64,
}

/// The figure.
pub struct Fig10 {
    /// Series for products and papers.
    pub series: Vec<Series>,
}

/// Long run (harness long-run profile: larger graph, small batch, many
/// epochs) on 4 CPU nodes.
pub fn run(opts: &Opts) -> Fig10 {
    let opts = opts.longrun_of();
    let opts = &opts;
    let mut series = Vec::new();
    for kind in [DatasetKind::Products, DatasetKind::Papers] {
        let mut cfg = engine_config(opts, kind, Backend::Cpu, 4);
        let delta = 32;
        cfg.mode = Mode::Prefetch(PrefetchConfig {
            f_h: 0.25,
            gamma: 0.995,
            delta,
            layout: layout_for(kind),
            ..Default::default()
        });
        let report = Engine::build(cfg).run();
        let t0 = &report.trainers[0];
        let window = (t0.hits.len() / 24).max(1);
        series.push(Series {
            dataset: kind.name(),
            hit_series: t0.hits.windowed(window),
            window,
            delta,
            final_hit_rate: report.hit_rate(),
            trend: t0.hits.trend(window),
            remote_sampled_frac: t0.remote_sampled_frac,
        });
    }
    Fig10 { series }
}

impl fmt::Display for Fig10 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 10 — hit-rate progression over minibatches (4 CPU nodes, long run)"
        )?;
        for s in &self.series {
            writeln!(
                f,
                "{} (Δ={}, window={} minibatches, final hit {:.1}%, trend {:+.4}/win, remote-sampled {:.1}%):",
                s.dataset,
                s.delta,
                s.window,
                100.0 * s.final_hit_rate,
                s.trend,
                100.0 * s.remote_sampled_frac
            )?;
            write!(f, "  hit% ")?;
            for h in &s.hit_series {
                write!(f, "{:>5.1}", 100.0 * h)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_grows_then_plateaus() {
        let mut opts = Opts::quick();
        opts.epochs = 3; // ×12 internally
        let fig = run(&opts);
        for s in &fig.series {
            assert!(s.hit_series.len() >= 4, "{}: series too short", s.dataset);
            let early: f64 = s.hit_series[..2].iter().sum::<f64>() / 2.0;
            let late_n = s.hit_series.len();
            let late: f64 = s.hit_series[late_n - 2..].iter().sum::<f64>() / 2.0;
            // Short debug-profile runs fluctuate a few points; the claim
            // is "no collapse", not monotonicity.
            assert!(
                late >= early - 0.07,
                "{}: hit rate should not collapse ({early:.3} -> {late:.3})",
                s.dataset
            );
            assert!(
                s.trend >= -1e-3,
                "{}: negative trend {}",
                s.dataset,
                s.trend
            );
            assert!(
                s.final_hit_rate > 0.2,
                "{}: final {}",
                s.dataset,
                s.final_hit_rate
            );
        }
        assert!(format!("{fig}").contains("Fig. 10"));
    }
}
