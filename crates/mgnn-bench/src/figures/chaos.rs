//! Chaos experiment: the same seeded training run twice — once clean,
//! once under a deterministic fault profile — with real tensor math.
//!
//! The faulted run exercises the whole robustness ladder (retry with
//! exponential backoff, server respawn from the `KvStore`, stale buffer
//! rows, zero-fill degradation) and the report reconciles the fault
//! counters against the loss trajectory: training must *complete* and
//! the final-epoch loss must stay within a tolerance of the clean run,
//! because degradation only ever zero-fills the rare rows whose every
//! retry failed. The verdict line carries a machine-readable marker so
//! `repro` can exit non-zero when a chaos run diverges (CI gates on it).
//!
//! Chaos runs use the sequential engine: one issuing thread gives every
//! request a stable index, so the same `--fault-seed` replays the exact
//! same drops/delays/crashes at any `MGNN_THREADS`.

use crate::harness::{engine_config, Opts};
use massivegnn::{Engine, FaultProfile, Mode, PrefetchConfig, RunReport};
use mgnn_graph::DatasetKind;
use mgnn_net::{Backend, MetricsSnapshot};
use std::fmt;

/// Marker printed on a passing verdict line.
pub const OK_MARKER: &str = "CHAOS VERDICT: OK";
/// Marker printed when the degraded run's loss left the tolerance band;
/// `repro` greps for this and exits non-zero.
pub const DIVERGED_MARKER: &str = "CHAOS VERDICT: DIVERGED";

/// Relative final-loss divergence allowed before the verdict fails.
pub const LOSS_TOLERANCE: f64 = 0.25;

/// Clean-vs-chaos comparison of one seeded training run.
pub struct Chaos {
    /// Profile name that was injected (`light` unless `--fault-profile`).
    pub profile: String,
    /// Chaos seed (`--fault-seed`).
    pub fault_seed: u64,
    /// Per-epoch mean loss without faults.
    pub clean_loss: Vec<f32>,
    /// Per-epoch mean loss under the fault profile.
    pub chaos_loss: Vec<f32>,
    /// Aggregate counters of the faulted run (retries, timeouts,
    /// truncations, disconnects, delays, respawns, stale, degraded).
    pub counters: MetricsSnapshot,
    /// Clean-run makespan (modeled seconds).
    pub clean_makespan_s: f64,
    /// Faulted-run makespan — never smaller: delays, retries and
    /// backoff all charge the simulated clock.
    pub chaos_makespan_s: f64,
    /// `|Δ final loss| / max(|clean|, ε)`.
    pub divergence: f64,
    /// Whether divergence exceeded [`LOSS_TOLERANCE`].
    pub diverged: bool,
}

/// Train products-like clean and under the selected fault profile.
pub fn run(opts: &Opts) -> Chaos {
    let profile = opts
        .fault()
        .unwrap_or_else(|| FaultProfile::light(opts.fault_seed));
    let profile_name = opts.fault_profile.clone().unwrap_or_else(|| "light".into());

    let mut cfg = engine_config(opts, DatasetKind::Products, Backend::Cpu, 2);
    cfg.train_math = true;
    cfg.parallel = false; // chaos replay is pinned to the sequential engine
    cfg.mode = Mode::Prefetch(PrefetchConfig {
        f_h: 0.25,
        gamma: 0.995,
        delta: 16,
        ..Default::default()
    });
    cfg.fault = None;
    let clean = Engine::build(cfg.clone()).run();

    cfg.fault = Some(profile);
    let chaos = Engine::build(cfg).run();

    let divergence = final_loss_divergence(&clean, &chaos);
    Chaos {
        profile: profile_name,
        fault_seed: opts.fault_seed,
        clean_makespan_s: clean.makespan_s,
        chaos_makespan_s: chaos.makespan_s,
        counters: chaos.aggregate_metrics(),
        divergence,
        diverged: divergence > LOSS_TOLERANCE,
        clean_loss: clean.epoch_loss,
        chaos_loss: chaos.epoch_loss,
    }
}

fn final_loss_divergence(clean: &RunReport, chaos: &RunReport) -> f64 {
    match (clean.epoch_loss.last(), chaos.epoch_loss.last()) {
        (Some(&c), Some(&f)) => ((f - c).abs() as f64) / (c.abs() as f64).max(1e-6),
        // A chaos run that produced no losses at all is maximally
        // diverged — the run was supposed to train.
        _ => f64::INFINITY,
    }
}

impl fmt::Display for Chaos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Chaos — seeded fault injection vs clean run (profile `{}`, fault seed {:#x})",
            self.profile, self.fault_seed
        )?;
        writeln!(
            f,
            "{:>6} {:>12} {:>12}",
            "epoch", "clean loss", "chaos loss"
        )?;
        for (i, (c, x)) in self.clean_loss.iter().zip(&self.chaos_loss).enumerate() {
            writeln!(f, "{:>6} {:>12.4} {:>12.4}", i, c, x)?;
        }
        let m = &self.counters;
        writeln!(
            f,
            "faults: {} retries, {} timeouts, {} truncations, {} disconnects, \
             {} delays, {} respawns",
            m.rpc_retries,
            m.rpc_timeouts,
            m.rpc_truncations,
            m.rpc_disconnects,
            m.rpc_delays,
            m.server_respawns
        )?;
        writeln!(
            f,
            "degradation: {} stale rows kept, {} rows zero-filled",
            m.stale_served, m.degraded_rows
        )?;
        writeln!(
            f,
            "makespan: clean {:.3}s -> chaos {:.3}s (+{:.1}%)",
            self.clean_makespan_s,
            self.chaos_makespan_s,
            (self.chaos_makespan_s / self.clean_makespan_s - 1.0) * 100.0
        )?;
        let marker = if self.diverged {
            DIVERGED_MARKER
        } else {
            OK_MARKER
        };
        writeln!(
            f,
            "{marker} (final-loss divergence {:.4} vs tolerance {:.2})",
            self.divergence, LOSS_TOLERANCE
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_chaos_trains_within_tolerance() {
        let mut opts = Opts::quick();
        opts.epochs = 2;
        let c = run(&opts);
        assert_eq!(c.clean_loss.len(), c.chaos_loss.len());
        assert!(
            c.chaos_makespan_s >= c.clean_makespan_s,
            "faults must never make the simulated run faster"
        );
        assert!(!c.diverged, "light chaos diverged: {}", c.divergence);
        let text = format!("{c}");
        assert!(text.contains(OK_MARKER));
        assert!(!text.contains(DIVERGED_MARKER));
    }

    #[test]
    fn heavy_chaos_reports_fault_activity() {
        let mut opts = Opts::quick();
        opts.epochs = 2;
        opts.fault_profile = Some("heavy".into());
        opts.fault_seed = 99;
        let c = run(&opts);
        let m = &c.counters;
        assert!(
            m.rpc_retries + m.rpc_delays + m.rpc_disconnects > 0,
            "heavy profile injected nothing"
        );
        assert!(m.server_respawns >= 1, "crash never respawned");
        assert!(c.chaos_makespan_s > c.clean_makespan_s);
        assert!(format!("{c}").contains("respawns"));
    }
}
