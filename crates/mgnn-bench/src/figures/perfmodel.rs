//! Eq. 6 validation: the analytical improvement factor
//! `t_RPC/t_DDP + 1` against the *simulated* end-to-end improvement, as a
//! function of the communication/compute ratio. The model should track the
//! simulation in the perfect-overlap (CPU) regime and over-predict once
//! overlap breaks (GPU regime) — exactly the caveat §IV-C spells out.

use crate::harness::{engine_config, Opts};
use massivegnn::perfmodel;
use massivegnn::{Engine, Mode, PrefetchConfig};
use mgnn_graph::DatasetKind;
use mgnn_net::Backend;
use std::fmt;

/// One point of the model-vs-measured comparison.
#[derive(Debug, Clone)]
pub struct Point {
    /// Backend name.
    pub backend: &'static str,
    /// Measured mean `t_RPC / t_DDP` ratio in the baseline run.
    pub rpc_over_ddp: f64,
    /// Eq. 6's predicted improvement factor (`ratio + 1`).
    pub predicted_factor: f64,
    /// Simulated improvement factor `T_baseline / T_prefetch`.
    pub measured_factor: f64,
    /// Overlap efficiency of the prefetch run.
    pub overlap_efficiency: f64,
}

/// The comparison.
pub struct PerfModel {
    /// CPU and GPU points.
    pub points: Vec<Point>,
}

/// Run baseline + prefetch on both backends and compare with Eq. 6.
pub fn run(opts: &Opts) -> PerfModel {
    let mut points = Vec::new();
    for backend in [Backend::Cpu, Backend::Gpu] {
        let base = engine_config(opts, DatasetKind::Products, Backend::Cpu, 2);
        let mut base = base;
        base.backend = backend;
        let baseline = Engine::build(base.clone()).run();
        let mut pcfg = base.clone();
        pcfg.mode = Mode::Prefetch(PrefetchConfig {
            f_h: 0.5,
            gamma: 0.995,
            delta: 64,
            ..Default::default()
        });
        let prefetch = Engine::build(pcfg).run();

        let n = baseline.trainers.len() as f64;
        let rpc: f64 = baseline
            .trainers
            .iter()
            .map(|t| t.breakdown.rpc_s)
            .sum::<f64>()
            / n;
        let ddp: f64 = baseline
            .trainers
            .iter()
            .map(|t| t.breakdown.train_s)
            .sum::<f64>()
            / n;
        points.push(Point {
            backend: backend.name(),
            rpc_over_ddp: rpc / ddp,
            predicted_factor: perfmodel::improvement_factor_simplified(&perfmodel::Components {
                t_rpc: rpc,
                t_ddp: ddp,
                ..Default::default()
            }),
            measured_factor: baseline.makespan_s / prefetch.makespan_s,
            overlap_efficiency: prefetch.mean_overlap_efficiency(),
        });
    }
    PerfModel { points }
}

impl fmt::Display for PerfModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Eq. 6 — analytical improvement factor vs simulation (products, 2 nodes)"
        )?;
        writeln!(
            f,
            "{:<4} {:>12} {:>16} {:>15} {:>10}",
            "dev", "t_RPC/t_DDP", "predicted factor", "measured factor", "overlap%"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:<4} {:>12.3} {:>16.3} {:>15.3} {:>10.0}",
                p.backend,
                p.rpc_over_ddp,
                p.predicted_factor,
                p.measured_factor,
                100.0 * p.overlap_efficiency
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_tracks_simulation_in_overlap_regime() {
        let mut opts = Opts::quick();
        opts.hidden_dim = 128;
        opts.epochs = 3;
        let pm = run(&opts);
        let cpu = pm.points.iter().find(|p| p.backend == "CPU").unwrap();
        // Perfect overlap: measured should approach the prediction but the
        // prediction is an upper bound (hit rate < 100%, Eq. 6's
        // assumptions are optimistic).
        assert!(
            cpu.measured_factor > 1.0,
            "measured {}",
            cpu.measured_factor
        );
        assert!(
            cpu.predicted_factor >= cpu.measured_factor * 0.8,
            "prediction {} should not undercut measurement {} badly",
            cpu.predicted_factor,
            cpu.measured_factor
        );
        let gpu = pm.points.iter().find(|p| p.backend == "GPU").unwrap();
        assert!(
            gpu.rpc_over_ddp > cpu.rpc_over_ddp,
            "GPU shifts the ratio up"
        );
        assert!(format!("{pm}").contains("Eq. 6"));
    }
}
