//! Fig. 12: execution time and hit rate while varying the eviction
//! interval Δ for each decay factor γ (4 nodes).

use crate::harness::{delta_values, engine_config, gamma_values, Opts};
use massivegnn::{Engine, Mode, PrefetchConfig};
use mgnn_graph::DatasetKind;
use mgnn_net::Backend;
use std::fmt;

/// One (γ, Δ) measurement.
#[derive(Debug, Clone)]
pub struct Point {
    /// Decay factor.
    pub gamma: f64,
    /// Eviction interval.
    pub delta: usize,
    /// Makespan (s).
    pub time_s: f64,
    /// Cumulative hit rate.
    pub hit_rate: f64,
    /// Total evictions performed.
    pub evictions: u64,
}

/// The figure.
pub struct Fig12 {
    /// All sweep points.
    pub points: Vec<Point>,
}

/// Sweep Δ per γ on products, 4 CPU nodes.
pub fn run(opts: &Opts) -> Fig12 {
    let opts = opts.longrun_of();
    let base = engine_config(&opts, DatasetKind::Products, Backend::Cpu, 4);
    let mut points = Vec::new();
    for gamma in gamma_values() {
        for delta in delta_values(opts.full) {
            let mut cfg = base.clone();
            cfg.mode = Mode::Prefetch(PrefetchConfig {
                f_h: 0.25,
                gamma,
                delta,
                ..Default::default()
            });
            let r = Engine::build(cfg).run();
            points.push(Point {
                gamma,
                delta,
                time_s: r.makespan_s,
                hit_rate: r.hit_rate(),
                evictions: r.aggregate_metrics().evictions,
            });
        }
    }
    Fig12 { points }
}

impl fmt::Display for Fig12 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 12 — varying eviction interval Δ per decay γ (products, 4 CPU nodes)"
        )?;
        writeln!(
            f,
            "{:>8} {:>6} {:>10} {:>8} {:>10}",
            "gamma", "delta", "time(s)", "hit(%)", "evictions"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>8} {:>6} {:>10.3} {:>8.1} {:>10}",
                p.gamma,
                p.delta,
                p.time_s,
                100.0 * p.hit_rate,
                p.evictions
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smaller_delta_means_more_eviction_rounds() {
        let mut opts = Opts::quick();
        opts.epochs = 4;
        let fig = run(&opts);
        // For a fixed γ with aggressive decay, smaller Δ must evict at
        // least as much (more rounds, lower threshold per round interacts,
        // but round count strictly dominates at γ=0.95).
        let at = |g: f64, d: usize| {
            fig.points
                .iter()
                .find(|p| p.gamma == g && p.delta == d)
                .unwrap()
        };
        let small = at(0.95, 16);
        let large = at(0.95, 256);
        assert!(
            small.evictions >= large.evictions,
            "Δ=16 evictions {} < Δ=256 {}",
            small.evictions,
            large.evictions
        );
        assert!(format!("{fig}").contains("Fig. 12"));
    }

    #[test]
    fn all_grid_points_present() {
        let mut opts = Opts::quick();
        opts.epochs = 2;
        let fig = run(&opts);
        assert_eq!(
            fig.points.len(),
            gamma_values().len() * delta_values(false).len()
        );
        assert!(fig.points.iter().all(|p| p.time_s > 0.0));
    }
}
