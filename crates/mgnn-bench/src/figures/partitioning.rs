//! Partitioner ablation (beyond the paper's figures): the paper relies on
//! METIS partitions; this study quantifies how partition quality drives
//! the prefetcher's whole problem. Lower edge cut ⇒ fewer halo nodes ⇒
//! less remote traffic for the baseline *and* a smaller working set for
//! the buffer — while random/hash partitions inflate halo fractions and
//! communication, which is exactly the regime where prefetching matters
//! most.

use crate::harness::{engine_config, improvement_pct, Opts};
use massivegnn::{EngineConfig, PrefetchConfig};
use mgnn_graph::{Dataset, DatasetKind};
use mgnn_net::Backend;
use mgnn_partition::random::random_partition;
use mgnn_partition::{
    bfs::bfs_partition, build_local_partitions, edge_cut, halo_fraction, hash::hash_partition,
    multilevel_partition, Partitioning,
};
use std::fmt;

/// One partitioner's outcome.
#[derive(Debug, Clone)]
pub struct Row {
    /// Partitioner name.
    pub partitioner: &'static str,
    /// Undirected edge cut.
    pub edge_cut: usize,
    /// Mean halo fraction across partitions.
    pub halo_fraction: f64,
    /// Baseline remote nodes fetched (total).
    pub baseline_remote: u64,
    /// Prefetch end-to-end improvement over baseline (%).
    pub prefetch_improvement_pct: f64,
    /// Prefetch hit rate.
    pub hit_rate: f64,
}

/// The study.
pub struct PartitionStudy {
    /// One row per partitioner.
    pub rows: Vec<Row>,
}

fn partitioners(
    dataset: &Dataset,
    num_parts: usize,
    seed: u64,
) -> Vec<(&'static str, Partitioning)> {
    vec![
        (
            "multilevel",
            multilevel_partition(&dataset.graph, num_parts, seed),
        ),
        ("bfs", bfs_partition(&dataset.graph, num_parts)),
        ("hash", hash_partition(&dataset.graph, num_parts)),
        ("random", random_partition(&dataset.graph, num_parts, seed)),
    ]
}

/// Run baseline + prefetch under each partitioner on products, 2 nodes.
///
/// Note: [`Engine`] always partitions with the multilevel partitioner; to
/// compare others this study measures structural metrics per partitioner
/// directly and runs the engine comparison on the two extremes by
/// re-deriving halo statistics through [`build_local_partitions`].
pub fn run(opts: &Opts) -> PartitionStudy {
    let num_parts = 2;
    let dataset = Dataset::generate(DatasetKind::Products, opts.scale, opts.seed);
    let mut rows = Vec::new();
    for (name, parts) in partitioners(&dataset, num_parts, opts.seed) {
        let lps = build_local_partitions(&dataset.graph, &parts, &dataset.train_nodes);
        let cut = edge_cut(&dataset.graph, &parts);
        let hf = lps.iter().map(halo_fraction).sum::<f64>() / lps.len() as f64;

        // Engine comparison under this assignment: construct via the
        // engine's own pipeline but override the partitioning by seeding
        // a custom build (the engine's multilevel call is deterministic,
        // so for non-multilevel partitioners we run a manual comparison
        // through the same prefetcher/baseline preparation paths).
        let (baseline_remote, improvement, hit) = manual_comparison(
            &dataset,
            &parts,
            opts,
            engine_config(opts, DatasetKind::Products, Backend::Cpu, num_parts),
        );
        rows.push(Row {
            partitioner: name,
            edge_cut: cut,
            halo_fraction: hf,
            baseline_remote,
            prefetch_improvement_pct: improvement,
            hit_rate: hit,
        });
    }
    PartitionStudy { rows }
}

/// Run baseline vs prefetch preparation over a fixed partitioning, using
/// the same per-trainer dataloader/sampler/prefetcher machinery as the
/// engine, and summing Eq. 2 / Eq. 5 per-step times.
fn manual_comparison(
    dataset: &Dataset,
    parts: &Partitioning,
    _opts: &Opts,
    cfg: EngineConfig,
) -> (u64, f64, f64) {
    use massivegnn::init::initialize_prefetcher;
    use massivegnn::prefetcher::baseline_prepare;
    use mgnn_net::clock::PipelineClock;
    use mgnn_net::{CommMetrics, SimCluster};
    use mgnn_partition::split_train_nodes;
    use mgnn_sampling::{DataLoader, NeighborSampler};

    let cluster = SimCluster::new(&dataset.features, &parts.assignment, parts.num_parts);
    let lps = build_local_partitions(&dataset.graph, parts, &dataset.train_nodes);
    let cost = &cfg.cost;
    let pcfg = PrefetchConfig {
        f_h: 0.25,
        gamma: 0.995,
        delta: 16,
        ..Default::default()
    };

    let mut base_total = 0.0f64;
    let mut pref_total = 0.0f64;
    let mut base_remote = 0u64;
    let mut hit_rate_sum = 0.0f64;
    let mut trainer_count = 0usize;

    // A shape model for MAC estimation.
    let shape = mgnn_model::SageModel::new(
        &[
            dataset.features.dim(),
            cfg.hidden_dim,
            dataset.features.num_classes(),
        ],
        1,
    );
    let param_bytes = mgnn_model::Model::num_params(&shape) * 4;
    let world = parts.num_parts * cfg.trainers_per_part;

    for lp in &lps {
        let shards = split_train_nodes(&lp.train_nodes, cfg.trainers_per_part, cfg.seed);
        for (t, shard) in shards.into_iter().enumerate() {
            let seeds: Vec<u32> = shard.iter().map(|&g| lp.local_id(g).unwrap()).collect();
            let loader = DataLoader::new(seeds, cfg.batch_size, cfg.seed ^ t as u64);
            let steps = loader.batches_per_epoch().min(6);
            if steps == 0 {
                continue;
            }
            let sampler = NeighborSampler::new(cfg.fanouts.clone(), cfg.seed ^ (t as u64) << 3);
            let bm = CommMetrics::new();
            let pm = CommMetrics::new();
            let (mut pf, init) =
                initialize_prefetcher(lp, pcfg, dataset.num_nodes(), &cluster, cost, &pm);
            let mut base_clock = 0.0f64;
            let mut pipe = PipelineClock::new(1, init.total_s());
            let mut gs = 0u64;
            for epoch in 0..cfg.epochs as u64 {
                for seeds in loader.epoch(epoch).iter().take(steps) {
                    let b = baseline_prepare(lp, &sampler, seeds, epoch, gs, &cluster, cost, &bm);
                    let macs = mgnn_model::Model::macs(&shape, &b.minibatch.blocks);
                    let t_train = cost.t_ddp(
                        macs,
                        b.input.data().len() * 4,
                        param_bytes,
                        world,
                        cfg.backend,
                    );
                    base_clock +=
                        b.timing.t_sampling + b.timing.t_rpc.max(b.timing.t_copy) + t_train;

                    let p = pf.prepare(lp, &sampler, seeds, epoch, gs, &cluster, cost, &pm);
                    pipe.step(p.timing.t_prepare(), t_train);
                    gs += 1;
                }
            }
            base_total = base_total.max(base_clock);
            pref_total = pref_total.max(pipe.now());
            base_remote += bm.snapshot().remote_nodes_fetched;
            hit_rate_sum += pm.hit_rate();
            trainer_count += 1;
        }
    }
    (
        base_remote,
        improvement_pct(base_total, pref_total),
        if trainer_count == 0 {
            0.0
        } else {
            hit_rate_sum / trainer_count as f64
        },
    )
}

impl fmt::Display for PartitionStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Partitioner ablation — products, 2 nodes (cut quality drives halo traffic)"
        )?;
        writeln!(
            f,
            "{:<12} {:>10} {:>10} {:>14} {:>9} {:>8}",
            "partitioner", "edge cut", "halo frac", "base remote", "impr(%)", "hit(%)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<12} {:>10} {:>10.3} {:>14} {:>9.1} {:>8.1}",
                r.partitioner,
                r.edge_cut,
                r.halo_fraction,
                r.baseline_remote,
                r.prefetch_improvement_pct,
                100.0 * r.hit_rate
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multilevel_has_lowest_cut_and_random_most_remote_traffic() {
        let mut opts = Opts::quick();
        opts.epochs = 2;
        let study = run(&opts);
        let get = |n: &str| study.rows.iter().find(|r| r.partitioner == n).unwrap();
        let ml = get("multilevel");
        let rnd = get("random");
        assert!(ml.edge_cut < rnd.edge_cut, "multilevel should cut less");
        assert!(
            ml.baseline_remote < rnd.baseline_remote,
            "better partition ⇒ less remote traffic"
        );
        assert!(ml.halo_fraction <= rnd.halo_fraction);
        // Prefetch should help under every partitioner.
        for r in &study.rows {
            assert!(
                r.prefetch_improvement_pct > 0.0,
                "{}: no improvement",
                r.partitioner
            );
        }
        assert!(format!("{study}").contains("Partitioner"));
    }
}
