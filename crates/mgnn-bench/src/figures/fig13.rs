//! Fig. 13: execution time and hit rate across the decay factor γ ∈ [0, 1),
//! with error bars over the Δ range — the paper's empirical basis for
//! choosing γ ≥ 0.9 ("low decay" retains the best hit rates at good time).

use crate::harness::{delta_values, engine_config, Opts};
use massivegnn::{Engine, Mode, PrefetchConfig};
use mgnn_graph::DatasetKind;
use mgnn_net::Backend;
use std::fmt;

/// Aggregated stats for one γ across the Δ range.
#[derive(Debug, Clone)]
pub struct Point {
    /// Decay factor.
    pub gamma: f64,
    /// Mean makespan over Δ values (s).
    pub time_mean_s: f64,
    /// Min/max makespan over Δ (error bar).
    pub time_range_s: (f64, f64),
    /// Mean hit rate over Δ.
    pub hit_mean: f64,
    /// Min/max hit rate over Δ (error bar).
    pub hit_range: (f64, f64),
}

/// The figure.
pub struct Fig13 {
    /// One point per γ.
    pub points: Vec<Point>,
}

/// Sweep γ over a [0, 1) grid × the Δ range, products on 4 CPU nodes.
pub fn run(opts: &Opts) -> Fig13 {
    let gammas = [0.1, 0.3, 0.5, 0.7, 0.9, 0.95, 0.995];
    let opts = opts.longrun_of();
    let base = engine_config(&opts, DatasetKind::Products, Backend::Cpu, 4);
    let mut points = Vec::new();
    for &gamma in &gammas {
        let mut times = Vec::new();
        let mut hits = Vec::new();
        for delta in delta_values(opts.full) {
            let mut cfg = base.clone();
            cfg.mode = Mode::Prefetch(PrefetchConfig {
                f_h: 0.25,
                gamma,
                delta,
                ..Default::default()
            });
            let r = Engine::build(cfg).run();
            times.push(r.makespan_s);
            hits.push(r.hit_rate());
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let range = |v: &[f64]| {
            (
                v.iter().copied().fold(f64::INFINITY, f64::min),
                v.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            )
        };
        points.push(Point {
            gamma,
            time_mean_s: mean(&times),
            time_range_s: range(&times),
            hit_mean: mean(&hits),
            hit_range: range(&hits),
        });
    }
    Fig13 { points }
}

impl fmt::Display for Fig13 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 13 — varying decay γ across intervals Δ (products, 4 CPU nodes; ranges over Δ)"
        )?;
        writeln!(
            f,
            "{:>7} {:>10} {:>19} {:>8} {:>15}",
            "gamma", "time(s)", "time range", "hit(%)", "hit range(%)"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>7} {:>10.3} [{:>7.3}, {:>7.3}] {:>8.1} [{:>5.1}, {:>5.1}]",
                p.gamma,
                p.time_mean_s,
                p.time_range_s.0,
                p.time_range_s.1,
                100.0 * p.hit_mean,
                100.0 * p.hit_range.0,
                100.0 * p.hit_range.1
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_decay_hit_rate_at_least_matches_high_decay() {
        let mut opts = Opts::quick();
        opts.epochs = 3;
        let fig = run(&opts);
        let hit_at = |g: f64| fig.points.iter().find(|p| p.gamma == g).unwrap().hit_mean;
        // γ ≥ 0.9 should retain hit rates at least as good as aggressive
        // decay (the paper's Fig. 13 conclusion).
        assert!(
            hit_at(0.95) + 0.03 >= hit_at(0.1),
            "low decay {} vs high decay {}",
            hit_at(0.95),
            hit_at(0.1)
        );
        assert!(format!("{fig}").contains("Fig. 13"));
    }

    #[test]
    fn sweep_is_gamma_dependent() {
        // Regression for the Eq. 1 boundary bug: the strict `S_E < α`
        // compare disabled eviction entirely, making every γ produce the
        // identical hit rate. γ must influence the outcome through the
        // score swap (an evicted node re-enters the S_A race at γ^idle).
        let mut opts = Opts::quick();
        opts.epochs = 3;
        if cfg!(debug_assertions) {
            // The swap effect needs the release-size profile to move the
            // top-k ordering; at the Unit debug scale every γ legitimately
            // selects the same replacements. Assert the bug's direct
            // signature instead: eviction must actually fire.
            let base = engine_config(&opts.longrun_of(), DatasetKind::Products, Backend::Cpu, 4);
            let mut cfg = base.clone();
            cfg.mode = Mode::Prefetch(PrefetchConfig {
                f_h: 0.25,
                gamma: 0.95,
                delta: 16,
                ..Default::default()
            });
            let r = Engine::build(cfg).run();
            let agg = r.aggregate_metrics();
            assert!(agg.evictions > 0, "eviction is dead at the Eq. 1 boundary");
            assert_eq!(agg.evictions, agg.replacements_fetched);
            return;
        }
        let fig = run(&opts);
        let min = fig
            .points
            .iter()
            .map(|p| p.hit_mean)
            .fold(f64::INFINITY, f64::min);
        let max = fig
            .points
            .iter()
            .map(|p| p.hit_mean)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max > min,
            "hit rate is γ-invariant ({min} == {max}): eviction is dead"
        );
    }

    #[test]
    fn ranges_bracket_means() {
        let mut opts = Opts::quick();
        opts.epochs = 2;
        let fig = run(&opts);
        for p in &fig.points {
            assert!(p.time_range_s.0 <= p.time_mean_s && p.time_mean_s <= p.time_range_s.1);
            assert!(p.hit_range.0 <= p.hit_mean + 1e-12 && p.hit_mean <= p.hit_range.1 + 1e-12);
        }
    }
}
