//! Fig. 8: prefetcher initialization cost (component-wise) for products
//! and papers on 4 CPU nodes, and its share of total training time —
//! the paper finds it below 1% of end-to-end time.

use crate::harness::{engine_config, layout_for, Opts};
use massivegnn::{Engine, Mode, PrefetchConfig};
use mgnn_graph::DatasetKind;
use mgnn_net::Backend;
use std::fmt;

/// One dataset's initialization profile.
#[derive(Debug, Clone)]
pub struct Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Mean per-trainer selection time (s).
    pub selection_s: f64,
    /// Mean per-trainer bulk-fetch time (s).
    pub fetch_s: f64,
    /// Mean per-trainer buffer-populate time (s).
    pub populate_s: f64,
    /// Mean per-trainer scoreboard-init time (s).
    pub scoreboard_s: f64,
    /// Initialization share of total training time (%).
    pub pct_of_training: f64,
}

/// The figure.
pub struct Fig8 {
    /// One row per dataset.
    pub rows: Vec<Row>,
}

/// Profile initialization on 4 CPU nodes for products and papers.
pub fn run(opts: &Opts) -> Fig8 {
    let mut rows = Vec::new();
    for kind in [DatasetKind::Products, DatasetKind::Papers] {
        let mut cfg = engine_config(opts, kind, Backend::Cpu, 4);
        cfg.mode = Mode::Prefetch(PrefetchConfig {
            f_h: 0.25,
            layout: layout_for(kind),
            ..Default::default()
        });
        let report = Engine::build(cfg).run();
        let n = report.trainers.len() as f64;
        let mean = |f: fn(&massivegnn::init::InitReport) -> f64| -> f64 {
            report.trainers.iter().map(|t| f(&t.init)).sum::<f64>() / n
        };
        rows.push(Row {
            dataset: kind.name(),
            selection_s: mean(|i| i.selection_s),
            fetch_s: mean(|i| i.fetch_s),
            populate_s: mean(|i| i.populate_s),
            scoreboard_s: mean(|i| i.scoreboard_s),
            pct_of_training: 100.0 * report.total_init_s()
                / (report.trainers.iter().map(|t| t.sim_time_s).sum::<f64>()),
        });
    }
    Fig8 { rows }
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 8 — prefetcher initialization cost (4 CPU nodes, per trainer)"
        )?;
        writeln!(
            f,
            "{:<10} {:>12} {:>10} {:>12} {:>13} {:>12}",
            "dataset", "selection(s)", "fetch(s)", "populate(s)", "scoreboard(s)", "% of train"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:>12.6} {:>10.6} {:>12.6} {:>13.6} {:>12.2}",
                r.dataset,
                r.selection_s,
                r.fetch_s,
                r.populate_s,
                r.scoreboard_s,
                r.pct_of_training
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_cost_amortizes_with_epochs() {
        // The paper's "<1% of training" holds at 100 epochs; the testable
        // invariant at quick scale is that the one-time cost's share
        // shrinks as training lengthens.
        let mut short = Opts::quick();
        short.epochs = 2;
        let fig_short = run(&short);
        let mut long = Opts::quick();
        long.epochs = 10;
        let fig_long = run(&long);
        for (s, l) in fig_short.rows.iter().zip(&fig_long.rows) {
            assert!(
                l.pct_of_training < s.pct_of_training,
                "{}: share should amortize ({:.1}% -> {:.1}%)",
                s.dataset,
                s.pct_of_training,
                l.pct_of_training
            );
            assert!(
                l.pct_of_training < 15.0,
                "{}: {:.1}%",
                l.dataset,
                l.pct_of_training
            );
            assert!(s.fetch_s > 0.0);
            // RPC fetch dominates the other components (bulk features).
            assert!(s.fetch_s > s.populate_s);
        }
        assert!(format!("{fig_short}").contains("Fig. 8"));
    }
}
