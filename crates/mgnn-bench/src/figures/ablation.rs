//! Ablation (beyond the paper's figures): the score-based periodic
//! evict-and-replace against classic per-access policies (LRU, LFU,
//! random) and the static buffer, replaying the *identical* sampled
//! halo stream from a real partition. Quantifies the design trade-off
//! §IV-E argues qualitatively: bulk periodic maintenance buys nearly
//! per-access-policy hit rates at a fraction of the maintenance rounds.

use crate::harness::{engine_config, Opts};
use massivegnn::ablation::{replay_policies, CachePolicy};
use massivegnn::Engine;
use mgnn_graph::DatasetKind;
use mgnn_net::Backend;
use mgnn_sampling::{DataLoader, NeighborSampler};
use std::fmt;

/// One policy's outcome on the shared stream.
#[derive(Debug, Clone)]
pub struct Row {
    /// Policy label.
    pub policy: &'static str,
    /// Cumulative hit rate.
    pub hit_rate: f64,
    /// Replacements performed.
    pub replacements: u64,
    /// Maintenance rounds (bookkeeping events).
    pub maintenance_events: u64,
}

/// The ablation result.
pub struct Ablation {
    /// One row per policy.
    pub rows: Vec<Row>,
    /// Minibatches replayed.
    pub minibatches: usize,
    /// Buffer capacity used.
    pub capacity: usize,
}

/// Build a real sampled halo stream (products-like, partition 0) and
/// replay it through all policies.
pub fn run(opts: &Opts) -> Ablation {
    let cfg = engine_config(opts, DatasetKind::Products, Backend::Cpu, 2);
    let engine = Engine::build(cfg.clone());
    let part = &engine.partitions()[0];
    let num_local = part.num_local();
    let num_halo = part.num_halo();

    // Trainer-0 shard, as the engine would assign it.
    let seeds: Vec<u32> = part
        .train_nodes
        .iter()
        .map(|&g| part.local_id(g).unwrap())
        .collect();
    let loader = DataLoader::new(seeds, cfg.batch_size, cfg.seed);
    let sampler = NeighborSampler::new(cfg.fanouts.clone(), cfg.seed ^ 7);

    let epochs = (opts.epochs * 8).max(12) as u64;
    let mut stream: Vec<Vec<u32>> = Vec::new();
    let mut gs = 0u64;
    for epoch in 0..epochs {
        for seeds in loader.epoch(epoch).iter() {
            let mb = sampler.sample(part, seeds, epoch, gs);
            gs += 1;
            let (_, halo) = mb.split_local_halo(num_local);
            stream.push(halo.iter().map(|&l| l - num_local as u32).collect());
        }
    }

    // Shared top-degree initial occupancy (25% of halo).
    let capacity = num_halo / 4;
    let mut order: Vec<u32> = (0..num_halo as u32).collect();
    order.sort_by_key(|&h| (std::cmp::Reverse(part.halo_degree[h as usize]), h));
    order.truncate(capacity);

    let policies = [
        // Δ matches the engine's default eviction interval (PrefetchConfig
        // prefetch_mode uses Δ = 8): at quick scale a 32-step interval
        // leaves no occupant idle a full window, silently disabling the
        // policy under test.
        CachePolicy::ScoreBased {
            gamma: 0.995,
            delta: 8,
        },
        CachePolicy::Static,
        CachePolicy::Lru,
        CachePolicy::Lfu,
        CachePolicy::Random { seed: 11 },
    ];
    let sims = replay_policies(&policies, num_halo, &order, &stream);
    let rows = policies
        .iter()
        .zip(&sims)
        .map(|(p, s)| Row {
            policy: p.name(),
            hit_rate: s.tracker.cumulative(),
            replacements: s.replacements,
            maintenance_events: s.maintenance_events,
        })
        .collect();
    Ablation {
        rows,
        minibatches: stream.len(),
        capacity,
    }
}

impl fmt::Display for Ablation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation — eviction policy on an identical sampled stream ({} minibatches, capacity {})",
            self.minibatches, self.capacity
        )?;
        writeln!(
            f,
            "{:<12} {:>8} {:>13} {:>13}",
            "policy", "hit(%)", "replacements", "maintenance"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<12} {:>8.1} {:>13} {:>13}",
                r.policy,
                100.0 * r.hit_rate,
                r.replacements,
                r.maintenance_events
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_based_competitive_with_few_maintenance_rounds() {
        // On a real degree-skewed stream with top-degree initialization,
        // the static buffer is already close to optimal (degree ≈
        // popularity), so the honest claim is: the score-based policy
        // stays within a small margin of static/LRU while doing a small
        // fraction of the maintenance rounds — and clearly beats random
        // replacement. (Adaptivity's win over static under *poor*
        // initialization is covered by massivegnn::ablation's unit tests.)
        let mut opts = Opts::quick();
        opts.epochs = 2;
        let ab = run(&opts);
        let get = |n: &str| ab.rows.iter().find(|r| r.policy == n).unwrap();
        let score = get("score-based");
        let stat = get("static");
        let lru = get("lru");
        let random = get("random");
        assert!(
            score.hit_rate >= stat.hit_rate - 0.05,
            "score {} fell too far below static {}",
            score.hit_rate,
            stat.hit_rate
        );
        assert!(
            score.hit_rate > random.hit_rate,
            "score {} vs random {}",
            score.hit_rate,
            random.hit_rate
        );
        assert!(
            score.maintenance_events < lru.maintenance_events,
            "periodic policy must do fewer rounds"
        );
        // Regression for the Eq. 1 boundary bug: with the strict `S_E < α`
        // compare the score-based policy performed literally zero
        // replacements — Algorithm 2's evict-and-replace was dead.
        assert!(
            score.replacements > 0,
            "score-based policy must actually replace nodes"
        );
        assert!(format!("{ab}").contains("Ablation"));
    }
}
