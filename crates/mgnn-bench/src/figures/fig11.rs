//! Fig. 11: remote nodes fetched per trainer, prefetch vs baseline, plus
//! the communication-time reduction (§V-B5: 23% fewer remote fetches in
//! papers, 15% in products; communication time cut ~44–50%).

use crate::harness::{engine_config, layout_for, Opts};
use massivegnn::{Engine, Mode, PrefetchConfig};
use mgnn_graph::DatasetKind;
use mgnn_net::Backend;
use std::fmt;

/// One dataset's comparison.
#[derive(Debug, Clone)]
pub struct Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Remote nodes fetched per trainer, baseline (mean).
    pub baseline_remote: f64,
    /// Remote nodes fetched per trainer, prefetch (mean, including
    /// initialization and replacement fetches).
    pub prefetch_remote: f64,
    /// Baseline communication stall time (s, mean per trainer):
    /// `t_RPC − t_copy` (Eq. 9).
    pub baseline_comm_s: f64,
    /// Prefetch communication stall time (s).
    pub prefetch_comm_s: f64,
}

impl Row {
    /// Reduction in remote nodes fetched (%).
    pub fn remote_reduction_pct(&self) -> f64 {
        crate::harness::improvement_pct(self.baseline_remote, self.prefetch_remote)
    }

    /// Reduction in communication time (%).
    pub fn comm_reduction_pct(&self) -> f64 {
        crate::harness::improvement_pct(self.baseline_comm_s, self.prefetch_comm_s)
    }
}

/// The figure.
pub struct Fig11 {
    /// Products and papers rows.
    pub rows: Vec<Row>,
}

/// Compare on 4 nodes (16 trainers, as in the paper's Fig. 11).
pub fn run(opts: &Opts) -> Fig11 {
    let mut rows = Vec::new();
    for kind in [DatasetKind::Products, DatasetKind::Papers] {
        let base = engine_config(opts, kind, Backend::Cpu, 4);
        let baseline = Engine::build(base.clone()).run();
        let mut pcfg = base.clone();
        pcfg.mode = Mode::Prefetch(PrefetchConfig {
            f_h: 0.25,
            gamma: 0.995,
            delta: 64,
            layout: layout_for(kind),
            ..Default::default()
        });
        let prefetch = Engine::build(pcfg).run();
        let n = baseline.trainers.len() as f64;
        rows.push(Row {
            dataset: kind.name(),
            baseline_remote: baseline
                .trainers
                .iter()
                .map(|t| t.metrics.remote_nodes_fetched as f64)
                .sum::<f64>()
                / n,
            prefetch_remote: prefetch
                .trainers
                .iter()
                .map(|t| t.metrics.remote_nodes_fetched as f64)
                .sum::<f64>()
                / n,
            baseline_comm_s: baseline
                .trainers
                .iter()
                .map(|t| t.breakdown.communication_stall_s())
                .sum::<f64>()
                / n,
            prefetch_comm_s: prefetch
                .trainers
                .iter()
                .map(|t| t.breakdown.communication_stall_s())
                .sum::<f64>()
                / n,
        });
    }
    Fig11 { rows }
}

impl fmt::Display for Fig11 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 11 — remote nodes fetched & communication time (16 trainers)"
        )?;
        writeln!(
            f,
            "{:<10} {:>14} {:>14} {:>9} | {:>12} {:>12} {:>9}",
            "dataset",
            "base remote",
            "pref remote",
            "red(%)",
            "base comm(s)",
            "pref comm(s)",
            "red(%)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:>14.0} {:>14.0} {:>9.1} | {:>12.4} {:>12.4} {:>9.1}",
                r.dataset,
                r.baseline_remote,
                r.prefetch_remote,
                r.remote_reduction_pct(),
                r.baseline_comm_s,
                r.prefetch_comm_s,
                r.comm_reduction_pct()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_reduces_remote_and_comm() {
        let mut opts = Opts::quick();
        opts.epochs = 3;
        let fig = run(&opts);
        for r in &fig.rows {
            assert!(
                r.remote_reduction_pct() > 0.0,
                "{}: remote fetches should drop, got {:.1}%",
                r.dataset,
                r.remote_reduction_pct()
            );
            assert!(
                r.comm_reduction_pct() > 0.0,
                "{}: communication should drop, got {:.1}%",
                r.dataset,
                r.comm_reduction_pct()
            );
        }
        assert!(format!("{fig}").contains("Fig. 11"));
    }
}
