//! Fig. 6: end-to-end GraphSAGE training time (bars) and hit rate (line)
//! — baseline DistDGL vs prefetch-without-eviction (optimal `f_p^h`) vs
//! prefetch-with-eviction (optimal Δ per γ), across datasets, CPU/GPU
//! backends and compute-node counts.

use crate::harness::{engine_config, improvement_pct, optimize_prefetch, Opts};
use massivegnn::Engine;
use mgnn_graph::DatasetKind;
use mgnn_net::Backend;
use std::fmt;

/// One bar group of the figure.
#[derive(Debug, Clone)]
pub struct Group {
    /// Dataset name.
    pub dataset: &'static str,
    /// Backend name.
    pub backend: &'static str,
    /// Compute nodes (partitions).
    pub num_parts: usize,
    /// Baseline DistDGL makespan.
    pub baseline_s: f64,
    /// Best prefetch-without-eviction: `(f_h, time, hit rate)`.
    pub no_evict: (f64, f64, f64),
    /// Prefetch-with-eviction per γ: `(γ, Δ, time, hit rate)`.
    pub with_evict: Vec<(f64, usize, f64, f64)>,
}

impl Group {
    /// Best improvement over baseline across all prefetch variants (%).
    pub fn best_improvement_pct(&self) -> f64 {
        let best = self
            .with_evict
            .iter()
            .map(|&(_, _, t, _)| t)
            .chain(std::iter::once(self.no_evict.1))
            .fold(f64::INFINITY, f64::min);
        improvement_pct(self.baseline_s, best)
    }

    /// Improvement of the no-eviction variant (%).
    pub fn no_evict_improvement_pct(&self) -> f64 {
        improvement_pct(self.baseline_s, self.no_evict.1)
    }
}

/// The whole figure.
pub struct Fig6 {
    /// All bar groups.
    pub groups: Vec<Group>,
}

/// Run the figure. Defaults to {arxiv, products} × {CPU, GPU} × {2, 4}
/// nodes; `--full` covers all four datasets and {2, 4, 8} nodes.
pub fn run(opts: &Opts) -> Fig6 {
    let datasets: &[DatasetKind] = if opts.full {
        &DatasetKind::ALL
    } else {
        &[DatasetKind::Arxiv, DatasetKind::Products]
    };
    let node_counts: &[usize] = if opts.full { &[2, 4, 8] } else { &[2, 4] };
    let mut groups = Vec::new();
    for &kind in datasets {
        for backend in [Backend::Cpu, Backend::Gpu] {
            for &parts in node_counts {
                let base = engine_config(opts, kind, backend, parts);
                let baseline = Engine::build(base.clone()).run();
                let optimized = optimize_prefetch(&base, opts.full);
                let (f_h, ne) = &optimized.no_evict;
                groups.push(Group {
                    dataset: kind.name(),
                    backend: backend.name(),
                    num_parts: parts,
                    baseline_s: baseline.makespan_s,
                    no_evict: (*f_h, ne.makespan_s, ne.hit_rate()),
                    with_evict: optimized
                        .with_evict
                        .iter()
                        .map(|(g, d, r)| (*g, *d, r.makespan_s, r.hit_rate()))
                        .collect(),
                });
            }
        }
    }
    Fig6 { groups }
}

impl fmt::Display for Fig6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 6 — GraphSAGE end-to-end time & hit rate (baseline vs prefetch)"
        )?;
        writeln!(
            f,
            "{:<10} {:<4} {:>6} {:>11} | {:>5} {:>10} {:>7} | best-evict {:>8} {:>6} {:>10} {:>7} | {:>8}",
            "dataset",
            "dev",
            "#nodes",
            "DistDGL(s)",
            "f_h",
            "noEvict(s)",
            "hit(%)",
            "γ",
            "Δ",
            "evict(s)",
            "hit(%)",
            "impr(%)"
        )?;
        for g in &self.groups {
            let best = g
                .with_evict
                .iter()
                .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
                .unwrap();
            writeln!(
                f,
                "{:<10} {:<4} {:>6} {:>11.3} | {:>5} {:>10.3} {:>7.1} | {:>19} {:>6} {:>10.3} {:>7.1} | {:>8.1}",
                g.dataset,
                g.backend,
                g.num_parts,
                g.baseline_s,
                g.no_evict.0,
                g.no_evict.1,
                100.0 * g.no_evict.2,
                best.0,
                best.1,
                best.2,
                100.0 * best.3,
                g.best_improvement_pct()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_fig() -> &'static Fig6 {
        use std::sync::OnceLock;
        static FIG: OnceLock<Fig6> = OnceLock::new();
        FIG.get_or_init(|| {
            let mut opts = Opts::quick();
            opts.epochs = 2;
            run(&opts)
        })
    }

    #[test]
    fn prefetch_beats_baseline_on_cpu() {
        let fig = quick_fig();
        for g in fig.groups.iter().filter(|g| g.backend == "CPU") {
            assert!(
                g.best_improvement_pct() > 0.0,
                "{} {} nodes: no improvement ({:.1}%)",
                g.dataset,
                g.num_parts,
                g.best_improvement_pct()
            );
        }
    }

    #[test]
    fn hit_rates_nontrivial() {
        let fig = quick_fig();
        for g in &fig.groups {
            assert!(
                g.no_evict.2 > 0.1,
                "{}/{}: hit rate {:.2} too low",
                g.dataset,
                g.backend,
                g.no_evict.2
            );
        }
    }

    #[test]
    fn groups_cover_both_backends_and_node_counts() {
        let fig = quick_fig();
        assert!(fig.groups.iter().any(|g| g.backend == "CPU"));
        assert!(fig.groups.iter().any(|g| g.backend == "GPU"));
        assert!(fig.groups.iter().any(|g| g.num_parts == 2));
        assert!(fig.groups.iter().any(|g| g.num_parts == 4));
        assert!(format!("{fig}").contains("Fig. 6"));
    }
}
