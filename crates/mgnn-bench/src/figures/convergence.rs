//! Convergence check (the paper's §V claim: "The GNN's accuracy remains
//! unchanged from the baseline version because our prefetching scheme
//! optimizes the pre-training data pipeline without altering the
//! underlying training process"): run real tensor math in both modes and
//! report per-epoch loss/accuracy plus final validation accuracy — they
//! must be *identical*, not merely close.

use crate::harness::{engine_config, Opts};
use massivegnn::{Engine, Mode, PrefetchConfig};
use mgnn_graph::DatasetKind;
use mgnn_net::Backend;
use std::fmt;

/// The convergence comparison.
pub struct Convergence {
    /// Per-epoch mean loss, baseline.
    pub baseline_loss: Vec<f32>,
    /// Per-epoch mean loss, prefetch.
    pub prefetch_loss: Vec<f32>,
    /// Per-epoch mean minibatch accuracy (identical in both modes).
    pub epoch_acc: Vec<f64>,
    /// Validation accuracy of the final baseline model.
    pub baseline_val_acc: f64,
    /// Validation accuracy of the final prefetch model.
    pub prefetch_val_acc: f64,
    /// Whether the final parameters were bitwise identical.
    pub params_identical: bool,
}

/// Train products-like with real math in both modes and compare.
pub fn run(opts: &Opts) -> Convergence {
    let mut cfg = engine_config(opts, DatasetKind::Products, Backend::Cpu, 2);
    cfg.train_math = true;
    cfg.epochs = (opts.epochs * 2).max(5);
    let baseline_engine = Engine::build(cfg.clone());
    let baseline = baseline_engine.run();

    cfg.mode = Mode::Prefetch(PrefetchConfig {
        f_h: 0.35,
        gamma: 0.995,
        delta: 16,
        ..Default::default()
    });
    let prefetch_engine = Engine::build(cfg);
    let prefetch = prefetch_engine.run();

    Convergence {
        baseline_val_acc: baseline_engine.evaluate(&baseline.final_params),
        prefetch_val_acc: prefetch_engine.evaluate(&prefetch.final_params),
        params_identical: baseline.final_params == prefetch.final_params,
        baseline_loss: baseline.epoch_loss,
        prefetch_loss: prefetch.epoch_loss,
        epoch_acc: prefetch.epoch_acc,
    }
}

impl fmt::Display for Convergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Convergence — real training math, baseline vs prefetch (products, 2 nodes)"
        )?;
        writeln!(
            f,
            "{:>6} {:>14} {:>14} {:>10}",
            "epoch", "baseline loss", "prefetch loss", "train acc"
        )?;
        for (i, (b, p)) in self
            .baseline_loss
            .iter()
            .zip(&self.prefetch_loss)
            .enumerate()
        {
            writeln!(
                f,
                "{:>6} {:>14.4} {:>14.4} {:>10.3}",
                i, b, p, self.epoch_acc[i]
            )?;
        }
        writeln!(
            f,
            "validation accuracy: baseline {:.3} | prefetch {:.3}",
            self.baseline_val_acc, self.prefetch_val_acc
        )?;
        writeln!(
            f,
            "final parameters bitwise identical: {}",
            self.params_identical
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_identical_and_learning() {
        let mut opts = Opts::quick();
        opts.epochs = 3;
        let c = run(&opts);
        assert!(c.params_identical, "prefetch altered training");
        assert_eq!(c.baseline_loss, c.prefetch_loss);
        assert_eq!(c.baseline_val_acc, c.prefetch_val_acc);
        // And training actually learns.
        let first = c.baseline_loss[0];
        let last = *c.baseline_loss.last().unwrap();
        assert!(last < first, "loss {first} -> {last}");
        assert!(format!("{c}").contains("Convergence"));
    }
}
