//! Look-ahead depth study (beyond the paper's figures): the paper's
//! future work proposes "options to prefetch future minibatches … towards
//! a sustainable 'perfect overlap' model for various GPU-based
//! configurations". We generalize Eq. 5 to a bounded queue of depth `k`
//! and measure: deeper queues cannot raise steady-state throughput (the
//! slower stage still binds), but they absorb the Δ-periodic eviction
//! bursts in `t_prepare`, pushing GPU overlap efficiency toward 1.

use crate::harness::{engine_config, Opts};
use massivegnn::{Engine, Mode, PrefetchConfig};
use mgnn_graph::DatasetKind;
use mgnn_net::Backend;
use std::fmt;

/// One look-ahead depth's outcome.
#[derive(Debug, Clone)]
pub struct Point {
    /// Queue depth `k`.
    pub lookahead: usize,
    /// Makespan (s).
    pub time_s: f64,
    /// Mean overlap efficiency.
    pub overlap_efficiency: f64,
    /// Mean stall per trainer (s).
    pub stall_s: f64,
}

/// The study.
pub struct Lookahead {
    /// Points over queue depths.
    pub points: Vec<Point>,
    /// Baseline (DistDGL) time for reference.
    pub baseline_s: f64,
}

/// Sweep lookahead ∈ {1, 2, 4, 8} on the GPU backend with frequent
/// eviction rounds (bursty preparation).
pub fn run(opts: &Opts) -> Lookahead {
    let mut base = engine_config(opts, DatasetKind::Products, Backend::Gpu, 2);
    base.epochs = (opts.epochs * 4).max(8);
    let baseline = Engine::build(base.clone()).run();
    let mut points = Vec::new();
    for lookahead in [1usize, 2, 4, 8] {
        let mut cfg = base.clone();
        cfg.mode = Mode::Prefetch(PrefetchConfig {
            f_h: 0.25,
            gamma: 0.95,
            delta: 8, // frequent eviction ⇒ bursty t_prepare
            lookahead,
            ..Default::default()
        });
        let r = Engine::build(cfg).run();
        let n = r.trainers.len() as f64;
        points.push(Point {
            lookahead,
            time_s: r.makespan_s,
            overlap_efficiency: r.mean_overlap_efficiency(),
            stall_s: r.trainers.iter().map(|t| t.stall_s).sum::<f64>() / n,
        });
    }
    Lookahead {
        points,
        baseline_s: baseline.makespan_s,
    }
}

impl fmt::Display for Lookahead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Look-ahead depth (paper future work) — GPU, bursty eviction (baseline {:.3}s)",
            self.baseline_s
        )?;
        writeln!(
            f,
            "{:>9} {:>10} {:>9} {:>10}",
            "lookahead", "time(s)", "overlap%", "stall(s)"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>9} {:>10.4} {:>9.0} {:>10.4}",
                p.lookahead,
                p.time_s,
                100.0 * p.overlap_efficiency,
                p.stall_s
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deeper_lookahead_never_slower() {
        let mut opts = Opts::quick();
        opts.epochs = 3;
        let study = run(&opts);
        for w in study.points.windows(2) {
            assert!(
                w[1].time_s <= w[0].time_s * 1.001,
                "k={} ({:.4}s) slower than k={} ({:.4}s)",
                w[1].lookahead,
                w[1].time_s,
                w[0].lookahead,
                w[0].time_s
            );
        }
        // Depth ≥ 2 should not reduce overlap efficiency.
        assert!(
            study.points.last().unwrap().overlap_efficiency + 1e-9
                >= study.points[0].overlap_efficiency,
            "deep queue lost efficiency"
        );
        assert!(format!("{study}").contains("Look-ahead"));
    }
}
