//! Prefetch-policy study (beyond the paper's figures): the paper's
//! future work proposes "options to prefetch future minibatches … towards
//! a sustainable 'perfect overlap' model". Because the sampler and the
//! epoch plan are both seeded, every future minibatch's halo needs are
//! *computable* — the lookahead policy (DESIGN §10) walks the memoized
//! epoch plan `depth` steps ahead and pulls not-yet-resident rows before
//! they are due, off the critical RPC path. This study compares the
//! paper's reactive scoreboard against lookahead at increasing depths on
//! the same seed: cumulative hit rate should approach 100% and the
//! critical-path remote-fetch time should collapse into `planned_s`.

use crate::harness::{engine_config, Opts};
use massivegnn::{Engine, Mode, PrefetchConfig, PrefetchPolicyKind};
use mgnn_graph::DatasetKind;
use mgnn_net::Backend;
use std::fmt;

/// One policy's outcome on the shared seed.
#[derive(Debug, Clone)]
pub struct Point {
    /// Report label (`Mode::label()`).
    pub label: String,
    /// Cumulative buffer hit rate over the whole run.
    pub hit_rate: f64,
    /// Critical-path remote fetch time (breakdown `rpc_s`, all trainers).
    pub rpc_s: f64,
    /// Planner pull time charged off the critical path (`planned_s`).
    pub planned_s: f64,
    /// Makespan (s).
    pub time_s: f64,
    /// Mean stall per trainer (s).
    pub stall_s: f64,
}

/// The study: scoreboard vs lookahead-at-depths, plus the DistDGL
/// baseline for reference.
pub struct Lookahead {
    /// First point is the scoreboard; the rest are lookahead depths.
    pub points: Vec<Point>,
    /// Baseline (DistDGL) time for reference.
    pub baseline_s: f64,
}

fn measure(cfg: massivegnn::EngineConfig) -> Point {
    let label = cfg.mode.label();
    let r = Engine::build(cfg).run();
    let n = r.trainers.len() as f64;
    Point {
        label,
        hit_rate: r.hit_rate(),
        rpc_s: r.trainers.iter().map(|t| t.breakdown.rpc_s).sum(),
        planned_s: r.trainers.iter().map(|t| t.breakdown.planned_s).sum(),
        time_s: r.makespan_s,
        stall_s: r.trainers.iter().map(|t| t.stall_s).sum::<f64>() / n,
    }
}

/// Run scoreboard and lookahead on the same seed. With `--policy
/// lookahead --depth N` only that depth is measured; otherwise depths
/// {1, 2, 4} are swept. Depth 1 (pull each batch's rows one step ahead,
/// just in time) is the robust choice: deeper horizons pay off only
/// when the buffer comfortably holds the whole window's working set,
/// and on tiny graphs — where a single minibatch samples a large
/// fraction of the halo — they pin rows across their whole lifetime
/// and starve near-due installs.
pub fn run(opts: &Opts) -> Lookahead {
    // Pin the sampling shape: with the repro CLI's paper-shaped batch
    // size and fanouts on a unit-scale graph, a single minibatch
    // samples most of the halo and *every* policy degenerates to
    // capacity starvation (cf. `Opts::longrun_of` for the eviction
    // figures). A modest sampled set keeps the depth sweep meaningful.
    let mut sopts = opts.clone();
    sopts.batch_size = sopts.batch_size.min(96);
    sopts.fanouts = vec![5, 10];
    let mut base = engine_config(&sopts, DatasetKind::Products, Backend::Gpu, 2);
    base.epochs = (opts.epochs * 2).max(4); // several steady epochs
    let baseline = Engine::build(base.clone()).run();
    let pcfg = PrefetchConfig {
        f_h: 0.5,
        gamma: 0.995,
        delta: 64,
        ..Default::default()
    };
    let mut points = Vec::new();
    let mut cfg = base.clone();
    cfg.mode = Mode::Prefetch(pcfg);
    points.push(measure(cfg));
    let depths: Vec<usize> = match opts.policy {
        PrefetchPolicyKind::Lookahead { depth } => vec![depth],
        PrefetchPolicyKind::Scoreboard => vec![1, 2, 4],
    };
    for depth in depths {
        let mut cfg = base.clone();
        cfg.mode = Mode::Prefetch(pcfg.with_lookahead_policy(depth));
        points.push(measure(cfg));
    }
    Lookahead {
        points,
        baseline_s: baseline.makespan_s,
    }
}

impl fmt::Display for Lookahead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Prefetch policy study — scoreboard vs deterministic lookahead (baseline {:.3}s)",
            self.baseline_s
        )?;
        writeln!(
            f,
            "{:>28} {:>8} {:>10} {:>11} {:>10} {:>10}",
            "policy", "hit%", "rpc(s)", "planned(s)", "time(s)", "stall(s)"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>28} {:>8.2} {:>10.4} {:>11.4} {:>10.4} {:>10.4}",
                p.label,
                100.0 * p.hit_rate,
                p.rpc_s,
                p.planned_s,
                p.time_s,
                p.stall_s
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookahead_beats_scoreboard_on_hits_and_critical_path() {
        let mut opts = Opts::quick();
        opts.epochs = 3;
        let study = run(&opts);
        let scoreboard = &study.points[0];
        assert!(scoreboard.label.contains("Evict"));
        assert_eq!(scoreboard.planned_s, 0.0, "scoreboard must not plan");
        for p in &study.points[1..] {
            assert!(p.label.contains("Lookahead"));
            assert!(
                p.hit_rate > scoreboard.hit_rate,
                "{}: hit rate {:.4} not above scoreboard {:.4}",
                p.label,
                p.hit_rate,
                scoreboard.hit_rate
            );
            assert!(
                p.rpc_s < scoreboard.rpc_s,
                "{}: critical-path rpc {:.4}s not below scoreboard {:.4}s",
                p.label,
                p.rpc_s,
                scoreboard.rpc_s
            );
            assert!(p.planned_s > 0.0, "{}: planner never pulled", p.label);
        }
        // The planner re-runs the exact future sampler, so steady-state
        // demand lookups should essentially always hit.
        let deepest = study.points.last().unwrap();
        assert!(
            deepest.hit_rate > 0.95,
            "deepest lookahead hit rate {:.4} not near 1",
            deepest.hit_rate
        );
        assert!(format!("{study}").contains("policy study"));
    }
}
