//! Fig. 14: peak memory in the deliberately extreme configuration
//! (`f_p^h = 0.5`, `Δ = 1`, `γ = 0.95` — evicting every minibatch) on the
//! papers-like input, 2 CPU nodes, 2 epochs: initialization allocations
//! are prefetch-only (~buffer + scoreboards); training peaks differ
//! mildly (the paper reports ~10% extra).

use crate::harness::{engine_config, layout_for, Opts};
use massivegnn::{Engine, Mode, PrefetchConfig};
use mgnn_graph::DatasetKind;
use mgnn_net::Backend;
use std::fmt;

/// Peak-memory comparison.
#[derive(Debug, Clone)]
pub struct Fig14 {
    /// Mean per-trainer persistent prefetcher bytes (init phase).
    pub init_bytes_per_trainer: usize,
    /// Mean per-trainer peak bytes during baseline training.
    pub baseline_train_peak: usize,
    /// Mean per-trainer peak bytes during prefetch training.
    pub prefetch_train_peak: usize,
    /// Evictions performed (sanity: Δ=1 must evict very often).
    pub evictions: u64,
}

impl Fig14 {
    /// Training-phase overhead of prefetching (%).
    pub fn overhead_pct(&self) -> f64 {
        if self.baseline_train_peak == 0 {
            0.0
        } else {
            100.0 * (self.prefetch_train_peak as f64 / self.baseline_train_peak as f64 - 1.0)
        }
    }
}

/// Run the extreme configuration.
pub fn run(opts: &Opts) -> Fig14 {
    let mut base = engine_config(opts, DatasetKind::Papers, Backend::Cpu, 2);
    base.epochs = 2;
    let baseline = Engine::build(base.clone()).run();
    let mut pcfg = base.clone();
    pcfg.mode = Mode::Prefetch(PrefetchConfig {
        f_h: 0.5,
        gamma: 0.95,
        delta: 1,
        layout: layout_for(DatasetKind::Papers),
        ..Default::default()
    });
    let prefetch = Engine::build(pcfg).run();
    let n = baseline.trainers.len();
    Fig14 {
        init_bytes_per_trainer: prefetch
            .trainers
            .iter()
            .map(|t| t.init.persistent_bytes)
            .sum::<usize>()
            / n,
        baseline_train_peak: baseline
            .trainers
            .iter()
            .map(|t| t.peak_bytes)
            .sum::<usize>()
            / n,
        prefetch_train_peak: prefetch
            .trainers
            .iter()
            .map(|t| t.peak_bytes)
            .sum::<usize>()
            / n,
        evictions: prefetch.aggregate_metrics().evictions,
    }
}

impl fmt::Display for Fig14 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 14 — peak memory, papers-like on 2 CPU nodes, extreme config (f=0.5, Δ=1, γ=0.95)"
        )?;
        writeln!(
            f,
            "init (prefetch only):     {:>12} KiB/trainer",
            self.init_bytes_per_trainer / 1024
        )?;
        writeln!(
            f,
            "training peak (baseline): {:>12} KiB/trainer",
            self.baseline_train_peak / 1024
        )?;
        writeln!(
            f,
            "training peak (prefetch): {:>12} KiB/trainer  (+{:.1}%)",
            self.prefetch_train_peak / 1024,
            self.overhead_pct()
        )?;
        writeln!(f, "evictions under Δ=1:      {:>12}", self.evictions)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extreme_config_behaves_like_paper() {
        let opts = Opts::quick();
        let fig = run(&opts);
        // Init allocations exist only in prefetch mode.
        assert!(fig.init_bytes_per_trainer > 0);
        // Prefetch training peak exceeds baseline but not absurdly.
        assert!(fig.prefetch_train_peak > fig.baseline_train_peak);
        // Δ=1 with γ=0.95 evicts a lot.
        assert!(fig.evictions > 0);
        assert!(format!("{fig}").contains("Fig. 14"));
    }
}
