//! Figure reproductions (Figs. 6–14 of the paper, plus the Eq. 6 model
//! check and the chaos fault-injection study).

pub mod ablation;
pub mod chaos;
pub mod convergence;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod lookahead;
pub mod partitioning;
pub mod perfmodel;
