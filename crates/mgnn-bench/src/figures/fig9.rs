//! Fig. 9: component-wise time breakdown of *current-minibatch training*
//! overlapped with *next-minibatch preparation*, and the resulting overlap
//! efficiency — 100% on CPU (training long enough to hide preparation),
//! 60–70% on GPU in the paper.

use crate::harness::{engine_config, layout_for, Opts};
use massivegnn::{Engine, Mode, PrefetchConfig};
use mgnn_graph::DatasetKind;
use mgnn_net::Backend;
use std::fmt;

/// One (dataset, backend) breakdown.
#[derive(Debug, Clone)]
pub struct Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Backend name.
    pub backend: &'static str,
    /// Mean per-trainer sampling time (s).
    pub sampling_s: f64,
    /// Mean lookup time (s).
    pub lookup_s: f64,
    /// Mean scoring time (s).
    pub scoring_s: f64,
    /// Mean eviction time (s).
    pub evict_s: f64,
    /// Mean RPC time (s).
    pub rpc_s: f64,
    /// Mean local copy time (s).
    pub copy_s: f64,
    /// Mean DDP training time (s).
    pub train_s: f64,
    /// Mean stall time (s).
    pub stall_s: f64,
    /// Mean overlap efficiency [0, 1].
    pub overlap_efficiency: f64,
}

/// The figure.
pub struct Fig9 {
    /// Rows across datasets × backends.
    pub rows: Vec<Row>,
}

/// Breakdown on 4 nodes, products and papers, both backends.
pub fn run(opts: &Opts) -> Fig9 {
    let mut rows = Vec::new();
    // The paper trains with hidden size 256; the CPU-perfect / GPU-partial
    // overlap split is a property of that compute weight, so this figure
    // pins it rather than using the harness default.
    let mut opts = opts.clone();
    opts.hidden_dim = opts.hidden_dim.max(256);
    let opts = &opts;
    for kind in [DatasetKind::Products, DatasetKind::Papers] {
        for backend in [Backend::Cpu, Backend::Gpu] {
            let mut cfg = engine_config(opts, kind, backend, 4);
            cfg.mode = Mode::Prefetch(PrefetchConfig {
                f_h: 0.25,
                gamma: 0.995,
                delta: 64,
                layout: layout_for(kind),
                ..Default::default()
            });
            let report = Engine::build(cfg).run();
            let n = report.trainers.len() as f64;
            let b = |f: &dyn Fn(&massivegnn::engine::TrainerReport) -> f64| -> f64 {
                report.trainers.iter().map(f).sum::<f64>() / n
            };
            rows.push(Row {
                dataset: kind.name(),
                backend: backend.name(),
                sampling_s: b(&|t| t.breakdown.sampling_s),
                lookup_s: b(&|t| t.breakdown.lookup_s),
                scoring_s: b(&|t| t.breakdown.scoring_s),
                evict_s: b(&|t| t.breakdown.evict_s),
                rpc_s: b(&|t| t.breakdown.rpc_s),
                copy_s: b(&|t| t.breakdown.copy_s),
                train_s: b(&|t| t.breakdown.train_s),
                stall_s: b(&|t| t.stall_s),
                overlap_efficiency: report.mean_overlap_efficiency(),
            });
        }
    }
    Fig9 { rows }
}

impl fmt::Display for Fig9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 9 — per-trainer component breakdown with prefetching (4 nodes)"
        )?;
        writeln!(
            f,
            "{:<10} {:<4} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>8} {:>9}",
            "dataset",
            "dev",
            "sample(s)",
            "lookup",
            "score",
            "evict",
            "rpc",
            "copy",
            "train(s)",
            "stall",
            "overlap%"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:<4} {:>9.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>9.4} {:>8.4} {:>9.0}",
                r.dataset,
                r.backend,
                r.sampling_s,
                r.lookup_s,
                r.scoring_s,
                r.evict_s,
                r.rpc_s,
                r.copy_s,
                r.train_s,
                r.stall_s,
                100.0 * r.overlap_efficiency
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_overlap_exceeds_gpu() {
        let mut opts = Opts::quick();
        opts.hidden_dim = 128; // compute-heavy enough for the CPU regime
        let fig = run(&opts);
        for kind in ["products", "papers"] {
            let cpu = fig
                .rows
                .iter()
                .find(|r| r.dataset == kind && r.backend == "CPU")
                .unwrap();
            let gpu = fig
                .rows
                .iter()
                .find(|r| r.dataset == kind && r.backend == "GPU")
                .unwrap();
            assert!(
                cpu.overlap_efficiency >= gpu.overlap_efficiency,
                "{kind}: cpu {} < gpu {}",
                cpu.overlap_efficiency,
                gpu.overlap_efficiency
            );
            assert!(
                cpu.train_s > gpu.train_s,
                "{kind}: CPU training must be slower"
            );
        }
        assert!(format!("{fig}").contains("Fig. 9"));
    }
}
