//! # mgnn-bench — reproduction harness for every table and figure
//!
//! One module per artifact of the paper's evaluation (§V):
//!
//! | module            | paper artifact |
//! |-------------------|----------------|
//! | [`tables::table2`]| Table II — dataset statistics |
//! | [`tables::table3`]| Table III — remote nodes & minibatches per trainer |
//! | [`tables::table4`]| Table IV — optimal (f_p^h, γ, Δ) per dataset/backend |
//! | [`figures::fig6`] | Fig. 6 — end-to-end GraphSAGE time + hit rate |
//! | [`figures::fig7`] | Fig. 7 — GAT on papers |
//! | [`figures::fig8`] | Fig. 8 — initialization cost |
//! | [`figures::fig9`] | Fig. 9 — component breakdown / overlap efficiency |
//! | [`figures::fig10`]| Fig. 10 — hit-rate progression over minibatches |
//! | [`figures::fig11`]| Fig. 11 — remote-node fetch & communication reduction |
//! | [`figures::fig12`]| Fig. 12 — eviction interval (Δ) sweep per γ |
//! | [`figures::fig13`]| Fig. 13 — decay factor (γ) sweep across Δ |
//! | [`figures::fig14`]| Fig. 14 — peak memory in the extreme eviction config |
//! | [`figures::perfmodel`] | Eq. 6 — analytical model vs simulated improvement |
//!
//! Each module exposes `run(&Opts) -> …Report` (rows as plain data) and the
//! reports implement `Display` so `cargo run --release -p mgnn-bench --bin
//! repro -- --experiment fig6` prints the same rows/series the paper plots.
//! Absolute seconds come from the calibrated cost model; the *shapes*
//! (who wins, by what factor, where crossovers sit) come from real sampled
//! data movement. See EXPERIMENTS.md for paper-vs-measured notes.

pub mod bench;
pub mod diff;
pub mod experiments;
pub mod figures;
pub mod harness;
pub mod tables;

pub use harness::Opts;
