//! Central registry of reproduction experiments.
//!
//! The `repro` CLI used to keep a name list and a dispatch `match` that
//! had to be edited in lockstep; both now derive from this single table,
//! so a new experiment is one line here and cannot drift out of the CLI.

use crate::figures::{
    ablation, chaos, convergence, fig10, fig11, fig12, fig13, fig14, fig6, fig7, fig8, fig9,
    lookahead, partitioning, perfmodel,
};
use crate::tables::{table2, table3, table4};
use crate::Opts;

/// One runnable experiment: a CLI name, a one-line description, and the
/// entry point (rendered output as text).
pub struct Experiment {
    /// CLI name (`repro --experiment <name>`).
    pub name: &'static str,
    /// What the experiment reproduces.
    pub about: &'static str,
    /// Run it and render the table/figure as text.
    pub run: fn(&Opts) -> String,
}

/// Every experiment, in the order `--experiment all` runs them.
pub const ALL: &[Experiment] = &[
    Experiment {
        name: "table2",
        about: "Table II: datasets and partition statistics",
        run: |o| table2::run(o).to_string(),
    },
    Experiment {
        name: "table3",
        about: "Table III: remote nodes and minibatches per trainer",
        run: |o| table3::run(o).to_string(),
    },
    Experiment {
        name: "table4",
        about: "Table IV: optimized prefetch configurations",
        run: |o| table4::run(o).to_string(),
    },
    Experiment {
        name: "fig6",
        about: "Fig. 6: end-to-end GraphSAGE time and hit rate",
        run: |o| fig6::run(o).to_string(),
    },
    Experiment {
        name: "fig7",
        about: "Fig. 7: GAT on papers100M",
        run: |o| fig7::run(o).to_string(),
    },
    Experiment {
        name: "fig8",
        about: "Fig. 8: prefetcher initialization cost",
        run: |o| fig8::run(o).to_string(),
    },
    Experiment {
        name: "fig9",
        about: "Fig. 9: component breakdown and overlap efficiency",
        run: |o| fig9::run(o).to_string(),
    },
    Experiment {
        name: "fig10",
        about: "Fig. 10: hit-rate progression over minibatches",
        run: |o| fig10::run(o).to_string(),
    },
    Experiment {
        name: "fig11",
        about: "Fig. 11: remote-node fetch and communication reduction",
        run: |o| fig11::run(o).to_string(),
    },
    Experiment {
        name: "fig12",
        about: "Fig. 12: eviction interval (delta) sweep per gamma",
        run: |o| fig12::run(o).to_string(),
    },
    Experiment {
        name: "fig13",
        about: "Fig. 13: decay factor (gamma) sweep across delta",
        run: |o| fig13::run(o).to_string(),
    },
    Experiment {
        name: "fig14",
        about: "Fig. 14: peak memory in the extreme eviction config",
        run: |o| fig14::run(o).to_string(),
    },
    Experiment {
        name: "perfmodel",
        about: "Analytical model (Eqs. 2-7) vs simulated engine",
        run: |o| perfmodel::run(o).to_string(),
    },
    Experiment {
        name: "ablation",
        about: "Component ablation of the prefetcher",
        run: |o| ablation::run(o).to_string(),
    },
    Experiment {
        name: "lookahead",
        about: "Prefetch policy study: reactive scoreboard vs deterministic lookahead",
        run: |o| lookahead::run(o).to_string(),
    },
    Experiment {
        name: "partitioning",
        about: "Partitioner quality study",
        run: |o| partitioning::run(o).to_string(),
    },
    Experiment {
        name: "convergence",
        about: "Convergence parity baseline vs prefetch",
        run: |o| convergence::run(o).to_string(),
    },
    Experiment {
        name: "chaos",
        about: "Seeded fault injection: retry/respawn/degradation vs clean run",
        run: |o| chaos::run(o).to_string(),
    },
];

/// Look an experiment up by CLI name.
pub fn find(name: &str) -> Option<&'static Experiment> {
    ALL.iter().find(|e| e.name == name)
}

/// All CLI names, in run order.
pub fn names() -> Vec<&'static str> {
    ALL.iter().map(|e| e.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry IS the dispatch table, so the old failure mode (a
    /// name listed but not matched, or matched but not listed) reduces
    /// to: the registry must contain exactly the documented experiments,
    /// each resolvable by name, with no duplicates or reserved names.
    #[test]
    fn registry_matches_the_documented_experiment_set() {
        let expected = [
            "table2",
            "table3",
            "table4",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "perfmodel",
            "ablation",
            "lookahead",
            "partitioning",
            "convergence",
            "chaos",
        ];
        assert_eq!(
            names(),
            expected,
            "registry drifted from the documented set"
        );
        for name in expected {
            let e = find(name).unwrap_or_else(|| panic!("{name} does not dispatch"));
            assert_eq!(e.name, name);
            assert!(!e.about.is_empty(), "{name} has no description");
        }
        let mut sorted = names();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ALL.len(), "duplicate experiment names");
        assert!(find("all").is_none(), "'all' is reserved for the CLI");
        assert!(find("nope").is_none());
    }
}
