//! Criterion microbenchmarks for the hot paths: buffer lookups,
//! scoreboard updates (dense vs memory-efficient), neighbor sampling,
//! matmul, ring allreduce, and one full minibatch preparation in each
//! mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use massivegnn::init::initialize_prefetcher;
use massivegnn::scoreboard::AccessScores;
use massivegnn::{PrefetchBuffer, PrefetchConfig, ScoreLayout};
use mgnn_graph::generators::rmat;
use mgnn_graph::{Dataset, DatasetKind, Scale};
use mgnn_model::ring_allreduce_average;
use mgnn_net::{CommMetrics, CostModel, SimCluster};
use mgnn_partition::{build_local_partitions, multilevel_partition};
use mgnn_sampling::NeighborSampler;
use mgnn_tensor::Tensor;
use std::sync::Arc;

fn bench_buffer_lookup(c: &mut Criterion) {
    let num_halo = 100_000;
    let mut buf = PrefetchBuffer::new(num_halo, 25_000, 8);
    let feat = vec![0.5f32; 8];
    for h in 0..25_000u32 {
        buf.insert(h * 4 % num_halo as u32, &feat); // spread occupancy
    }
    let probes: Vec<u32> = (0..4096u32).map(|i| (i * 37) % num_halo as u32).collect();
    let mut g = c.benchmark_group("buffer_lookup");
    g.throughput(Throughput::Elements(probes.len() as u64));
    g.bench_function("probe_4096", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &h in &probes {
                if buf.contains(h) {
                    hits += 1;
                }
            }
            std::hint::black_box(hits)
        })
    });
    g.finish();
}

fn bench_scoreboard(c: &mut Criterion) {
    let halo: Vec<u32> = (0..100_000u32).map(|i| i * 7).collect();
    let nodes: Vec<u32> = (0..4096u32)
        .map(|i| halo[(i as usize * 13) % halo.len()])
        .collect();
    let mut g = c.benchmark_group("scoreboard_increment");
    g.throughput(Throughput::Elements(nodes.len() as u64));
    for layout in [ScoreLayout::Dense, ScoreLayout::MemEfficient] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{layout:?}")),
            &layout,
            |b, &layout| {
                let mut s = AccessScores::new(layout, 1_000_000, halo.len());
                b.iter(|| {
                    for &n in &nodes {
                        s.increment(&halo, n);
                    }
                })
            },
        );
    }
    g.finish();
}

fn bench_sampler(c: &mut Criterion) {
    let graph = rmat(20_000, 400_000, Default::default(), 7);
    let parts = multilevel_partition(&graph, 4, 7);
    let train: Vec<u32> = (0..graph.num_nodes() as u32).step_by(2).collect();
    let part = build_local_partitions(&graph, &parts, &train).remove(0);
    let seeds: Vec<u32> = (0..256.min(part.num_local() as u32)).collect();
    let sampler = NeighborSampler::new(vec![10, 25], 3);
    let mut g = c.benchmark_group("neighbor_sampler");
    g.sample_size(20);
    g.bench_function("fanout_10_25_batch_256", |b| {
        let mut step = 0u64;
        b.iter(|| {
            step += 1;
            std::hint::black_box(sampler.sample(&part, &seeds, 0, step))
        })
    });
    g.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let a = Tensor::from_vec(
        512,
        128,
        (0..512 * 128).map(|i| (i % 97) as f32 * 0.01).collect(),
    );
    let b_t = Tensor::from_vec(
        128,
        64,
        (0..128 * 64).map(|i| (i % 89) as f32 * 0.01).collect(),
    );
    let mut g = c.benchmark_group("tensor");
    g.throughput(Throughput::Elements((512 * 128 * 64) as u64));
    g.bench_function("matmul_512x128x64", |bch| {
        bch.iter(|| std::hint::black_box(a.matmul(&b_t)))
    });
    g.finish();
}

fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring_allreduce");
    for world in [4usize, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(world), &world, |b, &world| {
            b.iter_batched(
                || {
                    (0..world)
                        .map(|r| vec![r as f32; 65_536])
                        .collect::<Vec<_>>()
                },
                |mut grads| ring_allreduce_average(&mut grads),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_prepare(c: &mut Criterion) {
    let dataset = Dataset::generate(DatasetKind::Products, Scale::Unit, 11);
    let parts = multilevel_partition(&dataset.graph, 2, 11);
    let cluster = Arc::new(SimCluster::new(&dataset.features, &parts.assignment, 2));
    let part = build_local_partitions(&dataset.graph, &parts, &dataset.train_nodes).remove(0);
    let seeds: Vec<u32> = part
        .train_nodes
        .iter()
        .take(128)
        .map(|&gid| part.local_id(gid).unwrap())
        .collect();
    let sampler = NeighborSampler::new(vec![10, 25], 5);
    let cost = CostModel::default();

    let mut g = c.benchmark_group("prepare_minibatch");
    g.sample_size(20);
    g.bench_function("baseline", |b| {
        let metrics = CommMetrics::new();
        let mut step = 0u64;
        b.iter(|| {
            step += 1;
            std::hint::black_box(massivegnn::prefetcher::baseline_prepare(
                &part, &sampler, &seeds, 0, step, &cluster, &cost, &metrics,
            ))
        })
    });
    g.bench_function("prefetch_with_eviction", |b| {
        let metrics = CommMetrics::new();
        let (mut pf, _) = initialize_prefetcher(
            &part,
            PrefetchConfig {
                f_h: 0.25,
                delta: 16,
                ..Default::default()
            },
            dataset.num_nodes(),
            &cluster,
            &cost,
            &metrics,
        );
        let mut step = 0u64;
        b.iter(|| {
            step += 1;
            std::hint::black_box(
                pf.prepare(&part, &sampler, &seeds, 0, step, &cluster, &cost, &metrics),
            )
        })
    });
    g.finish();
}

fn bench_partitioners(c: &mut Criterion) {
    use mgnn_partition::{bfs::bfs_partition, hash::hash_partition, random::random_partition};
    let graph = rmat(10_000, 150_000, Default::default(), 13);
    let mut g = c.benchmark_group("partitioner_10k_nodes");
    g.sample_size(10);
    g.bench_function("multilevel", |b| {
        b.iter(|| std::hint::black_box(multilevel_partition(&graph, 4, 1)))
    });
    g.bench_function("bfs", |b| {
        b.iter(|| std::hint::black_box(bfs_partition(&graph, 4)))
    });
    g.bench_function("hash", |b| {
        b.iter(|| std::hint::black_box(hash_partition(&graph, 4)))
    });
    g.bench_function("random", |b| {
        b.iter(|| std::hint::black_box(random_partition(&graph, 4, 1)))
    });
    g.finish();
}

fn bench_generators(c: &mut Criterion) {
    use mgnn_graph::generators::{barabasi_albert, erdos_renyi, watts_strogatz};
    let mut g = c.benchmark_group("generators_10k_nodes");
    g.sample_size(10);
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("rmat", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(rmat(10_000, 100_000, Default::default(), seed))
        })
    });
    g.bench_function("erdos_renyi", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(erdos_renyi(10_000, 100_000, seed))
        })
    });
    g.bench_function("barabasi_albert_m10", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(barabasi_albert(10_000, 10, seed))
        })
    });
    g.bench_function("watts_strogatz_k5", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(watts_strogatz(10_000, 5, 0.1, seed))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_buffer_lookup,
    bench_scoreboard,
    bench_sampler,
    bench_matmul,
    bench_allreduce,
    bench_prepare,
    bench_partitioners,
    bench_generators
);
criterion_main!(benches);
