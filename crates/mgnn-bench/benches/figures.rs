//! `cargo bench --bench figures` — regenerates every table and figure of
//! the paper at quick scale and prints the rows. Not a criterion harness:
//! figure reproduction is about *rows and shapes*, not nanoseconds; the
//! criterion microbenches live in `benches/micro.rs`.

use mgnn_bench::figures::{
    ablation, convergence, fig10, fig11, fig12, fig13, fig14, fig6, fig7, fig8, fig9, lookahead,
    partitioning, perfmodel,
};
use mgnn_bench::tables::{table2, table3, table4};
use mgnn_bench::Opts;

fn main() {
    // cargo passes --bench; ignore all flags.
    let opts = Opts::quick();
    println!("=== MassiveGNN paper reproduction (quick profile) ===\n");
    let t0 = std::time::Instant::now();

    println!("{}\n", table2::run(&opts));
    println!("{}\n", table3::run(&opts));
    println!("{}\n", table4::run(&opts));
    println!("{}\n", fig6::run(&opts));
    println!("{}\n", fig7::run(&opts));
    println!("{}\n", fig8::run(&opts));
    println!("{}\n", fig9::run(&opts));
    println!("{}\n", fig10::run(&opts));
    println!("{}\n", fig11::run(&opts));
    println!("{}\n", fig12::run(&opts));
    println!("{}\n", fig13::run(&opts));
    println!("{}\n", fig14::run(&opts));
    println!("{}\n", perfmodel::run(&opts));
    println!("{}\n", ablation::run(&opts));
    println!("{}\n", lookahead::run(&opts));
    println!("{}\n", partitioning::run(&opts));
    println!("{}\n", convergence::run(&opts));

    println!("=== all artifacts regenerated in {:.1?} ===", t0.elapsed());
}
