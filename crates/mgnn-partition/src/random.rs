//! Random balanced partitioning: a seeded shuffle chopped into `P` equal
//! chunks. Exactly balanced, zero locality — the standard strawman.

use crate::Partitioning;
use mgnn_graph::CsrGraph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Exactly-balanced random partition.
pub fn random_partition(g: &CsrGraph, num_parts: usize, seed: u64) -> Partitioning {
    assert!(num_parts >= 1);
    let n = g.num_nodes();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut assignment = vec![0u32; n];
    for (i, &u) in order.iter().enumerate() {
        assignment[u as usize] = (i * num_parts / n.max(1)) as u32;
    }
    Partitioning::new(assignment, num_parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgnn_graph::generators::erdos_renyi;

    #[test]
    fn exactly_balanced() {
        let g = erdos_renyi(1000, 3000, 1);
        let p = random_partition(&g, 4, 9);
        let sizes = p.sizes();
        for &s in &sizes {
            assert_eq!(s, 250);
        }
    }

    #[test]
    fn uneven_division_still_covers() {
        let g = erdos_renyi(103, 300, 1);
        let p = random_partition(&g, 4, 2);
        assert_eq!(p.sizes().iter().sum::<usize>(), 103);
        let max = *p.sizes().iter().max().unwrap();
        let min = *p.sizes().iter().min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = erdos_renyi(200, 500, 5);
        assert_eq!(random_partition(&g, 3, 7), random_partition(&g, 3, 7));
        assert_ne!(random_partition(&g, 3, 7), random_partition(&g, 3, 8));
    }
}
