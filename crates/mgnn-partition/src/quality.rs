//! Partition quality metrics: edge cut, balance, halo fraction.

use crate::halo::LocalPartition;
use crate::Partitioning;
use mgnn_graph::CsrGraph;

/// Undirected edge cut: number of (unordered) edges whose endpoints lie in
/// different partitions. Assumes `g` is symmetric (each cut edge appears as
/// two directed edges and is counted once).
pub fn edge_cut(g: &CsrGraph, p: &Partitioning) -> usize {
    let mut cut = 0usize;
    for (u, v) in g.edges() {
        if u < v && p.part_of(u) != p.part_of(v) {
            cut += 1;
        }
    }
    cut
}

/// Balance factor: max partition size / ideal size. 1.0 is perfect.
pub fn balance(p: &Partitioning) -> f64 {
    let sizes = p.sizes();
    let n: usize = sizes.iter().sum();
    if n == 0 {
        return 1.0;
    }
    let ideal = n as f64 / p.num_parts as f64;
    *sizes.iter().max().unwrap() as f64 / ideal
}

/// Fraction of a partition's visible nodes that are halo: `H / (L + H)`.
/// The paper's prefetch working set scales with this.
pub fn halo_fraction(lp: &LocalPartition) -> f64 {
    let total = lp.num_local() + lp.num_halo();
    if total == 0 {
        0.0
    } else {
        lp.num_halo() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::halo::build_local_partitions;
    use crate::random::random_partition;
    use mgnn_graph::generators::erdos_renyi;

    #[test]
    fn cut_of_single_part_is_zero() {
        let g = erdos_renyi(100, 400, 1);
        let p = Partitioning::new(vec![0; 100], 1);
        assert_eq!(edge_cut(&g, &p), 0);
    }

    #[test]
    fn cut_counts_unordered_edges() {
        // path 0-1 with parts {0},{1}: one cut edge.
        let g = CsrGraph::from_parts(vec![0, 1, 2], vec![1, 0]).unwrap();
        let p = Partitioning::new(vec![0, 1], 2);
        assert_eq!(edge_cut(&g, &p), 1);
    }

    #[test]
    fn balance_perfect_and_skewed() {
        let p = Partitioning::new(vec![0, 0, 1, 1], 2);
        assert!((balance(&p) - 1.0).abs() < 1e-12);
        let q = Partitioning::new(vec![0, 0, 0, 1], 2);
        assert!((balance(&q) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn halo_fraction_range() {
        let g = erdos_renyi(300, 2000, 2);
        let p = random_partition(&g, 4, 2);
        for lp in build_local_partitions(&g, &p, &[]) {
            let f = halo_fraction(&lp);
            assert!((0.0..=1.0).contains(&f));
            // Random partition of a connected dense graph: plenty of halo.
            assert!(f > 0.3, "halo fraction {f} suspiciously low");
        }
    }
}
