//! BFS (region-growing) partitioning, in the spirit of BGL's
//! proximity-aware blocks: grow partitions one at a time by breadth-first
//! search from the highest-degree unassigned seed until the partition
//! reaches its capacity `⌈n/P⌉`. Produces contiguous, locality-friendly
//! blocks but with higher cut than multilevel refinement.

use crate::Partitioning;
use mgnn_graph::{CsrGraph, NodeId};
use std::collections::VecDeque;

/// Grow `num_parts` partitions by BFS from high-degree seeds.
pub fn bfs_partition(g: &CsrGraph, num_parts: usize) -> Partitioning {
    assert!(num_parts >= 1);
    let n = g.num_nodes();
    let cap = n.div_ceil(num_parts);
    let mut assignment = vec![u32::MAX; n];
    // Seeds by descending degree.
    let mut by_degree: Vec<NodeId> = (0..n as NodeId).collect();
    by_degree.sort_by_key(|&u| std::cmp::Reverse(g.degree(u)));

    let mut next_seed = 0usize;
    for p in 0..num_parts {
        let mut size = 0usize;
        let mut queue = VecDeque::new();
        while size < cap {
            if queue.is_empty() {
                // Find next unassigned seed.
                while next_seed < n && assignment[by_degree[next_seed] as usize] != u32::MAX {
                    next_seed += 1;
                }
                if next_seed >= n {
                    break;
                }
                let s = by_degree[next_seed];
                assignment[s as usize] = p as u32;
                size += 1;
                queue.push_back(s);
                continue;
            }
            let u = queue.pop_front().unwrap();
            for &v in g.neighbors(u) {
                if size >= cap {
                    break;
                }
                if assignment[v as usize] == u32::MAX {
                    assignment[v as usize] = p as u32;
                    size += 1;
                    queue.push_back(v);
                }
            }
        }
    }
    // Any stragglers (possible when cap*P == n exactly consumed early) go to
    // the last partition.
    for a in assignment.iter_mut() {
        if *a == u32::MAX {
            *a = (num_parts - 1) as u32;
        }
    }
    Partitioning::new(assignment, num_parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::edge_cut;
    use crate::random::random_partition;
    use mgnn_graph::generators::{sbm, SbmParams};

    #[test]
    fn covers_and_roughly_balances() {
        let g = mgnn_graph::generators::erdos_renyi(1000, 5000, 1);
        let p = bfs_partition(&g, 4);
        let sizes = p.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
        for &s in &sizes {
            assert!(s <= 250);
        }
    }

    #[test]
    fn beats_random_on_community_graph() {
        let params = SbmParams {
            communities: 4,
            p_in: 0.08,
            p_out: 0.002,
        };
        let g = sbm(800, params, 3);
        let bfs_cut = edge_cut(&g, &bfs_partition(&g, 4));
        let rand_cut = edge_cut(&g, &random_partition(&g, 4, 3));
        assert!(
            bfs_cut < rand_cut,
            "bfs cut {bfs_cut} should beat random {rand_cut}"
        );
    }

    #[test]
    fn one_partition_trivial() {
        let g = mgnn_graph::generators::erdos_renyi(50, 100, 2);
        let p = bfs_partition(&g, 1);
        assert!(p.assignment.iter().all(|&x| x == 0));
    }

    #[test]
    fn more_parts_than_interesting_nodes() {
        let g = mgnn_graph::CsrGraph::empty(5);
        let p = bfs_partition(&g, 3);
        assert_eq!(p.sizes().iter().sum::<usize>(), 5);
    }
}
