//! Second-level partitioning (DistDGL Fig. 2): split a partition's train
//! nodes among its trainer PEs. DistDGL hands each trainer a contiguous,
//! near-equal shard; we shuffle deterministically first so shards are
//! statistically alike (train ids arrive sorted by global id, which can
//! correlate with generator structure).

use mgnn_graph::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Split `train_nodes` into `num_trainers` near-equal shards (sizes differ
/// by at most one). Deterministic per seed.
pub fn split_train_nodes(
    train_nodes: &[NodeId],
    num_trainers: usize,
    seed: u64,
) -> Vec<Vec<NodeId>> {
    assert!(num_trainers >= 1);
    let mut shuffled = train_nodes.to_vec();
    shuffled.shuffle(&mut StdRng::seed_from_u64(seed));
    let n = shuffled.len();
    let mut shards = Vec::with_capacity(num_trainers);
    let base = n / num_trainers;
    let extra = n % num_trainers;
    let mut start = 0usize;
    for t in 0..num_trainers {
        let len = base + usize::from(t < extra);
        shards.push(shuffled[start..start + len].to_vec());
        start += len;
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_partition_input() {
        let train: Vec<NodeId> = (0..103).collect();
        let shards = split_train_nodes(&train, 4, 1);
        assert_eq!(shards.len(), 4);
        let mut all: Vec<NodeId> = shards.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, train);
    }

    #[test]
    fn sizes_differ_by_at_most_one() {
        let train: Vec<NodeId> = (0..103).collect();
        let shards = split_train_nodes(&train, 4, 2);
        let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        assert_eq!(sizes, vec![26, 26, 26, 25]);
    }

    #[test]
    fn empty_input() {
        let shards = split_train_nodes(&[], 3, 0);
        assert!(shards.iter().all(|s| s.is_empty()));
        assert_eq!(shards.len(), 3);
    }

    #[test]
    fn fewer_nodes_than_trainers() {
        let shards = split_train_nodes(&[5, 9], 4, 3);
        let nonempty = shards.iter().filter(|s| !s.is_empty()).count();
        assert_eq!(nonempty, 2);
    }

    #[test]
    fn deterministic() {
        let train: Vec<NodeId> = (0..50).collect();
        assert_eq!(
            split_train_nodes(&train, 4, 9),
            split_train_nodes(&train, 4, 9)
        );
        assert_ne!(
            split_train_nodes(&train, 4, 9),
            split_train_nodes(&train, 4, 10)
        );
    }
}
