//! Hash partitioning: node `u` goes to `hash(u) % P`. The weakest baseline
//! (no locality at all) — it maximizes halo traffic and is the worst case
//! for the prefetcher's working set, which makes it useful in ablations.

use crate::Partitioning;
use mgnn_graph::CsrGraph;

/// Partition by hashed node id.
pub fn hash_partition(g: &CsrGraph, num_parts: usize) -> Partitioning {
    assert!(num_parts >= 1);
    let assignment = (0..g.num_nodes())
        .map(|u| (splitmix(u as u64) % num_parts as u64) as u32)
        .collect();
    Partitioning::new(assignment, num_parts)
}

pub(crate) fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgnn_graph::generators::erdos_renyi;

    #[test]
    fn covers_all_nodes_and_balances() {
        let g = erdos_renyi(4000, 16_000, 1);
        let p = hash_partition(&g, 4);
        assert_eq!(p.assignment.len(), 4000);
        let sizes = p.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 4000);
        for &s in &sizes {
            assert!((s as f64) > 0.8 * 1000.0 && (s as f64) < 1.2 * 1000.0);
        }
    }

    #[test]
    fn single_partition() {
        let g = erdos_renyi(100, 300, 2);
        let p = hash_partition(&g, 1);
        assert!(p.assignment.iter().all(|&x| x == 0));
    }

    #[test]
    fn deterministic() {
        let g = erdos_renyi(500, 2000, 3);
        assert_eq!(hash_partition(&g, 8), hash_partition(&g, 8));
    }
}
