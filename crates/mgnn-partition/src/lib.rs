//! # mgnn-partition — graph partitioning substrate
//!
//! DistDGL (Fig. 2 of the MassiveGNN paper) partitions at two levels:
//!
//! 1. **First level (offline):** the full graph is split into `P` induced
//!    subgraphs, one per compute node, by METIS. Each partition additionally
//!    records its *halo* nodes — remotely-owned nodes adjacent to a local
//!    node — because the sampler walks into them and their features must
//!    then be fetched over RPC.
//! 2. **Second level (online):** each partition's *train* nodes are split
//!    among that node's trainer processes.
//!
//! The paper uses METIS; this crate implements a multilevel partitioner of
//! the same family ([`multilevel`]: heavy-edge-matching coarsening → greedy
//! growth initial partition → boundary Kernighan–Lin refinement) plus
//! [`hash`], [`random`] and [`bfs`] baselines, the [`halo`] construction
//! that produces the [`LocalPartition`] the rest of the system consumes,
//! the [`trainer_split`] second level, and partition [`quality`] metrics.

pub mod bfs;
pub mod halo;
pub mod hash;
pub mod multilevel;
pub mod quality;
pub mod random;
pub mod trainer_split;

pub use halo::{build_local_partitions, LocalPartition};
pub use multilevel::multilevel_partition;
pub use quality::{balance, edge_cut, halo_fraction};
pub use trainer_split::split_train_nodes;

use mgnn_graph::NodeId;

/// A partition assignment: `assignment[u]` is the partition id of global
/// node `u`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    /// Per-node partition id.
    pub assignment: Vec<u32>,
    /// Number of partitions.
    pub num_parts: usize,
}

impl Partitioning {
    /// Construct, validating every id is `< num_parts`.
    pub fn new(assignment: Vec<u32>, num_parts: usize) -> Self {
        assert!(num_parts >= 1);
        assert!(
            assignment.iter().all(|&p| (p as usize) < num_parts),
            "partition id out of range"
        );
        Partitioning {
            assignment,
            num_parts,
        }
    }

    /// Partition of node `u`.
    #[inline]
    pub fn part_of(&self, u: NodeId) -> u32 {
        self.assignment[u as usize]
    }

    /// Node count per partition.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.num_parts];
        for &p in &self.assignment {
            s[p as usize] += 1;
        }
        s
    }

    /// Sorted list of nodes owned by partition `p`.
    pub fn nodes_of(&self, p: u32) -> Vec<NodeId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &q)| q == p)
            .map(|(u, _)| u as NodeId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioning_basic() {
        let p = Partitioning::new(vec![0, 1, 0, 1], 2);
        assert_eq!(p.part_of(2), 0);
        assert_eq!(p.sizes(), vec![2, 2]);
        assert_eq!(p.nodes_of(1), vec![1, 3]);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range() {
        Partitioning::new(vec![0, 5], 2);
    }
}
