//! First-level partition materialization: the [`LocalPartition`] each
//! compute node holds, mirroring DistDGL's partition objects.
//!
//! A local partition stores:
//! * its **local nodes** (owned by this partition, sorted by global id),
//! * its **halo nodes** — remotely-owned nodes adjacent to at least one
//!   local node (the `V_p^h` of the paper) with their owner partition,
//! * a **local-id graph** over `local ∪ halo`: local ids `0..L` are local
//!   nodes, `L..L+H` are halo nodes. Local nodes keep *all* their edges
//!   (mapped to local ids); halo nodes have empty adjacency — the sampler
//!   treats them as frontier leaves, exactly like DistDGL's local sampling
//!   which "performs sampling from the local partition (considering halo
//!   nodes)" and then fetches halo *features* over RPC.

use crate::Partitioning;
use mgnn_graph::{CsrGraph, NodeId};
use rayon::prelude::*;

/// One partition's local view of the distributed graph.
#[derive(Debug, Clone)]
pub struct LocalPartition {
    /// This partition's id.
    pub part_id: u32,
    /// Sorted global ids of locally owned nodes.
    pub local_nodes: Vec<NodeId>,
    /// Sorted global ids of halo (remotely-owned, adjacent) nodes.
    pub halo_nodes: Vec<NodeId>,
    /// Owner partition of each halo node, aligned with `halo_nodes`.
    pub halo_owner: Vec<u32>,
    /// Global degree of each halo node (used by degree-based prefetch
    /// initialization), aligned with `halo_nodes`.
    pub halo_degree: Vec<u32>,
    /// Local-id CSR over `local ∪ halo` (halo rows empty).
    pub graph: CsrGraph,
    /// Training-split nodes owned by this partition (global ids).
    pub train_nodes: Vec<NodeId>,
}

impl LocalPartition {
    /// Number of locally owned nodes.
    #[inline]
    pub fn num_local(&self) -> usize {
        self.local_nodes.len()
    }

    /// Number of halo nodes.
    #[inline]
    pub fn num_halo(&self) -> usize {
        self.halo_nodes.len()
    }

    /// Local id of global node `g`, if present in this partition's view.
    pub fn local_id(&self, g: NodeId) -> Option<u32> {
        if let Ok(i) = self.local_nodes.binary_search(&g) {
            return Some(i as u32);
        }
        if let Ok(i) = self.halo_nodes.binary_search(&g) {
            return Some((self.num_local() + i) as u32);
        }
        None
    }

    /// Global id of local node `l`.
    #[inline]
    pub fn global_id(&self, l: u32) -> NodeId {
        let l = l as usize;
        if l < self.num_local() {
            self.local_nodes[l]
        } else {
            self.halo_nodes[l - self.num_local()]
        }
    }

    /// Whether local id `l` refers to a halo (remote) node.
    #[inline]
    pub fn is_halo(&self, l: u32) -> bool {
        (l as usize) >= self.num_local()
    }

    /// Halo index (0-based position in `halo_nodes`) of local id `l`,
    /// or `None` for local nodes.
    #[inline]
    pub fn halo_index(&self, l: u32) -> Option<u32> {
        if self.is_halo(l) {
            Some(l - self.num_local() as u32)
        } else {
            None
        }
    }

    /// Global degree of local id `l`: local nodes keep their full edge
    /// list in the partition graph; halo nodes carry their recorded
    /// global degree (used by degree-weighted sampling and degree-based
    /// prefetch initialization).
    #[inline]
    pub fn global_degree(&self, l: u32) -> u32 {
        if let Some(h) = self.halo_index(l) {
            self.halo_degree[h as usize]
        } else {
            self.graph.degree(l) as u32
        }
    }
}

/// Materialize every partition's [`LocalPartition`] from a global graph, a
/// partition assignment and the global training split.
pub fn build_local_partitions(
    g: &CsrGraph,
    parts: &Partitioning,
    train_split: &[NodeId],
) -> Vec<LocalPartition> {
    let p = parts.num_parts;
    // Sorted local node lists per partition.
    let mut local: Vec<Vec<NodeId>> = vec![Vec::new(); p];
    for u in 0..g.num_nodes() as NodeId {
        local[parts.part_of(u) as usize].push(u);
    }
    let mut train_by_part: Vec<Vec<NodeId>> = vec![Vec::new(); p];
    for &t in train_split {
        train_by_part[parts.part_of(t) as usize].push(t);
    }
    for tl in &mut train_by_part {
        tl.sort_unstable();
    }

    (0..p)
        .into_par_iter()
        .map(|pid| {
            build_one(
                g,
                parts,
                pid as u32,
                &local[pid],
                train_by_part[pid].clone(),
            )
        })
        .collect()
}

fn build_one(
    g: &CsrGraph,
    parts: &Partitioning,
    pid: u32,
    local_nodes: &[NodeId],
    train_nodes: Vec<NodeId>,
) -> LocalPartition {
    // Halo discovery: neighbors of local nodes owned elsewhere.
    let mut halo: Vec<NodeId> = Vec::new();
    for &u in local_nodes {
        for &v in g.neighbors(u) {
            if parts.part_of(v) != pid {
                halo.push(v);
            }
        }
    }
    halo.sort_unstable();
    halo.dedup();
    let halo_owner: Vec<u32> = halo.iter().map(|&h| parts.part_of(h)).collect();
    let halo_degree: Vec<u32> = halo.iter().map(|&h| g.degree(h) as u32).collect();

    let num_local = local_nodes.len();
    // Build local CSR: local rows get all edges (targets remapped);
    // halo rows are empty.
    let to_local = |v: NodeId| -> u32 {
        match local_nodes.binary_search(&v) {
            Ok(i) => i as u32,
            Err(_) => (num_local + halo.binary_search(&v).expect("halo must contain v")) as u32,
        }
    };
    let total = num_local + halo.len();
    let mut offsets = Vec::with_capacity(total + 1);
    offsets.push(0u64);
    let mut targets = Vec::new();
    for &u in local_nodes {
        let mut row: Vec<u32> = g.neighbors(u).iter().map(|&v| to_local(v)).collect();
        row.sort_unstable();
        targets.extend_from_slice(&row);
        offsets.push(targets.len() as u64);
    }
    for _ in 0..halo.len() {
        offsets.push(targets.len() as u64);
    }
    let graph = CsrGraph::from_parts_unchecked(offsets, targets);

    LocalPartition {
        part_id: pid,
        local_nodes: local_nodes.to_vec(),
        halo_nodes: halo,
        halo_owner,
        halo_degree,
        graph,
        train_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multilevel::multilevel_partition;
    use crate::random::random_partition;
    use mgnn_graph::generators::erdos_renyi;

    fn fixture() -> (CsrGraph, Partitioning) {
        let g = erdos_renyi(600, 3600, 7);
        let p = multilevel_partition(&g, 4, 7);
        (g, p)
    }

    #[test]
    fn locals_partition_the_graph() {
        let (g, p) = fixture();
        let lps = build_local_partitions(&g, &p, &[]);
        let total: usize = lps.iter().map(|lp| lp.num_local()).sum();
        assert_eq!(total, g.num_nodes());
        // Disjointness.
        let mut all: Vec<NodeId> = lps.iter().flat_map(|lp| lp.local_nodes.clone()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), g.num_nodes());
    }

    #[test]
    fn halo_nodes_are_remote_and_adjacent() {
        let (g, p) = fixture();
        let lps = build_local_partitions(&g, &p, &[]);
        for lp in &lps {
            for (i, &h) in lp.halo_nodes.iter().enumerate() {
                assert_ne!(p.part_of(h), lp.part_id, "halo node owned locally");
                assert_eq!(lp.halo_owner[i], p.part_of(h));
                assert_eq!(lp.halo_degree[i] as usize, g.degree(h));
                // Adjacent to at least one local node.
                assert!(
                    g.neighbors(h).iter().any(|&v| p.part_of(v) == lp.part_id),
                    "halo node {h} not adjacent to partition {}",
                    lp.part_id
                );
            }
        }
    }

    #[test]
    fn id_mapping_round_trips() {
        let (g, p) = fixture();
        let lps = build_local_partitions(&g, &p, &[]);
        for lp in &lps {
            for l in 0..(lp.num_local() + lp.num_halo()) as u32 {
                let gid = lp.global_id(l);
                assert_eq!(lp.local_id(gid), Some(l));
            }
            // A node not in this partition's view maps to None.
            let foreign = (0..g.num_nodes() as NodeId)
                .find(|&u| lp.local_id(u).is_none() || p.part_of(u) != lp.part_id);
            assert!(foreign.is_some());
        }
    }

    #[test]
    fn local_graph_edges_match_global() {
        let (g, p) = fixture();
        let lps = build_local_partitions(&g, &p, &[]);
        for lp in &lps {
            for (li, &u) in lp.local_nodes.iter().enumerate() {
                let local_nbrs: Vec<NodeId> = lp
                    .graph
                    .neighbors(li as u32)
                    .iter()
                    .map(|&v| lp.global_id(v))
                    .collect();
                let mut expected: Vec<NodeId> = g.neighbors(u).to_vec();
                let mut got = local_nbrs.clone();
                expected.sort_unstable();
                got.sort_unstable();
                assert_eq!(got, expected, "edge mismatch at global node {u}");
            }
            // Halo rows empty.
            for h in 0..lp.num_halo() {
                let l = (lp.num_local() + h) as u32;
                assert!(lp.graph.neighbors(l).is_empty());
                assert!(lp.is_halo(l));
                assert_eq!(lp.halo_index(l), Some(h as u32));
            }
        }
    }

    #[test]
    fn train_nodes_routed_to_owner() {
        let (g, p) = fixture();
        let train: Vec<NodeId> = (0..g.num_nodes() as NodeId).step_by(3).collect();
        let lps = build_local_partitions(&g, &p, &train);
        let total: usize = lps.iter().map(|lp| lp.train_nodes.len()).sum();
        assert_eq!(total, train.len());
        for lp in &lps {
            for &t in &lp.train_nodes {
                assert_eq!(p.part_of(t), lp.part_id);
            }
        }
    }

    #[test]
    fn random_partition_has_more_halo_than_multilevel() {
        let g = erdos_renyi(800, 6000, 11);
        let ml = multilevel_partition(&g, 4, 11);
        let rp = random_partition(&g, 4, 11);
        let halo_ml: usize = build_local_partitions(&g, &ml, &[])
            .iter()
            .map(|lp| lp.num_halo())
            .sum();
        let halo_rp: usize = build_local_partitions(&g, &rp, &[])
            .iter()
            .map(|lp| lp.num_halo())
            .sum();
        assert!(halo_ml <= halo_rp, "ml {halo_ml} vs random {halo_rp}");
    }
}
