//! Boundary Kernighan–Lin/FM refinement: greedily move boundary nodes to
//! the neighboring part with the best cut gain, subject to a balance
//! constraint, for a bounded number of passes or until no improving move
//! exists.

use super::coarsen::WGraph;
use mgnn_graph::NodeId;

/// Refine `assignment` in place. `eps` is the balance tolerance
/// (max part weight ≤ (1+eps)·ideal); `max_passes` bounds work.
pub fn refine(g: &WGraph, assignment: &mut [u32], num_parts: usize, eps: f64, max_passes: usize) {
    let n = g.num_nodes();
    if n == 0 || num_parts <= 1 {
        return;
    }
    let total = g.total_weight();
    let ideal = total as f64 / num_parts as f64;
    let cap = ((1.0 + eps) * ideal).ceil() as u64;

    let mut part_weight = vec![0u64; num_parts];
    for (u, &p) in assignment.iter().enumerate() {
        part_weight[p as usize] += g.node_weight(u as NodeId);
    }

    // Scratch: connection weight from a node to each part.
    let mut conn = vec![0u64; num_parts];
    for _ in 0..max_passes {
        let mut moved = 0usize;
        for u in 0..n as NodeId {
            let from = assignment[u as usize];
            let nbrs = g.neighbors(u);
            if nbrs.is_empty() {
                continue;
            }
            // Compute connectivity to each adjacent part.
            let mut touched: Vec<u32> = Vec::with_capacity(4);
            for (&v, &w) in nbrs.iter().zip(g.edge_weights(u)) {
                let p = assignment[v as usize];
                if conn[p as usize] == 0 {
                    touched.push(p);
                }
                conn[p as usize] += w;
            }
            // Only boundary nodes (with a neighbor in another part) matter.
            let internal = conn[from as usize];
            let mut best: Option<(i64, u32)> = None;
            for &p in &touched {
                if p == from {
                    continue;
                }
                let gain = conn[p as usize] as i64 - internal as i64;
                let fits = part_weight[p as usize] + g.node_weight(u) <= cap;
                // Also never empty a partition below one node-weight unit.
                let keeps_source = part_weight[from as usize] > g.node_weight(u);
                if gain > 0 && fits && keeps_source && best.is_none_or(|(bg, _)| gain > bg) {
                    best = Some((gain, p));
                }
            }
            if let Some((_, p)) = best {
                assignment[u as usize] = p;
                part_weight[from as usize] -= g.node_weight(u);
                part_weight[p as usize] += g.node_weight(u);
                moved += 1;
            }
            for &p in &touched {
                conn[p as usize] = 0;
            }
        }
        if moved == 0 {
            break;
        }
    }
}

/// Weighted edge cut of `assignment` over `g` (each directed cross edge
/// counted once; for symmetric graphs the undirected cut is half this).
pub fn weighted_cut(g: &WGraph, assignment: &[u32]) -> u64 {
    let mut cut = 0u64;
    for u in 0..g.num_nodes() as NodeId {
        for (&v, &w) in g.neighbors(u).iter().zip(g.edge_weights(u)) {
            if assignment[u as usize] != assignment[v as usize] {
                cut += w;
            }
        }
    }
    cut
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multilevel::coarsen::WGraph;
    use crate::random::random_partition;
    use mgnn_graph::generators::{sbm, SbmParams};

    #[test]
    fn refinement_never_increases_cut() {
        let g = sbm(
            400,
            SbmParams {
                communities: 2,
                p_in: 0.05,
                p_out: 0.01,
            },
            1,
        );
        let wg = WGraph::from_csr(&g);
        let mut a = random_partition(&g, 2, 1).assignment;
        let before = weighted_cut(&wg, &a);
        refine(&wg, &mut a, 2, 0.05, 8);
        let after = weighted_cut(&wg, &a);
        assert!(after <= before, "cut {after} > {before}");
        assert!(after < before, "refinement should improve a random cut");
    }

    #[test]
    fn respects_balance() {
        let g = mgnn_graph::generators::erdos_renyi(500, 3000, 2);
        let wg = WGraph::from_csr(&g);
        let mut a = random_partition(&g, 4, 2).assignment;
        refine(&wg, &mut a, 4, 0.05, 8);
        let mut w = vec![0u64; 4];
        for (u, &p) in a.iter().enumerate() {
            w[p as usize] += wg.node_weight(u as u32);
        }
        let cap = (125.0f64 * 1.05).ceil() as u64;
        for &x in &w {
            assert!(x <= cap, "part weight {x} exceeds cap {cap}");
        }
    }

    #[test]
    fn noop_on_single_part() {
        let g = mgnn_graph::generators::erdos_renyi(100, 400, 3);
        let wg = WGraph::from_csr(&g);
        let mut a = vec![0u32; 100];
        refine(&wg, &mut a, 1, 0.05, 4);
        assert!(a.iter().all(|&p| p == 0));
    }
}
