//! Multilevel k-way partitioner in the METIS family.
//!
//! Three phases, as in Karypis–Kumar:
//! 1. **Coarsening** ([`coarsen`]): repeated heavy-edge matching collapses
//!    matched node pairs, accumulating node and edge weights, until the
//!    graph is small (≤ `COARSE_TARGET · k` nodes) or matching stalls.
//! 2. **Initial partitioning** ([`initial`]): greedy region growth on the
//!    coarsest graph under a node-weight capacity.
//! 3. **Uncoarsening + refinement** ([`refine`]): project the assignment
//!    back level by level, running boundary Kernighan–Lin/FM moves that
//!    reduce edge cut subject to a balance tolerance.
//!
//! The goal is not to beat METIS but to produce the same *regime*: balanced
//! partitions whose edge cut — and therefore halo fraction — is far below
//! random, so the prefetch experiments see realistic remote-node ratios.

pub mod coarsen;
pub mod initial;
pub mod refine;

use crate::Partitioning;
use mgnn_graph::CsrGraph;

pub use coarsen::WGraph;

/// Stop coarsening when the graph has at most this many nodes per part.
const COARSE_TARGET: usize = 60;
/// Allowed imbalance: max part weight ≤ (1 + ε) · ideal.
pub const BALANCE_EPS: f64 = 0.05;

/// Partition `g` into `num_parts` balanced parts, minimizing edge cut.
///
/// `seed` drives tie-breaking in matching and initial growth; results are
/// deterministic per seed.
pub fn multilevel_partition(g: &CsrGraph, num_parts: usize, seed: u64) -> Partitioning {
    assert!(num_parts >= 1);
    let n = g.num_nodes();
    if num_parts == 1 || n == 0 {
        return Partitioning::new(vec![0; n], num_parts.max(1));
    }

    // Phase 1: coarsen.
    let mut levels: Vec<(WGraph, Vec<u32>)> = Vec::new(); // (coarser graph, fine->coarse map)
    let mut current = WGraph::from_csr(g);
    let target = COARSE_TARGET * num_parts;
    while current.num_nodes() > target {
        let (coarser, map) = coarsen::coarsen_once(&current, seed ^ levels.len() as u64);
        // Matching stalled (e.g. star graphs): stop to avoid spinning.
        if coarser.num_nodes() as f64 > 0.95 * current.num_nodes() as f64 {
            levels.push((current.clone(), map));
            current = coarser;
            break;
        }
        levels.push((current.clone(), map));
        current = coarser;
    }

    // Phase 2: initial partition of the coarsest graph.
    let mut assignment = initial::greedy_growth(&current, num_parts, seed);
    refine::refine(&current, &mut assignment, num_parts, BALANCE_EPS, 8);

    // Phase 3: uncoarsen + refine at every level.
    for (fine, map) in levels.iter().rev() {
        let mut fine_assignment = vec![0u32; fine.num_nodes()];
        for (u, a) in fine_assignment.iter_mut().enumerate() {
            *a = assignment[map[u] as usize];
        }
        assignment = fine_assignment;
        refine::refine(fine, &mut assignment, num_parts, BALANCE_EPS, 4);
    }

    Partitioning::new(assignment, num_parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::{balance, edge_cut};
    use crate::random::random_partition;
    use mgnn_graph::generators::{barabasi_albert, erdos_renyi, sbm, SbmParams};

    #[test]
    fn covers_all_nodes() {
        let g = erdos_renyi(2000, 10_000, 1);
        let p = multilevel_partition(&g, 4, 7);
        assert_eq!(p.assignment.len(), 2000);
        assert_eq!(p.sizes().iter().sum::<usize>(), 2000);
        for part in 0..4 {
            assert!(p.sizes()[part] > 0, "empty partition {part}");
        }
    }

    #[test]
    fn balanced_within_tolerance() {
        let g = erdos_renyi(3000, 15_000, 2);
        let p = multilevel_partition(&g, 4, 3);
        let b = balance(&p);
        assert!(b < 1.2, "balance {b} too loose");
    }

    #[test]
    fn recovers_planted_communities() {
        let params = SbmParams {
            communities: 4,
            p_in: 0.08,
            p_out: 0.002,
        };
        let g = sbm(1200, params, 5);
        let ml = edge_cut(&g, &multilevel_partition(&g, 4, 5));
        let rnd = edge_cut(&g, &random_partition(&g, 4, 5));
        assert!(
            (ml as f64) < 0.35 * rnd as f64,
            "multilevel cut {ml} should be far below random {rnd}"
        );
    }

    #[test]
    fn beats_random_on_powerlaw() {
        let g = barabasi_albert(3000, 4, 9);
        let ml = edge_cut(&g, &multilevel_partition(&g, 8, 9));
        let rnd = edge_cut(&g, &random_partition(&g, 8, 9));
        assert!(ml < rnd, "ml {ml} vs random {rnd}");
    }

    #[test]
    fn single_part() {
        let g = erdos_renyi(100, 300, 1);
        let p = multilevel_partition(&g, 1, 0);
        assert!(p.assignment.iter().all(|&x| x == 0));
    }

    #[test]
    fn deterministic() {
        let g = erdos_renyi(800, 4000, 4);
        assert_eq!(
            multilevel_partition(&g, 4, 11),
            multilevel_partition(&g, 4, 11)
        );
    }

    #[test]
    fn tiny_graph_more_parts_than_nodes_is_ok() {
        let g = erdos_renyi(8, 12, 1);
        let p = multilevel_partition(&g, 4, 0);
        assert_eq!(p.assignment.len(), 8);
    }
}
