//! Initial partitioning of the coarsest graph by greedy region growth under
//! a node-weight capacity, seeded from high-weight nodes.

use super::coarsen::WGraph;
use mgnn_graph::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BinaryHeap;

/// Greedy growth: for each part in turn, grab the heaviest unassigned seed
/// and expand along heaviest connecting edges until the part reaches the
/// ideal weight. Guarantees full coverage (leftovers go to the lightest
/// part).
pub fn greedy_growth(g: &WGraph, num_parts: usize, seed: u64) -> Vec<u32> {
    let n = g.num_nodes();
    let total = g.total_weight();
    let ideal = total.div_ceil(num_parts as u64);
    let mut assignment = vec![u32::MAX; n];
    let mut part_weight = vec![0u64; num_parts];

    let mut seeds: Vec<NodeId> = (0..n as NodeId).collect();
    seeds.shuffle(&mut StdRng::seed_from_u64(seed));
    seeds.sort_by_key(|&u| std::cmp::Reverse(g.node_weight(u)));
    let mut seed_idx = 0usize;

    for p in 0..num_parts as u32 {
        // Max-heap on connection weight to the growing region.
        let mut heap: BinaryHeap<(u64, NodeId)> = BinaryHeap::new();
        while part_weight[p as usize] < ideal {
            let u = loop {
                match heap.pop() {
                    Some((_, u)) if assignment[u as usize] == u32::MAX => break Some(u),
                    Some(_) => continue,
                    None => {
                        while seed_idx < n && assignment[seeds[seed_idx] as usize] != u32::MAX {
                            seed_idx += 1;
                        }
                        if seed_idx >= n {
                            break None;
                        }
                        break Some(seeds[seed_idx]);
                    }
                }
            };
            let Some(u) = u else { break };
            assignment[u as usize] = p;
            part_weight[p as usize] += g.node_weight(u);
            for (&v, &w) in g.neighbors(u).iter().zip(g.edge_weights(u)) {
                if assignment[v as usize] == u32::MAX {
                    heap.push((w, v));
                }
            }
        }
    }

    // Leftovers: assign to currently lightest part.
    for (u, a) in assignment.iter_mut().enumerate() {
        if *a == u32::MAX {
            let p = (0..num_parts).min_by_key(|&p| part_weight[p]).unwrap();
            *a = p as u32;
            part_weight[p] += g.node_weight(u as NodeId);
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgnn_graph::generators::erdos_renyi;

    #[test]
    fn covers_everything() {
        let g = erdos_renyi(300, 1200, 1);
        let wg = WGraph::from_csr(&g);
        let a = greedy_growth(&wg, 4, 2);
        assert!(a.iter().all(|&p| p < 4));
    }

    #[test]
    fn roughly_balanced_weights() {
        let g = erdos_renyi(400, 2400, 3);
        let wg = WGraph::from_csr(&g);
        let a = greedy_growth(&wg, 4, 1);
        let mut w = [0u64; 4];
        for (u, &p) in a.iter().enumerate() {
            w[p as usize] += wg.node_weight(u as u32);
        }
        let max = *w.iter().max().unwrap() as f64;
        let ideal = 100.0;
        assert!(max <= ideal * 1.35, "max part weight {max}");
    }

    #[test]
    fn single_part() {
        let g = erdos_renyi(50, 100, 0);
        let wg = WGraph::from_csr(&g);
        let a = greedy_growth(&wg, 1, 0);
        assert!(a.iter().all(|&p| p == 0));
    }
}
