//! Weighted graphs and heavy-edge-matching coarsening.

use mgnn_graph::{CsrGraph, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A weighted CSR graph used during coarsening: node weights count how many
/// original nodes a coarse node represents; edge weights count how many
/// original edges an aggregate edge represents.
#[derive(Debug, Clone)]
pub struct WGraph {
    offsets: Vec<u64>,
    targets: Vec<NodeId>,
    eweights: Vec<u64>,
    nweights: Vec<u64>,
}

impl WGraph {
    /// Lift an unweighted CSR graph to unit weights.
    pub fn from_csr(g: &CsrGraph) -> Self {
        WGraph {
            offsets: g.offsets().to_vec(),
            targets: g.targets().to_vec(),
            eweights: vec![1; g.num_edges()],
            nweights: vec![1; g.num_nodes()],
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nweights.len()
    }

    /// Number of directed weighted edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Neighbor ids of `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize]
    }

    /// Edge weights aligned with [`WGraph::neighbors`].
    #[inline]
    pub fn edge_weights(&self, u: NodeId) -> &[u64] {
        &self.eweights[self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize]
    }

    /// Node weight of `u`.
    #[inline]
    pub fn node_weight(&self, u: NodeId) -> u64 {
        self.nweights[u as usize]
    }

    /// Total node weight.
    pub fn total_weight(&self) -> u64 {
        self.nweights.iter().sum()
    }
}

/// One round of heavy-edge matching: visit nodes in random order; each
/// unmatched node matches its heaviest-edge unmatched neighbor. Matched
/// pairs collapse into one coarse node. Returns the coarser graph and the
/// fine→coarse node map.
pub fn coarsen_once(g: &WGraph, seed: u64) -> (WGraph, Vec<u32>) {
    let n = g.num_nodes();
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));

    let mut matched: Vec<u32> = vec![u32::MAX; n]; // partner or self
    for &u in &order {
        if matched[u as usize] != u32::MAX {
            continue;
        }
        let mut best: Option<(NodeId, u64)> = None;
        for (&v, &w) in g.neighbors(u).iter().zip(g.edge_weights(u)) {
            if v != u && matched[v as usize] == u32::MAX && best.is_none_or(|(_, bw)| w > bw) {
                best = Some((v, w));
            }
        }
        match best {
            Some((v, _)) => {
                matched[u as usize] = v;
                matched[v as usize] = u;
            }
            None => matched[u as usize] = u, // self-match
        }
    }

    // Assign coarse ids: the smaller endpoint of each pair owns the id.
    let mut fine_to_coarse = vec![u32::MAX; n];
    let mut next = 0u32;
    for u in 0..n as u32 {
        if fine_to_coarse[u as usize] != u32::MAX {
            continue;
        }
        let partner = matched[u as usize];
        fine_to_coarse[u as usize] = next;
        if partner != u && partner != u32::MAX {
            fine_to_coarse[partner as usize] = next;
        }
        next += 1;
    }
    let cn = next as usize;

    // Aggregate node weights.
    let mut nweights = vec![0u64; cn];
    for u in 0..n {
        nweights[fine_to_coarse[u] as usize] += g.node_weight(u as NodeId);
    }

    // Aggregate edges. Accumulate per coarse source with a scatter map.
    let mut offsets = vec![0u64; cn + 1];
    let mut targets: Vec<NodeId> = Vec::with_capacity(g.num_edges());
    let mut eweights: Vec<u64> = Vec::with_capacity(g.num_edges());
    // For each coarse node, gather fine members. Build member lists first.
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); cn];
    for u in 0..n as u32 {
        members[fine_to_coarse[u as usize] as usize].push(u);
    }
    let mut acc: Vec<u64> = vec![0; cn]; // scratch: weight accumulator per coarse target
    let mut touched: Vec<NodeId> = Vec::new();
    for (cu, mem) in members.iter().enumerate() {
        for &u in mem {
            for (&v, &w) in g.neighbors(u).iter().zip(g.edge_weights(u)) {
                let cv = fine_to_coarse[v as usize];
                if cv as usize == cu {
                    continue; // collapsed internal edge
                }
                if acc[cv as usize] == 0 {
                    touched.push(cv);
                }
                acc[cv as usize] += w;
            }
        }
        touched.sort_unstable();
        for &cv in &touched {
            targets.push(cv);
            eweights.push(acc[cv as usize]);
            acc[cv as usize] = 0;
        }
        touched.clear();
        offsets[cu + 1] = targets.len() as u64;
    }

    (
        WGraph {
            offsets,
            targets,
            eweights,
            nweights,
        },
        fine_to_coarse,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgnn_graph::generators::erdos_renyi;

    #[test]
    fn weights_conserved() {
        let g = erdos_renyi(500, 2000, 1);
        let wg = WGraph::from_csr(&g);
        let (coarse, map) = coarsen_once(&wg, 3);
        assert_eq!(coarse.total_weight(), 500);
        assert!(coarse.num_nodes() < 500);
        assert_eq!(map.len(), 500);
        assert!(map.iter().all(|&c| (c as usize) < coarse.num_nodes()));
    }

    #[test]
    fn roughly_halves() {
        let g = erdos_renyi(1000, 8000, 2);
        let wg = WGraph::from_csr(&g);
        let (coarse, _) = coarsen_once(&wg, 1);
        // Dense ER matches well; expect close to n/2.
        assert!(
            coarse.num_nodes() < 700,
            "coarse size {}",
            coarse.num_nodes()
        );
    }

    #[test]
    fn edge_weight_conserved_for_cross_edges() {
        let g = erdos_renyi(300, 1500, 5);
        let wg = WGraph::from_csr(&g);
        let (coarse, map) = coarsen_once(&wg, 7);
        // Sum of coarse edge weights == number of fine directed edges whose
        // endpoints land in different coarse nodes.
        let mut expected = 0u64;
        for (u, v) in g.edges() {
            if map[u as usize] != map[v as usize] {
                expected += 1;
            }
        }
        let total: u64 = coarse.eweights.iter().sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn isolated_nodes_self_match() {
        let g = CsrGraph::empty(10);
        let wg = WGraph::from_csr(&g);
        let (coarse, _) = coarsen_once(&wg, 0);
        assert_eq!(coarse.num_nodes(), 10);
        assert_eq!(coarse.num_edges(), 0);
    }

    use mgnn_graph::CsrGraph;

    #[test]
    fn coarse_neighbor_lists_sorted() {
        let g = erdos_renyi(400, 3000, 9);
        let wg = WGraph::from_csr(&g);
        let (coarse, _) = coarsen_once(&wg, 2);
        for u in 0..coarse.num_nodes() as u32 {
            let nb = coarse.neighbors(u);
            assert!(nb.windows(2).all(|w| w[0] < w[1]), "node {u} unsorted");
        }
    }
}
