//! Node features and labels.
//!
//! [`FeatureStore`] is a row-major `f32` matrix (one row per node) plus a
//! label per node. Synthesis is *label-correlated*: each class gets a random
//! centroid and node features are `centroid + noise`, then one smoothing
//! round averages each node with its neighborhood mean — so a GNN that
//! aggregates neighborhoods genuinely has signal to learn, and training
//! accuracy in tests/examples is meaningful rather than noise.

use crate::csr::{CsrGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Dense per-node features and labels.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureStore {
    num_nodes: usize,
    dim: usize,
    /// Row-major `num_nodes × dim`.
    data: Vec<f32>,
    labels: Vec<u32>,
    num_classes: usize,
}

impl FeatureStore {
    /// Build from raw parts. Panics if shapes disagree.
    pub fn from_parts(
        num_nodes: usize,
        dim: usize,
        data: Vec<f32>,
        labels: Vec<u32>,
        num_classes: usize,
    ) -> Self {
        assert_eq!(data.len(), num_nodes * dim, "feature matrix shape mismatch");
        assert_eq!(labels.len(), num_nodes, "label vector shape mismatch");
        assert!(labels.iter().all(|&l| (l as usize) < num_classes));
        FeatureStore {
            num_nodes,
            dim,
            data,
            labels,
            num_classes,
        }
    }

    /// Synthesize label-correlated features for `graph`.
    ///
    /// * class labels are drawn from a mild power-law over `num_classes`
    ///   (real node-classification datasets have imbalanced classes);
    /// * features = class centroid + N(0, noise);
    /// * one neighborhood-mean smoothing pass mixes graph structure in.
    pub fn synthesize(graph: &CsrGraph, dim: usize, num_classes: usize, seed: u64) -> Self {
        assert!(num_classes >= 2, "need at least 2 classes");
        let n = graph.num_nodes();
        let mut rng = StdRng::seed_from_u64(seed);

        // Imbalanced class prior: weight of class c is 1/(c+1).
        let weights: Vec<f64> = (0..num_classes).map(|c| 1.0 / (c as f64 + 1.0)).collect();
        let total: f64 = weights.iter().sum();
        let labels: Vec<u32> = (0..n)
            .map(|_| {
                let mut r = rng.gen::<f64>() * total;
                for (c, &w) in weights.iter().enumerate() {
                    if r < w {
                        return c as u32;
                    }
                    r -= w;
                }
                (num_classes - 1) as u32
            })
            .collect();

        // Class centroids in [-1, 1]^dim.
        let centroids: Vec<f32> = (0..num_classes * dim)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();

        let noise = 0.5f32;
        // Seed per-row for parallel determinism.
        let raw: Vec<f32> = (0..n)
            .into_par_iter()
            .flat_map_iter(|u| {
                let mut r = StdRng::seed_from_u64(seed ^ 0xabcd_ef12u64 ^ ((u as u64) << 17));
                let c = labels[u] as usize;
                let centroids = &centroids;
                (0..dim)
                    .map(|j| centroids[c * dim + j] + noise * (r.gen::<f32>() * 2.0 - 1.0))
                    .collect::<Vec<_>>()
            })
            .collect();

        // One smoothing round: x_u <- 0.6 x_u + 0.4 mean(x_N(u)).
        let data: Vec<f32> = (0..n)
            .into_par_iter()
            .flat_map_iter(|u| {
                let nbrs = graph.neighbors(u as NodeId);
                let mut row = vec![0.0f32; dim];
                if nbrs.is_empty() {
                    row.copy_from_slice(&raw[u * dim..(u + 1) * dim]);
                } else {
                    for &v in nbrs {
                        let vrow = &raw[v as usize * dim..(v as usize + 1) * dim];
                        for j in 0..dim {
                            row[j] += vrow[j];
                        }
                    }
                    let inv = 0.4 / nbrs.len() as f32;
                    let own = &raw[u * dim..(u + 1) * dim];
                    for j in 0..dim {
                        row[j] = 0.6 * own[j] + inv * row[j];
                    }
                }
                row
            })
            .collect();

        FeatureStore {
            num_nodes: n,
            dim,
            data,
            labels,
            num_classes,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Feature dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of label classes.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Feature row of node `u`.
    #[inline]
    pub fn row(&self, u: NodeId) -> &[f32] {
        let u = u as usize;
        &self.data[u * self.dim..(u + 1) * self.dim]
    }

    /// Label of node `u`.
    #[inline]
    pub fn label(&self, u: NodeId) -> u32 {
        self.labels[u as usize]
    }

    /// All labels.
    #[inline]
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Raw feature buffer (row-major).
    #[inline]
    pub fn raw(&self) -> &[f32] {
        &self.data
    }

    /// Gather rows for `nodes` into a dense row-major matrix.
    pub fn gather(&self, nodes: &[NodeId]) -> Vec<f32> {
        let mut out = Vec::with_capacity(nodes.len() * self.dim);
        for &u in nodes {
            out.extend_from_slice(self.row(u));
        }
        out
    }

    /// Bytes per feature row.
    #[inline]
    pub fn row_bytes(&self) -> usize {
        self.dim * std::mem::size_of::<f32>()
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.data.len() * 4 + self.labels.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi;

    #[test]
    fn shapes() {
        let g = erdos_renyi(100, 400, 1);
        let f = FeatureStore::synthesize(&g, 16, 4, 2);
        assert_eq!(f.num_nodes(), 100);
        assert_eq!(f.dim(), 16);
        assert_eq!(f.row(5).len(), 16);
        assert_eq!(f.labels().len(), 100);
        assert_eq!(f.row_bytes(), 64);
    }

    #[test]
    fn deterministic() {
        let g = erdos_renyi(50, 200, 3);
        let a = FeatureStore::synthesize(&g, 8, 3, 9);
        let b = FeatureStore::synthesize(&g, 8, 3, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn labels_in_range() {
        let g = erdos_renyi(200, 600, 4);
        let f = FeatureStore::synthesize(&g, 8, 5, 1);
        assert!(f.labels().iter().all(|&l| l < 5));
        // All classes should appear on 200 nodes with 5 classes.
        for c in 0..5u32 {
            assert!(f.labels().contains(&c), "class {c} missing");
        }
    }

    #[test]
    fn gather_matches_rows() {
        let g = erdos_renyi(30, 100, 5);
        let f = FeatureStore::synthesize(&g, 4, 2, 0);
        let gathered = f.gather(&[3, 7, 3]);
        assert_eq!(&gathered[0..4], f.row(3));
        assert_eq!(&gathered[4..8], f.row(7));
        assert_eq!(&gathered[8..12], f.row(3));
    }

    #[test]
    fn class_separation_exists() {
        // Mean intra-class feature distance should be below inter-class.
        let g = erdos_renyi(300, 1200, 6);
        let f = FeatureStore::synthesize(&g, 16, 3, 7);
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>()
        };
        let mut intra = (0.0f64, 0usize);
        let mut inter = (0.0f64, 0usize);
        for u in 0..300u32 {
            for v in (u + 1)..300u32 {
                let d = dist(f.row(u), f.row(v)) as f64;
                if f.label(u) == f.label(v) {
                    intra = (intra.0 + d, intra.1 + 1);
                } else {
                    inter = (inter.0 + d, inter.1 + 1);
                }
            }
        }
        let intra_mean = intra.0 / intra.1 as f64;
        let inter_mean = inter.0 / inter.1 as f64;
        assert!(
            intra_mean < inter_mean,
            "intra {intra_mean} should be < inter {inter_mean}"
        );
    }

    #[test]
    fn from_parts_validates() {
        let f = FeatureStore::from_parts(2, 3, vec![0.0; 6], vec![0, 1], 2);
        assert_eq!(f.row(1), &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn from_parts_rejects_bad_shape() {
        FeatureStore::from_parts(2, 3, vec![0.0; 5], vec![0, 1], 2);
    }
}
