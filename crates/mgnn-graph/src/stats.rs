//! Graph statistics used by tests, the dataset presets and the Table II
//! reproduction: degree histograms, tail heaviness, connectivity.

use crate::csr::{CsrGraph, NodeId};

/// Summary statistics of a graph's degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
    /// 99th percentile degree.
    pub p99: usize,
    /// Gini coefficient of the degree distribution in [0, 1];
    /// 0 = perfectly uniform, →1 = extremely skewed.
    pub gini: f64,
}

/// Compute [`DegreeStats`] for `g`.
pub fn degree_stats(g: &CsrGraph) -> DegreeStats {
    let mut degs: Vec<usize> = (0..g.num_nodes()).map(|u| g.degree(u as NodeId)).collect();
    if degs.is_empty() {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            median: 0,
            p99: 0,
            gini: 0.0,
        };
    }
    degs.sort_unstable();
    let n = degs.len();
    let sum: usize = degs.iter().sum();
    let mean = sum as f64 / n as f64;
    // Gini via the sorted-rank formula.
    let gini = if sum == 0 {
        0.0
    } else {
        let weighted: f64 = degs
            .iter()
            .enumerate()
            .map(|(i, &d)| (2.0 * (i as f64 + 1.0) - n as f64 - 1.0) * d as f64)
            .sum();
        weighted / (n as f64 * sum as f64)
    };
    DegreeStats {
        min: degs[0],
        max: degs[n - 1],
        mean,
        median: degs[n / 2],
        p99: degs[(n as f64 * 0.99) as usize % n],
        gini,
    }
}

/// Degree histogram with logarithmic (power-of-two) buckets:
/// bucket `i` counts nodes with degree in `[2^i, 2^(i+1))`; bucket 0 also
/// includes degree-0 nodes.
pub fn log_degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let mut hist = Vec::new();
    for u in 0..g.num_nodes() {
        let d = g.degree(u as NodeId);
        let b = if d <= 1 {
            0
        } else {
            (usize::BITS - d.leading_zeros() - 1) as usize
        };
        if hist.len() <= b {
            hist.resize(b + 1, 0);
        }
        hist[b] += 1;
    }
    hist
}

/// Number of connected components (undirected interpretation) via BFS.
pub fn connected_components(g: &CsrGraph) -> usize {
    let n = g.num_nodes();
    let mut seen = vec![false; n];
    let mut comps = 0;
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n {
        if seen[s] {
            continue;
        }
        comps += 1;
        seen[s] = true;
        queue.push_back(s as NodeId);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    comps
}

/// BFS eccentricity from `start` (longest shortest-path hop count reachable);
/// a cheap diameter proxy when called from a few random starts.
pub fn bfs_eccentricity(g: &CsrGraph, start: NodeId) -> usize {
    let n = g.num_nodes();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[start as usize] = 0;
    queue.push_back(start);
    let mut max = 0;
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if dist[v as usize] == usize::MAX {
                dist[v as usize] = dist[u as usize] + 1;
                max = max.max(dist[v as usize]);
                queue.push_back(v);
            }
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{barabasi_albert, erdos_renyi};

    #[test]
    fn stats_on_uniform_graph() {
        let g = erdos_renyi(1000, 10_000, 1);
        let s = degree_stats(&g);
        assert!(s.mean > 15.0 && s.mean < 25.0);
        assert!(s.gini < 0.25, "ER should be near-uniform, gini={}", s.gini);
    }

    #[test]
    fn ba_more_skewed_than_er() {
        let er = degree_stats(&erdos_renyi(2000, 8000, 2));
        let ba = degree_stats(&barabasi_albert(2000, 4, 2));
        assert!(ba.gini > er.gini);
        assert!(ba.max > er.max);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = barabasi_albert(500, 3, 4);
        let h = log_degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 500);
    }

    #[test]
    fn components_of_disconnected_graph() {
        // two disjoint edges: 0-1, 2-3
        let g = crate::csr::CsrGraph::from_parts(vec![0, 1, 2, 3, 4], vec![1, 0, 3, 2]).unwrap();
        assert_eq!(connected_components(&g), 2);
    }

    #[test]
    fn ba_is_connected() {
        let g = barabasi_albert(300, 2, 8);
        assert_eq!(connected_components(&g), 1);
    }

    #[test]
    fn eccentricity_path() {
        // path 0-1-2: ecc from 0 is 2
        let g = crate::csr::CsrGraph::from_parts(vec![0, 1, 3, 4], vec![1, 0, 2, 1]).unwrap();
        assert_eq!(bfs_eccentricity(&g, 0), 2);
        assert_eq!(bfs_eccentricity(&g, 1), 1);
    }

    #[test]
    fn empty_graph_stats() {
        let g = crate::csr::CsrGraph::empty(0);
        let s = degree_stats(&g);
        assert_eq!(s.max, 0);
        assert_eq!(connected_components(&g), 0);
    }
}
