//! OGB-lookalike dataset presets (Table II of the paper).
//!
//! | Dataset  | Nodes  | Edges  | Feat dim | classes |
//! |----------|--------|--------|----------|---------|
//! | arxiv    | 0.16M  | 1.16M  | 128      | 40      |
//! | products | 2.4M   | 61.85M | 100      | 47      |
//! | reddit   | 0.23M  | 114.61M| 602      | 41      |
//! | papers   | 111M   | 1.6B   | 128      | 172     |
//!
//! A [`Scale`] divides node/edge counts while preserving *average degree*
//! (the property that drives neighborhood sampling and halo traffic) and the
//! exact feature dimension and class count. `Scale::Unit` is for unit tests,
//! `Scale::Small` for integration tests and examples, `Scale::Bench` for the
//! figure-reproduction harness.

use crate::csr::CsrGraph;
use crate::features::FeatureStore;
use crate::generators::{barabasi_albert, erdos_renyi, rmat, RmatParams};

/// Which OGB dataset a preset imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// `ogbn-arxiv`: small, sparse (avg deg ≈ 7 undirected), large diameter.
    Arxiv,
    /// `ogbn-products`: co-purchase, heavy-tailed, avg deg ≈ 52.
    Products,
    /// `reddit`: extremely dense, avg deg ≈ 500 (capped in presets), flat core.
    Reddit,
    /// `ogbn-papers100M`: huge citation graph, avg deg ≈ 29, heavy-tailed.
    Papers,
}

impl DatasetKind {
    /// All four paper datasets in Table II order.
    pub const ALL: [DatasetKind; 4] = [
        DatasetKind::Arxiv,
        DatasetKind::Products,
        DatasetKind::Reddit,
        DatasetKind::Papers,
    ];

    /// Lower-case name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Arxiv => "arxiv",
            DatasetKind::Products => "products",
            DatasetKind::Reddit => "reddit",
            DatasetKind::Papers => "papers",
        }
    }

    /// Paper-reported node count (Table II).
    pub fn paper_nodes(&self) -> u64 {
        match self {
            DatasetKind::Arxiv => 160_000,
            DatasetKind::Products => 2_400_000,
            DatasetKind::Reddit => 230_000,
            DatasetKind::Papers => 111_000_000,
        }
    }

    /// Paper-reported edge count (Table II).
    pub fn paper_edges(&self) -> u64 {
        match self {
            DatasetKind::Arxiv => 1_160_000,
            DatasetKind::Products => 61_850_000,
            DatasetKind::Reddit => 114_610_000,
            DatasetKind::Papers => 1_600_000_000,
        }
    }

    /// Feature dimension (Table II, exact).
    pub fn feature_dim(&self) -> usize {
        match self {
            DatasetKind::Arxiv => 128,
            DatasetKind::Products => 100,
            DatasetKind::Reddit => 602,
            DatasetKind::Papers => 128,
        }
    }

    /// Class count of the node-classification task.
    pub fn num_classes(&self) -> usize {
        match self {
            DatasetKind::Arxiv => 40,
            DatasetKind::Products => 47,
            DatasetKind::Reddit => 41,
            DatasetKind::Papers => 172,
        }
    }

    /// Paper average undirected degree = E/V (directed-edge count / nodes).
    pub fn paper_avg_degree(&self) -> f64 {
        self.paper_edges() as f64 / self.paper_nodes() as f64
    }
}

/// How much to shrink the paper's dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny: for unit tests (~1–4K nodes).
    Unit,
    /// Small: integration tests & quickstart (~8–30K nodes).
    Small,
    /// Bench: figure-reproduction harness (~30–120K nodes).
    Bench,
    /// Custom divisor applied to the paper node count (min 1K nodes).
    Custom(u64),
}

impl Scale {
    fn nodes_for(&self, kind: DatasetKind) -> usize {
        match self {
            Scale::Unit => match kind {
                DatasetKind::Arxiv => 2_000,
                DatasetKind::Products => 3_000,
                DatasetKind::Reddit => 1_500,
                DatasetKind::Papers => 4_000,
            },
            Scale::Small => match kind {
                DatasetKind::Arxiv => 12_000,
                DatasetKind::Products => 20_000,
                DatasetKind::Reddit => 8_000,
                DatasetKind::Papers => 30_000,
            },
            Scale::Bench => match kind {
                DatasetKind::Arxiv => 30_000,
                DatasetKind::Products => 60_000,
                DatasetKind::Reddit => 20_000,
                DatasetKind::Papers => 120_000,
            },
            Scale::Custom(div) => ((kind.paper_nodes() / div.max(&1)) as usize).max(1_000),
        }
    }
}

/// A fully materialized dataset: graph + features + train/val/test split.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Which paper dataset this imitates.
    pub kind: DatasetKind,
    /// The (undirected, symmetrized) graph.
    pub graph: CsrGraph,
    /// Node features and labels.
    pub features: FeatureStore,
    /// Node ids used for training (the classification task's train split).
    pub train_nodes: Vec<u32>,
    /// Validation split.
    pub val_nodes: Vec<u32>,
    /// Test split.
    pub test_nodes: Vec<u32>,
}

impl Dataset {
    /// Generate the preset for `kind` at `scale` with deterministic `seed`.
    pub fn generate(kind: DatasetKind, scale: Scale, seed: u64) -> Dataset {
        let n = scale.nodes_for(kind);
        // Preserve paper average degree, but cap reddit's (avg ~498) to keep
        // test-scale graphs tractable; density regime is still "very dense".
        let avg_deg = match kind {
            DatasetKind::Reddit => kind.paper_avg_degree().min(120.0),
            _ => kind.paper_avg_degree(),
        };
        // undirected edges to request = n * avg_deg / 2 (builder symmetrizes).
        let m = ((n as f64 * avg_deg) / 2.0).round() as usize;

        let graph = match kind {
            DatasetKind::Arxiv => {
                // BA with m = avg_deg/2 rounded: sparse, power-law, big diameter.
                let ba_m = ((avg_deg / 2.0).round() as usize).max(2);
                barabasi_albert(n, ba_m, seed)
            }
            DatasetKind::Products => rmat(n, m, RmatParams::default(), seed),
            DatasetKind::Reddit => {
                // Dense flat core: ER dominates, with an RMAT overlay for a
                // modest heavy tail (reddit does have hubs).
                let core = erdos_renyi(n, (m as f64 * 0.7) as usize, seed);
                let tail = rmat(
                    n,
                    (m as f64 * 0.3) as usize,
                    RmatParams::default(),
                    seed ^ 0x5eed,
                );
                merge(core, tail)
            }
            DatasetKind::Papers => rmat(
                n,
                m,
                RmatParams {
                    a: 0.55,
                    b: 0.2,
                    c: 0.2,
                    noise: 0.1,
                },
                seed,
            ),
        };
        let features = FeatureStore::synthesize(
            &graph,
            kind.feature_dim(),
            kind.num_classes(),
            seed ^ 0xfeed,
        );

        // Deterministic 60/20/20 split by hashed node id (OGB splits are
        // fixed per dataset; a hash split is the seedable equivalent).
        let mut train = Vec::new();
        let mut val = Vec::new();
        let mut test = Vec::new();
        for u in 0..n as u32 {
            let h = splitmix(seed ^ 0x51_71 ^ u as u64) % 100;
            if h < 60 {
                train.push(u);
            } else if h < 80 {
                val.push(u);
            } else {
                test.push(u);
            }
        }

        Dataset {
            kind,
            graph,
            features,
            train_nodes: train,
            val_nodes: val,
            test_nodes: test,
        }
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }
}

fn merge(a: CsrGraph, b: CsrGraph) -> CsrGraph {
    assert_eq!(a.num_nodes(), b.num_nodes());
    let mut builder = crate::builder::GraphBuilder::new(a.num_nodes())
        .directed() // inputs are already symmetric; don't double again
        .with_capacity(a.num_edges() + b.num_edges());
    builder.extend(a.edges());
    builder.extend(b.edges());
    builder.build()
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_generate_at_unit_scale() {
        for kind in DatasetKind::ALL {
            let d = Dataset::generate(kind, Scale::Unit, 42);
            assert!(d.num_nodes() >= 1_000, "{}", kind.name());
            assert_eq!(d.features.dim(), kind.feature_dim());
            assert_eq!(d.features.num_classes(), kind.num_classes());
            assert!(d.graph.validate().is_ok());
            assert!(d.graph.is_symmetric());
        }
    }

    #[test]
    fn split_partitions_nodes() {
        let d = Dataset::generate(DatasetKind::Arxiv, Scale::Unit, 7);
        let total = d.train_nodes.len() + d.val_nodes.len() + d.test_nodes.len();
        assert_eq!(total, d.num_nodes());
        // Roughly 60/20/20.
        let frac = d.train_nodes.len() as f64 / total as f64;
        assert!((0.5..0.7).contains(&frac), "train fraction {frac}");
    }

    #[test]
    fn avg_degree_tracks_paper() {
        let d = Dataset::generate(DatasetKind::Products, Scale::Unit, 3);
        let avg = d.graph.avg_degree();
        let paper = DatasetKind::Products.paper_avg_degree();
        // Within 2x (dedup and rejection sampling shave edges).
        assert!(
            avg > paper * 0.5 && avg < paper * 2.0,
            "avg {avg} vs paper {paper}"
        );
    }

    #[test]
    fn deterministic() {
        let a = Dataset::generate(DatasetKind::Arxiv, Scale::Unit, 5);
        let b = Dataset::generate(DatasetKind::Arxiv, Scale::Unit, 5);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.train_nodes, b.train_nodes);
    }

    #[test]
    fn arxiv_is_sparser_than_products() {
        let a = Dataset::generate(DatasetKind::Arxiv, Scale::Unit, 1);
        let p = Dataset::generate(DatasetKind::Products, Scale::Unit, 1);
        assert!(a.graph.avg_degree() < p.graph.avg_degree());
    }

    #[test]
    fn custom_scale_respects_divisor() {
        let d = Dataset::generate(DatasetKind::Papers, Scale::Custom(50_000), 1);
        // 111M / 50k = 2220 -> clamped to min 1000... actually 2220 nodes.
        assert!(d.num_nodes() >= 1_000 && d.num_nodes() <= 3_000);
    }

    #[test]
    fn table2_paper_stats() {
        assert_eq!(DatasetKind::Papers.paper_nodes(), 111_000_000);
        assert!((DatasetKind::Arxiv.paper_avg_degree() - 7.25).abs() < 0.01);
    }
}
