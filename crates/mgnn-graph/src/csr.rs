//! Immutable Compressed Sparse Row (CSR) graph.
//!
//! Node ids are `u32` (the paper's largest graph, papers100M, has 111M nodes
//! — well within `u32`), offsets are `u64` so edge counts past 4B are
//! representable. Neighbor lists are sorted, which lets the partitioner and
//! sampler binary-search and lets tests assert canonical form.

use std::fmt;

/// Global node identifier.
pub type NodeId = u32;

/// An immutable CSR adjacency structure.
///
/// Invariants (checked by [`CsrGraph::validate`] and enforced by
/// [`crate::builder::GraphBuilder`]):
/// * `offsets.len() == num_nodes + 1`, `offsets[0] == 0`, monotone
///   non-decreasing, `offsets[num_nodes] == targets.len()`.
/// * every target id is `< num_nodes`.
/// * each neighbor list is sorted ascending and deduplicated.
#[derive(Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<u64>,
    targets: Vec<NodeId>,
}

impl CsrGraph {
    /// Build from raw parts, validating all invariants.
    ///
    /// Returns an error string describing the first violated invariant.
    pub fn from_parts(offsets: Vec<u64>, targets: Vec<NodeId>) -> Result<Self, String> {
        let g = CsrGraph { offsets, targets };
        g.validate()?;
        Ok(g)
    }

    /// Build from raw parts without validation.
    ///
    /// Intended for trusted internal callers (the builder, I/O after
    /// checksum). Debug builds still validate.
    pub fn from_parts_unchecked(offsets: Vec<u64>, targets: Vec<NodeId>) -> Self {
        let g = CsrGraph { offsets, targets };
        debug_assert!(g.validate().is_ok(), "CSR invariant violated");
        g
    }

    /// An empty graph with `n` isolated nodes.
    pub fn empty(n: usize) -> Self {
        CsrGraph {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
        }
    }

    /// Check every structural invariant; `Ok(())` when canonical.
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.is_empty() {
            return Err("offsets must have at least one entry".into());
        }
        if self.offsets[0] != 0 {
            return Err("offsets[0] must be 0".into());
        }
        if *self.offsets.last().unwrap() != self.targets.len() as u64 {
            return Err(format!(
                "offsets[last]={} != targets.len()={}",
                self.offsets.last().unwrap(),
                self.targets.len()
            ));
        }
        let n = self.num_nodes() as NodeId;
        for w in self.offsets.windows(2) {
            if w[0] > w[1] {
                return Err("offsets must be monotone non-decreasing".into());
            }
        }
        for u in 0..self.num_nodes() {
            let nbrs = self.neighbors(u as NodeId);
            for pair in nbrs.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(format!("neighbors of {u} not sorted+deduped"));
                }
            }
            if let Some(&last) = nbrs.last() {
                if last >= n {
                    return Err(format!("neighbor {last} of {u} out of range (n={n})"));
                }
            }
        }
        Ok(())
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges (for symmetrized graphs this counts both
    /// directions).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as usize
    }

    /// Sorted neighbor slice of `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let s = self.offsets[u as usize] as usize;
        let e = self.offsets[u as usize + 1] as usize;
        &self.targets[s..e]
    }

    /// Whether edge `(u, v)` exists (binary search on the sorted list).
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes() as NodeId
    }

    /// Iterator over all directed edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Raw offsets (for zero-copy consumers such as the partitioner).
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Raw targets.
    #[inline]
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }

    /// Degrees of every node, as a vector.
    pub fn degrees(&self) -> Vec<u32> {
        (0..self.num_nodes())
            .map(|u| self.degree(u as NodeId) as u32)
            .collect()
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|u| self.degree(u as NodeId))
            .max()
            .unwrap_or(0)
    }

    /// Average degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Whether the adjacency is symmetric (u→v implies v→u).
    pub fn is_symmetric(&self) -> bool {
        self.edges().all(|(u, v)| self.has_edge(v, u))
    }

    /// Extract the induced subgraph on `nodes` (given in ascending global
    /// order); returns the subgraph plus the local→global id map (which is
    /// just `nodes` echoed back) for convenience.
    ///
    /// Edges to nodes outside the set are dropped.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (CsrGraph, Vec<NodeId>) {
        debug_assert!(
            nodes.windows(2).all(|w| w[0] < w[1]),
            "nodes must be sorted"
        );
        // global -> local position via binary search on the sorted node list.
        let mut offsets = Vec::with_capacity(nodes.len() + 1);
        let mut targets = Vec::new();
        offsets.push(0u64);
        for &g in nodes {
            for &v in self.neighbors(g) {
                if let Ok(local) = nodes.binary_search(&v) {
                    targets.push(local as NodeId);
                }
            }
            // Neighbor lists stay sorted because global order == local order.
            offsets.push(targets.len() as u64);
        }
        (
            CsrGraph::from_parts_unchecked(offsets, targets),
            nodes.to_vec(),
        )
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.targets.len() * std::mem::size_of::<NodeId>()
    }
}

impl fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CsrGraph {{ nodes: {}, edges: {} }}",
            self.num_nodes(),
            self.num_edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> CsrGraph {
        // 0 - 1 - 2 undirected
        CsrGraph::from_parts(vec![0, 1, 3, 4], vec![1, 0, 2, 1]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = path3();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
        assert!(g.is_symmetric());
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn zero_node_graph() {
        let g = CsrGraph::empty(0);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn validate_rejects_bad_offsets() {
        assert!(CsrGraph::from_parts(vec![1, 2], vec![0]).is_err()); // offsets[0] != 0
        assert!(CsrGraph::from_parts(vec![0, 2, 1], vec![0, 0]).is_err()); // non-monotone
        assert!(CsrGraph::from_parts(vec![0, 1], vec![]).is_err()); // last != len
    }

    #[test]
    fn validate_rejects_unsorted_or_oob_neighbors() {
        assert!(CsrGraph::from_parts(vec![0, 2], vec![1, 0]).is_err()); // unsorted
        assert!(CsrGraph::from_parts(vec![0, 2], vec![0, 0]).is_err()); // duplicate
        assert!(CsrGraph::from_parts(vec![0, 1], vec![5]).is_err()); // out of range
    }

    #[test]
    fn edges_iterator_matches_neighbors() {
        let g = path3();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (1, 0), (1, 2), (2, 1)]);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = path3();
        let (sub, map) = g.induced_subgraph(&[0, 1]);
        assert_eq!(map, vec![0, 1]);
        assert_eq!(sub.num_nodes(), 2);
        assert_eq!(sub.num_edges(), 2); // 0-1 both directions; edge 1-2 dropped
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 0));
        assert!(sub.validate().is_ok());
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = path3();
        let (sub, map) = g.induced_subgraph(&[1, 2]);
        assert_eq!(map, vec![1, 2]);
        // global edge 1-2 becomes local 0-1
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 0));
        assert_eq!(sub.num_edges(), 2);
    }

    #[test]
    fn heap_bytes_positive() {
        let g = path3();
        assert!(g.heap_bytes() >= 4 * 8 + 4 * 4);
    }
}
