//! Edge-list accumulation into canonical CSR.
//!
//! The generators emit unordered, possibly-duplicated directed edge lists;
//! [`GraphBuilder`] sorts, deduplicates, optionally symmetrizes and strips
//! self-loops, and produces a validated [`CsrGraph`]. Sorting is the hot path
//! for large synthetic graphs, so it uses rayon's parallel sort.

use crate::csr::{CsrGraph, NodeId};
use rayon::prelude::*;

/// Accumulates edges and finalizes them into a [`CsrGraph`].
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
    symmetrize: bool,
    drop_self_loops: bool,
}

impl GraphBuilder {
    /// A builder for a graph on `num_nodes` nodes. By default the result is
    /// symmetrized (undirected) and self-loop-free, matching how OGB node
    /// classification graphs are consumed by DGL.
    pub fn new(num_nodes: usize) -> Self {
        GraphBuilder {
            num_nodes,
            edges: Vec::new(),
            symmetrize: true,
            drop_self_loops: true,
        }
    }

    /// Keep the edge list directed (no reverse-edge insertion).
    pub fn directed(mut self) -> Self {
        self.symmetrize = false;
        self
    }

    /// Keep self-loops instead of dropping them.
    pub fn keep_self_loops(mut self) -> Self {
        self.drop_self_loops = false;
        self
    }

    /// Pre-size the internal edge vector.
    pub fn with_capacity(mut self, edges: usize) -> Self {
        self.edges.reserve(edges);
        self
    }

    /// Add one directed edge. Ids out of range panic in debug builds and are
    /// clamped away at finalize time in release (defensive: generators can't
    /// produce them, but file input could).
    #[inline]
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        debug_assert!((u as usize) < self.num_nodes && (v as usize) < self.num_nodes);
        self.edges.push((u, v));
    }

    /// Add many edges at once.
    pub fn extend(&mut self, it: impl IntoIterator<Item = (NodeId, NodeId)>) {
        self.edges.extend(it);
    }

    /// Number of raw (pre-dedup) edges accumulated so far.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalize into a canonical CSR graph.
    pub fn build(mut self) -> CsrGraph {
        let n = self.num_nodes;
        let nid = n as NodeId;
        // Drop out-of-range defensively, and self-loops if requested.
        let drop_loops = self.drop_self_loops;
        self.edges
            .retain(|&(u, v)| u < nid && v < nid && !(drop_loops && u == v));

        if self.symmetrize {
            let rev: Vec<(NodeId, NodeId)> = self.edges.par_iter().map(|&(u, v)| (v, u)).collect();
            self.edges.extend(rev);
        }

        self.edges.par_sort_unstable();
        self.edges.dedup();

        let mut offsets = vec![0u64; n + 1];
        for &(u, _) in &self.edges {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets: Vec<NodeId> = self.edges.iter().map(|&(_, v)| v).collect();
        CsrGraph::from_parts_unchecked(offsets, targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_symmetrized_deduped() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 1); // duplicate
        b.add_edge(1, 0); // reverse already implied
        b.add_edge(2, 3);
        let g = b.build();
        assert_eq!(g.num_edges(), 4); // 0-1, 1-0, 2-3, 3-2
        assert!(g.is_symmetric());
        assert!(g.validate().is_ok());
    }

    #[test]
    fn directed_mode_preserves_direction() {
        let mut b = GraphBuilder::new(3).directed();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn self_loops_dropped_by_default() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        let g = b.build();
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn self_loops_kept_when_asked() {
        let mut b = GraphBuilder::new(2).keep_self_loops().directed();
        b.add_edge(0, 0);
        let g = b.build();
        assert!(g.has_edge(0, 0));
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn extend_and_raw_count() {
        let mut b = GraphBuilder::new(3);
        b.extend([(0, 1), (1, 2)]);
        assert_eq!(b.raw_edge_count(), 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn out_of_range_edges_are_dropped_in_release_path() {
        // Construct edges vec directly to bypass debug_assert in add_edge.
        let mut b = GraphBuilder::new(2).directed();
        b.edges.push((0, 9)); // out of range
        b.edges.push((0, 1));
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 1));
    }
}
