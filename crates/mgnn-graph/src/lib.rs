//! # mgnn-graph — graph substrate for MassiveGNN
//!
//! This crate provides everything the rest of the workspace needs to *have a
//! graph at all*: an immutable [CSR](csr::CsrGraph) representation, an
//! edge-list [builder](builder::GraphBuilder), synthetic graph
//! [generators](generators) (R-MAT, Barabási–Albert, Erdős–Rényi, SBM), a
//! node [feature/label store](features::FeatureStore), OGB-lookalike
//! [dataset presets](datasets) matching the shape statistics of Table II of
//! the MassiveGNN paper, degree/distribution [statistics](stats), and binary
//! + text [I/O](io).
//!
//! The paper trains on `ogbn-arxiv`, `ogbn-products`, `reddit` and
//! `ogbn-papers100M`. Those datasets (and the hardware to hold them) are not
//! available here, so [`datasets`] synthesizes graphs whose *degree
//! distribution, density, feature dimension and label count* match each
//! dataset at a configurable scale — the properties that actually drive
//! sampling locality and therefore prefetch behaviour.
//!
//! All randomness is seeded and deterministic.

pub mod builder;
pub mod csr;
pub mod datasets;
pub mod features;
pub mod generators;
pub mod io;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::{CsrGraph, NodeId};
pub use datasets::{Dataset, DatasetKind, Scale};
pub use features::FeatureStore;
